# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/slope_support_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_pmc_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_power_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_core_tests[1]_include.cmake")
include("/root/repo/build/tests/slope_integration_tests[1]_include.cmake")
