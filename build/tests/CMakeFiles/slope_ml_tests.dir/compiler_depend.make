# Empty compiler generated dependencies file for slope_ml_tests.
# This may be replaced when dependencies are built.
