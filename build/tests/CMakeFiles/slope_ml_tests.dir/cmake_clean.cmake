file(REMOVE_RECURSE
  "CMakeFiles/slope_ml_tests.dir/ml/DatasetIoTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/DatasetIoTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/DatasetTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/DatasetTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/DecisionTreeTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/DecisionTreeTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/KnnRegressorTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/KnnRegressorTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/LinearRegressionTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/LinearRegressionTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/MetricsTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/MetricsTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/ModelIoTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/ModelIoTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/NeuralNetworkTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/NeuralNetworkTest.cpp.o.d"
  "CMakeFiles/slope_ml_tests.dir/ml/RandomForestTest.cpp.o"
  "CMakeFiles/slope_ml_tests.dir/ml/RandomForestTest.cpp.o.d"
  "slope_ml_tests"
  "slope_ml_tests.pdb"
  "slope_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
