
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/DatasetIoTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/DatasetIoTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/DatasetIoTest.cpp.o.d"
  "/root/repo/tests/ml/DatasetTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/DatasetTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/DatasetTest.cpp.o.d"
  "/root/repo/tests/ml/DecisionTreeTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/DecisionTreeTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/DecisionTreeTest.cpp.o.d"
  "/root/repo/tests/ml/KnnRegressorTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/KnnRegressorTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/KnnRegressorTest.cpp.o.d"
  "/root/repo/tests/ml/LinearRegressionTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/LinearRegressionTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/LinearRegressionTest.cpp.o.d"
  "/root/repo/tests/ml/MetricsTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/MetricsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/MetricsTest.cpp.o.d"
  "/root/repo/tests/ml/ModelIoTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/ModelIoTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/ModelIoTest.cpp.o.d"
  "/root/repo/tests/ml/NeuralNetworkTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/NeuralNetworkTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/NeuralNetworkTest.cpp.o.d"
  "/root/repo/tests/ml/RandomForestTest.cpp" "tests/CMakeFiles/slope_ml_tests.dir/ml/RandomForestTest.cpp.o" "gcc" "tests/CMakeFiles/slope_ml_tests.dir/ml/RandomForestTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
