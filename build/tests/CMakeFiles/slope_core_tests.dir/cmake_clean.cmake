file(REMOVE_RECURSE
  "CMakeFiles/slope_core_tests.dir/core/AdditivityCheckerTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/AdditivityCheckerTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/AdditivityStudyTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/AdditivityStudyTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/AttributionTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/AttributionTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/AugmentationTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/AugmentationTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/DatasetBuilderTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/DatasetBuilderTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/DerivedMetricsTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/DerivedMetricsTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/ExperimentsTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/ExperimentsTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/MultiplexedProfilerTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/MultiplexedProfilerTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/OnlineEstimatorTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/OnlineEstimatorTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/PmcProfilerTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/PmcProfilerTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/PmcSelectorTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/PmcSelectorTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/ReportTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/ReportTest.cpp.o.d"
  "CMakeFiles/slope_core_tests.dir/core/ResultsIoTest.cpp.o"
  "CMakeFiles/slope_core_tests.dir/core/ResultsIoTest.cpp.o.d"
  "slope_core_tests"
  "slope_core_tests.pdb"
  "slope_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
