# Empty compiler generated dependencies file for slope_core_tests.
# This may be replaced when dependencies are built.
