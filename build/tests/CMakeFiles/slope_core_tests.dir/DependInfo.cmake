
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/AdditivityCheckerTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/AdditivityCheckerTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/AdditivityCheckerTest.cpp.o.d"
  "/root/repo/tests/core/AdditivityStudyTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/AdditivityStudyTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/AdditivityStudyTest.cpp.o.d"
  "/root/repo/tests/core/AttributionTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/AttributionTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/AttributionTest.cpp.o.d"
  "/root/repo/tests/core/AugmentationTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/AugmentationTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/AugmentationTest.cpp.o.d"
  "/root/repo/tests/core/DatasetBuilderTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/DatasetBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/DatasetBuilderTest.cpp.o.d"
  "/root/repo/tests/core/DerivedMetricsTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/DerivedMetricsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/DerivedMetricsTest.cpp.o.d"
  "/root/repo/tests/core/ExperimentsTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/ExperimentsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/ExperimentsTest.cpp.o.d"
  "/root/repo/tests/core/MultiplexedProfilerTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/MultiplexedProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/MultiplexedProfilerTest.cpp.o.d"
  "/root/repo/tests/core/OnlineEstimatorTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/OnlineEstimatorTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/OnlineEstimatorTest.cpp.o.d"
  "/root/repo/tests/core/PmcProfilerTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/PmcProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/PmcProfilerTest.cpp.o.d"
  "/root/repo/tests/core/PmcSelectorTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/PmcSelectorTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/PmcSelectorTest.cpp.o.d"
  "/root/repo/tests/core/ReportTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/ReportTest.cpp.o.d"
  "/root/repo/tests/core/ResultsIoTest.cpp" "tests/CMakeFiles/slope_core_tests.dir/core/ResultsIoTest.cpp.o" "gcc" "tests/CMakeFiles/slope_core_tests.dir/core/ResultsIoTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
