# Empty compiler generated dependencies file for slope_power_tests.
# This may be replaced when dependencies are built.
