file(REMOVE_RECURSE
  "CMakeFiles/slope_power_tests.dir/power/HclWattsUpTest.cpp.o"
  "CMakeFiles/slope_power_tests.dir/power/HclWattsUpTest.cpp.o.d"
  "CMakeFiles/slope_power_tests.dir/power/PowerMeterTest.cpp.o"
  "CMakeFiles/slope_power_tests.dir/power/PowerMeterTest.cpp.o.d"
  "CMakeFiles/slope_power_tests.dir/power/RaplSensorTest.cpp.o"
  "CMakeFiles/slope_power_tests.dir/power/RaplSensorTest.cpp.o.d"
  "CMakeFiles/slope_power_tests.dir/power/RepeatedMeasurementTest.cpp.o"
  "CMakeFiles/slope_power_tests.dir/power/RepeatedMeasurementTest.cpp.o.d"
  "slope_power_tests"
  "slope_power_tests.pdb"
  "slope_power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
