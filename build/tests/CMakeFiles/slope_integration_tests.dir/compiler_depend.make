# Empty compiler generated dependencies file for slope_integration_tests.
# This may be replaced when dependencies are built.
