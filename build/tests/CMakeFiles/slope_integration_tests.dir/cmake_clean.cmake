file(REMOVE_RECURSE
  "CMakeFiles/slope_integration_tests.dir/integration/EndToEndTest.cpp.o"
  "CMakeFiles/slope_integration_tests.dir/integration/EndToEndTest.cpp.o.d"
  "slope_integration_tests"
  "slope_integration_tests.pdb"
  "slope_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
