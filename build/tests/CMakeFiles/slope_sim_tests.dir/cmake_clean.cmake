file(REMOVE_RECURSE
  "CMakeFiles/slope_sim_tests.dir/sim/ApplicationTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/ApplicationTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/CacheModelTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/CacheModelTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/DvfsTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/DvfsTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/EnergyModelTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/EnergyModelTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/KernelPropertyTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/KernelPropertyTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/KernelTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/KernelTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/MachineTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/MachineTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/PlatformTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/PlatformTest.cpp.o.d"
  "CMakeFiles/slope_sim_tests.dir/sim/TestSuiteTest.cpp.o"
  "CMakeFiles/slope_sim_tests.dir/sim/TestSuiteTest.cpp.o.d"
  "slope_sim_tests"
  "slope_sim_tests.pdb"
  "slope_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
