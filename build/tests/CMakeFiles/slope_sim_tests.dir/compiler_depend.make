# Empty compiler generated dependencies file for slope_sim_tests.
# This may be replaced when dependencies are built.
