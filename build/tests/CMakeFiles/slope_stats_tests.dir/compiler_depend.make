# Empty compiler generated dependencies file for slope_stats_tests.
# This may be replaced when dependencies are built.
