
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/CorrelationTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/CorrelationTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/CorrelationTest.cpp.o.d"
  "/root/repo/tests/stats/DescriptiveTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/DescriptiveTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/DescriptiveTest.cpp.o.d"
  "/root/repo/tests/stats/MatrixTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/MatrixTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/MatrixTest.cpp.o.d"
  "/root/repo/tests/stats/NnlsTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/NnlsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/NnlsTest.cpp.o.d"
  "/root/repo/tests/stats/PcaTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/PcaTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/PcaTest.cpp.o.d"
  "/root/repo/tests/stats/SolveTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/SolveTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/SolveTest.cpp.o.d"
  "/root/repo/tests/stats/StudentTTest.cpp" "tests/CMakeFiles/slope_stats_tests.dir/stats/StudentTTest.cpp.o" "gcc" "tests/CMakeFiles/slope_stats_tests.dir/stats/StudentTTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
