file(REMOVE_RECURSE
  "CMakeFiles/slope_stats_tests.dir/stats/CorrelationTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/CorrelationTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/DescriptiveTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/DescriptiveTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/MatrixTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/MatrixTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/NnlsTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/NnlsTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/PcaTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/PcaTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/SolveTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/SolveTest.cpp.o.d"
  "CMakeFiles/slope_stats_tests.dir/stats/StudentTTest.cpp.o"
  "CMakeFiles/slope_stats_tests.dir/stats/StudentTTest.cpp.o.d"
  "slope_stats_tests"
  "slope_stats_tests.pdb"
  "slope_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
