# Empty compiler generated dependencies file for slope_support_tests.
# This may be replaced when dependencies are built.
