file(REMOVE_RECURSE
  "CMakeFiles/slope_support_tests.dir/support/CsvReaderTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/CsvReaderTest.cpp.o.d"
  "CMakeFiles/slope_support_tests.dir/support/CsvTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/CsvTest.cpp.o.d"
  "CMakeFiles/slope_support_tests.dir/support/ExpectedTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/ExpectedTest.cpp.o.d"
  "CMakeFiles/slope_support_tests.dir/support/RngTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/RngTest.cpp.o.d"
  "CMakeFiles/slope_support_tests.dir/support/StrTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/StrTest.cpp.o.d"
  "CMakeFiles/slope_support_tests.dir/support/TablePrinterTest.cpp.o"
  "CMakeFiles/slope_support_tests.dir/support/TablePrinterTest.cpp.o.d"
  "slope_support_tests"
  "slope_support_tests.pdb"
  "slope_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
