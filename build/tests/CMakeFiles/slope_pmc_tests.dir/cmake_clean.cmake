file(REMOVE_RECURSE
  "CMakeFiles/slope_pmc_tests.dir/pmc/ActivityTest.cpp.o"
  "CMakeFiles/slope_pmc_tests.dir/pmc/ActivityTest.cpp.o.d"
  "CMakeFiles/slope_pmc_tests.dir/pmc/CounterSchedulerTest.cpp.o"
  "CMakeFiles/slope_pmc_tests.dir/pmc/CounterSchedulerTest.cpp.o.d"
  "CMakeFiles/slope_pmc_tests.dir/pmc/EventRegistryTest.cpp.o"
  "CMakeFiles/slope_pmc_tests.dir/pmc/EventRegistryTest.cpp.o.d"
  "CMakeFiles/slope_pmc_tests.dir/pmc/PerformanceGroupsTest.cpp.o"
  "CMakeFiles/slope_pmc_tests.dir/pmc/PerformanceGroupsTest.cpp.o.d"
  "CMakeFiles/slope_pmc_tests.dir/pmc/PlatformEventsTest.cpp.o"
  "CMakeFiles/slope_pmc_tests.dir/pmc/PlatformEventsTest.cpp.o.d"
  "slope_pmc_tests"
  "slope_pmc_tests.pdb"
  "slope_pmc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_pmc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
