# Empty dependencies file for slope_pmc_tests.
# This may be replaced when dependencies are built.
