
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pmc/ActivityTest.cpp" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/ActivityTest.cpp.o" "gcc" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/ActivityTest.cpp.o.d"
  "/root/repo/tests/pmc/CounterSchedulerTest.cpp" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/CounterSchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/CounterSchedulerTest.cpp.o.d"
  "/root/repo/tests/pmc/EventRegistryTest.cpp" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/EventRegistryTest.cpp.o" "gcc" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/EventRegistryTest.cpp.o.d"
  "/root/repo/tests/pmc/PerformanceGroupsTest.cpp" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/PerformanceGroupsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/PerformanceGroupsTest.cpp.o.d"
  "/root/repo/tests/pmc/PlatformEventsTest.cpp" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/PlatformEventsTest.cpp.o" "gcc" "tests/CMakeFiles/slope_pmc_tests.dir/pmc/PlatformEventsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
