# Empty compiler generated dependencies file for slope_support.
# This may be replaced when dependencies are built.
