file(REMOVE_RECURSE
  "libslope_support.a"
)
