file(REMOVE_RECURSE
  "CMakeFiles/slope_support.dir/Csv.cpp.o"
  "CMakeFiles/slope_support.dir/Csv.cpp.o.d"
  "CMakeFiles/slope_support.dir/CsvReader.cpp.o"
  "CMakeFiles/slope_support.dir/CsvReader.cpp.o.d"
  "CMakeFiles/slope_support.dir/Rng.cpp.o"
  "CMakeFiles/slope_support.dir/Rng.cpp.o.d"
  "CMakeFiles/slope_support.dir/Str.cpp.o"
  "CMakeFiles/slope_support.dir/Str.cpp.o.d"
  "CMakeFiles/slope_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/slope_support.dir/TablePrinter.cpp.o.d"
  "libslope_support.a"
  "libslope_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
