file(REMOVE_RECURSE
  "CMakeFiles/slope_ml.dir/Dataset.cpp.o"
  "CMakeFiles/slope_ml.dir/Dataset.cpp.o.d"
  "CMakeFiles/slope_ml.dir/DatasetIo.cpp.o"
  "CMakeFiles/slope_ml.dir/DatasetIo.cpp.o.d"
  "CMakeFiles/slope_ml.dir/DecisionTree.cpp.o"
  "CMakeFiles/slope_ml.dir/DecisionTree.cpp.o.d"
  "CMakeFiles/slope_ml.dir/KnnRegressor.cpp.o"
  "CMakeFiles/slope_ml.dir/KnnRegressor.cpp.o.d"
  "CMakeFiles/slope_ml.dir/LinearRegression.cpp.o"
  "CMakeFiles/slope_ml.dir/LinearRegression.cpp.o.d"
  "CMakeFiles/slope_ml.dir/Metrics.cpp.o"
  "CMakeFiles/slope_ml.dir/Metrics.cpp.o.d"
  "CMakeFiles/slope_ml.dir/Model.cpp.o"
  "CMakeFiles/slope_ml.dir/Model.cpp.o.d"
  "CMakeFiles/slope_ml.dir/ModelIo.cpp.o"
  "CMakeFiles/slope_ml.dir/ModelIo.cpp.o.d"
  "CMakeFiles/slope_ml.dir/NeuralNetwork.cpp.o"
  "CMakeFiles/slope_ml.dir/NeuralNetwork.cpp.o.d"
  "CMakeFiles/slope_ml.dir/RandomForest.cpp.o"
  "CMakeFiles/slope_ml.dir/RandomForest.cpp.o.d"
  "libslope_ml.a"
  "libslope_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
