
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/Dataset.cpp" "src/ml/CMakeFiles/slope_ml.dir/Dataset.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/Dataset.cpp.o.d"
  "/root/repo/src/ml/DatasetIo.cpp" "src/ml/CMakeFiles/slope_ml.dir/DatasetIo.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/DatasetIo.cpp.o.d"
  "/root/repo/src/ml/DecisionTree.cpp" "src/ml/CMakeFiles/slope_ml.dir/DecisionTree.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/DecisionTree.cpp.o.d"
  "/root/repo/src/ml/KnnRegressor.cpp" "src/ml/CMakeFiles/slope_ml.dir/KnnRegressor.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/KnnRegressor.cpp.o.d"
  "/root/repo/src/ml/LinearRegression.cpp" "src/ml/CMakeFiles/slope_ml.dir/LinearRegression.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/LinearRegression.cpp.o.d"
  "/root/repo/src/ml/Metrics.cpp" "src/ml/CMakeFiles/slope_ml.dir/Metrics.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/Metrics.cpp.o.d"
  "/root/repo/src/ml/Model.cpp" "src/ml/CMakeFiles/slope_ml.dir/Model.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/Model.cpp.o.d"
  "/root/repo/src/ml/ModelIo.cpp" "src/ml/CMakeFiles/slope_ml.dir/ModelIo.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/ModelIo.cpp.o.d"
  "/root/repo/src/ml/NeuralNetwork.cpp" "src/ml/CMakeFiles/slope_ml.dir/NeuralNetwork.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/NeuralNetwork.cpp.o.d"
  "/root/repo/src/ml/RandomForest.cpp" "src/ml/CMakeFiles/slope_ml.dir/RandomForest.cpp.o" "gcc" "src/ml/CMakeFiles/slope_ml.dir/RandomForest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
