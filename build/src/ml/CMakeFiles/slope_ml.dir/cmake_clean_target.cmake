file(REMOVE_RECURSE
  "libslope_ml.a"
)
