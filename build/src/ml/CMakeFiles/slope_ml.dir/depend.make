# Empty dependencies file for slope_ml.
# This may be replaced when dependencies are built.
