file(REMOVE_RECURSE
  "libslope_sim.a"
)
