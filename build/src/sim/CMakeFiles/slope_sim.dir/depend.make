# Empty dependencies file for slope_sim.
# This may be replaced when dependencies are built.
