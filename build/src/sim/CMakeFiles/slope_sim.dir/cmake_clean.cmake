file(REMOVE_RECURSE
  "CMakeFiles/slope_sim.dir/Application.cpp.o"
  "CMakeFiles/slope_sim.dir/Application.cpp.o.d"
  "CMakeFiles/slope_sim.dir/CacheModel.cpp.o"
  "CMakeFiles/slope_sim.dir/CacheModel.cpp.o.d"
  "CMakeFiles/slope_sim.dir/EnergyModel.cpp.o"
  "CMakeFiles/slope_sim.dir/EnergyModel.cpp.o.d"
  "CMakeFiles/slope_sim.dir/Kernels.cpp.o"
  "CMakeFiles/slope_sim.dir/Kernels.cpp.o.d"
  "CMakeFiles/slope_sim.dir/Machine.cpp.o"
  "CMakeFiles/slope_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/slope_sim.dir/Platform.cpp.o"
  "CMakeFiles/slope_sim.dir/Platform.cpp.o.d"
  "CMakeFiles/slope_sim.dir/TestSuite.cpp.o"
  "CMakeFiles/slope_sim.dir/TestSuite.cpp.o.d"
  "libslope_sim.a"
  "libslope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
