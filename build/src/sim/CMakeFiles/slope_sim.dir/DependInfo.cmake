
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Application.cpp" "src/sim/CMakeFiles/slope_sim.dir/Application.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/Application.cpp.o.d"
  "/root/repo/src/sim/CacheModel.cpp" "src/sim/CMakeFiles/slope_sim.dir/CacheModel.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/CacheModel.cpp.o.d"
  "/root/repo/src/sim/EnergyModel.cpp" "src/sim/CMakeFiles/slope_sim.dir/EnergyModel.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/EnergyModel.cpp.o.d"
  "/root/repo/src/sim/Kernels.cpp" "src/sim/CMakeFiles/slope_sim.dir/Kernels.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/Kernels.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/slope_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/Platform.cpp" "src/sim/CMakeFiles/slope_sim.dir/Platform.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/Platform.cpp.o.d"
  "/root/repo/src/sim/TestSuite.cpp" "src/sim/CMakeFiles/slope_sim.dir/TestSuite.cpp.o" "gcc" "src/sim/CMakeFiles/slope_sim.dir/TestSuite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
