# Empty compiler generated dependencies file for slope_core.
# This may be replaced when dependencies are built.
