
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AdditivityChecker.cpp" "src/core/CMakeFiles/slope_core.dir/AdditivityChecker.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/AdditivityChecker.cpp.o.d"
  "/root/repo/src/core/AdditivityStudy.cpp" "src/core/CMakeFiles/slope_core.dir/AdditivityStudy.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/AdditivityStudy.cpp.o.d"
  "/root/repo/src/core/Attribution.cpp" "src/core/CMakeFiles/slope_core.dir/Attribution.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/Attribution.cpp.o.d"
  "/root/repo/src/core/Augmentation.cpp" "src/core/CMakeFiles/slope_core.dir/Augmentation.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/Augmentation.cpp.o.d"
  "/root/repo/src/core/DatasetBuilder.cpp" "src/core/CMakeFiles/slope_core.dir/DatasetBuilder.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/DatasetBuilder.cpp.o.d"
  "/root/repo/src/core/DerivedMetrics.cpp" "src/core/CMakeFiles/slope_core.dir/DerivedMetrics.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/DerivedMetrics.cpp.o.d"
  "/root/repo/src/core/Experiments.cpp" "src/core/CMakeFiles/slope_core.dir/Experiments.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/Experiments.cpp.o.d"
  "/root/repo/src/core/ModelZoo.cpp" "src/core/CMakeFiles/slope_core.dir/ModelZoo.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/ModelZoo.cpp.o.d"
  "/root/repo/src/core/MultiplexedProfiler.cpp" "src/core/CMakeFiles/slope_core.dir/MultiplexedProfiler.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/MultiplexedProfiler.cpp.o.d"
  "/root/repo/src/core/OnlineEstimator.cpp" "src/core/CMakeFiles/slope_core.dir/OnlineEstimator.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/OnlineEstimator.cpp.o.d"
  "/root/repo/src/core/PmcProfiler.cpp" "src/core/CMakeFiles/slope_core.dir/PmcProfiler.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/PmcProfiler.cpp.o.d"
  "/root/repo/src/core/PmcSelector.cpp" "src/core/CMakeFiles/slope_core.dir/PmcSelector.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/PmcSelector.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/slope_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/Report.cpp.o.d"
  "/root/repo/src/core/ResultsIo.cpp" "src/core/CMakeFiles/slope_core.dir/ResultsIo.cpp.o" "gcc" "src/core/CMakeFiles/slope_core.dir/ResultsIo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
