file(REMOVE_RECURSE
  "CMakeFiles/slope_core.dir/AdditivityChecker.cpp.o"
  "CMakeFiles/slope_core.dir/AdditivityChecker.cpp.o.d"
  "CMakeFiles/slope_core.dir/AdditivityStudy.cpp.o"
  "CMakeFiles/slope_core.dir/AdditivityStudy.cpp.o.d"
  "CMakeFiles/slope_core.dir/Attribution.cpp.o"
  "CMakeFiles/slope_core.dir/Attribution.cpp.o.d"
  "CMakeFiles/slope_core.dir/Augmentation.cpp.o"
  "CMakeFiles/slope_core.dir/Augmentation.cpp.o.d"
  "CMakeFiles/slope_core.dir/DatasetBuilder.cpp.o"
  "CMakeFiles/slope_core.dir/DatasetBuilder.cpp.o.d"
  "CMakeFiles/slope_core.dir/DerivedMetrics.cpp.o"
  "CMakeFiles/slope_core.dir/DerivedMetrics.cpp.o.d"
  "CMakeFiles/slope_core.dir/Experiments.cpp.o"
  "CMakeFiles/slope_core.dir/Experiments.cpp.o.d"
  "CMakeFiles/slope_core.dir/ModelZoo.cpp.o"
  "CMakeFiles/slope_core.dir/ModelZoo.cpp.o.d"
  "CMakeFiles/slope_core.dir/MultiplexedProfiler.cpp.o"
  "CMakeFiles/slope_core.dir/MultiplexedProfiler.cpp.o.d"
  "CMakeFiles/slope_core.dir/OnlineEstimator.cpp.o"
  "CMakeFiles/slope_core.dir/OnlineEstimator.cpp.o.d"
  "CMakeFiles/slope_core.dir/PmcProfiler.cpp.o"
  "CMakeFiles/slope_core.dir/PmcProfiler.cpp.o.d"
  "CMakeFiles/slope_core.dir/PmcSelector.cpp.o"
  "CMakeFiles/slope_core.dir/PmcSelector.cpp.o.d"
  "CMakeFiles/slope_core.dir/Report.cpp.o"
  "CMakeFiles/slope_core.dir/Report.cpp.o.d"
  "CMakeFiles/slope_core.dir/ResultsIo.cpp.o"
  "CMakeFiles/slope_core.dir/ResultsIo.cpp.o.d"
  "libslope_core.a"
  "libslope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
