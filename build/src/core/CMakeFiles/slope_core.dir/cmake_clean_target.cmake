file(REMOVE_RECURSE
  "libslope_core.a"
)
