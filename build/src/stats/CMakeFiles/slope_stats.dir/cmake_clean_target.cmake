file(REMOVE_RECURSE
  "libslope_stats.a"
)
