# Empty compiler generated dependencies file for slope_stats.
# This may be replaced when dependencies are built.
