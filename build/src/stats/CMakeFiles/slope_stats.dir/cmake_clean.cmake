file(REMOVE_RECURSE
  "CMakeFiles/slope_stats.dir/Correlation.cpp.o"
  "CMakeFiles/slope_stats.dir/Correlation.cpp.o.d"
  "CMakeFiles/slope_stats.dir/Descriptive.cpp.o"
  "CMakeFiles/slope_stats.dir/Descriptive.cpp.o.d"
  "CMakeFiles/slope_stats.dir/Matrix.cpp.o"
  "CMakeFiles/slope_stats.dir/Matrix.cpp.o.d"
  "CMakeFiles/slope_stats.dir/Nnls.cpp.o"
  "CMakeFiles/slope_stats.dir/Nnls.cpp.o.d"
  "CMakeFiles/slope_stats.dir/Pca.cpp.o"
  "CMakeFiles/slope_stats.dir/Pca.cpp.o.d"
  "CMakeFiles/slope_stats.dir/Solve.cpp.o"
  "CMakeFiles/slope_stats.dir/Solve.cpp.o.d"
  "CMakeFiles/slope_stats.dir/StudentT.cpp.o"
  "CMakeFiles/slope_stats.dir/StudentT.cpp.o.d"
  "libslope_stats.a"
  "libslope_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
