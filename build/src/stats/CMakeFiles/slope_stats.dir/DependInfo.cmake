
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/Correlation.cpp" "src/stats/CMakeFiles/slope_stats.dir/Correlation.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Correlation.cpp.o.d"
  "/root/repo/src/stats/Descriptive.cpp" "src/stats/CMakeFiles/slope_stats.dir/Descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Descriptive.cpp.o.d"
  "/root/repo/src/stats/Matrix.cpp" "src/stats/CMakeFiles/slope_stats.dir/Matrix.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Matrix.cpp.o.d"
  "/root/repo/src/stats/Nnls.cpp" "src/stats/CMakeFiles/slope_stats.dir/Nnls.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Nnls.cpp.o.d"
  "/root/repo/src/stats/Pca.cpp" "src/stats/CMakeFiles/slope_stats.dir/Pca.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Pca.cpp.o.d"
  "/root/repo/src/stats/Solve.cpp" "src/stats/CMakeFiles/slope_stats.dir/Solve.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/Solve.cpp.o.d"
  "/root/repo/src/stats/StudentT.cpp" "src/stats/CMakeFiles/slope_stats.dir/StudentT.cpp.o" "gcc" "src/stats/CMakeFiles/slope_stats.dir/StudentT.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
