# Empty dependencies file for slope_power.
# This may be replaced when dependencies are built.
