file(REMOVE_RECURSE
  "libslope_power.a"
)
