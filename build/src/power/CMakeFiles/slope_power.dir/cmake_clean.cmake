file(REMOVE_RECURSE
  "CMakeFiles/slope_power.dir/HclWattsUp.cpp.o"
  "CMakeFiles/slope_power.dir/HclWattsUp.cpp.o.d"
  "CMakeFiles/slope_power.dir/PowerMeter.cpp.o"
  "CMakeFiles/slope_power.dir/PowerMeter.cpp.o.d"
  "CMakeFiles/slope_power.dir/RaplSensor.cpp.o"
  "CMakeFiles/slope_power.dir/RaplSensor.cpp.o.d"
  "CMakeFiles/slope_power.dir/RepeatedMeasurement.cpp.o"
  "CMakeFiles/slope_power.dir/RepeatedMeasurement.cpp.o.d"
  "libslope_power.a"
  "libslope_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
