# Empty compiler generated dependencies file for slope_power.
# This may be replaced when dependencies are built.
