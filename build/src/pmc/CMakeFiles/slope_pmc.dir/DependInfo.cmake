
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmc/Activity.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/Activity.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/Activity.cpp.o.d"
  "/root/repo/src/pmc/CounterScheduler.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/CounterScheduler.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/CounterScheduler.cpp.o.d"
  "/root/repo/src/pmc/Event.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/Event.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/Event.cpp.o.d"
  "/root/repo/src/pmc/EventRegistry.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/EventRegistry.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/EventRegistry.cpp.o.d"
  "/root/repo/src/pmc/PerformanceGroups.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/PerformanceGroups.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/PerformanceGroups.cpp.o.d"
  "/root/repo/src/pmc/PlatformEvents.cpp" "src/pmc/CMakeFiles/slope_pmc.dir/PlatformEvents.cpp.o" "gcc" "src/pmc/CMakeFiles/slope_pmc.dir/PlatformEvents.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
