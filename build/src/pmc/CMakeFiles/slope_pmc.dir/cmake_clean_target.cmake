file(REMOVE_RECURSE
  "libslope_pmc.a"
)
