file(REMOVE_RECURSE
  "CMakeFiles/slope_pmc.dir/Activity.cpp.o"
  "CMakeFiles/slope_pmc.dir/Activity.cpp.o.d"
  "CMakeFiles/slope_pmc.dir/CounterScheduler.cpp.o"
  "CMakeFiles/slope_pmc.dir/CounterScheduler.cpp.o.d"
  "CMakeFiles/slope_pmc.dir/Event.cpp.o"
  "CMakeFiles/slope_pmc.dir/Event.cpp.o.d"
  "CMakeFiles/slope_pmc.dir/EventRegistry.cpp.o"
  "CMakeFiles/slope_pmc.dir/EventRegistry.cpp.o.d"
  "CMakeFiles/slope_pmc.dir/PerformanceGroups.cpp.o"
  "CMakeFiles/slope_pmc.dir/PerformanceGroups.cpp.o.d"
  "CMakeFiles/slope_pmc.dir/PlatformEvents.cpp.o"
  "CMakeFiles/slope_pmc.dir/PlatformEvents.cpp.o.d"
  "libslope_pmc.a"
  "libslope_pmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
