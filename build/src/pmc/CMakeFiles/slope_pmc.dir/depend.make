# Empty dependencies file for slope_pmc.
# This may be replaced when dependencies are built.
