# CMake generated Testfile for 
# Source directory: /root/repo/src/pmc
# Build directory: /root/repo/build/src/pmc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
