# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke.quickstart PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.class_a_study "/root/repo/build/examples/class_a_study")
set_tests_properties(smoke.class_a_study PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.app_specific_models "/root/repo/build/examples/app_specific_models")
set_tests_properties(smoke.app_specific_models PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.online_pmc_selection "/root/repo/build/examples/online_pmc_selection")
set_tests_properties(smoke.online_pmc_selection PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.energy_aware_partitioning "/root/repo/build/examples/energy_aware_partitioning")
set_tests_properties(smoke.energy_aware_partitioning PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.perfctr "/root/repo/build/examples/perfctr")
set_tests_properties(smoke.perfctr PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.additivity_checker "/root/repo/build/examples/additivity_checker" "--platform" "skylake" "--suite" "dgemm-fft" "--match" "IDQ" "--bases" "8" "--compounds" "4")
set_tests_properties(smoke.additivity_checker PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke.slope_tool "/root/repo/build/examples/slope_tool" "demo")
set_tests_properties(smoke.slope_tool PROPERTIES  LABELS "example" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
