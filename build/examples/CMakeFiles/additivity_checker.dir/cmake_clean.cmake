file(REMOVE_RECURSE
  "CMakeFiles/additivity_checker.dir/additivity_checker.cpp.o"
  "CMakeFiles/additivity_checker.dir/additivity_checker.cpp.o.d"
  "additivity_checker"
  "additivity_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additivity_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
