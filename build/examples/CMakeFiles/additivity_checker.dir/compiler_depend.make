# Empty compiler generated dependencies file for additivity_checker.
# This may be replaced when dependencies are built.
