file(REMOVE_RECURSE
  "CMakeFiles/energy_aware_partitioning.dir/energy_aware_partitioning.cpp.o"
  "CMakeFiles/energy_aware_partitioning.dir/energy_aware_partitioning.cpp.o.d"
  "energy_aware_partitioning"
  "energy_aware_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_aware_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
