# Empty compiler generated dependencies file for energy_aware_partitioning.
# This may be replaced when dependencies are built.
