file(REMOVE_RECURSE
  "CMakeFiles/slope_tool.dir/slope_tool.cpp.o"
  "CMakeFiles/slope_tool.dir/slope_tool.cpp.o.d"
  "slope_tool"
  "slope_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slope_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
