# Empty dependencies file for slope_tool.
# This may be replaced when dependencies are built.
