file(REMOVE_RECURSE
  "CMakeFiles/perfctr.dir/perfctr.cpp.o"
  "CMakeFiles/perfctr.dir/perfctr.cpp.o.d"
  "perfctr"
  "perfctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
