# Empty compiler generated dependencies file for online_pmc_selection.
# This may be replaced when dependencies are built.
