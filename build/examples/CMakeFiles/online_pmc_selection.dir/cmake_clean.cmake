file(REMOVE_RECURSE
  "CMakeFiles/online_pmc_selection.dir/online_pmc_selection.cpp.o"
  "CMakeFiles/online_pmc_selection.dir/online_pmc_selection.cpp.o.d"
  "online_pmc_selection"
  "online_pmc_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_pmc_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
