file(REMOVE_RECURSE
  "CMakeFiles/class_a_study.dir/class_a_study.cpp.o"
  "CMakeFiles/class_a_study.dir/class_a_study.cpp.o.d"
  "class_a_study"
  "class_a_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_a_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
