# Empty dependencies file for class_a_study.
# This may be replaced when dependencies are built.
