# Empty compiler generated dependencies file for app_specific_models.
# This may be replaced when dependencies are built.
