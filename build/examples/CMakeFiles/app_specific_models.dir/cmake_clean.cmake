file(REMOVE_RECURSE
  "CMakeFiles/app_specific_models.dir/app_specific_models.cpp.o"
  "CMakeFiles/app_specific_models.dir/app_specific_models.cpp.o.d"
  "app_specific_models"
  "app_specific_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_specific_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
