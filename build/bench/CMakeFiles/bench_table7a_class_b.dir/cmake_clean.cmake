file(REMOVE_RECURSE
  "CMakeFiles/bench_table7a_class_b.dir/bench_table7a_class_b.cpp.o"
  "CMakeFiles/bench_table7a_class_b.dir/bench_table7a_class_b.cpp.o.d"
  "bench_table7a_class_b"
  "bench_table7a_class_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7a_class_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
