# Empty dependencies file for bench_table7a_class_b.
# This may be replaced when dependencies are built.
