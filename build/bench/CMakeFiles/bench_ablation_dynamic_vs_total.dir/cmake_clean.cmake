file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic_vs_total.dir/bench_ablation_dynamic_vs_total.cpp.o"
  "CMakeFiles/bench_ablation_dynamic_vs_total.dir/bench_ablation_dynamic_vs_total.cpp.o.d"
  "bench_ablation_dynamic_vs_total"
  "bench_ablation_dynamic_vs_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_vs_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
