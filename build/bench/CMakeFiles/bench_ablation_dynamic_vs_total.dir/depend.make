# Empty dependencies file for bench_ablation_dynamic_vs_total.
# This may be replaced when dependencies are built.
