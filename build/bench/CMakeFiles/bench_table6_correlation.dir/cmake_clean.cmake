file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_correlation.dir/bench_table6_correlation.cpp.o"
  "CMakeFiles/bench_table6_correlation.dir/bench_table6_correlation.cpp.o.d"
  "bench_table6_correlation"
  "bench_table6_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
