file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_rf.dir/bench_table4_rf.cpp.o"
  "CMakeFiles/bench_table4_rf.dir/bench_table4_rf.cpp.o.d"
  "bench_table4_rf"
  "bench_table4_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
