# Empty compiler generated dependencies file for bench_table4_rf.
# This may be replaced when dependencies are built.
