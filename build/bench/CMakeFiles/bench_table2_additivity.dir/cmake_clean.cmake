file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_additivity.dir/bench_table2_additivity.cpp.o"
  "CMakeFiles/bench_table2_additivity.dir/bench_table2_additivity.cpp.o.d"
  "bench_table2_additivity"
  "bench_table2_additivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_additivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
