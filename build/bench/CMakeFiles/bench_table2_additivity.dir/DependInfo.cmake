
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_additivity.cpp" "bench/CMakeFiles/bench_table2_additivity.dir/bench_table2_additivity.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_additivity.dir/bench_table2_additivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/slope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/slope_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/slope_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/pmc/CMakeFiles/slope_pmc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/slope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slope_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
