# Empty dependencies file for bench_table5_nn.
# This may be replaced when dependencies are built.
