file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nn.dir/bench_table5_nn.cpp.o"
  "CMakeFiles/bench_table5_nn.dir/bench_table5_nn.cpp.o.d"
  "bench_table5_nn"
  "bench_table5_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
