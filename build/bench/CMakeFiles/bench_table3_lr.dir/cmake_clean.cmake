file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lr.dir/bench_table3_lr.cpp.o"
  "CMakeFiles/bench_table3_lr.dir/bench_table3_lr.cpp.o.d"
  "bench_table3_lr"
  "bench_table3_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
