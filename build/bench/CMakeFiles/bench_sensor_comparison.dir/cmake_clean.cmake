file(REMOVE_RECURSE
  "CMakeFiles/bench_sensor_comparison.dir/bench_sensor_comparison.cpp.o"
  "CMakeFiles/bench_sensor_comparison.dir/bench_sensor_comparison.cpp.o.d"
  "bench_sensor_comparison"
  "bench_sensor_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensor_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
