# Empty compiler generated dependencies file for bench_sensor_comparison.
# This may be replaced when dependencies are built.
