file(REMOVE_RECURSE
  "CMakeFiles/bench_selection_baselines.dir/bench_selection_baselines.cpp.o"
  "CMakeFiles/bench_selection_baselines.dir/bench_selection_baselines.cpp.o.d"
  "bench_selection_baselines"
  "bench_selection_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selection_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
