# Empty compiler generated dependencies file for bench_selection_baselines.
# This may be replaced when dependencies are built.
