# Empty compiler generated dependencies file for bench_full_registry_study.
# This may be replaced when dependencies are built.
