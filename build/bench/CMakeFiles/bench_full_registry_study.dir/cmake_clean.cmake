file(REMOVE_RECURSE
  "CMakeFiles/bench_full_registry_study.dir/bench_full_registry_study.cpp.o"
  "CMakeFiles/bench_full_registry_study.dir/bench_full_registry_study.cpp.o.d"
  "bench_full_registry_study"
  "bench_full_registry_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_registry_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
