# Empty dependencies file for bench_table7b_class_c.
# This may be replaced when dependencies are built.
