//===- examples/quickstart.cpp - Five-minute library tour -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: everything a new user needs in ~80 lines.
//   1. Bring up a simulated platform and a power meter.
//   2. Run an application; read PMCs and measured dynamic energy.
//   3. Test a counter for additivity.
//   4. Build a dataset and train a linear energy model on additive PMCs.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"
#include "core/DatasetBuilder.h"
#include "ml/LinearRegression.h"
#include "ml/Metrics.h"
#include "pmc/PlatformEvents.h"

#include <cstdio>

using namespace slope;
using namespace slope::sim;

int main() {
  // --- 1. A simulated Skylake server plus a WattsUp-style power meter.
  Machine M(Platform::intelSkylakeServer(), /*Seed=*/42);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  std::printf("Platform: %s (%u cores, idle %.0f W)\n",
              M.platform().Name.c_str(), M.platform().totalCores(),
              Meter.staticPowerW());

  // --- 2. Run MKL-style DGEMM at N=12000 and observe it.
  Application Dgemm(KernelKind::MklDgemm, 12000);
  Execution Exec = M.run(Dgemm);
  power::EnergyReading Reading = Meter.readingFor(Exec);
  std::printf("\n%s: %.2f s, dynamic energy %.1f J (%.1f W)\n",
              Dgemm.str().c_str(), Reading.TimeSec,
              Reading.DynamicEnergyJ,
              Reading.DynamicEnergyJ / Reading.TimeSec);
  pmc::EventId Flops =
      *M.registry().lookup("FP_ARITH_INST_RETIRED_DOUBLE");
  std::printf("FP_ARITH_INST_RETIRED_DOUBLE = %.3e (expect ~2N^3 = %.3e)\n",
              M.readCounter(Flops, Exec), 2.0 * 12000.0 * 12000.0 * 12000.0);

  // --- 3. Is a counter additive? Compose DGEMM;FFT and apply the test.
  core::AdditivityChecker Checker(M);
  std::vector<CompoundApplication> Compounds = {
      {Application(KernelKind::MklDgemm, 9000),
       Application(KernelKind::MklFft, 25000)},
      {Application(KernelKind::MklDgemm, 14000),
       Application(KernelKind::MklFft, 28000)},
  };
  for (const char *Name : {"UOPS_EXECUTED_CORE", "ARITH_DIVIDER_COUNT"}) {
    core::AdditivityResult R =
        Checker.check(*M.registry().lookup(Name), Compounds);
    std::printf("%-24s max additivity error %6.2f%% -> %s\n", Name,
                R.MaxErrorPct, R.Additive ? "additive" : "NON-ADDITIVE");
  }

  // --- 4. Train a linear energy model on the nine additive PMCs (PA).
  std::vector<CompoundApplication> Apps;
  for (uint64_t N = 7000; N <= 20000; N += 500)
    Apps.emplace_back(Application(KernelKind::MklDgemm, N));
  core::DatasetBuilder Builder(M, Meter);
  ml::Dataset Data = *Builder.buildByName(Apps, pmc::skylakePaNames());
  auto [Train, Test] = Data.split(0.25, Rng(7));

  ml::LinearRegression Model; // Paper config: zero intercept, non-negative.
  if (auto Fit = Model.fit(Train); !Fit) {
    std::printf("fit failed: %s\n", Fit.error().message().c_str());
    return 1;
  }
  stats::ErrorSummary Errors = ml::evaluateModel(Model, Test);
  std::printf("\nLR on PA counters, %zu train / %zu test points: "
              "prediction errors %s %%\n",
              Train.numRows(), Test.numRows(), Errors.str().c_str());
  return 0;
}
