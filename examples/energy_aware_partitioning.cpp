//===- examples/energy_aware_partitioning.cpp - The motivating use case ---------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper's introduction motivates PMC energy models as "key inputs to
// data partitioning algorithms that are critical building blocks for
// optimization of the application for energy". This example closes that
// loop: split a DGEMM workload between the two servers so that the
// predicted total dynamic energy is minimal, using per-machine online
// estimators (4 additive PMCs each, trained once) — then compare the
// model-driven partition against the classic time-balanced split and the
// ground-truth optimum.
//
// The workload: C = A x B with 24000 columns of C to distribute; the
// machine computing K columns performs a dgemm of "size" proportional to
// K^(1/3)-scaled work (modeled here by mapping the column share to an
// equivalent problem size). A deadline (makespan <= 60 s) makes the
// problem non-trivial: the energy-frugal Skylake part cannot take the
// whole matrix and still finish in time, so the partitioner must find
// the energy-minimal feasible split.
//
//===----------------------------------------------------------------------===//

#include "core/OnlineEstimator.h"
#include "pmc/PlatformEvents.h"
#include "support/Str.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {

/// Columns -> equivalent DGEMM problem size: work is proportional to
/// columns, so size = N_full * cbrt(share).
uint64_t sizeForShare(uint64_t Columns, uint64_t TotalColumns,
                      uint64_t FullSize) {
  if (Columns == 0)
    return 0;
  double Share =
      static_cast<double>(Columns) / static_cast<double>(TotalColumns);
  auto Size = static_cast<uint64_t>(
      static_cast<double>(FullSize) * std::cbrt(Share));
  return std::max<uint64_t>(Size, 1024);
}

struct MachineRig {
  const char *Label;
  Machine M;
  power::HclWattsUp Meter;

  MachineRig(const char *Label, Platform P, uint64_t Seed)
      : Label(Label), M(std::move(P), Seed),
        Meter(M, std::make_unique<power::WattsUpProMeter>()) {}
};

} // namespace

int main() {
  constexpr uint64_t TotalColumns = 24000;
  constexpr uint64_t FullSize = 24000;
  constexpr double DeadlineSec = 60.0;

  MachineRig Haswell("Haswell", Platform::intelHaswellServer(), 1001);
  MachineRig Skylake("Skylake", Platform::intelSkylakeServer(), 1002);

  // --- Train one online estimator per machine (4 additive PMCs that fit
  // a single collection run; Haswell's set from Table 2's most additive,
  // Skylake's from PA).
  std::vector<CompoundApplication> TrainApps;
  for (uint64_t N = 4000; N <= 24000; N += 800)
    TrainApps.emplace_back(Application(KernelKind::MklDgemm, N));

  std::vector<std::string> HswPmcs = {
      "UOPS_EXECUTED_PORT_PORT_6", "IDQ_MITE_UOPS", "L2_RQSTS_MISS",
      "UOPS_EXECUTED_CORE"};
  std::vector<std::string> SkxPa = pmc::skylakePaNames();
  std::vector<std::string> SkxPmcs = {SkxPa[0], SkxPa[1], SkxPa[3],
                                      SkxPa[7]};

  auto HswEstimator = OnlineEstimator::train(Haswell.M, Haswell.Meter,
                                             HswPmcs, TrainApps);
  auto SkxEstimator = OnlineEstimator::train(Skylake.M, Skylake.Meter,
                                             SkxPmcs, TrainApps);
  if (!HswEstimator || !SkxEstimator) {
    std::printf("estimator training failed\n");
    return 1;
  }
  std::printf("Trained online estimators: Haswell {%s}, Skylake {%s}\n\n",
              str::join(HswPmcs, ",").c_str(),
              str::join(SkxPmcs, ",").c_str());

  // --- Sweep partitions in 5% steps; for each, predict both sides'
  // energy with ONE profiled run each (no power meter needed anymore).
  auto TrueEnergy = [&](MachineRig &Rig, uint64_t Columns) {
    uint64_t Size = sizeForShare(Columns, TotalColumns, FullSize);
    if (Size < 2048)
      return 0.0;
    return Rig.M.run(Application(KernelKind::MklDgemm, Size))
        .TrueDynamicEnergyJ;
  };
  auto TrueTime = [&](MachineRig &Rig, uint64_t Columns) {
    uint64_t Size = sizeForShare(Columns, TotalColumns, FullSize);
    if (Size < 2048)
      return 0.0;
    return kernelTimeSeconds(KernelKind::MklDgemm,
                             static_cast<double>(Size), Rig.M.platform());
  };
  auto PredictedEnergy = [&](OnlineEstimator &Estimator, MachineRig &Rig,
                             uint64_t Columns) {
    uint64_t Size = sizeForShare(Columns, TotalColumns, FullSize);
    if (Size < 2048)
      return 0.0;
    (void)Rig;
    return Estimator.estimateRun(
        CompoundApplication(Application(KernelKind::MklDgemm, Size)));
  };

  TablePrinter T({"Haswell share (%)", "Predicted total (J)",
                  "True total (J)", "Makespan (s)", "Feasible?"});
  T.setCaption("Partition sweep (5% steps, deadline 60 s):");
  double BestPredicted = 1e300, BestTrue = 1e300;
  uint64_t BestPredictedShare = 0, BestTrueShare = 0;
  double BalancedGap = 1e300;
  uint64_t TimeBalancedShare = 0;
  for (uint64_t Share = 0; Share <= 100; Share += 5) {
    uint64_t HswColumns = TotalColumns * Share / 100;
    uint64_t SkxColumns = TotalColumns - HswColumns;
    double Predicted =
        PredictedEnergy(*HswEstimator, Haswell, HswColumns) +
        PredictedEnergy(*SkxEstimator, Skylake, SkxColumns);
    double Truth = TrueEnergy(Haswell, HswColumns) +
                   TrueEnergy(Skylake, SkxColumns);
    double Th = TrueTime(Haswell, HswColumns);
    double Ts = TrueTime(Skylake, SkxColumns);
    double Makespan = std::max(Th, Ts);
    bool Feasible = Makespan <= DeadlineSec;
    if (Feasible && Predicted < BestPredicted) {
      BestPredicted = Predicted;
      BestPredictedShare = Share;
    }
    if (Feasible && Truth < BestTrue) {
      BestTrue = Truth;
      BestTrueShare = Share;
    }
    if (std::fabs(Th - Ts) < BalancedGap && Share > 0 && Share < 100) {
      BalancedGap = std::fabs(Th - Ts);
      TimeBalancedShare = Share;
    }
    if (Share % 10 == 0)
      T.addRow({std::to_string(Share), str::fixed(Predicted, 0),
                str::fixed(Truth, 0), str::fixed(Makespan, 1),
                Feasible ? "yes" : "no"});
  }
  std::printf("%s\n", T.render().c_str());

  uint64_t Columns = TotalColumns * BestPredictedShare / 100;
  double ChosenTrue = TrueEnergy(Haswell, Columns) +
                      TrueEnergy(Skylake, TotalColumns - Columns);
  uint64_t BalColumns = TotalColumns * TimeBalancedShare / 100;
  double BalancedTrue =
      TrueEnergy(Haswell, BalColumns) +
      TrueEnergy(Skylake, TotalColumns - BalColumns);

  std::printf("Model-chosen partition (deadline-feasible): %llu%% on "
              "Haswell -> true energy %.0f J\n",
              static_cast<unsigned long long>(BestPredictedShare),
              ChosenTrue);
  std::printf("Oracle partition:       %llu%% on Haswell -> true energy "
              "%.0f J\n",
              static_cast<unsigned long long>(BestTrueShare), BestTrue);
  std::printf("Time-balanced partition: %llu%% on Haswell -> true energy "
              "%.0f J (%.1f%% worse than model-chosen)\n",
              static_cast<unsigned long long>(TimeBalancedShare),
              BalancedTrue, (BalancedTrue - ChosenTrue) / ChosenTrue * 100);
  std::printf("\nThe PMC energy models steer the partition to within one "
              "grid step of the oracle — the decomposition ability the "
              "paper's introduction motivates.\n");
  return 0;
}
