//===- examples/app_specific_models.cpp - Class B walkthrough -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper's Class B scenario as a library user would script it:
// application-specific energy models for MKL DGEMM + FFT on the Skylake
// server. Discovers additive PMCs with the checker (rather than taking
// the PA set on faith), builds the dataset, and compares models trained
// on additive vs non-additive counters.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"
#include "core/DatasetBuilder.h"
#include "core/PmcSelector.h"
#include "ml/LinearRegression.h"
#include "ml/Metrics.h"
#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"
#include "support/Str.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

int main() {
  Machine M(Platform::intelSkylakeServer(), 2019);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());

  // --- Discover which of the 18 candidate PMCs are additive for
  // DGEMM/FFT (the paper found exactly the PA set).
  Rng R(2019);
  std::vector<Application> AddBases = dgemmFftAdditivityBases(20);
  std::vector<CompoundApplication> AddCompounds =
      makeCompoundSuite(AddBases, 12, R.fork("pairs"));

  std::vector<std::string> Candidates = pmc::skylakePaNames();
  for (const std::string &Name : pmc::skylakePnaNames())
    Candidates.push_back(Name);

  AdditivityChecker Checker(M);
  std::vector<std::string> Additive, NonAdditive;
  TablePrinter T({"PMC", "Max err (%)", "Verdict"});
  T.setCaption("Additivity of the 18 candidate PMCs for DGEMM/FFT:");
  for (const std::string &Name : Candidates) {
    AdditivityResult Res =
        Checker.check(*M.registry().lookup(Name), AddCompounds);
    (Res.Additive ? Additive : NonAdditive).push_back(Name);
    T.addRow({Name, str::fixed(Res.MaxErrorPct, 2),
              Res.Additive ? "additive" : "non-additive"});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Discovered %zu additive and %zu non-additive PMCs.\n\n",
              Additive.size(), NonAdditive.size());

  // --- Build the model dataset (reduced sweep for example speed).
  std::vector<CompoundApplication> Points;
  for (uint64_t N = 6400; N <= 38400; N += 320)
    Points.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 320)
    Points.emplace_back(Application(KernelKind::MklFft, N));
  DatasetBuilder Builder(M, Meter);
  ml::Dataset Full = *Builder.buildByName(Points, Candidates);
  auto [Train, Test] = Full.split(0.2, R.fork("split"));
  std::printf("Dataset: %zu points (%zu train / %zu test)\n\n",
              Full.numRows(), Train.numRows(), Test.numRows());

  // --- Compare the three families on additive vs non-additive features.
  TablePrinter Results({"Model", "Feature set", "Errors (min, avg, max)"});
  auto Evaluate = [&](const char *Label, ml::Model &Model,
                      const std::vector<std::string> &Features,
                      const char *SetName) {
    ml::Dataset SubTrain = Train.selectFeatures(Features);
    ml::Dataset SubTest = Test.selectFeatures(Features);
    if (auto Fit = Model.fit(SubTrain); !Fit) {
      std::printf("%s fit failed: %s\n", Label,
                  Fit.error().message().c_str());
      return;
    }
    Results.addRow({Label, SetName,
                    ml::evaluateModel(Model, SubTest).str()});
  };

  ml::LinearRegression LrA, LrNa;
  Evaluate("LR-A", LrA, Additive, "additive");
  Evaluate("LR-NA", LrNa, NonAdditive, "non-additive");
  ml::RandomForest RfA, RfNa;
  Evaluate("RF-A", RfA, Additive, "additive");
  Evaluate("RF-NA", RfNa, NonAdditive, "non-additive");
  ml::NeuralNetwork NnA, NnNa;
  Evaluate("NN-A", NnA, Additive, "additive");
  Evaluate("NN-NA", NnNa, NonAdditive, "non-additive");
  std::printf("%s\n", Results.render().c_str());
  std::printf("Models built on additive PMCs predict dynamic energy "
              "notably better — the paper's Class B finding.\n");
  return 0;
}
