//===- examples/class_a_study.cpp - Class A walkthrough -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Walks through the paper's Class A experiment on a reduced scale
// (pass --full for the paper-scale 277/50 datasets): selects the six
// literature PMCs, measures their additivity, builds the nested
// LR/RF/NN families, and prints Tables 2-5. `--threads N` (or
// SLOPE_THREADS) sizes the experiment thread pool; results are
// bit-identical at any width.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/Report.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bool Full = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--full") == 0)
      Full = true;
    else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      ThreadPool::setGlobalThreadCount(
          static_cast<unsigned>(std::atoi(Argv[++I])));
  }

  ClassAConfig Config;
  if (!Full) {
    Config.NumBaseApps = 96;
    Config.NumCompounds = 30;
    Config.NnEpochs = 200;
    Config.RfTrees = 60;
  }
  std::printf("Class A study on the simulated dual-socket Haswell server\n"
              "(%zu base applications, %zu serial compounds%s)\n\n",
              Config.NumBaseApps, Config.NumCompounds,
              Full ? "" : "; pass --full for paper scale");

  ClassAResult Result = runClassA(Config);

  std::printf("%s\n", renderTable2(Result).c_str());
  std::printf("%s\n",
              renderModelFamilyTable(
                  "Table 3. Linear predictive models (LR1-LR6), zero "
                  "intercept, non-negative coefficients.",
                  Result.Lr, /*WithCoefficients=*/true)
                  .c_str());
  std::printf("%s\n", renderModelFamilyTable(
                          "Table 4. Random forest models (RF1-RF6).",
                          Result.Rf, false)
                          .c_str());
  std::printf("%s\n", renderModelFamilyTable(
                          "Table 5. Neural network models (NN1-NN6).",
                          Result.Nn, false)
                          .c_str());

  std::printf("Reading the trend: dropping the most non-additive PMC "
              "(X4, then X2/X3...) improves average accuracy for every "
              "family until too few predictors remain.\n");
  return 0;
}
