//===- examples/online_pmc_selection.cpp - Class C walkthrough ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The practical end of the paper: an online energy model may read only
// ~4 PMCs in a single application run. This example shows the full
// selection pipeline a deployment would use:
//
//   1. Quantify the collection-cost wall (99 runs to read everything).
//   2. Rank candidate PMCs by energy correlation (state of the art) and
//      by additivity + correlation (the paper's criterion).
//   3. Verify both 4-PMC sets are schedulable in ONE run.
//   4. Train online models on each and compare.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"
#include "core/DatasetBuilder.h"
#include "core/PmcProfiler.h"
#include "core/PmcSelector.h"
#include "ml/Metrics.h"
#include "ml/NeuralNetwork.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"
#include "support/Str.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

int main() {
  Machine M(Platform::intelSkylakeServer(), 77);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  PmcProfiler Profiler(M, &Meter);

  // --- 1. The collection-cost wall.
  std::vector<pmc::EventId> Significant;
  for (pmc::EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Significant.push_back(Id);
  std::printf("Reading all %zu significant PMCs takes %zu runs per "
              "application — unusable online. We must pick 4.\n\n",
              Significant.size(), *Profiler.collectionCost(Significant));

  // --- 2. Build a selection dataset over the DGEMM/FFT sweep.
  Rng R(77);
  std::vector<CompoundApplication> Points;
  for (uint64_t N = 6400; N <= 38400; N += 640)
    Points.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 640)
    Points.emplace_back(Application(KernelKind::MklFft, N));
  std::vector<std::string> Candidates = pmc::skylakePaNames();
  for (const std::string &Name : pmc::skylakePnaNames())
    Candidates.push_back(Name);
  DatasetBuilder Builder(M, Meter);
  ml::Dataset Data = *Builder.buildByName(Points, Candidates);

  // Correlation-only ranking (the state-of-the-art baseline)...
  std::vector<std::string> ByCorrelation = selectMostCorrelated(Data, 4);
  // ...vs the paper's criterion: additivity first, correlation second.
  std::vector<Application> AddBases = dgemmFftAdditivityBases(16);
  std::vector<CompoundApplication> AddCompounds =
      makeCompoundSuite(AddBases, 10, R.fork("p"));
  AdditivityChecker Checker(M);
  std::vector<std::string> AdditiveNames;
  for (const std::string &Name : Candidates)
    if (Checker.check(*M.registry().lookup(Name), AddCompounds).Additive)
      AdditiveNames.push_back(Name);
  std::vector<std::string> ByAdditivityThenCorrelation =
      selectMostCorrelated(Data.selectFeatures(AdditiveNames), 4);

  std::printf("Correlation-only pick:        { %s }\n",
              str::join(ByCorrelation, ", ").c_str());
  std::printf("Additivity+correlation pick:  { %s }\n\n",
              str::join(ByAdditivityThenCorrelation, ", ").c_str());

  // --- 3. Both sets must fit a single collection run.
  auto CostOf = [&](const std::vector<std::string> &Names) {
    std::vector<pmc::EventId> Ids;
    for (const std::string &Name : Names)
      Ids.push_back(*M.registry().lookup(Name));
    return *Profiler.collectionCost(Ids);
  };
  std::printf("Collection runs needed: correlation-only %zu, "
              "additivity+correlation %zu (must be 1 for online use)\n\n",
              CostOf(ByCorrelation), CostOf(ByAdditivityThenCorrelation));

  // --- 4. Train online models on each subset.
  auto [Train, Test] = Data.split(0.25, R.fork("split"));
  TablePrinter T({"Selection policy", "PMCs", "NN errors (min, avg, max)"});
  for (const auto &[Label, Names] :
       {std::pair<std::string, std::vector<std::string>>{
            "correlation-only", ByCorrelation},
        {"additivity+correlation", ByAdditivityThenCorrelation}}) {
    ml::NeuralNetwork Net;
    ml::Dataset SubTrain = Train.selectFeatures(Names);
    if (auto Fit = Net.fit(SubTrain); !Fit) {
      std::printf("fit failed: %s\n", Fit.error().message().c_str());
      return 1;
    }
    T.addRow({Label, str::join(Names, ","),
              ml::evaluateModel(Net, Test.selectFeatures(Names)).str()});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Note: with this simulator's DGEMM/FFT sweep, correlation "
              "alone may pick non-additive counters whose context noise "
              "hurts accuracy — additivity screening removes them.\n");
  return 0;
}
