//===- examples/slope_tool.cpp - End-to-end workflow CLI ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// A small production-style workflow tool chaining the library's
// persistence layers, the way a lab would actually run the pipeline over
// days:
//
//   slope_tool collect <dataset.csv>   measure a DGEMM/FFT sweep on the
//                                      simulated Skylake server (PMCs +
//                                      metered energy) and archive it
//   slope_tool train <dataset.csv> <model.txt>
//                                      fit the paper's LR on an archived
//                                      dataset and save the model
//   slope_tool predict <model.txt> <dataset.csv>
//                                      score a saved model against an
//                                      archived dataset
//   slope_tool demo                    all three steps through temp files
//
//===----------------------------------------------------------------------===//

#include "core/DatasetBuilder.h"
#include "ml/DatasetIo.h"
#include "ml/Metrics.h"
#include "ml/ModelIo.h"
#include "pmc/PlatformEvents.h"
#include "stats/Descriptive.h"
#include "support/Str.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace slope;
using namespace slope::sim;

namespace {

int usage() {
  std::printf("usage: slope_tool collect <dataset.csv>\n"
              "       slope_tool train <dataset.csv> <model.txt>\n"
              "       slope_tool predict <model.txt> <dataset.csv>\n"
              "       slope_tool demo\n");
  return 1;
}

/// `collect`: sweep DGEMM/FFT, measure 4 additive PMCs + energy, archive.
int runCollect(const std::string &DatasetPath) {
  Machine M(Platform::intelSkylakeServer(), 2024);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  core::DatasetBuilder Builder(M, Meter);

  std::vector<CompoundApplication> Apps;
  for (uint64_t N = 6400; N <= 38400; N += 640)
    Apps.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 640)
    Apps.emplace_back(Application(KernelKind::MklFft, N));

  std::vector<std::string> Pa = pmc::skylakePaNames();
  std::vector<std::string> Subset = {Pa[0], Pa[1], Pa[3], Pa[7]}; // PA4.
  auto Data = Builder.buildByName(Apps, Subset);
  if (!Data) {
    std::fprintf(stderr, "error: %s\n", Data.error().message().c_str());
    return 1;
  }
  if (auto Ok = ml::writeDatasetCsv(*Data, DatasetPath); !Ok) {
    std::fprintf(stderr, "error: %s\n", Ok.error().message().c_str());
    return 1;
  }
  std::printf("collected %zu runs (%zu PMCs + metered energy) -> %s\n",
              Data->numRows(), Data->numFeatures(), DatasetPath.c_str());
  return 0;
}

/// `train`: archived dataset -> saved LR model.
int runTrain(const std::string &DatasetPath, const std::string &ModelPath) {
  auto Data = ml::readDatasetCsv(DatasetPath);
  if (!Data) {
    std::fprintf(stderr, "error: %s\n", Data.error().message().c_str());
    return 1;
  }
  ml::LinearRegression Model;
  if (auto Fit = Model.fit(*Data); !Fit) {
    std::fprintf(stderr, "error: %s\n", Fit.error().message().c_str());
    return 1;
  }
  ml::SavedLinearModel Saved =
      ml::snapshotLinearModel(Model, Data->featureNames());
  if (auto Ok = ml::writeLinearModel(Saved, ModelPath); !Ok) {
    std::fprintf(stderr, "error: %s\n", Ok.error().message().c_str());
    return 1;
  }
  std::printf("trained on %zu rows -> %s\n", Data->numRows(),
              ModelPath.c_str());
  for (size_t I = 0; I < Saved.PmcNames.size(); ++I)
    std::printf("  %-40s %s\n", Saved.PmcNames[I].c_str(),
                str::scientific(Saved.Coefficients[I]).c_str());
  return 0;
}

/// `predict`: saved model + archived dataset -> error report.
int runPredict(const std::string &ModelPath,
               const std::string &DatasetPath) {
  auto Saved = ml::readLinearModel(ModelPath);
  if (!Saved) {
    std::fprintf(stderr, "error: %s\n", Saved.error().message().c_str());
    return 1;
  }
  auto Data = ml::readDatasetCsv(DatasetPath);
  if (!Data) {
    std::fprintf(stderr, "error: %s\n", Data.error().message().c_str());
    return 1;
  }
  if (Data->featureNames() != Saved->PmcNames) {
    std::fprintf(stderr,
                 "error: dataset columns do not match the model's PMCs\n");
    return 1;
  }
  std::vector<double> Errors;
  for (size_t R = 0; R < Data->numRows(); ++R)
    Errors.push_back(stats::percentageError(Saved->predict(Data->row(R)),
                                            Data->target(R)));
  stats::ErrorSummary Summary = stats::summarizeErrors(Errors);
  std::printf("%zu rows: prediction errors %s %%\n", Data->numRows(),
              Summary.str().c_str());
  return 0;
}

int runDemo() {
  std::string Dir = "/tmp";
  std::string DatasetPath = Dir + "/slope_demo_dataset.csv";
  std::string ModelPath = Dir + "/slope_demo_model.txt";
  if (int Rc = runCollect(DatasetPath))
    return Rc;
  if (int Rc = runTrain(DatasetPath, ModelPath))
    return Rc;
  int Rc = runPredict(ModelPath, DatasetPath);
  std::remove(DatasetPath.c_str());
  std::remove(ModelPath.c_str());
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  if (Command == "collect" && Argc == 3)
    return runCollect(Argv[2]);
  if (Command == "train" && Argc == 4)
    return runTrain(Argv[2], Argv[3]);
  if (Command == "predict" && Argc == 4)
    return runPredict(Argv[2], Argv[3]);
  if (Command == "demo" && Argc == 2)
    return runDemo();
  return usage();
}
