//===- examples/additivity_checker.cpp - AdditivityChecker CLI ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Command-line mirror of the paper's AdditivityChecker tool: scans PMCs
// of a platform for additivity over a generated compound suite and
// prints a ranked report.
//
// Usage:
//   additivity_checker [--platform haswell|skylake|zen2|biglittle]
//                      [--match SUBSTR]...
//                      [--bases N] [--compounds N] [--tolerance PCT]
//                      [--suite diverse|dgemm-fft] [--top N] [--seed S]
//
// Examples:
//   additivity_checker --platform skylake --suite dgemm-fft --match IDQ
//   additivity_checker --platform haswell --tolerance 10 --top 25
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"
#include "core/PmcSelector.h"
#include "sim/TestSuite.h"
#include "support/Str.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
struct CliOptions {
  std::string PlatformName = "haswell";
  std::vector<std::string> Matches;
  size_t NumBases = 24;
  size_t NumCompounds = 12;
  double TolerancePct = 5.0;
  std::string Suite = "diverse";
  size_t Top = 0; // 0 = all.
  uint64_t Seed = 2019;
};

void printUsage() {
  std::printf(
      "usage: additivity_checker [--platform haswell|skylake|zen2|biglittle]\n"
      "                          [--match SUBSTR]... [--bases N]\n"
      "                          [--compounds N] [--tolerance PCT]\n"
      "                          [--suite diverse|dgemm-fft] [--top N]\n"
      "                          [--seed S]\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--help" || Arg == "-h")
      return false;
    if (Arg == "--platform") {
      const char *V = Next();
      if (!V)
        return false;
      Options.PlatformName = V;
    } else if (Arg == "--match") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Matches.push_back(V);
    } else if (Arg == "--bases") {
      const char *V = Next();
      if (!V)
        return false;
      Options.NumBases = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--compounds") {
      const char *V = Next();
      if (!V)
        return false;
      Options.NumCompounds = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--tolerance") {
      const char *V = Next();
      if (!V)
        return false;
      Options.TolerancePct = std::strtod(V, nullptr);
    } else if (Arg == "--suite") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Suite = V;
    } else if (Arg == "--top") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Top = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Seed = std::strtoull(V, nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}
} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 1;
  }

  Platform Plat;
  if (str::lower(Options.PlatformName) == "haswell") {
    Plat = Platform::intelHaswellServer();
  } else if (str::lower(Options.PlatformName) == "skylake") {
    Plat = Platform::intelSkylakeServer();
  } else if (str::lower(Options.PlatformName) == "zen2") {
    Plat = Platform::amdZen2Server();
  } else if (str::lower(Options.PlatformName) == "biglittle") {
    // The board-level machine: the big.LITTLE registry is the A15
    // superset, so every cluster event can be checked here.
    Plat = Platform::armBigLittle();
  } else {
    std::fprintf(stderr, "error: unknown platform '%s'\n",
                 Options.PlatformName.c_str());
    return 1;
  }

  Machine M(Plat, Options.Seed);
  Rng R(Options.Seed);

  std::vector<Application> Bases;
  if (Options.Suite == "dgemm-fft")
    Bases = dgemmFftAdditivityBases(Options.NumBases);
  else
    Bases = diverseBaseSuite(M.platform(), Options.NumBases, R.fork("b"));
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, Options.NumCompounds, R.fork("p"));

  std::vector<pmc::EventId> Events =
      Options.Matches.empty() ? M.registry().allEvents()
                              : M.registry().findByName(Options.Matches);
  if (Events.empty()) {
    std::fprintf(stderr, "error: no events match the given filters\n");
    return 1;
  }

  std::printf("AdditivityChecker: %zu event(s) on %s, %zu bases, %zu "
              "compounds, tolerance %.1f%%\n\n",
              Events.size(), M.platform().Name.c_str(), Bases.size(),
              Compounds.size(), Options.TolerancePct);

  AdditivityTestConfig Config;
  Config.TolerancePct = Options.TolerancePct;
  AdditivityChecker Checker(M, Config);
  std::vector<AdditivityResult> Results =
      rankByAdditivity(Checker.checkAll(Events, Compounds));
  if (Options.Top != 0 && Results.size() > Options.Top)
    Results.resize(Options.Top);

  TablePrinter T({"#", "PMC", "Max err (%)", "Worst CV", "Verdict"});
  size_t Rank = 1, NumAdditive = 0;
  for (const AdditivityResult &Res : Results) {
    const char *Verdict = Res.Additive ? "additive"
                          : !Res.Significant
                              ? "insignificant"
                              : (!Res.Deterministic ? "non-reproducible"
                                                    : "non-additive");
    NumAdditive += Res.Additive;
    T.addRow({std::to_string(Rank++), Res.Name,
              str::fixed(Res.MaxErrorPct, 2), str::fixed(Res.WorstCv, 3),
              Verdict});
  }
  std::printf("%s\n%zu of %zu tested events are additive at %.1f%%.\n",
              T.render().c_str(), NumAdditive, Results.size(),
              Options.TolerancePct);
  return 0;
}
