//===- examples/perfctr.cpp - likwid-perfctr-style group profiler ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// A likwid-perfctr-style front end over the simulator: pick a platform,
// a performance group, and an application; get raw counts and derived
// metrics from a single collection run — exactly the workflow the
// paper's measurement campaigns are built from.
//
// Usage:
//   perfctr [-p haswell|skylake] [-g GROUP] [-k KERNEL] [-n SIZE]
//   perfctr --list-groups [-p PLATFORM]
//   perfctr --list-kernels
//
// Example:
//   perfctr -p skylake -g FLOPS_DP -k mkl-dgemm -n 16000
//
//===----------------------------------------------------------------------===//

#include "core/DerivedMetrics.h"
#include "core/PmcProfiler.h"
#include "pmc/PerformanceGroups.h"
#include "support/Str.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {

int usage() {
  std::printf("usage: perfctr [-p haswell|skylake] [-g GROUP] "
              "[-k KERNEL] [-n SIZE]\n"
              "       perfctr --list-groups [-p PLATFORM]\n"
              "       perfctr --list-kernels\n");
  return 1;
}

Expected<KernelKind> kernelByName(const std::string &Name) {
  for (KernelKind Kind : allKernels())
    if (kernelSpec(Kind).Name == Name)
      return Kind;
  return makeError("unknown kernel '" + Name + "' (try --list-kernels)");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string PlatformName = "skylake";
  std::string GroupName = "FLOPS_DP";
  std::string KernelName = "mkl-dgemm";
  uint64_t Size = 12000;
  bool ListGroups = false, ListKernels = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "-p") {
      const char *V = Next();
      if (!V)
        return usage();
      PlatformName = V;
    } else if (Arg == "-g") {
      const char *V = Next();
      if (!V)
        return usage();
      GroupName = V;
    } else if (Arg == "-k") {
      const char *V = Next();
      if (!V)
        return usage();
      KernelName = V;
    } else if (Arg == "-n") {
      const char *V = Next();
      if (!V)
        return usage();
      Size = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--list-groups") {
      ListGroups = true;
    } else if (Arg == "--list-kernels") {
      ListKernels = true;
    } else {
      return usage();
    }
  }

  if (ListKernels) {
    for (KernelKind Kind : allKernels()) {
      const KernelSpec &Spec = kernelSpec(Kind);
      std::printf("%-14s %-13s sizes [%llu, %llu]\n", Spec.Name,
                  Spec.Category,
                  static_cast<unsigned long long>(Spec.SizeMin),
                  static_cast<unsigned long long>(Spec.SizeMax));
    }
    return 0;
  }

  bool IsHaswell = str::lower(PlatformName) == "haswell";
  if (!IsHaswell && str::lower(PlatformName) != "skylake") {
    std::fprintf(stderr, "error: unknown platform '%s'\n",
                 PlatformName.c_str());
    return 1;
  }
  std::vector<PerformanceGroup> Groups =
      IsHaswell ? haswellPerformanceGroups() : skylakePerformanceGroups();

  if (ListGroups) {
    for (const PerformanceGroup &Group : Groups)
      std::printf("%-14s %-45s {%s}\n", Group.Name.c_str(),
                  Group.Description.c_str(),
                  str::join(Group.EventNames, ",").c_str());
    return 0;
  }

  auto Group = findGroup(Groups, GroupName);
  if (!Group) {
    std::fprintf(stderr, "error: %s\n", Group.error().message().c_str());
    return 1;
  }
  auto Kind = kernelByName(KernelName);
  if (!Kind) {
    std::fprintf(stderr, "error: %s\n", Kind.error().message().c_str());
    return 1;
  }
  Application App(*Kind, Size);
  if (!App.isValid()) {
    std::fprintf(stderr, "error: size %llu outside %s's range\n",
                 static_cast<unsigned long long>(Size),
                 kernelSpec(*Kind).Name);
    return 1;
  }

  Machine M(IsHaswell ? Platform::intelHaswellServer()
                      : Platform::intelSkylakeServer(),
            /*Seed=*/0xC7);
  PmcProfiler Profiler(M);
  auto Ids = resolveGroup(M.registry(), *Group);
  if (!Ids) {
    std::fprintf(stderr, "error: %s\n", Ids.error().message().c_str());
    return 1;
  }
  auto Profile = Profiler.collect(CompoundApplication(App), *Ids);
  if (!Profile) {
    std::fprintf(stderr, "error: %s\n",
                 Profile.error().message().c_str());
    return 1;
  }

  std::printf("Group %s (%s) on %s, %s:\n\n", Group->Name.c_str(),
              Group->Description.c_str(), M.platform().Name.c_str(),
              App.str().c_str());
  std::printf("%s\n",
              renderDerivedMetrics(computeDerivedMetrics(
                                       *Group, Profile->Counts,
                                       Profile->TimeSec))
                  .c_str());
  std::printf("(collected in %zu run%s)\n", Profile->RunsUsed,
              Profile->RunsUsed == 1 ? "" : "s");
  return 0;
}
