//===- stats/Pca.cpp - Principal component analysis ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace slope;
using namespace slope::stats;

Expected<EigenDecomposition> stats::jacobiEigen(const Matrix &A,
                                                unsigned MaxSweeps) {
  if (A.rows() != A.cols())
    return makeError("eigen decomposition needs a square matrix");
  size_t N = A.rows();
  double Scale = 0;
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Scale = std::max(Scale, std::fabs(A.at(I, J)));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (std::fabs(A.at(I, J) - A.at(J, I)) > 1e-9 * std::max(Scale, 1.0))
        return makeError("eigen decomposition needs a symmetric matrix");

  Matrix D = A;
  Matrix V = Matrix::identity(N);

  for (unsigned Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    // Off-diagonal Frobenius mass; stop when numerically diagonal.
    double Off = 0;
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J)
        Off += D.at(I, J) * D.at(I, J);
    if (Off < 1e-22 * std::max(Scale * Scale, 1.0))
      break;

    for (size_t P = 0; P < N; ++P) {
      for (size_t Q = P + 1; Q < N; ++Q) {
        double Apq = D.at(P, Q);
        if (std::fabs(Apq) < 1e-300)
          continue;
        double Theta = (D.at(Q, Q) - D.at(P, P)) / (2 * Apq);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1));
        double C = 1 / std::sqrt(T * T + 1);
        double S = T * C;
        // Apply the rotation G(p, q, theta) on both sides of D and
        // accumulate into V.
        for (size_t K = 0; K < N; ++K) {
          double Dkp = D.at(K, P), Dkq = D.at(K, Q);
          D.at(K, P) = C * Dkp - S * Dkq;
          D.at(K, Q) = S * Dkp + C * Dkq;
        }
        for (size_t K = 0; K < N; ++K) {
          double Dpk = D.at(P, K), Dqk = D.at(Q, K);
          D.at(P, K) = C * Dpk - S * Dqk;
          D.at(Q, K) = S * Dpk + C * Dqk;
        }
        for (size_t K = 0; K < N; ++K) {
          double Vkp = V.at(K, P), Vkq = V.at(K, Q);
          V.at(K, P) = C * Vkp - S * Vkq;
          V.at(K, Q) = S * Vkp + C * Vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
    return D.at(X, X) > D.at(Y, Y);
  });

  EigenDecomposition Result;
  Result.Values.resize(N);
  Result.Vectors = Matrix(N, N);
  for (size_t J = 0; J < N; ++J) {
    Result.Values[J] = D.at(Order[J], Order[J]);
    for (size_t I = 0; I < N; ++I)
      Result.Vectors.at(I, J) = V.at(I, Order[J]);
  }
  return Result;
}

double PcaResult::explainedVariance(size_t K) const {
  assert(K <= Eigen.Values.size() && "component index out of range");
  double Total = 0, Kept = 0;
  for (size_t I = 0; I < Eigen.Values.size(); ++I) {
    double Value = std::max(Eigen.Values[I], 0.0);
    Total += Value;
    if (I < K)
      Kept += Value;
  }
  return Total > 0 ? Kept / Total : 0.0;
}

Expected<PcaResult> stats::fitPca(const Matrix &X) {
  if (X.rows() < 2)
    return makeError("PCA needs at least two observations");
  size_t Rows = X.rows(), Cols = X.cols();

  PcaResult Result;
  Result.FeatureMean.assign(Cols, 0.0);
  Result.FeatureStd.assign(Cols, 1.0);
  for (size_t C = 0; C < Cols; ++C) {
    double Sum = 0;
    for (size_t R = 0; R < Rows; ++R)
      Sum += X.at(R, C);
    Result.FeatureMean[C] = Sum / static_cast<double>(Rows);
    double Sq = 0;
    for (size_t R = 0; R < Rows; ++R) {
      double D = X.at(R, C) - Result.FeatureMean[C];
      Sq += D * D;
    }
    double Std = std::sqrt(Sq / static_cast<double>(Rows - 1));
    // Constant columns standardize to exactly zero (Std 1 placeholder).
    Result.FeatureStd[C] = Std > 1e-300 ? Std : 1.0;
  }

  Matrix Z(Rows, Cols);
  for (size_t R = 0; R < Rows; ++R)
    for (size_t C = 0; C < Cols; ++C)
      Z.at(R, C) =
          (X.at(R, C) - Result.FeatureMean[C]) / Result.FeatureStd[C];

  Matrix Corr = Z.gram();
  for (size_t I = 0; I < Cols; ++I)
    for (size_t J = 0; J < Cols; ++J)
      Corr.at(I, J) /= static_cast<double>(Rows - 1);

  auto Eigen = jacobiEigen(Corr);
  if (!Eigen)
    return Eigen.error();
  Result.Eigen = Eigen.takeValue();
  return Result;
}
