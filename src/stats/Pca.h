//===- stats/Pca.h - Principal component analysis ----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Principal component analysis over standardized features. The paper's
/// related-work taxonomy lists PCA among the statistical PMC-selection
/// techniques [15, 28]; core::selectByPcaLoading implements that baseline
/// on top of this. Eigen decomposition uses the cyclic Jacobi method,
/// which is simple and robust for the symmetric correlation matrices
/// (tens of features) this project sees.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_PCA_H
#define SLOPE_STATS_PCA_H

#include "stats/Matrix.h"
#include "support/Expected.h"

#include <vector>

namespace slope {
namespace stats {

/// Eigen decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues, descending.
  std::vector<double> Values;
  /// Eigenvectors as columns, ordered like Values.
  Matrix Vectors;
};

/// Decomposes the symmetric matrix \p A by cyclic Jacobi rotations.
/// \returns an error if \p A is not square or not symmetric within
/// 1e-9 relative tolerance.
Expected<EigenDecomposition> jacobiEigen(const Matrix &A,
                                         unsigned MaxSweeps = 64);

/// Result of a PCA fit.
struct PcaResult {
  std::vector<double> FeatureMean; ///< Per-column means.
  std::vector<double> FeatureStd;  ///< Per-column standard deviations.
  EigenDecomposition Eigen;        ///< Of the correlation matrix.

  /// \returns the fraction of variance captured by the first \p K
  /// components.
  double explainedVariance(size_t K) const;

  /// Loading of feature \p Feature on component \p Component.
  double loading(size_t Feature, size_t Component) const {
    return Eigen.Vectors.at(Feature, Component);
  }
};

/// Fits PCA on the rows of \p X (observations x features), standardizing
/// each column (so the decomposition is of the correlation matrix).
/// Constant columns get zero loadings. Requires >= 2 rows.
Expected<PcaResult> fitPca(const Matrix &X);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_PCA_H
