//===- stats/Matrix.h - Dense row-major matrix ------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense double matrix, sized for the regression problems in this
/// project (hundreds of rows, tens of columns). Provides exactly the
/// operations the solvers need; no expression templates, no BLAS.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_MATRIX_H
#define SLOPE_STATS_MATRIX_H

#include "stats/SimdKernels.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace slope {
namespace stats {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  /// Creates an empty (0 x 0) matrix.
  Matrix() = default;

  /// Creates a Rows x Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// Builds a matrix from rows; all rows must have equal length.
  static Matrix fromRows(const std::vector<std::vector<double>> &Rows);

  /// \returns the N x N identity.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// \returns a pointer to the start of row \p R (cols() contiguous
  /// doubles) — the allocation-free alternative to row().
  const double *rowSpan(size_t R) const {
    assert(R < NumRows && "row index out of range");
    return Data.data() + R * NumCols;
  }
  double *rowSpan(size_t R) {
    assert(R < NumRows && "row index out of range");
    return Data.data() + R * NumCols;
  }

  /// \returns the underlying row-major storage (rows() * cols() doubles).
  const double *data() const { return Data.data(); }
  double *data() { return Data.data(); }

  /// \returns column \p C as a vector copy.
  std::vector<double> col(size_t C) const;

  /// \returns the transpose.
  Matrix transposed() const;

  /// \returns this * Other. Asserts conformable shapes.
  Matrix multiply(const Matrix &Other) const;

  /// \returns this * V (matrix-vector product). Asserts conformable.
  std::vector<double> multiply(const std::vector<double> &V) const;

  /// \returns transpose(this) * this, the Gram matrix (Cols x Cols).
  Matrix gram() const;

  /// \returns transpose(this) * V. Asserts V.size() == rows().
  std::vector<double> transposeMultiply(const std::vector<double> &V) const;

  /// Maximum absolute difference to \p Other; asserts equal shapes.
  double maxAbsDiff(const Matrix &Other) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

//===----------------------------------------------------------------------===//
// Accumulating GEMM kernels
//
// All three accumulate a matrix product on top of the caller's initial C
// contents, and every C element adds its K contraction terms in ascending
// order starting from that initial value. Seeding C with zeros, a
// broadcast bias row, or a partial sum therefore composes bit-exactly
// with a plain sequential accumulation loop that starts from the same
// seed — which is what lets the batched neural-network kernels reproduce
// the per-sample reference arithmetic bit for bit.
//
// Every kernel here is a dispatcher (see stats/SimdKernels.h): the scalar
// reference lives in detail::*Scalar, and an AVX2 variant takes over per
// the process-wide SIMD mode. gemmAccumulate, gemmATransposedAccumulate,
// and axpy are column-parallel (AVX2 result bit-identical, active by
// default); dot and gemmBTransposedAccumulate are K-split (reassociating,
// active only under the explicit avx2 opt-in).
//===----------------------------------------------------------------------===//

/// C (M x N) += A (M x K) * B (K x N), all dense row-major. Cache-blocked
/// with the K tiles ascending per element, like Matrix::multiply.
/// Column-parallel dispatch: bit-identical under every SIMD mode.
void gemmAccumulate(const double *A, const double *B, double *C, size_t M,
                    size_t K, size_t N);

/// C (M x N) += A (M x K) * transpose(B), with B stored N x K row-major
/// (one contiguous K-row per output column). Each C element is a fused
/// dot over K seeded from C's current value — a serial FP chain in the
/// scalar reference; the opt-in AVX2 variant K-splits it (reassociates).
void gemmBTransposedAccumulate(const double *A, const double *B, double *C,
                               size_t M, size_t K, size_t N);

/// C (M x N) += transpose(A) * B, with A stored K x M row-major. Applied
/// as K rank-1 (axpy) updates in ascending K order — the batched
/// equivalent of accumulating per-sample outer products sample by sample.
/// Column-parallel dispatch: bit-identical under every SIMD mode.
void gemmATransposedAccumulate(const double *A, const double *B, double *C,
                               size_t M, size_t K, size_t N);

/// \returns the dot product of two length-\p N arrays: a serial
/// ascending-order chain in the scalar reference; the opt-in AVX2
/// variant K-splits it across 4 lane accumulators (reassociates).
inline double dot(const double *A, const double *B, size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::KSplitKernelsAvx2Flag)
    return detail::dotAvx2(A, B, N);
#endif
  return detail::dotScalar(A, B, N);
}

/// \returns the dot product; asserts equal sizes.
inline double dot(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot of unequal vectors");
  return dot(A.data(), B.data(), A.size());
}

/// Fused multiply-accumulate: Y[I] += Alpha * X[I] for I < N.
/// Column-parallel dispatch (element-wise): bit-identical under every
/// SIMD mode.
inline void axpy(double Alpha, const double *X, double *Y, size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::ColumnKernelsAvx2Flag)
    return detail::axpyAvx2(Alpha, X, Y, N);
#endif
  detail::axpyScalar(Alpha, X, Y, N);
}

/// \returns the Euclidean norm (routes through dot, so it follows dot's
/// dispatch contract).
double norm2(const std::vector<double> &A);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_MATRIX_H
