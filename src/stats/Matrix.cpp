//===- stats/Matrix.cpp - Dense row-major matrix ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"

#include <cmath>

using namespace slope;
using namespace slope::stats;

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged rows");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1;
  return M;
}

std::vector<double> Matrix::row(size_t R) const {
  assert(R < NumRows && "row index out of range");
  return std::vector<double>(Data.begin() + R * NumCols,
                             Data.begin() + (R + 1) * NumCols);
}

std::vector<double> Matrix::col(size_t C) const {
  assert(C < NumCols && "column index out of range");
  std::vector<double> Out(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = at(R, C);
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "non-conformable matrix product");
  Matrix Out(NumRows, Other.NumCols);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t K = 0; K < NumCols; ++K) {
      double V = at(R, K);
      if (V == 0)
        continue;
      for (size_t C = 0; C < Other.NumCols; ++C)
        Out.at(R, C) += V * Other.at(K, C);
    }
  return Out;
}

std::vector<double> Matrix::multiply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "non-conformable matrix-vector product");
  std::vector<double> Out(NumRows, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    double Sum = 0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += at(R, C) * V[C];
    Out[R] = Sum;
  }
  return Out;
}

Matrix Matrix::gram() const {
  Matrix G(NumCols, NumCols);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t I = 0; I < NumCols; ++I) {
      double V = at(R, I);
      if (V == 0)
        continue;
      for (size_t J = I; J < NumCols; ++J)
        G.at(I, J) += V * at(R, J);
    }
  for (size_t I = 0; I < NumCols; ++I)
    for (size_t J = 0; J < I; ++J)
      G.at(I, J) = G.at(J, I);
  return G;
}

std::vector<double>
Matrix::transposeMultiply(const std::vector<double> &V) const {
  assert(V.size() == NumRows && "non-conformable transpose product");
  std::vector<double> Out(NumCols, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    double W = V[R];
    if (W == 0)
      continue;
    for (size_t C = 0; C < NumCols; ++C)
      Out[C] += at(R, C) * W;
  }
  return Out;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch");
  double Max = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Other.Data[I]));
  return Max;
}

double stats::dot(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot of unequal vectors");
  double Sum = 0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double stats::norm2(const std::vector<double> &A) {
  return std::sqrt(dot(A, A));
}
