//===- stats/Matrix.cpp - Dense row-major matrix ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::stats;

// Cache-block edge (in doubles) for the matrix kernels: three 64x64 tiles
// are 96 KiB, comfortably inside L2 on any target we care about.
//
// All kernels accumulate each output element over its contraction index in
// ascending order — the same order as the straightforward triple loop —
// so blocking changes memory access patterns but not a single result bit.
// The old kernels also skipped zero operands; for finite inputs that skip
// is bit-neutral (an accumulator holding +0.0 stays +0.0 when +/-0.0 terms
// are added under round-to-nearest), so the branch is simply dropped.
static constexpr size_t BlockEdge = 64;

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged rows");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1;
  return M;
}

std::vector<double> Matrix::col(size_t C) const {
  assert(C < NumCols && "column index out of range");
  std::vector<double> Out(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = at(R, C);
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "non-conformable matrix product");
  Matrix Out(NumRows, Other.NumCols);
  stats::gemmAccumulate(Data.data(), Other.Data.data(), Out.Data.data(),
                        NumRows, NumCols, Other.NumCols);
  return Out;
}

std::vector<double> Matrix::multiply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "non-conformable matrix-vector product");
  std::vector<double> Out(NumRows, 0.0);
  const double *Vp = V.data();
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = stats::dot(Data.data() + R * NumCols, Vp, NumCols);
  return Out;
}

Matrix Matrix::gram() const {
  Matrix G(NumCols, NumCols);
  // Upper triangle, tiled over (I, J) with the row sweep innermost per
  // tile pair so each G element accumulates its rows in ascending order.
  for (size_t I0 = 0; I0 < NumCols; I0 += BlockEdge) {
    size_t IEnd = std::min(I0 + BlockEdge, NumCols);
    for (size_t J0 = I0; J0 < NumCols; J0 += BlockEdge) {
      size_t JEnd = std::min(J0 + BlockEdge, NumCols);
#ifdef SLOPE_SIMD_AVX2_COMPILED
      // Whole-tile AVX2 variant (bit-identical — see SimdKernels.h):
      // one call per tile pair keeps the dispatch off the row loop.
      if (detail::ColumnKernelsAvx2Flag) {
        detail::gramUpperTileAvx2(Data.data(), NumRows, NumCols, I0, IEnd,
                                  J0, JEnd, G.Data.data());
        continue;
      }
#endif
      for (size_t R = 0; R < NumRows; ++R) {
        const double *Row = Data.data() + R * NumCols;
        for (size_t I = I0; I < IEnd; ++I) {
          double V = Row[I];
          double *GRow = G.Data.data() + I * NumCols;
          for (size_t J = std::max(I, J0); J < JEnd; ++J)
            GRow[J] += V * Row[J];
        }
      }
    }
  }
  for (size_t I = 0; I < NumCols; ++I)
    for (size_t J = 0; J < I; ++J)
      G.at(I, J) = G.at(J, I);
  return G;
}

std::vector<double>
Matrix::transposeMultiply(const std::vector<double> &V) const {
  assert(V.size() == NumRows && "non-conformable transpose product");
  std::vector<double> Out(NumCols, 0.0);
  for (size_t R = 0; R < NumRows; ++R)
    stats::axpy(V[R], Data.data() + R * NumCols, Out.data(), NumCols);
  return Out;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch");
  double Max = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Other.Data[I]));
  return Max;
}

//===----------------------------------------------------------------------===//
// Dispatchers
//
// The inline dot/axpy dispatchers live in Matrix.h; the GEMM entry
// points dispatch here. Scalar references follow below, compiled -O3
// like they always were (see stats/CMakeLists.txt).
//===----------------------------------------------------------------------===//

void stats::gemmAccumulate(const double *A, const double *B, double *C,
                           size_t M, size_t K, size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::ColumnKernelsAvx2Flag)
    return detail::gemmAccumulateAvx2(A, B, C, M, K, N);
#endif
  detail::gemmAccumulateScalar(A, B, C, M, K, N);
}

void stats::gemmBTransposedAccumulate(const double *A, const double *B,
                                      double *C, size_t M, size_t K,
                                      size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::KSplitKernelsAvx2Flag)
    return detail::gemmBTransposedAccumulateAvx2(A, B, C, M, K, N);
#endif
  detail::gemmBTransposedAccumulateScalar(A, B, C, M, K, N);
}

void stats::gemmATransposedAccumulate(const double *A, const double *B,
                                      double *C, size_t M, size_t K,
                                      size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::ColumnKernelsAvx2Flag)
    return detail::gemmATransposedAccumulateAvx2(A, B, C, M, K, N);
#endif
  detail::gemmATransposedAccumulateScalar(A, B, C, M, K, N);
}

void detail::gemmAccumulateScalar(const double *A, const double *B, double *C,
                                  size_t M, size_t K, size_t N) {
  // Tile order (R, K, C) with the K tiles ascending outside the C tiles:
  // each C element still sees its K terms in ascending order, resuming
  // the partial sum it holds in memory between K tiles. Within a tile,
  // two consecutive K terms are fused into one read-modify-write —
  // (CRow[Cc] + t0) + t1 associates exactly like two separate updates —
  // halving the C traffic without moving a single addition.
  for (size_t R0 = 0; R0 < M; R0 += BlockEdge) {
    size_t REnd = std::min(R0 + BlockEdge, M);
    for (size_t K0 = 0; K0 < K; K0 += BlockEdge) {
      size_t KEnd = std::min(K0 + BlockEdge, K);
      for (size_t C0 = 0; C0 < N; C0 += BlockEdge) {
        size_t CEnd = std::min(C0 + BlockEdge, N);
        for (size_t R = R0; R < REnd; ++R) {
          const double *ARow = A + R * K;
          double *CRow = C + R * N;
          size_t Kk = K0;
          for (; Kk + 2 <= KEnd; Kk += 2) {
            double V0 = ARow[Kk], V1 = ARow[Kk + 1];
            const double *B0 = B + Kk * N;
            const double *B1 = B0 + N;
            for (size_t Cc = C0; Cc < CEnd; ++Cc)
              CRow[Cc] = (CRow[Cc] + V0 * B0[Cc]) + V1 * B1[Cc];
          }
          for (; Kk < KEnd; ++Kk) {
            double V = ARow[Kk];
            const double *BRow = B + Kk * N;
            for (size_t Cc = C0; Cc < CEnd; ++Cc)
              CRow[Cc] += V * BRow[Cc];
          }
        }
      }
    }
  }
}

void detail::gemmBTransposedAccumulateScalar(const double *A, const double *B,
                                             double *C, size_t M, size_t K,
                                             size_t N) {
  // Both operands stream K-contiguous rows, so only the (R, C) output
  // tiles need blocking; the full K sweep per element is one fused dot
  // seeded from the element's current value. Each dot is a serial FP
  // chain (its association is the contract), so four output columns run
  // their independent chains side by side to hide the add latency — no
  // element's own accumulation order moves.
  for (size_t R0 = 0; R0 < M; R0 += BlockEdge) {
    size_t REnd = std::min(R0 + BlockEdge, M);
    for (size_t C0 = 0; C0 < N; C0 += BlockEdge) {
      size_t CEnd = std::min(C0 + BlockEdge, N);
      for (size_t R = R0; R < REnd; ++R) {
        const double *ARow = A + R * K;
        double *CRow = C + R * N;
        size_t Cc = C0;
        for (; Cc + 4 <= CEnd; Cc += 4) {
          const double *B0 = B + Cc * K;
          const double *B1 = B0 + K;
          const double *B2 = B1 + K;
          const double *B3 = B2 + K;
          double S0 = CRow[Cc], S1 = CRow[Cc + 1];
          double S2 = CRow[Cc + 2], S3 = CRow[Cc + 3];
          for (size_t Kk = 0; Kk < K; ++Kk) {
            double V = ARow[Kk];
            S0 += V * B0[Kk];
            S1 += V * B1[Kk];
            S2 += V * B2[Kk];
            S3 += V * B3[Kk];
          }
          CRow[Cc] = S0;
          CRow[Cc + 1] = S1;
          CRow[Cc + 2] = S2;
          CRow[Cc + 3] = S3;
        }
        for (; Cc < CEnd; ++Cc) {
          const double *BRow = B + Cc * K;
          double Sum = CRow[Cc];
          for (size_t Kk = 0; Kk < K; ++Kk)
            Sum += ARow[Kk] * BRow[Kk];
          CRow[Cc] = Sum;
        }
      }
    }
  }
}

void detail::gemmATransposedAccumulateScalar(const double *A, const double *B,
                                             double *C, size_t M, size_t K,
                                             size_t N) {
  // K rank-1 updates in ascending K order; pairs of consecutive updates
  // fuse into one read-modify-write of C — (C[I] + t0) + t1 associates
  // exactly like two separate axpys — halving the C traffic.
  size_t Kk = 0;
  for (; Kk + 2 <= K; Kk += 2) {
    const double *A0 = A + Kk * M;
    const double *A1 = A0 + M;
    const double *B0 = B + Kk * N;
    const double *B1 = B0 + N;
    for (size_t Mm = 0; Mm < M; ++Mm) {
      double V0 = A0[Mm], V1 = A1[Mm];
      double *CRow = C + Mm * N;
      for (size_t I = 0; I < N; ++I)
        CRow[I] = (CRow[I] + V0 * B0[I]) + V1 * B1[I];
    }
  }
  for (; Kk < K; ++Kk) {
    const double *ARow = A + Kk * M;
    const double *BRow = B + Kk * N;
    for (size_t Mm = 0; Mm < M; ++Mm)
      detail::axpyScalar(ARow[Mm], BRow, C + Mm * N, N);
  }
}

double detail::dotScalar(const double *A, const double *B, size_t N) {
  double Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

void detail::axpyScalar(double Alpha, const double *X, double *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

double stats::norm2(const std::vector<double> &A) {
  return std::sqrt(dot(A, A));
}
