//===- stats/Matrix.cpp - Dense row-major matrix ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::stats;

// Cache-block edge (in doubles) for the matrix kernels: three 64x64 tiles
// are 96 KiB, comfortably inside L2 on any target we care about.
//
// All kernels accumulate each output element over its contraction index in
// ascending order — the same order as the straightforward triple loop —
// so blocking changes memory access patterns but not a single result bit.
// The old kernels also skipped zero operands; for finite inputs that skip
// is bit-neutral (an accumulator holding +0.0 stays +0.0 when +/-0.0 terms
// are added under round-to-nearest), so the branch is simply dropped.
static constexpr size_t BlockEdge = 64;

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged rows");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1;
  return M;
}

std::vector<double> Matrix::row(size_t R) const {
  assert(R < NumRows && "row index out of range");
  return std::vector<double>(Data.begin() + R * NumCols,
                             Data.begin() + (R + 1) * NumCols);
}

std::vector<double> Matrix::col(size_t C) const {
  assert(C < NumCols && "column index out of range");
  std::vector<double> Out(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = at(R, C);
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "non-conformable matrix product");
  Matrix Out(NumRows, Other.NumCols);
  size_t N = Other.NumCols;
  // Tile order (R, K, C) with the K tiles ascending outside the C tiles:
  // each Out element still sees its K terms in ascending order.
  for (size_t R0 = 0; R0 < NumRows; R0 += BlockEdge) {
    size_t REnd = std::min(R0 + BlockEdge, NumRows);
    for (size_t K0 = 0; K0 < NumCols; K0 += BlockEdge) {
      size_t KEnd = std::min(K0 + BlockEdge, NumCols);
      for (size_t C0 = 0; C0 < N; C0 += BlockEdge) {
        size_t CEnd = std::min(C0 + BlockEdge, N);
        for (size_t R = R0; R < REnd; ++R) {
          const double *ARow = Data.data() + R * NumCols;
          double *ORow = Out.Data.data() + R * N;
          for (size_t K = K0; K < KEnd; ++K) {
            double V = ARow[K];
            const double *BRow = Other.Data.data() + K * N;
            for (size_t C = C0; C < CEnd; ++C)
              ORow[C] += V * BRow[C];
          }
        }
      }
    }
  }
  return Out;
}

std::vector<double> Matrix::multiply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "non-conformable matrix-vector product");
  std::vector<double> Out(NumRows, 0.0);
  const double *Vp = V.data();
  for (size_t R = 0; R < NumRows; ++R)
    Out[R] = stats::dot(Data.data() + R * NumCols, Vp, NumCols);
  return Out;
}

Matrix Matrix::gram() const {
  Matrix G(NumCols, NumCols);
  // Upper triangle, tiled over (I, J) with the row sweep innermost per
  // tile pair so each G element accumulates its rows in ascending order.
  for (size_t I0 = 0; I0 < NumCols; I0 += BlockEdge) {
    size_t IEnd = std::min(I0 + BlockEdge, NumCols);
    for (size_t J0 = I0; J0 < NumCols; J0 += BlockEdge) {
      size_t JEnd = std::min(J0 + BlockEdge, NumCols);
      for (size_t R = 0; R < NumRows; ++R) {
        const double *Row = Data.data() + R * NumCols;
        for (size_t I = I0; I < IEnd; ++I) {
          double V = Row[I];
          double *GRow = G.Data.data() + I * NumCols;
          for (size_t J = std::max(I, J0); J < JEnd; ++J)
            GRow[J] += V * Row[J];
        }
      }
    }
  }
  for (size_t I = 0; I < NumCols; ++I)
    for (size_t J = 0; J < I; ++J)
      G.at(I, J) = G.at(J, I);
  return G;
}

std::vector<double>
Matrix::transposeMultiply(const std::vector<double> &V) const {
  assert(V.size() == NumRows && "non-conformable transpose product");
  std::vector<double> Out(NumCols, 0.0);
  for (size_t R = 0; R < NumRows; ++R)
    stats::axpy(V[R], Data.data() + R * NumCols, Out.data(), NumCols);
  return Out;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch");
  double Max = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Other.Data[I]));
  return Max;
}

double stats::dot(const double *A, const double *B, size_t N) {
  double Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double stats::dot(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot of unequal vectors");
  return dot(A.data(), B.data(), A.size());
}

void stats::axpy(double Alpha, const double *X, double *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

double stats::norm2(const std::vector<double> &A) {
  return std::sqrt(dot(A, A));
}
