//===- stats/StudentT.h - Student-t confidence machinery --------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Student's t critical values and mean confidence intervals. The HCL
/// measurement methodology the paper follows repeats each experiment until
/// the sample mean's 95% confidence interval is within a target precision;
/// power::RepeatedMeasurement implements that loop on top of this header.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_STUDENTT_H
#define SLOPE_STATS_STUDENTT_H

#include <vector>

namespace slope {
namespace stats {

/// \returns the two-sided Student-t critical value t_{alpha/2, Dof}.
/// \p Confidence is e.g. 0.95. Computed by bisection on the regularized
/// incomplete beta CDF; accurate to ~1e-8, asserts Dof >= 1.
double tCriticalValue(unsigned Dof, double Confidence);

/// CDF of Student's t distribution with \p Dof degrees of freedom.
double tCdf(double X, unsigned Dof);

/// A two-sided confidence interval for a sample mean.
struct MeanConfidenceInterval {
  double Mean = 0;
  double HalfWidth = 0; ///< t * s / sqrt(n).

  double lower() const { return Mean - HalfWidth; }
  double upper() const { return Mean + HalfWidth; }

  /// \returns true if the half width is within \p Fraction of |mean|
  /// (the methodology's "precision of the sample mean" criterion).
  bool withinPrecision(double Fraction) const;
};

/// Computes the \p Confidence CI for the mean of \p Xs (n >= 2).
MeanConfidenceInterval meanConfidenceInterval(const std::vector<double> &Xs,
                                              double Confidence = 0.95);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_STUDENTT_H
