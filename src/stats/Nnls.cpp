//===- stats/Nnls.cpp - Non-negative least squares -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Nnls.h"

#include "stats/Solve.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::stats;

/// Builds the ridge-augmented system [A; sqrt(Lambda) I], [b; 0].
static void augmentRidge(const Matrix &A, const std::vector<double> &B,
                         double Lambda, Matrix &AugA,
                         std::vector<double> &AugB) {
  if (Lambda == 0) {
    AugA = A;
    AugB = B;
    return;
  }
  size_t M = A.rows(), N = A.cols();
  AugA = Matrix(M + N, N);
  AugB.assign(M + N, 0.0);
  for (size_t R = 0; R < M; ++R)
    std::copy(A.rowSpan(R), A.rowSpan(R) + N, AugA.rowSpan(R));
  double Root = std::sqrt(Lambda);
  for (size_t C = 0; C < N; ++C)
    AugA.at(M + C, C) = Root;
  std::copy(B.begin(), B.end(), AugB.begin());
}

/// Computes the residual b - A x without materializing A x.
static void computeResidual(const Matrix &A, const std::vector<double> &B,
                            const std::vector<double> &X,
                            std::vector<double> &Residual) {
  Residual.resize(B.size());
  for (size_t R = 0; R < A.rows(); ++R)
    Residual[R] = B[R] - dot(A.rowSpan(R), X.data(), A.cols());
}

/// Solves the unconstrained least squares restricted to the passive set.
static Expected<std::vector<double>>
solveOnPassiveSet(const Matrix &A, const std::vector<double> &B,
                  const std::vector<bool> &Passive) {
  std::vector<size_t> Cols;
  for (size_t C = 0; C < Passive.size(); ++C)
    if (Passive[C])
      Cols.push_back(C);
  Matrix Sub(A.rows(), Cols.size());
  for (size_t R = 0; R < A.rows(); ++R) {
    const double *ARow = A.rowSpan(R);
    double *SubRow = Sub.rowSpan(R);
    for (size_t I = 0; I < Cols.size(); ++I)
      SubRow[I] = ARow[Cols[I]];
  }
  auto SubSolution = solveLeastSquaresQR(Sub, B);
  if (!SubSolution)
    return SubSolution.error();
  std::vector<double> Full(Passive.size(), 0.0);
  for (size_t I = 0; I < Cols.size(); ++I)
    Full[Cols[I]] = (*SubSolution)[I];
  return Full;
}

Expected<NnlsResult> stats::solveNnls(const Matrix &A,
                                      const std::vector<double> &B,
                                      double Lambda,
                                      unsigned MaxIterations) {
  assert(A.rows() == B.size() && "right-hand side size mismatch");
  assert(Lambda >= 0 && "ridge penalty must be non-negative");

  Matrix AugA;
  std::vector<double> AugB;
  augmentRidge(A, B, Lambda, AugA, AugB);

  size_t N = AugA.cols();
  NnlsResult Result;
  Result.X.assign(N, 0.0);
  std::vector<bool> Passive(N, false);

  const double Tol = 1e-10;
  std::vector<double> Residual;
  for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
    Result.Iterations = Iter + 1;
    // Gradient of the active (zero) coordinates: w = A^T (b - A x).
    computeResidual(AugA, AugB, Result.X, Residual);
    std::vector<double> W = AugA.transposeMultiply(Residual);

    // Pick the most promising active coordinate to free.
    size_t Best = N;
    double BestW = Tol;
    for (size_t C = 0; C < N; ++C)
      if (!Passive[C] && W[C] > BestW) {
        BestW = W[C];
        Best = C;
      }
    if (Best == N)
      break; // KKT satisfied.
    Passive[Best] = true;

    // Inner loop: keep the passive-set solution feasible.
    for (;;) {
      auto Z = solveOnPassiveSet(AugA, AugB, Passive);
      if (!Z)
        return Z.error();
      bool Feasible = true;
      for (size_t C = 0; C < N; ++C)
        if (Passive[C] && (*Z)[C] <= 0) {
          Feasible = false;
          break;
        }
      if (Feasible) {
        Result.X = Z.takeValue();
        break;
      }
      // Move as far toward Z as feasibility allows, then drop the
      // coordinates that hit zero.
      double Alpha = 1.0;
      for (size_t C = 0; C < N; ++C) {
        if (!Passive[C] || (*Z)[C] > 0)
          continue;
        double Denom = Result.X[C] - (*Z)[C];
        if (Denom > 0)
          Alpha = std::min(Alpha, Result.X[C] / Denom);
      }
      for (size_t C = 0; C < N; ++C)
        if (Passive[C])
          Result.X[C] += Alpha * ((*Z)[C] - Result.X[C]);
      for (size_t C = 0; C < N; ++C)
        if (Passive[C] && Result.X[C] <= Tol) {
          Result.X[C] = 0;
          Passive[C] = false;
        }
    }
  }

  // Clamp numeric dust.
  for (double &V : Result.X)
    if (V < 0)
      V = 0;
  // norm2 is sign-insensitive, so (b - A x) serves for (A x - b).
  computeResidual(AugA, AugB, Result.X, Residual);
  Result.ResidualNorm = norm2(Residual);
  return Result;
}

bool stats::satisfiesNnlsKkt(const Matrix &A, const std::vector<double> &B,
                             const std::vector<double> &X, double Lambda,
                             double Tolerance) {
  assert(X.size() == A.cols() && "solution size mismatch");
  Matrix AugA;
  std::vector<double> AugB;
  augmentRidge(A, B, Lambda, AugA, AugB);

  for (double V : X)
    if (V < -Tolerance)
      return false;
  std::vector<double> Residual;
  computeResidual(AugA, AugB, X, Residual);
  std::vector<double> W = AugA.transposeMultiply(Residual);
  // Scale the tolerance by the problem's magnitude so the check is
  // meaningful for both tiny and huge column norms.
  double Scale = std::max(1.0, norm2(AugB));
  for (size_t C = 0; C < X.size(); ++C) {
    if (X[C] > Tolerance) {
      if (std::fabs(W[C]) > Tolerance * Scale)
        return false;
    } else if (W[C] > Tolerance * Scale) {
      return false;
    }
  }
  return true;
}
