//===- stats/Nnls.h - Non-negative least squares ----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lawson-Hanson active-set non-negative least squares. The paper's linear
/// models (Table 3) are "penalized linear regression ... that forces the
/// coefficients to be non-negative" with zero intercept — exactly the NNLS
/// problem min ||A x - b||_2 s.t. x >= 0 (with an optional ridge term).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_NNLS_H
#define SLOPE_STATS_NNLS_H

#include "stats/Matrix.h"
#include "support/Expected.h"

#include <vector>

namespace slope {
namespace stats {

/// Result of an NNLS solve.
struct NnlsResult {
  std::vector<double> X;      ///< The non-negative solution.
  double ResidualNorm = 0;    ///< ||A x - b||_2 at the solution.
  unsigned Iterations = 0;    ///< Outer active-set iterations used.
};

/// Solves min ||A x - b||_2 subject to x >= 0 (Lawson & Hanson, 1974).
///
/// \p Lambda >= 0 adds a ridge penalty by augmenting the system with
/// sqrt(Lambda) * I rows, matching the paper's "penalized" wording.
/// \returns an error only if an inner unconstrained solve fails, which for
/// a well-posed augmented system does not happen.
Expected<NnlsResult> solveNnls(const Matrix &A, const std::vector<double> &B,
                               double Lambda = 0.0,
                               unsigned MaxIterations = 300);

/// Verifies the Karush-Kuhn-Tucker conditions of an NNLS solution within
/// \p Tolerance: x >= 0, gradient w = A^T (b - A x) <= tol for zero
/// coordinates, |w| <= tol for positive coordinates. Used by the property
/// tests.
bool satisfiesNnlsKkt(const Matrix &A, const std::vector<double> &B,
                      const std::vector<double> &X, double Lambda,
                      double Tolerance);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_NNLS_H
