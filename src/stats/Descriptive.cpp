//===- stats/Descriptive.cpp - Descriptive statistics ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"

#include "support/Str.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::stats;

double stats::mean(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "mean of an empty sample");
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double stats::sampleVariance(const std::vector<double> &Xs) {
  assert(Xs.size() >= 2 && "sample variance needs at least two points");
  double Mu = mean(Xs);
  double Sum = 0;
  for (double X : Xs)
    Sum += (X - Mu) * (X - Mu);
  return Sum / static_cast<double>(Xs.size() - 1);
}

double stats::sampleStdDev(const std::vector<double> &Xs) {
  return std::sqrt(sampleVariance(Xs));
}

double stats::coefficientOfVariation(const std::vector<double> &Xs) {
  double Mu = mean(Xs);
  assert(Mu != 0 && "coefficient of variation undefined for zero mean");
  return sampleStdDev(Xs) / std::fabs(Mu);
}

double stats::minOf(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "min of an empty sample");
  return *std::min_element(Xs.begin(), Xs.end());
}

double stats::maxOf(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "max of an empty sample");
  return *std::max_element(Xs.begin(), Xs.end());
}

double stats::median(std::vector<double> Xs) {
  assert(!Xs.empty() && "median of an empty sample");
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return 0.5 * (Xs[N / 2 - 1] + Xs[N / 2]);
}

std::string ErrorSummary::str(int Digits) const {
  return "(" + str::compact(Min, Digits) + ", " + str::compact(Avg, Digits) +
         ", " + str::compact(Max, Digits) + ")";
}

ErrorSummary stats::summarizeErrors(const std::vector<double> &ErrorsPct) {
  assert(!ErrorsPct.empty() && "summarizing an empty error vector");
  ErrorSummary Summary;
  Summary.Min = minOf(ErrorsPct);
  Summary.Avg = mean(ErrorsPct);
  Summary.Max = maxOf(ErrorsPct);
  return Summary;
}

double stats::percentageError(double Predicted, double Actual) {
  assert(Actual != 0 && "percentage error against a zero actual value");
  return std::fabs(Predicted - Actual) / std::fabs(Actual) * 100.0;
}

ErrorSummary
stats::predictionErrorSummary(const std::vector<double> &Predicted,
                              const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && "prediction/actual mismatch");
  std::vector<double> Errors;
  Errors.reserve(Predicted.size());
  for (size_t I = 0; I < Predicted.size(); ++I)
    Errors.push_back(percentageError(Predicted[I], Actual[I]));
  return summarizeErrors(Errors);
}
