//===- stats/Correlation.h - Correlation measures ---------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pearson and Spearman correlation. The paper's Table 6 reports Pearson
/// correlation of each candidate PMC with dynamic energy; Class C uses the
/// correlation ranking to pick the 4-PMC online subsets.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_CORRELATION_H
#define SLOPE_STATS_CORRELATION_H

#include <vector>

namespace slope {
namespace stats {

/// \returns the Pearson product-moment correlation of \p Xs and \p Ys.
/// Asserts equal sizes and n >= 2. A constant series yields 0 (rather than
/// NaN) so rankings stay total.
double pearson(const std::vector<double> &Xs, const std::vector<double> &Ys);

/// \returns Spearman's rank correlation (Pearson over mid-ranks).
double spearman(const std::vector<double> &Xs, const std::vector<double> &Ys);

/// \returns mid-ranks of \p Xs (ties get the average of their positions).
std::vector<double> midRanks(const std::vector<double> &Xs);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_CORRELATION_H
