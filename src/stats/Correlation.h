//===- stats/Correlation.h - Correlation measures ---------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pearson and Spearman correlation. The paper's Table 6 reports Pearson
/// correlation of each candidate PMC with dynamic energy; Class C uses the
/// correlation ranking to pick the 4-PMC online subsets.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_CORRELATION_H
#define SLOPE_STATS_CORRELATION_H

#include <cstddef>
#include <vector>

namespace slope {
namespace stats {

/// \returns the Pearson product-moment correlation of two length-\p N
/// arrays. Asserts n >= 2. A constant series yields 0 (rather than NaN)
/// so rankings stay total. The pointer form serves columnar stores whose
/// columns are not std::vectors (ml::Dataset's aligned columns).
double pearson(const double *Xs, const double *Ys, size_t N);

/// \returns the Pearson correlation; asserts equal sizes and n >= 2.
double pearson(const std::vector<double> &Xs, const std::vector<double> &Ys);

/// \returns Spearman's rank correlation (Pearson over mid-ranks).
double spearman(const std::vector<double> &Xs, const std::vector<double> &Ys);

/// \returns mid-ranks of \p Xs (ties get the average of their positions).
std::vector<double> midRanks(const std::vector<double> &Xs);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_CORRELATION_H
