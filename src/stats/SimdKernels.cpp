//===- stats/SimdKernels.cpp - SIMD mode resolution and dispatch -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/SimdKernels.h"

#include "support/CpuFeatures.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

using namespace slope;
using namespace slope::stats;

namespace {

/// True when the AVX2 variants were compiled at all (x86-64 toolchain
/// with -mavx2 -mfma) and the CPU/OS can run them.
bool avx2Available() {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  return cpuHasAvx2();
#else
  return false;
#endif
}

SimdMode initialMode() {
  if (const char *Env = std::getenv("SLOPE_SIMD")) {
    if (std::strcmp(Env, "scalar") == 0)
      return SimdMode::Scalar;
    if (std::strcmp(Env, "avx2") == 0)
      return SimdMode::Avx2;
  }
  return SimdMode::Auto;
}

SimdMode GlobalSimdMode = SimdMode::Auto;

void resolveDispatch() {
  const bool Available = avx2Available();
  detail::ColumnKernelsAvx2Flag =
      Available && GlobalSimdMode != SimdMode::Scalar;
  detail::KSplitKernelsAvx2Flag =
      Available && GlobalSimdMode == SimdMode::Avx2;
}

// Applies the SLOPE_SIMD environment variable before main() runs,
// mirroring the other SLOPE_*_ALGO switches.
const bool EnvInitDone = [] {
  GlobalSimdMode = initialMode();
  resolveDispatch();
  return true;
}();

} // namespace

bool detail::ColumnKernelsAvx2Flag = false;
bool detail::KSplitKernelsAvx2Flag = false;

void stats::setDefaultSimdMode(SimdMode M) {
  GlobalSimdMode = M;
  resolveDispatch();
}

SimdMode stats::defaultSimdMode() { return GlobalSimdMode; }

const char *stats::resolvedSimdVariant() {
  return detail::ColumnKernelsAvx2Flag ? "avx2" : "scalar";
}

bool stats::simdColumnKernelsActive() {
  return detail::ColumnKernelsAvx2Flag;
}

bool stats::simdKSplitKernelsActive() {
  return detail::KSplitKernelsAvx2Flag;
}

void stats::quantizeScaleClamp(const double *X, const double *Scale,
                               const double *Offset, size_t N, int64_t Clamp,
                               int32_t *Out) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::ColumnKernelsAvx2Flag)
    return detail::quantizeScaleClampAvx2(X, Scale, Offset, N, Clamp, Out);
#endif
  const double ClampD = static_cast<double>(Clamp);
  size_t I = 0;
#if defined(__x86_64__) || defined(_M_X64)
  // Two elements per step: scale, shift, clamp in the double domain, then
  // cvtpd2dq (round-to-nearest-even under the default MXCSR mode).
  // Clamping before the conversion is equivalent to round-then-clamp for
  // finite inputs: the clamp bound is a power of two (exactly
  // representable), values inside the range are untouched, and values
  // outside round to a magnitude >= the bound either way.
  const __m128d Lo = _mm_set1_pd(-ClampD);
  const __m128d Hi = _mm_set1_pd(ClampD);
  for (; I + 2 <= N; I += 2) {
    __m128d V = _mm_loadu_pd(X + I);
    V = _mm_add_pd(_mm_mul_pd(V, _mm_loadu_pd(Scale + I)),
                   _mm_loadu_pd(Offset + I));
    V = _mm_min_pd(_mm_max_pd(V, Lo), Hi);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(Out + I),
                     _mm_cvtpd_epi32(V));
  }
  for (; I < N; ++I) {
    const int64_t Q =
        _mm_cvtsd_si64(_mm_set_sd(X[I] * Scale[I] + Offset[I]));
    Out[I] = static_cast<int32_t>(std::max(-Clamp, std::min(Clamp, Q)));
  }
#else
  for (; I < N; ++I) {
    const int64_t Q = std::llround(X[I] * Scale[I] + Offset[I]);
    Out[I] = static_cast<int32_t>(std::max(-Clamp, std::min(Clamp, Q)));
  }
#endif
}

double stats::weightedIndexedSum(const double *Weight, const uint32_t *Index,
                                 size_t N, const double *Values) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::KSplitKernelsAvx2Flag)
    return detail::weightedIndexedSumAvx2(Weight, Index, N, Values);
#endif
  double Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += Weight[I] * Values[Index[I]];
  return Sum;
}

double stats::sum(const double *X, size_t N) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::KSplitKernelsAvx2Flag)
    return detail::sumAvx2(X, N);
#endif
  double Sum = 0;
  for (size_t I = 0; I < N; ++I)
    Sum += X[I];
  return Sum;
}

void stats::adamStep(double *W, double *M, double *V, const double *Grad,
                     size_t N, double L2, double Beta1, double Beta2,
                     double Corr1, double Corr2, double Lr, double Eps) {
#ifdef SLOPE_SIMD_AVX2_COMPILED
  if (detail::ColumnKernelsAvx2Flag)
    return detail::adamStepAvx2(W, M, V, Grad, N, L2, Beta1, Beta2, Corr1,
                                Corr2, Lr, Eps);
#endif
  for (size_t I = 0; I < N; ++I) {
    const double G = Grad[I] + L2 * W[I];
    M[I] = Beta1 * M[I] + (1 - Beta1) * G;
    V[I] = Beta2 * V[I] + (1 - Beta2) * G * G;
    W[I] -= Lr * (M[I] / Corr1) / (std::sqrt(V[I] / Corr2) + Eps);
  }
}
