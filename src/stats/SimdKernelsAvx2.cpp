//===- stats/SimdKernelsAvx2.cpp - AVX2 kernel variants --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Compiled with -mavx2 -mfma -O3 -ffp-contract=off (see
// stats/CMakeLists.txt); empty on toolchains without AVX2 support. Never
// call these functions without checking cpuHasAvx2() — the dispatchers in
// SimdKernels.cpp / Matrix.cpp do.
//
// Contract recap (see SimdKernels.h):
//  * Column-parallel kernels put independent output elements in the
//    lanes and use separate multiply+add, never FMA, so every element
//    reproduces the scalar reference bit for bit. -ffp-contract=off is
//    load-bearing: with contraction enabled the compiler may legally
//    fuse a _mm256_add_pd(_mm256_mul_pd(a, b), c) pair into one
//    vfmadd — which rounds once where the scalar reference (compiled
//    for baseline x86-64, no FMA) rounds twice.
//  * K-split kernels spread one contraction across 4 lane accumulators
//    (reassociating the sum) and may use FMA; they are opt-in.
//
// All loads and stores are unaligned-tolerant (loadu/storeu): alignment
// (support/AlignedBuffer.h) is a performance property here, never a
// correctness requirement, so kernels accept arbitrary caller tails.
//
//===----------------------------------------------------------------------===//

#include "stats/SimdKernels.h"

#ifdef SLOPE_SIMD_AVX2_COMPILED

#include <algorithm>
#include <cmath>
#include <immintrin.h>

using namespace slope;
using namespace slope::stats;

namespace {

// Block edge in doubles; matches the scalar kernels in Matrix.cpp so the
// column-parallel variants traverse (and accumulate) in the same order.
constexpr size_t BlockEdge = 64;

/// Reduces the 4 lanes as (l0 + l2) + (l1 + l3) — a fixed pairwise
/// order, part of each K-split kernel's (tolerance-tested) contract.
inline double hsum4(__m256d V) {
  __m128d Pair = _mm_add_pd(_mm256_castpd256_pd128(V),
                            _mm256_extractf128_pd(V, 1));
  return _mm_cvtsd_f64(Pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(Pair, Pair));
}

} // namespace

void detail::gemmAccumulateAvx2(const double *A, const double *B, double *C,
                                size_t M, size_t K, size_t N) {
  // Fast path for N == 32 — the neural-network minibatch width, where
  // this kernel spends its training life: the whole C row lives in 8
  // vector registers across the full K sweep, so C is read and written
  // once per row instead of once per K pair. Each element still adds
  // its K terms one by one in ascending order — bit-identical.
  if (N == 32) {
    for (size_t R = 0; R < M; ++R) {
      const double *ARow = A + R * K;
      double *CRow = C + R * N;
      __m256d Acc0 = _mm256_loadu_pd(CRow + 0);
      __m256d Acc1 = _mm256_loadu_pd(CRow + 4);
      __m256d Acc2 = _mm256_loadu_pd(CRow + 8);
      __m256d Acc3 = _mm256_loadu_pd(CRow + 12);
      __m256d Acc4 = _mm256_loadu_pd(CRow + 16);
      __m256d Acc5 = _mm256_loadu_pd(CRow + 20);
      __m256d Acc6 = _mm256_loadu_pd(CRow + 24);
      __m256d Acc7 = _mm256_loadu_pd(CRow + 28);
      for (size_t Kk = 0; Kk < K; ++Kk) {
        const __m256d Vv = _mm256_set1_pd(ARow[Kk]);
        const double *BRow = B + Kk * N;
        Acc0 = _mm256_add_pd(Acc0, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 0)));
        Acc1 = _mm256_add_pd(Acc1, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 4)));
        Acc2 = _mm256_add_pd(Acc2, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 8)));
        Acc3 = _mm256_add_pd(Acc3, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 12)));
        Acc4 = _mm256_add_pd(Acc4, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 16)));
        Acc5 = _mm256_add_pd(Acc5, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 20)));
        Acc6 = _mm256_add_pd(Acc6, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 24)));
        Acc7 = _mm256_add_pd(Acc7, _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + 28)));
      }
      _mm256_storeu_pd(CRow + 0, Acc0);
      _mm256_storeu_pd(CRow + 4, Acc1);
      _mm256_storeu_pd(CRow + 8, Acc2);
      _mm256_storeu_pd(CRow + 12, Acc3);
      _mm256_storeu_pd(CRow + 16, Acc4);
      _mm256_storeu_pd(CRow + 20, Acc5);
      _mm256_storeu_pd(CRow + 24, Acc6);
      _mm256_storeu_pd(CRow + 28, Acc7);
    }
    return;
  }
  // Same tile order as the scalar kernel ((R, K, C) with fused K pairs);
  // the inner column sweep runs 4 output elements per vector. Each
  // element still computes (C + V0*B0) + V1*B1 with two roundings, so
  // the result is bit-identical to the scalar reference.
  for (size_t R0 = 0; R0 < M; R0 += BlockEdge) {
    size_t REnd = std::min(R0 + BlockEdge, M);
    for (size_t K0 = 0; K0 < K; K0 += BlockEdge) {
      size_t KEnd = std::min(K0 + BlockEdge, K);
      for (size_t C0 = 0; C0 < N; C0 += BlockEdge) {
        size_t CEnd = std::min(C0 + BlockEdge, N);
        for (size_t R = R0; R < REnd; ++R) {
          const double *ARow = A + R * K;
          double *CRow = C + R * N;
          size_t Kk = K0;
          for (; Kk + 2 <= KEnd; Kk += 2) {
            const double V0 = ARow[Kk], V1 = ARow[Kk + 1];
            const __m256d V0v = _mm256_set1_pd(V0);
            const __m256d V1v = _mm256_set1_pd(V1);
            const double *B0 = B + Kk * N;
            const double *B1 = B0 + N;
            size_t Cc = C0;
            for (; Cc + 4 <= CEnd; Cc += 4) {
              __m256d Acc = _mm256_loadu_pd(CRow + Cc);
              Acc = _mm256_add_pd(Acc,
                                  _mm256_mul_pd(V0v, _mm256_loadu_pd(B0 + Cc)));
              Acc = _mm256_add_pd(Acc,
                                  _mm256_mul_pd(V1v, _mm256_loadu_pd(B1 + Cc)));
              _mm256_storeu_pd(CRow + Cc, Acc);
            }
            for (; Cc < CEnd; ++Cc)
              CRow[Cc] = (CRow[Cc] + V0 * B0[Cc]) + V1 * B1[Cc];
          }
          for (; Kk < KEnd; ++Kk) {
            const double V = ARow[Kk];
            const __m256d Vv = _mm256_set1_pd(V);
            const double *BRow = B + Kk * N;
            size_t Cc = C0;
            for (; Cc + 4 <= CEnd; Cc += 4) {
              __m256d Acc = _mm256_loadu_pd(CRow + Cc);
              Acc = _mm256_add_pd(Acc,
                                  _mm256_mul_pd(Vv, _mm256_loadu_pd(BRow + Cc)));
              _mm256_storeu_pd(CRow + Cc, Acc);
            }
            for (; Cc < CEnd; ++Cc)
              CRow[Cc] += V * BRow[Cc];
          }
        }
      }
    }
  }
}

void detail::gemmATransposedAccumulateAvx2(const double *A, const double *B,
                                           double *C, size_t M, size_t K,
                                           size_t N) {
  // K rank-1 updates in ascending K order with fused K pairs, exactly
  // like the scalar kernel; the inner sweep over N output columns runs 4
  // elements per vector (column-parallel, bit-identical).
  size_t Kk = 0;
  for (; Kk + 2 <= K; Kk += 2) {
    const double *A0 = A + Kk * M;
    const double *A1 = A0 + M;
    const double *B0 = B + Kk * N;
    const double *B1 = B0 + N;
    for (size_t Mm = 0; Mm < M; ++Mm) {
      const double V0 = A0[Mm], V1 = A1[Mm];
      const __m256d V0v = _mm256_set1_pd(V0);
      const __m256d V1v = _mm256_set1_pd(V1);
      double *CRow = C + Mm * N;
      size_t I = 0;
      for (; I + 4 <= N; I += 4) {
        __m256d Acc = _mm256_loadu_pd(CRow + I);
        Acc = _mm256_add_pd(Acc, _mm256_mul_pd(V0v, _mm256_loadu_pd(B0 + I)));
        Acc = _mm256_add_pd(Acc, _mm256_mul_pd(V1v, _mm256_loadu_pd(B1 + I)));
        _mm256_storeu_pd(CRow + I, Acc);
      }
      for (; I < N; ++I)
        CRow[I] = (CRow[I] + V0 * B0[I]) + V1 * B1[I];
    }
  }
  for (; Kk < K; ++Kk) {
    const double *ARow = A + Kk * M;
    const double *BRow = B + Kk * N;
    for (size_t Mm = 0; Mm < M; ++Mm)
      detail::axpyAvx2(ARow[Mm], BRow, C + Mm * N, N);
  }
}

void detail::gemmBTransposedAccumulateAvx2(const double *A, const double *B,
                                           double *C, size_t M, size_t K,
                                           size_t N) {
  // K-split kernel: four output columns in flight (like the scalar
  // kernel's four chains), but each column's dot over K runs in a 4-lane
  // vector accumulator with FMA — both operands stream K-contiguous
  // rows, so the loads are plain vectors, no gathers. The lane split and
  // the fused rounding reassociate each sum; opt-in via SimdMode::Avx2.
  for (size_t R0 = 0; R0 < M; R0 += BlockEdge) {
    size_t REnd = std::min(R0 + BlockEdge, M);
    for (size_t C0 = 0; C0 < N; C0 += BlockEdge) {
      size_t CEnd = std::min(C0 + BlockEdge, N);
      for (size_t R = R0; R < REnd; ++R) {
        const double *ARow = A + R * K;
        double *CRow = C + R * N;
        size_t Cc = C0;
        for (; Cc + 4 <= CEnd; Cc += 4) {
          const double *B0 = B + Cc * K;
          const double *B1 = B0 + K;
          const double *B2 = B1 + K;
          const double *B3 = B2 + K;
          __m256d S0 = _mm256_setzero_pd();
          __m256d S1 = _mm256_setzero_pd();
          __m256d S2 = _mm256_setzero_pd();
          __m256d S3 = _mm256_setzero_pd();
          size_t Kk = 0;
          for (; Kk + 4 <= K; Kk += 4) {
            const __m256d Av = _mm256_loadu_pd(ARow + Kk);
            S0 = _mm256_fmadd_pd(Av, _mm256_loadu_pd(B0 + Kk), S0);
            S1 = _mm256_fmadd_pd(Av, _mm256_loadu_pd(B1 + Kk), S1);
            S2 = _mm256_fmadd_pd(Av, _mm256_loadu_pd(B2 + Kk), S2);
            S3 = _mm256_fmadd_pd(Av, _mm256_loadu_pd(B3 + Kk), S3);
          }
          double D0 = CRow[Cc] + hsum4(S0);
          double D1 = CRow[Cc + 1] + hsum4(S1);
          double D2 = CRow[Cc + 2] + hsum4(S2);
          double D3 = CRow[Cc + 3] + hsum4(S3);
          for (; Kk < K; ++Kk) {
            const double V = ARow[Kk];
            D0 += V * B0[Kk];
            D1 += V * B1[Kk];
            D2 += V * B2[Kk];
            D3 += V * B3[Kk];
          }
          CRow[Cc] = D0;
          CRow[Cc + 1] = D1;
          CRow[Cc + 2] = D2;
          CRow[Cc + 3] = D3;
        }
        for (; Cc < CEnd; ++Cc)
          CRow[Cc] = CRow[Cc] + detail::dotAvx2(ARow, B + Cc * K, K);
      }
    }
  }
}

double detail::dotAvx2(const double *A, const double *B, size_t N) {
  // 4-lane K-split accumulator with FMA; remainder terms append to the
  // reduced sum in ascending order. Reassociates — opt-in only.
  __m256d Acc = _mm256_setzero_pd();
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = _mm256_fmadd_pd(_mm256_loadu_pd(A + I), _mm256_loadu_pd(B + I), Acc);
  double Sum = hsum4(Acc);
  for (; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

void detail::axpyAvx2(double Alpha, const double *X, double *Y, size_t N) {
  // Column-parallel (element-wise): bit-identical to the scalar loop.
  const __m256d Av = _mm256_set1_pd(Alpha);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256d Acc = _mm256_loadu_pd(Y + I);
    Acc = _mm256_add_pd(Acc, _mm256_mul_pd(Av, _mm256_loadu_pd(X + I)));
    _mm256_storeu_pd(Y + I, Acc);
  }
  for (; I < N; ++I)
    Y[I] += Alpha * X[I];
}

void detail::quantizeScaleClampAvx2(const double *X, const double *Scale,
                                    const double *Offset, size_t N,
                                    int64_t Clamp, int32_t *Out) {
  // Eight features per step (two 256-bit halves), element-wise with the
  // same operation order, clamp operand order, and cvtpd2dq rounding as
  // the two-wide SSE2 fallback — bit-identical output.
  const double ClampD = static_cast<double>(Clamp);
  const __m256d Lo = _mm256_set1_pd(-ClampD);
  const __m256d Hi = _mm256_set1_pd(ClampD);
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256d V0 = _mm256_loadu_pd(X + I);
    __m256d V1 = _mm256_loadu_pd(X + I + 4);
    V0 = _mm256_add_pd(_mm256_mul_pd(V0, _mm256_loadu_pd(Scale + I)),
                       _mm256_loadu_pd(Offset + I));
    V1 = _mm256_add_pd(_mm256_mul_pd(V1, _mm256_loadu_pd(Scale + I + 4)),
                       _mm256_loadu_pd(Offset + I + 4));
    V0 = _mm256_min_pd(_mm256_max_pd(V0, Lo), Hi);
    V1 = _mm256_min_pd(_mm256_max_pd(V1, Lo), Hi);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I),
                     _mm256_cvtpd_epi32(V0));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I + 4),
                     _mm256_cvtpd_epi32(V1));
  }
  for (; I + 4 <= N; I += 4) {
    __m256d V = _mm256_loadu_pd(X + I);
    V = _mm256_add_pd(_mm256_mul_pd(V, _mm256_loadu_pd(Scale + I)),
                      _mm256_loadu_pd(Offset + I));
    V = _mm256_min_pd(_mm256_max_pd(V, Lo), Hi);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Out + I),
                     _mm256_cvtpd_epi32(V));
  }
  for (; I < N; ++I) {
    const int64_t Q = _mm_cvtsd_si64(_mm_set_sd(X[I] * Scale[I] + Offset[I]));
    Out[I] = static_cast<int32_t>(std::max(-Clamp, std::min(Clamp, Q)));
  }
}

double detail::sumAvx2(const double *X, size_t N) {
  // 4-lane K-split plain sum; remainder terms append to the reduced sum
  // in ascending order. Reassociates — opt-in only.
  __m256d Acc = _mm256_setzero_pd();
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = _mm256_add_pd(Acc, _mm256_loadu_pd(X + I));
  double Sum = hsum4(Acc);
  for (; I < N; ++I)
    Sum += X[I];
  return Sum;
}

void detail::adamStepAvx2(double *W, double *M, double *V, const double *Grad,
                          size_t N, double L2, double Beta1, double Beta2,
                          double Corr1, double Corr2, double Lr, double Eps) {
  // Column-parallel (element-wise). Division and square root are
  // correctly rounded per IEEE in every lane, and the mul/add pairs stay
  // unfused (-ffp-contract=off), so each parameter's update is
  // bit-identical to the scalar reference in SimdKernels.cpp.
  const __m256d B1 = _mm256_set1_pd(Beta1);
  const __m256d OneMinusB1 = _mm256_set1_pd(1 - Beta1);
  const __m256d B2 = _mm256_set1_pd(Beta2);
  const __m256d OneMinusB2 = _mm256_set1_pd(1 - Beta2);
  const __m256d L2v = _mm256_set1_pd(L2);
  const __m256d C1v = _mm256_set1_pd(Corr1);
  const __m256d C2v = _mm256_set1_pd(Corr2);
  const __m256d Lrv = _mm256_set1_pd(Lr);
  const __m256d Epsv = _mm256_set1_pd(Eps);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const __m256d Wv = _mm256_loadu_pd(W + I);
    const __m256d G =
        _mm256_add_pd(_mm256_loadu_pd(Grad + I), _mm256_mul_pd(L2v, Wv));
    const __m256d Mv =
        _mm256_add_pd(_mm256_mul_pd(B1, _mm256_loadu_pd(M + I)),
                      _mm256_mul_pd(OneMinusB1, G));
    const __m256d Vv =
        _mm256_add_pd(_mm256_mul_pd(B2, _mm256_loadu_pd(V + I)),
                      _mm256_mul_pd(_mm256_mul_pd(OneMinusB2, G), G));
    _mm256_storeu_pd(M + I, Mv);
    _mm256_storeu_pd(V + I, Vv);
    const __m256d Step = _mm256_div_pd(
        _mm256_mul_pd(Lrv, _mm256_div_pd(Mv, C1v)),
        _mm256_add_pd(_mm256_sqrt_pd(_mm256_div_pd(Vv, C2v)), Epsv));
    _mm256_storeu_pd(W + I, _mm256_sub_pd(Wv, Step));
  }
  for (; I < N; ++I) {
    const double G = Grad[I] + L2 * W[I];
    M[I] = Beta1 * M[I] + (1 - Beta1) * G;
    V[I] = Beta2 * V[I] + (1 - Beta2) * G * G;
    W[I] -= Lr * (M[I] / Corr1) / (std::sqrt(V[I] / Corr2) + Eps);
  }
}

void detail::gramUpperTileAvx2(const double *Data, size_t NumRows,
                               size_t Stride, size_t I0, size_t IEnd,
                               size_t J0, size_t JEnd, double *G) {
  // Rows ascending with pairs fused into one read-modify-write of G —
  // (G + t_r) + t_r1 associates exactly like two separate row updates —
  // so every element accumulates its rows in the scalar loop's order.
  // Column-parallel within a row pair: bit-identical.
  size_t R = 0;
  for (; R + 2 <= NumRows; R += 2) {
    const double *Row0 = Data + R * Stride;
    const double *Row1 = Row0 + Stride;
    for (size_t I = I0; I < IEnd; ++I) {
      const double V0 = Row0[I], V1 = Row1[I];
      const __m256d V0v = _mm256_set1_pd(V0);
      const __m256d V1v = _mm256_set1_pd(V1);
      double *GRow = G + I * Stride;
      size_t J = std::max(I, J0);
      for (; J + 4 <= JEnd; J += 4) {
        __m256d Acc = _mm256_loadu_pd(GRow + J);
        Acc = _mm256_add_pd(Acc, _mm256_mul_pd(V0v, _mm256_loadu_pd(Row0 + J)));
        Acc = _mm256_add_pd(Acc, _mm256_mul_pd(V1v, _mm256_loadu_pd(Row1 + J)));
        _mm256_storeu_pd(GRow + J, Acc);
      }
      for (; J < JEnd; ++J)
        GRow[J] = (GRow[J] + V0 * Row0[J]) + V1 * Row1[J];
    }
  }
  for (; R < NumRows; ++R) {
    const double *Row = Data + R * Stride;
    for (size_t I = I0; I < IEnd; ++I) {
      double *GRow = G + I * Stride;
      size_t J = std::max(I, J0);
      detail::axpyAvx2(Row[I], Row + J, GRow + J, JEnd - J);
    }
  }
}

double detail::weightedIndexedSumAvx2(const double *Weight,
                                      const uint32_t *Index, size_t N,
                                      const double *Values) {
  // K-split gathered dot: 4 term indices load as one 128-bit vector, the
  // values gather through vgatherdpd, and FMA folds them into 4 lane
  // accumulators. Reassociates — opt-in only. The masked gather form
  // with an all-ones mask loads every lane just like the plain
  // intrinsic, but gives the pass-through operand a defined value (the
  // plain form leaves it uninitialized, which GCC flags under -Werror).
  const __m256d GatherSrc = _mm256_setzero_pd();
  const __m256d GatherMask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d Acc = _mm256_setzero_pd();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const __m128i Idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Index + I));
    const __m256d Vals =
        _mm256_mask_i32gather_pd(GatherSrc, Values, Idx, GatherMask, 8);
    Acc = _mm256_fmadd_pd(_mm256_loadu_pd(Weight + I), Vals, Acc);
  }
  double Sum = hsum4(Acc);
  for (; I < N; ++I)
    Sum += Weight[I] * Values[Index[I]];
  return Sum;
}

#endif // SLOPE_SIMD_AVX2_COMPILED
