//===- stats/SimdKernels.h - AVX2 kernel variants and dispatch --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicitly vectorized (AVX2) variants of the numeric hot kernels,
/// behind runtime CPU dispatch, following the house selectable-algorithm
/// pattern (--tree-algo / --nn-algo / --synth-algo): the scalar kernels
/// stay the selectable reference, --simd / SLOPE_SIMD picks the variant.
///
/// The kernels split into two classes with different contracts:
///
///  * **Column-parallel** kernels (gemmAccumulate,
///    gemmATransposedAccumulate, axpy, quantizeScaleClamp): the vector
///    lanes hold *independent output elements*, so each element's own
///    chain of FP operations — and therefore its result — is bit-for-bit
///    the scalar kernel's. These may be (and by default are) enabled
///    whenever the CPU supports AVX2: SimdMode::Auto. They deliberately
///    use separate multiply+add, never FMA — the scalar reference is
///    compiled for baseline x86-64, which has no FMA instruction, and a
///    fused multiply-add rounds once where multiply+add rounds twice.
///
///  * **K-split** kernels (dot, gemmBTransposedAccumulate,
///    weightedIndexedSum): one output element's contraction is spread
///    across 4 lane accumulators combined at the end, which reassociates
///    the FP sum. Results differ from the scalar reference in the last
///    bits (property-tested relative error < 1e-12), so these run only
///    under the explicit SimdMode::Avx2 opt-in and are gated in CI by a
///    microbench speedup + tolerance check, mirroring --infer-algo's
///    accuracy-for-speed contract. K-split kernels may use FMA.
///
/// Dispatch resolves once per setSimdMode() call from (requested mode,
/// compile-time -mavx2 support, runtime cpuid) — see CpuFeatures.h — so
/// the per-call cost is one predictable branch on a cached flag.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_SIMDKERNELS_H
#define SLOPE_STATS_SIMDKERNELS_H

#include <cstddef>
#include <cstdint>

namespace slope {
namespace stats {

/// Kernel-variant selection for the SIMD dispatch (--simd / SLOPE_SIMD).
enum class SimdMode {
  Auto,   ///< Column-parallel AVX2 when the CPU has it; K-split scalar.
  Avx2,   ///< All AVX2 variants, including the reassociating K-split
          ///< kernels (falls back to scalar where AVX2 is unavailable).
  Scalar, ///< Force every kernel to the scalar bit-identity reference.
};

/// Overrides the process-wide SIMD mode and re-resolves the dispatch
/// flags. The initial value honours the SLOPE_SIMD environment variable
/// ("auto", "avx2", "scalar"); benches expose it as --simd. Not
/// thread-safe against concurrent kernel calls (set it at startup or
/// between phases, like the other --*-algo switches).
void setDefaultSimdMode(SimdMode M);

/// \returns the process-wide requested SIMD mode (never resolves Auto).
SimdMode defaultSimdMode();

/// \returns the variant the column-parallel kernels actually run with
/// under the current mode on this CPU: "avx2" or "scalar". Bench JSON
/// reports this resolved value, not the request.
const char *resolvedSimdVariant();

/// \returns true when the column-parallel (bit-identical) AVX2 kernels
/// are active: mode Auto or Avx2, AVX2 compiled in, CPU support.
bool simdColumnKernelsActive();

/// \returns true when the reassociating K-split AVX2 kernels are active:
/// mode Avx2 only, AVX2 compiled in, CPU support.
bool simdKSplitKernelsActive();

//===----------------------------------------------------------------------===//
// Dispatched kernels that do not live in Matrix.h
//
// (The GEMM / dot / axpy entry points keep their historical home in
// stats/Matrix.h; their implementations dispatch through this TU.)
//===----------------------------------------------------------------------===//

/// Out[i] = round(X[i] * Scale[i] + Offset[i]) clamped to +/-Clamp, with
/// round-to-nearest-even (cvtpd2dq semantics; the scalar fallback uses
/// the identical single-value conversion). Column-parallel: the AVX2
/// variant is eight-wide but element-wise, so results are bit-identical
/// to the scalar reference. ml::QuantizedModel::quantizeRow routes here.
void quantizeScaleClamp(const double *X, const double *Scale,
                        const double *Offset, size_t N, int64_t Clamp,
                        int32_t *Out);

/// \returns sum_i Weight[i] * Values[Index[i]] — the gathered weighted
/// sum the counter-synthesis term table walks (sim::Machine). K-split:
/// the AVX2 variant gathers 4 terms per step into 4 lane accumulators,
/// which reassociates the sum, so it runs only under SimdMode::Avx2; the
/// scalar reference accumulates in ascending term order.
double weightedIndexedSum(const double *Weight, const uint32_t *Index,
                          size_t N, const double *Values);

/// \returns sum_i X[i]. K-split: the scalar reference is one serial
/// ascending chain (the neural-network bias-gradient reduction order);
/// the AVX2 variant splits it across 4 lane accumulators, so it runs
/// only under SimdMode::Avx2.
double sum(const double *X, size_t N);

/// One Adam optimizer step over \p N parameters, exactly the textbook
/// update the neural network always applied:
///   G    = Grad[i] + L2 * W[i]
///   M[i] = Beta1 * M[i] + (1 - Beta1) * G
///   V[i] = Beta2 * V[i] + (1 - Beta2) * G * G
///   W[i] -= Lr * (M[i] / Corr1) / (sqrt(V[i] / Corr2) + Eps)
/// Column-parallel: element-wise, and IEEE requires division and square
/// root to be correctly rounded per lane, so the AVX2 variant (active by
/// default) is bit-identical to the scalar reference.
void adamStep(double *W, double *M, double *V, const double *Grad, size_t N,
              double L2, double Beta1, double Beta2, double Corr1,
              double Corr2, double Lr, double Eps);

namespace detail {

// Resolved dispatch flags, recomputed by setDefaultSimdMode() from
// (requested mode, compile support, cpuid). Read-only everywhere else;
// exposed as globals so the header-inline dot/axpy dispatchers in
// Matrix.h cost one load and a predictable branch per call.
extern bool ColumnKernelsAvx2Flag;
extern bool KSplitKernelsAvx2Flag;

//===----------------------------------------------------------------------===//
// AVX2 kernel variants (defined in SimdKernelsAvx2.cpp, which is compiled
// with -mavx2 -mfma -ffp-contract=off when the toolchain supports it;
// never call these directly — they execute AVX2 instructions
// unconditionally. The dispatchers guard them behind cpuHasAvx2().)
//===----------------------------------------------------------------------===//

#ifdef SLOPE_SIMD_AVX2_COMPILED
void gemmAccumulateAvx2(const double *A, const double *B, double *C,
                        size_t M, size_t K, size_t N);
void gemmATransposedAccumulateAvx2(const double *A, const double *B,
                                   double *C, size_t M, size_t K, size_t N);
void gemmBTransposedAccumulateAvx2(const double *A, const double *B,
                                   double *C, size_t M, size_t K, size_t N);
double dotAvx2(const double *A, const double *B, size_t N);
void axpyAvx2(double Alpha, const double *X, double *Y, size_t N);
void quantizeScaleClampAvx2(const double *X, const double *Scale,
                            const double *Offset, size_t N, int64_t Clamp,
                            int32_t *Out);
double weightedIndexedSumAvx2(const double *Weight, const uint32_t *Index,
                              size_t N, const double *Values);
double sumAvx2(const double *X, size_t N);
void adamStepAvx2(double *W, double *M, double *V, const double *Grad,
                  size_t N, double L2, double Beta1, double Beta2,
                  double Corr1, double Corr2, double Lr, double Eps);
/// Accumulates rows [0, NumRows) of \p Data (row stride \p Stride) into
/// the upper-triangle Gram tile G[I][J] += Data[R][I] * Data[R][J] for
/// I in [I0, IEnd), J in [max(I, J0), JEnd); G shares the row stride.
/// Row pairs fuse into one read-modify-write of G — same ascending
/// per-element accumulation, bit-identical to Matrix::gram's scalar
/// loop. Lives here (not behind a public dispatcher) because only
/// Matrix::gram has the triangle-tile shape to call it with.
void gramUpperTileAvx2(const double *Data, size_t NumRows, size_t Stride,
                       size_t I0, size_t IEnd, size_t J0, size_t JEnd,
                       double *G);
#endif

//===----------------------------------------------------------------------===//
// Scalar reference kernels (defined in stats/Matrix.cpp with the same
// -O3 treatment they always had; the public entry points dispatch
// between these and the AVX2 variants).
//===----------------------------------------------------------------------===//

void gemmAccumulateScalar(const double *A, const double *B, double *C,
                          size_t M, size_t K, size_t N);
void gemmATransposedAccumulateScalar(const double *A, const double *B,
                                     double *C, size_t M, size_t K,
                                     size_t N);
void gemmBTransposedAccumulateScalar(const double *A, const double *B,
                                     double *C, size_t M, size_t K,
                                     size_t N);
double dotScalar(const double *A, const double *B, size_t N);
void axpyScalar(double Alpha, const double *X, double *Y, size_t N);

} // namespace detail
} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_SIMDKERNELS_H
