//===- stats/Solve.cpp - Linear system and least-squares solvers ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Solve.h"

#include <cmath>

using namespace slope;
using namespace slope::stats;

Expected<std::vector<double>>
stats::solveCholesky(const Matrix &A, const std::vector<double> &B) {
  assert(A.rows() == A.cols() && "Cholesky needs a square matrix");
  assert(B.size() == A.rows() && "right-hand side size mismatch");
  size_t N = A.rows();
  // Lower-triangular factor L with A = L L^T. Row pointers keep the inner
  // dot products branch-free; the operation order is unchanged.
  Matrix L(N, N);
  for (size_t I = 0; I < N; ++I) {
    double *LRowI = L.rowSpan(I);
    for (size_t J = 0; J <= I; ++J) {
      const double *LRowJ = L.rowSpan(J);
      double Sum = A.at(I, J);
      for (size_t K = 0; K < J; ++K)
        Sum -= LRowI[K] * LRowJ[K];
      if (I == J) {
        if (Sum <= 0)
          return makeError("matrix is not positive definite");
        LRowI[I] = std::sqrt(Sum);
      } else {
        LRowI[J] = Sum / LRowJ[J];
      }
    }
  }
  // Forward substitution L y = b.
  std::vector<double> Y(N);
  for (size_t I = 0; I < N; ++I) {
    const double *LRowI = L.rowSpan(I);
    double Sum = B[I];
    for (size_t K = 0; K < I; ++K)
      Sum -= LRowI[K] * Y[K];
    Y[I] = Sum / LRowI[I];
  }
  // Back substitution L^T x = y.
  std::vector<double> X(N);
  for (size_t Ip1 = N; Ip1 > 0; --Ip1) {
    size_t I = Ip1 - 1;
    double Sum = Y[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= L.at(K, I) * X[K];
    X[I] = Sum / L.at(I, I);
  }
  return X;
}

Expected<std::vector<double>>
stats::solveLeastSquaresQR(const Matrix &A, const std::vector<double> &B) {
  size_t M = A.rows(), N = A.cols();
  assert(B.size() == M && "right-hand side size mismatch");
  if (M < N)
    return makeError("least squares needs at least as many rows as columns");

  // Householder QR, transforming a working copy of A and B in place.
  // Columns are strided (row-major storage), so the reflector loops walk
  // raw pointers with an explicit stride; every floating-point operation
  // happens in the same order as the assert-checked at() formulation.
  Matrix R = A;
  double *RD = R.data();
  std::vector<double> Rhs = B;
  for (size_t K = 0; K < N; ++K) {
    // Build the Householder vector for column K below the diagonal.
    const double *ColK = RD + K;
    double Alpha = 0;
    for (size_t I = K; I < M; ++I)
      Alpha += ColK[I * N] * ColK[I * N];
    Alpha = std::sqrt(Alpha);
    if (Alpha == 0)
      return makeError("design matrix is rank deficient");
    if (ColK[K * N] > 0)
      Alpha = -Alpha;
    std::vector<double> V(M, 0.0);
    V[K] = ColK[K * N] - Alpha;
    for (size_t I = K + 1; I < M; ++I)
      V[I] = ColK[I * N];
    double VNorm2 = 0;
    for (size_t I = K; I < M; ++I)
      VNorm2 += V[I] * V[I];
    if (VNorm2 == 0)
      continue;
    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and rhs.
    for (size_t C = K; C < N; ++C) {
      double *ColC = RD + C;
      double Proj = 0;
      for (size_t I = K; I < M; ++I)
        Proj += V[I] * ColC[I * N];
      double Scale = 2 * Proj / VNorm2;
      for (size_t I = K; I < M; ++I)
        ColC[I * N] -= Scale * V[I];
    }
    double Proj = 0;
    for (size_t I = K; I < M; ++I)
      Proj += V[I] * Rhs[I];
    double Scale = 2 * Proj / VNorm2;
    for (size_t I = K; I < M; ++I)
      Rhs[I] -= Scale * V[I];
  }

  // Back substitution on the upper-triangular R.
  std::vector<double> X(N);
  for (size_t Kp1 = N; Kp1 > 0; --Kp1) {
    size_t K = Kp1 - 1;
    const double *RowK = R.rowSpan(K);
    double Diag = RowK[K];
    if (std::fabs(Diag) < 1e-12)
      return makeError("design matrix is rank deficient");
    double Sum = Rhs[K];
    for (size_t C = K + 1; C < N; ++C)
      Sum -= RowK[C] * X[C];
    X[K] = Sum / Diag;
  }
  return X;
}

Expected<std::vector<double>>
stats::solveNormalEquations(const Matrix &A, const std::vector<double> &B,
                            double Lambda) {
  assert(Lambda >= 0 && "ridge penalty must be non-negative");
  Matrix G = A.gram();
  for (size_t I = 0; I < G.rows(); ++I)
    G.at(I, I) += Lambda;
  return solveCholesky(G, A.transposeMultiply(B));
}
