//===- stats/Descriptive.h - Descriptive statistics -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sample statistics used throughout the experimental methodology: means,
/// variances, coefficients of variation, and the (min, avg, max) percentage
/// error summaries the paper reports for every model.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_DESCRIPTIVE_H
#define SLOPE_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <string>
#include <vector>

namespace slope {
namespace stats {

/// \returns the arithmetic mean; asserts on an empty sample.
double mean(const std::vector<double> &Xs);

/// \returns the unbiased (n-1) sample variance; asserts on n < 2.
double sampleVariance(const std::vector<double> &Xs);

/// \returns the unbiased sample standard deviation; asserts on n < 2.
double sampleStdDev(const std::vector<double> &Xs);

/// \returns the coefficient of variation (stddev / |mean|); asserts on a
/// zero mean or n < 2. Used by the additivity test's reproducibility stage.
double coefficientOfVariation(const std::vector<double> &Xs);

/// \returns the smallest element; asserts on an empty sample.
double minOf(const std::vector<double> &Xs);

/// \returns the largest element; asserts on an empty sample.
double maxOf(const std::vector<double> &Xs);

/// \returns the median (mean of the two central order statistics for even
/// n); asserts on an empty sample.
double median(std::vector<double> Xs);

/// The (min, avg, max) percentage-error triple reported in Tables 3-5 and
/// 7 of the paper.
struct ErrorSummary {
  double Min = 0;
  double Avg = 0;
  double Max = 0;

  /// Renders in the paper's "(min, avg, max)" style with \p Digits
  /// significant digits.
  std::string str(int Digits = 4) const;
};

/// Summarizes a vector of (already percentage) errors.
ErrorSummary summarizeErrors(const std::vector<double> &ErrorsPct);

/// \returns |Predicted - Actual| / |Actual| * 100. Asserts Actual != 0.
double percentageError(double Predicted, double Actual);

/// Computes per-point percentage errors and summarizes them.
ErrorSummary predictionErrorSummary(const std::vector<double> &Predicted,
                                    const std::vector<double> &Actual);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_DESCRIPTIVE_H
