//===- stats/Solve.h - Linear system and least-squares solvers --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky and Householder-QR solvers backing the regression models.
/// Cholesky handles the (optionally ridge-regularized) normal equations;
/// QR provides a numerically safer path for plain least squares.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_STATS_SOLVE_H
#define SLOPE_STATS_SOLVE_H

#include "stats/Matrix.h"
#include "support/Expected.h"

#include <vector>

namespace slope {
namespace stats {

/// Solves the SPD system A * X = B by Cholesky factorization.
/// \returns an error if \p A is not (numerically) positive definite.
Expected<std::vector<double>> solveCholesky(const Matrix &A,
                                            const std::vector<double> &B);

/// Solves min ||A * X - B||_2 by Householder QR. Requires rows >= cols.
/// \returns an error if \p A is numerically rank deficient.
Expected<std::vector<double>> solveLeastSquaresQR(const Matrix &A,
                                                  const std::vector<double> &B);

/// Solves the (ridge-regularized) normal equations
/// (A^T A + Lambda I) X = A^T B. \p Lambda = 0 gives ordinary least
/// squares via Cholesky.
Expected<std::vector<double>>
solveNormalEquations(const Matrix &A, const std::vector<double> &B,
                     double Lambda = 0.0);

} // namespace stats
} // namespace slope

#endif // SLOPE_STATS_SOLVE_H
