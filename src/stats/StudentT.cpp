//===- stats/StudentT.cpp - Student-t confidence machinery ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/StudentT.h"

#include "stats/Descriptive.h"

#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::stats;

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (Numerical Recipes style); adequate for the t CDF.
static double betaContinuedFraction(double A, double B, double X) {
  const double Tiny = 1e-300;
  const double Eps = 1e-14;
  double Qab = A + B;
  double Qap = A + 1;
  double Qam = A - 1;
  double C = 1;
  double D = 1 - Qab * X / Qap;
  if (std::fabs(D) < Tiny)
    D = Tiny;
  D = 1 / D;
  double H = D;
  for (int M = 1; M <= 400; ++M) {
    double M2 = 2.0 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1 + Aa * D;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = 1 + Aa / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1 + Aa * D;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = 1 + Aa / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1 / D;
    double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1) < Eps)
      break;
  }
  return H;
}

static double regularizedIncompleteBeta(double A, double B, double X) {
  assert(X >= 0 && X <= 1 && "beta argument out of range");
  if (X == 0 || X == 1)
    return X;
  double LnBeta = std::lgamma(A) + std::lgamma(B) - std::lgamma(A + B);
  double Front =
      std::exp(A * std::log(X) + B * std::log(1 - X) - LnBeta);
  // Use the symmetry that keeps the continued fraction convergent.
  if (X < (A + 1) / (A + B + 2))
    return Front * betaContinuedFraction(A, B, X) / A;
  return 1 - Front * betaContinuedFraction(B, A, 1 - X) / B;
}

double stats::tCdf(double X, unsigned Dof) {
  assert(Dof >= 1 && "t distribution needs at least one dof");
  double V = static_cast<double>(Dof);
  double T = V / (V + X * X);
  double P = 0.5 * regularizedIncompleteBeta(V / 2, 0.5, T);
  return X >= 0 ? 1 - P : P;
}

double stats::tCriticalValue(unsigned Dof, double Confidence) {
  assert(Dof >= 1 && "t distribution needs at least one dof");
  assert(Confidence > 0 && Confidence < 1 && "confidence must be in (0,1)");
  double Target = 1 - (1 - Confidence) / 2;
  // CDF is monotone; bisect on [0, Hi]. Dof=1 at 99% needs ~63.7, so
  // start high and expand if required.
  double Lo = 0, Hi = 128;
  while (tCdf(Hi, Dof) < Target)
    Hi *= 2;
  for (int Iter = 0; Iter < 200; ++Iter) {
    double Mid = 0.5 * (Lo + Hi);
    if (tCdf(Mid, Dof) < Target)
      Lo = Mid;
    else
      Hi = Mid;
    if (Hi - Lo < 1e-10)
      break;
  }
  return 0.5 * (Lo + Hi);
}

bool MeanConfidenceInterval::withinPrecision(double Fraction) const {
  assert(Fraction > 0 && "precision fraction must be positive");
  if (Mean == 0)
    return HalfWidth == 0;
  return HalfWidth <= Fraction * std::fabs(Mean);
}

MeanConfidenceInterval
stats::meanConfidenceInterval(const std::vector<double> &Xs,
                              double Confidence) {
  assert(Xs.size() >= 2 && "confidence interval needs at least two points");
  MeanConfidenceInterval CI;
  CI.Mean = mean(Xs);
  double T = tCriticalValue(static_cast<unsigned>(Xs.size() - 1), Confidence);
  CI.HalfWidth = T * sampleStdDev(Xs) / std::sqrt(static_cast<double>(Xs.size()));
  return CI;
}
