//===- stats/Correlation.cpp - Correlation measures -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "stats/Correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace slope;
using namespace slope::stats;

double stats::pearson(const double *Xs, const double *Ys, size_t N) {
  assert(N >= 2 && "correlation needs at least two points");
  double Nd = static_cast<double>(N);
  double MeanX = std::accumulate(Xs, Xs + N, 0.0) / Nd;
  double MeanY = std::accumulate(Ys, Ys + N, 0.0) / Nd;
  double Sxy = 0, Sxx = 0, Syy = 0;
  for (size_t I = 0; I < N; ++I) {
    double Dx = Xs[I] - MeanX;
    double Dy = Ys[I] - MeanY;
    Sxy += Dx * Dy;
    Sxx += Dx * Dx;
    Syy += Dy * Dy;
  }
  // A constant series carries no ordering information; report zero
  // correlation so correlation-based rankings remain well defined.
  if (Sxx == 0 || Syy == 0)
    return 0;
  return Sxy / std::sqrt(Sxx * Syy);
}

double stats::pearson(const std::vector<double> &Xs,
                      const std::vector<double> &Ys) {
  assert(Xs.size() == Ys.size() && "correlation needs paired samples");
  return pearson(Xs.data(), Ys.data(), Xs.size());
}

std::vector<double> stats::midRanks(const std::vector<double> &Xs) {
  std::vector<size_t> Order(Xs.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(),
            [&](size_t A, size_t B) { return Xs[A] < Xs[B]; });
  std::vector<double> Ranks(Xs.size());
  size_t I = 0;
  while (I < Order.size()) {
    size_t J = I;
    while (J + 1 < Order.size() && Xs[Order[J + 1]] == Xs[Order[I]])
      ++J;
    // Positions I..J are tied; give each the average 1-based rank.
    double MidRank = (static_cast<double>(I) + static_cast<double>(J)) / 2 + 1;
    for (size_t K = I; K <= J; ++K)
      Ranks[Order[K]] = MidRank;
    I = J + 1;
  }
  return Ranks;
}

double stats::spearman(const std::vector<double> &Xs,
                       const std::vector<double> &Ys) {
  return pearson(midRanks(Xs), midRanks(Ys));
}
