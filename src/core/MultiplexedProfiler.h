//===- core/MultiplexedProfiler.h - Time-sliced PMC collection ---*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counter multiplexing: the perf-style alternative to the paper's
/// multiple-dedicated-runs methodology. All requested events are
/// collected in a SINGLE application run by time-slicing the PMU among
/// the scheduler's groups; each event is observed for a 1/G share of the
/// runtime and its count is extrapolated by G. The price is a scaling
/// error that grows with the number of groups and with how phase-varying
/// the counter is — which is why the paper (and Likwid's recommended
/// practice) uses dedicated runs per group, accepting the ~53/~99-run
/// cost this library's PmcProfiler models. bench_multiplexing quantifies
/// the trade and its effect on additivity verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_MULTIPLEXEDPROFILER_H
#define SLOPE_CORE_MULTIPLEXEDPROFILER_H

#include "core/PmcProfiler.h"

namespace slope {
namespace core {

/// Error model of time-sliced counting.
struct MultiplexOptions {
  /// Scaling-noise scale: the per-event extrapolation error's lognormal
  /// sigma is ScalingNoiseBase * sqrt(G - 1) for G groups (G == 1 is
  /// exact: the event was counted the whole run).
  double ScalingNoiseBase = 0.05;
  /// Additional error per extra execution phase (compound applications):
  /// slice boundaries interact with phase boundaries, so phase-varying
  /// counters extrapolate worse on compounds.
  double PhaseImbalanceFactor = 0.5;
};

/// Result of a windowed (trace-mode) multiplexed collection: the
/// extrapolated whole-run profile plus the reconstruction bookkeeping.
struct WindowedProfileResult {
  /// Extrapolated totals, ordered like the request (see collectWindowed).
  ProfileResult Profile;
  /// Time windows per run.
  size_t Windows = 0;
  /// Scheduler groups rotated across the windows.
  size_t Groups = 0;
  /// Per-event PMU occupancy: the fraction of run time the event's group
  /// was live on the counters (the extrapolation divisor).
  std::vector<double> Occupancy;
};

/// Collects many PMCs in one run via time-division multiplexing.
class MultiplexedProfiler {
public:
  explicit MultiplexedProfiler(sim::Machine &M,
                               power::HclWattsUp *Meter = nullptr,
                               MultiplexOptions Options = MultiplexOptions())
      : M(M), Meter(Meter), Options(Options) {}

  /// Collects \p Events for \p App with \p Repetitions runs (each run
  /// observes every event through its slice share). RunsUsed equals
  /// Repetitions — the whole point of multiplexing.
  /// \returns an error if the request contains duplicates.
  Expected<ProfileResult> collect(const sim::CompoundApplication &App,
                                  const std::vector<pmc::EventId> &Events,
                                  unsigned Repetitions = 1);

  /// Real PMU multiplexing over a sampled trace: each run is sliced into
  /// \p WindowCount time windows (sim::Machine::runTrace) and the
  /// scheduler's groups rotate across them round-robin — group
  /// (W mod G) owns the counters during window W, exactly how perf's
  /// interval-based rotation behaves. Each event's whole-run total is
  /// reconstructed by occupancy-weighted extrapolation: the sum of its
  /// observed window deltas divided by the fraction of run time its
  /// group was live. The whole-run collect() path stays the reference
  /// this reconstruction is scored against (see bench_streaming_rls).
  /// \returns an error for duplicate events or WindowCount < numGroups
  /// (a group that never gets a slice cannot be extrapolated).
  Expected<WindowedProfileResult>
  collectWindowed(const sim::CompoundApplication &App,
                  const std::vector<pmc::EventId> &Events, size_t WindowCount,
                  unsigned Repetitions = 1);

  /// \returns the number of time-slice groups \p Events require (the
  /// G in the error model).
  Expected<size_t> numGroups(const std::vector<pmc::EventId> &Events) const;

private:
  sim::Machine &M;
  power::HclWattsUp *Meter;
  MultiplexOptions Options;
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_MULTIPLEXEDPROFILER_H
