//===- core/OnlineEstimator.cpp - Deployable online energy model ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/OnlineEstimator.h"

#include "pmc/CounterScheduler.h"

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

Expected<OnlineEstimator>
OnlineEstimator::train(Machine &M, power::HclWattsUp &Meter,
                       const std::vector<std::string> &PmcNames,
                       const std::vector<CompoundApplication> &TrainingApps,
                       ModelFamily Family, uint64_t Seed) {
  if (PmcNames.empty())
    return makeError("an online estimator needs at least one PMC");

  std::vector<pmc::EventId> Events;
  for (const std::string &Name : PmcNames) {
    auto Id = M.registry().lookup(Name);
    if (!Id)
      return Id.error();
    Events.push_back(*Id);
  }

  // Online constraint: all events in one collection run.
  auto Plan = pmc::planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();
  if (Plan->numRuns() != 1)
    return makeError("the selected PMCs need " +
                     std::to_string(Plan->numRuns()) +
                     " collection runs; an online estimator requires 1");

  DatasetBuilder Builder(M, Meter);
  auto Training = Builder.build(TrainingApps, Events);
  if (!Training)
    return Training.error();

  std::unique_ptr<ml::Model> FittedModel = makePaperModel(Family, Seed);
  if (auto Fit = FittedModel->fit(*Training); !Fit)
    return Fit.error();
  // Under --infer-algo quantized the estimator serves the fixed-point
  // twin, calibrated on the training dataset. Propagate build failures
  // (e.g. a non-identity NN) instead of silently serving FP.
  if (ml::defaultInferenceAlgorithm() == ml::InferenceAlgorithm::Quantized) {
    auto Q = ml::QuantizedModel::build(std::move(FittedModel), *Training);
    if (!Q)
      return Q.error();
    FittedModel = Q.takeValue();
  }
  return OnlineEstimator(M, std::move(Events),
                         std::vector<std::string>(PmcNames),
                         std::move(FittedModel));
}

double OnlineEstimator::estimateExecution(const Execution &Exec) const {
  return FittedModel->predict(M->readCounters(Events, Exec));
}

std::vector<double>
OnlineEstimator::estimateExecutions(const std::vector<Execution> &Execs) const {
  ml::Dataset Batch(Names);
  Batch.reserveRows(Execs.size());
  for (const Execution &Exec : Execs)
    Batch.addRow(M->readCounters(Events, Exec), 0.0);
  return FittedModel->predictBatch(Batch);
}

double OnlineEstimator::estimateRun(const CompoundApplication &App) {
  return estimateExecution(M->run(App));
}
