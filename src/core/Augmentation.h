//===- core/Augmentation.h - Additivity-based training augmentation -*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compound augmentation — this project's take on the paper's stated
/// future work: "we will investigate in our future work how additivity
/// can be used to reduce the maximum error percentage for the three
/// types of models."
///
/// The observation: Class A maximum errors explode because compound test
/// points lie outside the training hull (Sect. 5.1's RF/NN blow-ups). If
/// the selected PMCs are additive and dynamic energy obeys conservation,
/// then for any two training points their *sum* is a physically valid
/// synthetic training point for a serial compound — no extra
/// measurements required. Augmenting the training set with such sums
/// extends the hull exactly where compound test points live. Crucially,
/// the synthesis is only sound for additive PMCs: applying it to
/// non-additive counters manufactures points that real compounds do not
/// match, so the technique is itself an argument for additivity-based
/// selection. bench_augmentation quantifies both sides.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_AUGMENTATION_H
#define SLOPE_CORE_AUGMENTATION_H

#include "ml/Dataset.h"

namespace slope {
namespace core {

/// Appends \p NumSynthetic synthetic compound rows to a copy of
/// \p Bases: each is the feature-wise and target-wise sum of two
/// distinct randomly drawn base rows (valid under PMC additivity and
/// energy conservation). Deterministic per \p PairRng seed.
ml::Dataset augmentWithSyntheticCompounds(const ml::Dataset &Bases,
                                          size_t NumSynthetic, Rng PairRng);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_AUGMENTATION_H
