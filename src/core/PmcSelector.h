//===- core/PmcSelector.h - Additivity/correlation PMC selection -*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PMC selection policies: by additivity error (the paper's contribution),
/// by correlation with dynamic energy (the state-of-the-art baseline), and
/// their combination (Class C's PA4 — the most energy-correlated among the
/// most additive). Also the nested-subset construction of the Class A
/// model families (drop the most non-additive PMC one at a time).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_PMCSELECTOR_H
#define SLOPE_CORE_PMCSELECTOR_H

#include "core/AdditivityChecker.h"
#include "ml/Dataset.h"

namespace slope {
namespace core {

/// Orders \p Results by ascending additivity error (most additive first).
std::vector<AdditivityResult>
rankByAdditivity(std::vector<AdditivityResult> Results);

/// \returns the names of the \p K most additive events of \p Results.
std::vector<std::string>
selectMostAdditive(const std::vector<AdditivityResult> &Results, size_t K);

/// Per-feature Pearson correlation with the dataset's target (dynamic
/// energy), in dataset column order.
std::vector<double> energyCorrelations(const ml::Dataset &Data);

/// \returns the \p K feature names of \p Data with the highest
/// correlation with energy. \p Absolute ranks by |r| instead of r (the
/// paper ranks by positive correlation; Table 6 shows negative-r PMCs
/// at the bottom).
std::vector<std::string> selectMostCorrelated(const ml::Dataset &Data,
                                              size_t K,
                                              bool Absolute = false);

/// PCA-based selection — the other statistical baseline in the paper's
/// related-work taxonomy: features are scored by their eigenvalue-
/// weighted absolute loadings over the principal components explaining
/// \p VarianceTarget of the feature variance, and the top \p K are
/// returned. Note this looks only at the PMC space, never at energy —
/// its blindness to both energy and additivity is the point of the
/// comparison in bench_selection_baselines.
std::vector<std::string> selectByPcaLoading(const ml::Dataset &Data,
                                            size_t K,
                                            double VarianceTarget = 0.95);

/// The Class A nested families: element 0 holds all names; element i
/// drops the i most non-additive ones (by descending MaxErrorPct); the
/// last element keeps only the most additive event.
std::vector<std::vector<std::string>>
nestedSubsetsByAdditivity(const std::vector<AdditivityResult> &Results);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_PMCSELECTOR_H
