//===- core/MultiplexedProfiler.cpp - Time-sliced PMC collection ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/MultiplexedProfiler.h"

#include <cmath>
#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

Expected<size_t>
MultiplexedProfiler::numGroups(const std::vector<EventId> &Events) const {
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();
  return Plan->numRuns();
}

Expected<ProfileResult>
MultiplexedProfiler::collect(const CompoundApplication &App,
                             const std::vector<EventId> &Events,
                             unsigned Repetitions) {
  assert(Repetitions >= 1 && "need at least one repetition");
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();
  double Groups = static_cast<double>(Plan->numRuns());

  std::map<EventId, double> Sum;
  ProfileResult Result;
  double EnergySum = 0, TimeSum = 0;
  for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
    Execution Exec = M.run(App);
    ++Result.RunsUsed;
    TimeSum += Exec.totalTimeSec();
    if (Meter)
      EnergySum += Meter->readingFor(Exec).DynamicEnergyJ;

    // Each event is observed for a 1/G slice share and extrapolated.
    // The extrapolation error is deterministic per (run, event) like
    // every other observation in the simulator.
    double Phases = static_cast<double>(Exec.Phases.size());
    double Sigma = Options.ScalingNoiseBase * std::sqrt(Groups - 1.0) *
                   (1.0 + Options.PhaseImbalanceFactor * (Phases - 1.0));
    for (const CollectionRun &Group : Plan->Runs)
      for (EventId Id : Group.Events) {
        Rng MuxRng = Rng(Exec.RunSeed)
                         .fork("mux")
                         .fork(static_cast<uint64_t>(Id) + 1);
        double True = M.readCounter(Id, Exec);
        Sum[Id] += True * MuxRng.lognormalFactor(Sigma);
      }
  }

  Result.Counts.reserve(Events.size());
  for (EventId Id : Events)
    Result.Counts.push_back(Sum[Id] / Repetitions);
  Result.TimeSec = TimeSum / Repetitions;
  Result.DynamicEnergyJ = Meter ? EnergySum / Repetitions : 0.0;
  return Result;
}

Expected<WindowedProfileResult>
MultiplexedProfiler::collectWindowed(const CompoundApplication &App,
                                     const std::vector<EventId> &Events,
                                     size_t WindowCount,
                                     unsigned Repetitions) {
  assert(Repetitions >= 1 && "need at least one repetition");
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();
  const size_t Groups = Plan->numRuns();
  if (WindowCount < Groups)
    return makeError("windowed multiplexing needs at least one window per "
                     "group (" +
                     std::to_string(WindowCount) + " windows < " +
                     std::to_string(Groups) + " groups)");

  // Event -> request slot, so window deltas accumulate into dense arrays
  // instead of a map in the window loop.
  std::map<EventId, size_t> Slot;
  for (size_t I = 0; I < Events.size(); ++I)
    Slot[Events[I]] = I;

  WindowedProfileResult Result;
  Result.Windows = WindowCount;
  Result.Groups = Groups;
  Result.Occupancy.assign(Events.size(), 0.0);
  Result.Profile.Counts.assign(Events.size(), 0.0);

  std::vector<double> ObservedSum(Events.size(), 0.0);
  std::vector<double> ObservedSec(Events.size(), 0.0);
  std::vector<double> WindowCounts;
  double EnergySum = 0, TimeSum = 0, TotalSec = 0;
  for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
    ExecutionTrace Trace = M.runTrace(App, WindowCount);
    ++Result.Profile.RunsUsed;
    TimeSum += Trace.Exec.totalTimeSec();
    TotalSec += Trace.Exec.totalTimeSec();
    if (Meter)
      EnergySum += Meter->readingFor(Trace.Exec).DynamicEnergyJ;

    // Round-robin rotation: window W belongs to group (W mod G), so
    // every group's occupancy converges to 1/G and slice boundaries
    // sweep across phase boundaries instead of pinning to them.
    for (size_t W = 0; W < WindowCount; ++W) {
      const CollectionRun &Group = Plan->Runs[W % Groups];
      WindowCounts.resize(Group.Events.size());
      M.readCountersWindow(Group.Events.data(), Group.Events.size(), Trace,
                           W, WindowCounts.data());
      for (size_t I = 0; I < Group.Events.size(); ++I) {
        const size_t S = Slot[Group.Events[I]];
        ObservedSum[S] += WindowCounts[I];
        ObservedSec[S] += Trace.Windows[W].DtSec;
      }
    }
  }

  // Occupancy-weighted extrapolation: scale each event's observed sum by
  // the share of run time its group actually held the counters. With
  // round-robin rotation occupancy is ~1/G, but uneven window widths
  // (the last window absorbs rounding) are credited exactly.
  for (size_t S = 0; S < Events.size(); ++S) {
    Result.Occupancy[S] = TotalSec > 0 ? ObservedSec[S] / TotalSec : 0;
    Result.Profile.Counts[S] =
        Result.Occupancy[S] > 0
            ? ObservedSum[S] / (Result.Occupancy[S] *
                                static_cast<double>(Repetitions))
            : 0;
  }
  Result.Profile.TimeSec = TimeSum / Repetitions;
  Result.Profile.DynamicEnergyJ = Meter ? EnergySum / Repetitions : 0.0;
  return Result;
}
