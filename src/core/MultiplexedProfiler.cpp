//===- core/MultiplexedProfiler.cpp - Time-sliced PMC collection ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/MultiplexedProfiler.h"

#include <cmath>
#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

Expected<size_t>
MultiplexedProfiler::numGroups(const std::vector<EventId> &Events) const {
  auto Plan = planCollection(M.registry(), Events);
  if (!Plan)
    return Plan.error();
  return Plan->numRuns();
}

Expected<ProfileResult>
MultiplexedProfiler::collect(const CompoundApplication &App,
                             const std::vector<EventId> &Events,
                             unsigned Repetitions) {
  assert(Repetitions >= 1 && "need at least one repetition");
  auto Plan = planCollection(M.registry(), Events);
  if (!Plan)
    return Plan.error();
  double Groups = static_cast<double>(Plan->numRuns());

  std::map<EventId, double> Sum;
  ProfileResult Result;
  double EnergySum = 0, TimeSum = 0;
  for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
    Execution Exec = M.run(App);
    ++Result.RunsUsed;
    TimeSum += Exec.totalTimeSec();
    if (Meter)
      EnergySum += Meter->readingFor(Exec).DynamicEnergyJ;

    // Each event is observed for a 1/G slice share and extrapolated.
    // The extrapolation error is deterministic per (run, event) like
    // every other observation in the simulator.
    double Phases = static_cast<double>(Exec.Phases.size());
    double Sigma = Options.ScalingNoiseBase * std::sqrt(Groups - 1.0) *
                   (1.0 + Options.PhaseImbalanceFactor * (Phases - 1.0));
    for (const CollectionRun &Group : Plan->Runs)
      for (EventId Id : Group.Events) {
        Rng MuxRng = Rng(Exec.RunSeed)
                         .fork("mux")
                         .fork(static_cast<uint64_t>(Id) + 1);
        double True = M.readCounter(Id, Exec);
        Sum[Id] += True * MuxRng.lognormalFactor(Sigma);
      }
  }

  Result.Counts.reserve(Events.size());
  for (EventId Id : Events)
    Result.Counts.push_back(Sum[Id] / Repetitions);
  Result.TimeSec = TimeSum / Repetitions;
  Result.DynamicEnergyJ = Meter ? EnergySum / Repetitions : 0.0;
  return Result;
}
