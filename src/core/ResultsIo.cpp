//===- core/ResultsIo.cpp - Experiment result archival ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ResultsIo.h"

#include "support/Csv.h"
#include "support/Str.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

namespace {
std::string formatDouble(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", V);
  return Buffer;
}

void addModelRows(CsvWriter &Writer, const std::string &Family,
                  const std::vector<ModelEvalRow> &Rows) {
  for (const ModelEvalRow &Row : Rows)
    Writer.addRow({"model", Family, Row.Label,
                   str::join(Row.Pmcs, ";"),
                   formatDouble(Row.Errors.Min),
                   formatDouble(Row.Errors.Avg),
                   formatDouble(Row.Errors.Max)});
}
} // namespace

std::string core::classAResultToCsv(const ClassAResult &Result) {
  CsvWriter Writer(
      {"kind", "group", "label", "detail", "v1", "v2", "v3"});
  for (const AdditivityResult &R : Result.AdditivityTable)
    Writer.addRow({"additivity", "class-a", R.Name,
                   R.Additive ? "additive" : "non-additive",
                   formatDouble(R.MaxErrorPct), formatDouble(R.WorstCv),
                   R.Deterministic ? "deterministic" : "non-reproducible"});
  addModelRows(Writer, "LR", Result.Lr);
  addModelRows(Writer, "RF", Result.Rf);
  addModelRows(Writer, "NN", Result.Nn);
  return Writer.str();
}

std::string core::classBCResultToCsv(const ClassBCResult &Result) {
  CsvWriter Writer(
      {"kind", "group", "label", "detail", "v1", "v2", "v3"});
  for (const PmcCorrelationRow &Row : Result.Pa)
    Writer.addRow({"correlation", "PA", Row.Name,
                   Row.Additive ? "additive" : "non-additive",
                   formatDouble(Row.Correlation),
                   formatDouble(Row.AdditivityErrorPct), ""});
  for (const PmcCorrelationRow &Row : Result.Pna)
    Writer.addRow({"correlation", "PNA", Row.Name,
                   Row.Additive ? "additive" : "non-additive",
                   formatDouble(Row.Correlation),
                   formatDouble(Row.AdditivityErrorPct), ""});
  addModelRows(Writer, "class-b", Result.ClassB);
  addModelRows(Writer, "class-c", Result.ClassC);
  return Writer.str();
}

Expected<bool> core::writeResultCsv(const std::string &Csv,
                                    const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return makeError("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Csv.data(), 1, Csv.size(), File);
  std::fclose(File);
  if (Written != Csv.size())
    return makeError("short write to '" + Path + "'");
  return true;
}
