//===- core/AdditivityStudy.h - Full-catalogue additivity scans --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Platform-wide additivity study: run the two-stage test over *every*
/// significant event of a platform and summarize the landscape. This is
/// the study of the paper's predecessor (Shahid et al., "Additivity: a
/// selection criterion for performance events for reliable energy
/// predictive modeling", Supercomput. Front. Innovations 2017), whose
/// finding — "while many PMCs are potentially additive, a considerable
/// number of PMCs are not" — motivates this paper.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_ADDITIVITYSTUDY_H
#define SLOPE_CORE_ADDITIVITYSTUDY_H

#include "core/AdditivityChecker.h"

namespace slope {
namespace core {

/// Outcome of a platform-wide scan.
struct AdditivityStudyResult {
  std::vector<AdditivityResult> Results; ///< One per tested event.
  size_t NumAdditive = 0;
  size_t NumNonAdditive = 0;       ///< Deterministic but failing Eq. 1.
  size_t NumNonReproducible = 0;   ///< Failing stage 1's CV bound.
  size_t NumInsignificant = 0;     ///< Below the counts filter.

  size_t numTested() const { return Results.size(); }

  /// Histogram of max additivity errors for the deterministic events:
  /// bucket i counts errors in [Edges[i], Edges[i+1]); a final bucket
  /// collects everything >= Edges.back().
  std::vector<size_t> errorHistogram(const std::vector<double> &Edges) const;
};

/// Scans every significant event of \p M's registry over \p Compounds.
/// Significance here means the registry event has a non-empty synthesis
/// mapping; the checker's stage 1 independently re-filters empirically.
AdditivityStudyResult
runAdditivityStudy(sim::Machine &M,
                   const std::vector<sim::CompoundApplication> &Compounds,
                   const AdditivityTestConfig &Config = {});

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_ADDITIVITYSTUDY_H
