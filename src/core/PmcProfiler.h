//===- core/PmcProfiler.h - Multi-run PMC collection ------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects a set of PMCs for an application the way real tooling must:
/// by scheduling the events onto the PMU's limited counter registers
/// (pmc::planCollection) and executing the application once per
/// collection run. Reports the number of runs spent, which is the cost
/// the paper quantifies (~53 runs on Haswell, ~99 on Skylake for the full
/// catalogue — the motivation for 4-PMC online models).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_PMCPROFILER_H
#define SLOPE_CORE_PMCPROFILER_H

#include "power/HclWattsUp.h"
#include "sim/Machine.h"

namespace slope {
namespace core {

namespace detail {
/// Test-only hook bracketing the profiler's warm reduction loop (the
/// per-run, per-repetition counter reads and accumulations): called with
/// true on entry and false on exit, after all scratch buffers are sized.
/// Tests use it to assert the loop performs zero heap allocations.
extern void (*ProfilerRepLoopProbe)(bool Entering);
} // namespace detail

/// Result of one profiling request.
struct ProfileResult {
  /// Mean counts, ordered like the requested event ids.
  std::vector<double> Counts;
  /// Number of application executions performed.
  size_t RunsUsed = 0;
  /// Dynamic energy (J) measured on the profiling runs (mean across
  /// runs), if an energy meter was attached.
  double DynamicEnergyJ = 0;
  /// Total energy (J), same conditions.
  double TotalEnergyJ = 0;
  /// Mean wall-clock seconds per run.
  double TimeSec = 0;
};

/// Schedules and performs PMC collection runs on a Machine.
class PmcProfiler {
public:
  /// \p Meter may be null; energy fields are then zero.
  explicit PmcProfiler(sim::Machine &M, power::HclWattsUp *Meter = nullptr)
      : M(M), Meter(Meter) {}

  /// Collects \p Events for \p App. Each collection run executes the
  /// application \p Repetitions times and averages the group's counts.
  /// \returns an error if the request contains duplicates.
  Expected<ProfileResult> collect(const sim::CompoundApplication &App,
                                  const std::vector<pmc::EventId> &Events,
                                  unsigned Repetitions = 1);

  /// \returns the number of runs needed to collect \p Events once.
  Expected<size_t> collectionCost(const std::vector<pmc::EventId> &Events) const;

  /// Reduces already-performed executions (and their optional per-run
  /// meter readings) into the profile collect() would report. \p Execs
  /// must hold Plan.numRuns() * \p Repetitions executions in plan order
  /// (collection-run major, repetition minor); \p Readings, when non-null,
  /// must parallel \p Execs. Pure with respect to the machine (counter
  /// synthesis is const), so disjoint campaigns — e.g. the per-application
  /// slices of DatasetBuilder::build — may reduce concurrently.
  ProfileResult reduceRuns(const pmc::CollectionPlan &Plan,
                           const std::vector<pmc::EventId> &Events,
                           unsigned Repetitions, const sim::Execution *Execs,
                           const power::EnergyReading *Readings) const;

private:
  sim::Machine &M;
  power::HclWattsUp *Meter;
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_PMCPROFILER_H
