//===- core/Attribution.cpp - Component-level energy attribution ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Attribution.h"

#include "support/Str.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::core;

std::vector<EnergyContribution>
core::attributeEnergy(const ml::LinearRegression &Model,
                      const std::vector<std::string> &PmcNames,
                      const std::vector<double> &Counts) {
  assert(PmcNames.size() == Counts.size() &&
         "names and counts must pair up");
  assert(Model.coefficients().size() == Counts.size() &&
         "model width does not match the observation");

  std::vector<EnergyContribution> Parts;
  double Total = Model.intercept();
  for (size_t I = 0; I < Counts.size(); ++I) {
    EnergyContribution Part;
    Part.Pmc = PmcNames[I];
    Part.Joules = Model.coefficients()[I] * Counts[I];
    Total += Part.Joules;
    Parts.push_back(std::move(Part));
  }
  if (Model.intercept() != 0)
    Parts.push_back({"(intercept)", Model.intercept(), 0});

  for (EnergyContribution &Part : Parts)
    Part.Share = Total != 0 ? Part.Joules / Total : 0;
  std::stable_sort(Parts.begin(), Parts.end(),
                   [](const EnergyContribution &A,
                      const EnergyContribution &B) {
                     return A.Share > B.Share;
                   });
  return Parts;
}

std::string
core::renderAttribution(const std::vector<EnergyContribution> &Parts) {
  TablePrinter T({"PMC term", "Energy (J)", "Share (%)"});
  for (const EnergyContribution &Part : Parts)
    T.addRow({Part.Pmc, str::compact(Part.Joules, 4),
              str::fixed(Part.Share * 100, 1)});
  return T.render();
}
