//===- core/DatasetBuilder.cpp - Experiment dataset construction ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/DatasetBuilder.h"

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

Expected<ml::Dataset>
DatasetBuilder::build(const std::vector<CompoundApplication> &Apps,
                      const std::vector<EventId> &Events) {
  std::vector<std::string> Names;
  Names.reserve(Events.size());
  for (EventId Id : Events)
    Names.push_back(M.registry().event(Id).Name);

  ml::Dataset Data(Names);
  for (const CompoundApplication &App : Apps) {
    auto Profile = Profiler.collect(App, Events, Options.Repetitions);
    if (!Profile)
      return Profile.error();
    // Energy comes from the same profiling campaign (mean of the
    // per-run meter readings), as in the paper's setup where PMCs and
    // energy are recorded for the same application execution.
    Data.addRow(Profile->Counts, Options.UseTotalEnergy
                                     ? Profile->TotalEnergyJ
                                     : Profile->DynamicEnergyJ);
  }
  return Data;
}

Expected<ml::Dataset>
DatasetBuilder::buildByName(const std::vector<CompoundApplication> &Apps,
                            const std::vector<std::string> &EventNames) {
  std::vector<EventId> Events;
  Events.reserve(EventNames.size());
  for (const std::string &Name : EventNames) {
    auto Id = M.registry().lookup(Name);
    if (!Id)
      return Id.error();
    Events.push_back(*Id);
  }
  return build(Apps, Events);
}
