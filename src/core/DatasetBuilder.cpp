//===- core/DatasetBuilder.cpp - Experiment dataset construction ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/DatasetBuilder.h"

#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

Expected<ml::Dataset>
DatasetBuilder::build(const std::vector<CompoundApplication> &Apps,
                      const std::vector<EventId> &Events) {
  // Charged on the calling thread so the counter reflects the campaign's
  // wall clock and credits the parallel fan-out below.
  ScopedPhase Timer(Phase::Profile);

  std::vector<std::string> Names;
  Names.reserve(Events.size());
  for (EventId Id : Events)
    Names.push_back(M.registry().event(Id).Name);

  ml::Dataset Data(Names);
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();

  // The whole campaign decomposes into four stages that together are
  // bit-identical to profiling each application serially:
  //   1. run seeds fork from the machine's stateful counter serially, in
  //      application-major order — the order a serial scan consumes them;
  //   2. the executions themselves are pure given a seed, so all
  //      applications' runs fan out over the pool into disjoint slots;
  //   3. meter readings are stateful (the sampling RNG advances per
  //      reading) and stay serial in the same scan order;
  //   4. the per-application reductions are pure reads of (2) and (3)
  //      and fan out again, one disjoint slice each.
  const size_t RunsPerApp = Plan->numRuns() * Options.Repetitions;
  std::vector<uint64_t> Seeds = M.forkRunSeeds(Apps.size() * RunsPerApp);
  std::vector<Execution> Execs(Seeds.size());
  // Individual runs and reductions are microseconds of work, so hand the
  // pool contiguous blocks; each index still writes only its own slot.
  parallelFor(0, Execs.size(), 64, [&](size_t I) {
    Execs[I] = M.runWithSeed(Apps[I / RunsPerApp], Seeds[I]);
  });
  std::vector<power::EnergyReading> Readings = Meter.readingsFor(Execs);

  std::vector<ProfileResult> Results(Apps.size());
  parallelFor(0, Apps.size(), 8, [&](size_t A) {
    Results[A] =
        Profiler.reduceRuns(*Plan, Events, Options.Repetitions,
                            Execs.data() + A * RunsPerApp,
                            Readings.data() + A * RunsPerApp);
  });

  // Energy comes from the same profiling campaign (mean of the per-run
  // meter readings), as in the paper's setup where PMCs and energy are
  // recorded for the same application execution.
  for (const ProfileResult &Profile : Results)
    Data.addRow(Profile.Counts, Options.UseTotalEnergy
                                    ? Profile.TotalEnergyJ
                                    : Profile.DynamicEnergyJ);
  return Data;
}

Expected<ml::Dataset>
DatasetBuilder::buildByName(const std::vector<CompoundApplication> &Apps,
                            const std::vector<std::string> &EventNames) {
  std::vector<EventId> Events;
  Events.reserve(EventNames.size());
  for (const std::string &Name : EventNames) {
    auto Id = M.registry().lookup(Name);
    if (!Id)
      return Id.error();
    Events.push_back(*Id);
  }
  return build(Apps, Events);
}
