//===- core/DerivedMetrics.h - likwid-style derived metrics ------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived metrics computed from raw group counts plus runtime, in the
/// style of likwid-perfctr's per-group metric tables (GFLOP/s, memory
/// bandwidth, branch misprediction ratio, uops per second, ...). Metrics
/// are defined per performance group and evaluated against the counts a
/// profiler collected for that group.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_DERIVEDMETRICS_H
#define SLOPE_CORE_DERIVEDMETRICS_H

#include "pmc/PerformanceGroups.h"

#include <string>
#include <vector>

namespace slope {
namespace core {

/// One computed metric.
struct DerivedMetric {
  std::string Name; ///< e.g. "DP GFLOP/s".
  double Value = 0;
};

/// Computes the derived metrics of \p Group from its collected
/// \p Counts (ordered like Group.EventNames) and the run's wall-clock
/// \p TimeSec. Groups without specific formulas still yield the generic
/// per-second rate of each raw event. Asserts Counts matches the group.
std::vector<DerivedMetric>
computeDerivedMetrics(const pmc::PerformanceGroup &Group,
                      const std::vector<double> &Counts, double TimeSec);

/// Renders metrics as an aligned table.
std::string renderDerivedMetrics(const std::vector<DerivedMetric> &Metrics);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_DERIVEDMETRICS_H
