//===- core/Experiments.h - Class A/B/C/D experiment drivers ----*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers reproducing the paper's three experiment classes (Sect. 5):
///
///  * Class A (Haswell, diverse suite): additivity errors of the six
///    selected PMCs (Table 2) and the nested LR/RF/NN model families that
///    drop the most non-additive PMC one at a time (Tables 3-5).
///  * Class B (Skylake, DGEMM+FFT): application-specific models built on
///    the nine most additive PMCs (PA) vs nine non-additive,
///    literature-popular PMCs (PNA) — Tables 6 and 7a.
///  * Class C (Skylake): the online four-PMC setting — PA4 vs PNA4
///    selected by energy correlation — Table 7b.
///  * Class D (platform zoo): cross-architecture model transfer over
///    Haswell, Skylake, AMD Zen2 and ARM big.LITTLE via the canonical
///    counter dictionary, with and without additivity filtering.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_EXPERIMENTS_H
#define SLOPE_CORE_EXPERIMENTS_H

#include "core/AdditivityChecker.h"
#include "core/ModelZoo.h"
#include "stats/Descriptive.h"

namespace slope {
namespace core {

/// One model row of Tables 3-5 / 7.
struct ModelEvalRow {
  std::string Label;                ///< "LR1", "RF-A", "NN-A4", ...
  std::vector<std::string> Pmcs;    ///< Predictor PMC names.
  std::vector<double> Coefficients; ///< LR only; empty otherwise.
  stats::ErrorSummary Errors;       ///< Percentage prediction errors.
};

/// Class A configuration (defaults follow the paper).
struct ClassAConfig {
  /// Model-family selection bits for the Tables 3-5 sweep.
  enum FamilyBits : unsigned {
    FamilyLR = 1u << 0,
    FamilyRF = 1u << 1,
    FamilyNN = 1u << 2,
    FamilyAll = FamilyLR | FamilyRF | FamilyNN,
  };

  size_t NumBaseApps = 277;
  size_t NumCompounds = 50;
  uint64_t Seed = 2019;
  AdditivityTestConfig Additivity;
  /// NN training epochs (reduce for quick runs/tests).
  unsigned NnEpochs = 300;
  /// RF ensemble size.
  size_t RfTrees = 100;
  /// Which families the model sweep trains (bitmask of FamilyBits).
  /// Every variant is seeded independently by (family, subset), so a
  /// restricted sweep produces rows bit-identical to a full one; family
  /// benches use this to isolate their kernel.
  unsigned Families = FamilyAll;
  /// Number of times the model sweep runs (later passes overwrite with
  /// identical rows). Perf gates raise this so kernel time dominates the
  /// fixed simulator/dataset setup cost.
  unsigned SweepRepeat = 1;
};

/// Class A outcome.
struct ClassAResult {
  /// Additivity verdicts for X1..X6 in presentation order (Table 2).
  std::vector<AdditivityResult> AdditivityTable;
  std::vector<ModelEvalRow> Lr; ///< LR1..LR6 (Table 3).
  std::vector<ModelEvalRow> Rf; ///< RF1..RF6 (Table 4).
  std::vector<ModelEvalRow> Nn; ///< NN1..NN6 (Table 5).
  size_t TrainRows = 0;
  size_t TestRows = 0;
};

/// Runs the full Class A pipeline on the simulated Haswell server.
ClassAResult runClassA(const ClassAConfig &Config = ClassAConfig());

/// Class B/C configuration (defaults follow the paper).
struct ClassBCConfig {
  size_t NumAdditivityBases = 50;
  size_t NumAdditivityCompounds = 30;
  size_t TrainRows = 651; ///< Of the 801-point dataset; 150 test.
  uint64_t Seed = 2019;
  AdditivityTestConfig Additivity;
  unsigned NnEpochs = 300;
  size_t RfTrees = 100;
  /// Set to reduce the 801-point model dataset for quick runs (0 = all).
  size_t MaxDatasetPoints = 0;
  /// Number of times the profiling campaign (additivity study + dataset
  /// build) runs; passes after the first are discarded, so every table
  /// stays byte-identical. Perf gates raise this so campaign time
  /// dominates runner timing noise.
  unsigned ProfileRepeat = 1;
};

/// One Table 6 row: a PMC with its energy correlation and additivity.
struct PmcCorrelationRow {
  std::string Name;
  double Correlation = 0;
  double AdditivityErrorPct = 0;
  bool Additive = false;
};

/// Class B and C outcome.
struct ClassBCResult {
  std::vector<PmcCorrelationRow> Pa;  ///< Table 6, additive set.
  std::vector<PmcCorrelationRow> Pna; ///< Table 6, non-additive set.
  std::vector<ModelEvalRow> ClassB;   ///< Table 7a rows.
  std::vector<ModelEvalRow> ClassC;   ///< Table 7b rows.
  std::vector<std::string> Pa4;       ///< Class C additive subset.
  std::vector<std::string> Pna4;      ///< Class C non-additive subset.
  size_t TrainRows = 0;
  size_t TestRows = 0;
};

/// Runs the Class B and Class C pipelines on the simulated Skylake server.
ClassBCResult runClassBC(const ClassBCConfig &Config = ClassBCConfig());

/// Class D configuration: cross-architecture model transfer over the
/// platform zoo (Haswell, Skylake, Zen2, ARM big.LITTLE).
struct ClassDConfig {
  /// Class D filters with a looser additivity threshold than Class A's
  /// 5%: the filter's job here is to drop the worst non-additive
  /// counters (divider and icache-miss class events) while leaving a
  /// usable cross-platform intersection — the Class B "most additive"
  /// ranking in threshold form. At 5% the intersection collapses to a
  /// single counter and filtered transfer models are trivially weak.
  ClassDConfig() { Additivity.TolerancePct = 20.0; }

  size_t NumBaseApps = 60;
  size_t NumCompounds = 30;
  uint64_t Seed = 2019;
  AdditivityTestConfig Additivity;
  unsigned NnEpochs = 150;
  size_t RfTrees = 50;
};

/// One transfer cell: a model family trained on platform X evaluated on
/// platform Y over a canonical counter set.
struct TransferCell {
  std::string Family;            ///< "LR", "RF", "NN".
  bool Filtered = false;         ///< Additivity-filtered counter set?
  std::vector<std::string> Pmcs; ///< Canonical counter names used.
  stats::ErrorSummary Errors;    ///< Percentage prediction errors on Y.
};

/// All transfer cells of one ordered (train, test) platform pair.
struct TransferPairResult {
  std::string TrainPlatform;
  std::string TestPlatform;
  std::vector<TransferCell> Cells;
};

/// Per-platform summary for the Class D tables.
struct ClassDPlatformInfo {
  std::string Key;  ///< "haswell", "skylake", "zen2", "biglittle".
  std::string Name; ///< Display name.
  /// Canonical counters the platform offers, in dictionary order.
  std::vector<std::string> Canonical;
  /// The empirically additive subset (all clusters, for big.LITTLE).
  std::vector<std::string> AdditiveCanonical;
};

/// Class D outcome.
struct ClassDResult {
  std::vector<ClassDPlatformInfo> Platforms;
  /// Every ordered platform pair (X != Y), X-major in platform order.
  std::vector<TransferPairResult> Pairs;
  /// On-board comparison for big.LITTLE: pooled one-model rows vs
  /// per-cluster rows (one model per cluster, attributions summed in
  /// cluster order), per family.
  std::vector<ModelEvalRow> BigLittle;
  size_t TrainRowsPerPlatform = 0;
  size_t TestRowsPerPlatform = 0;
};

/// Runs the Class D cross-architecture transfer study over the platform
/// zoo: per-platform profiling campaigns with canonical counters, model
/// training on each platform, and evaluation on every other platform with
/// and without additivity filtering (counter sets intersected across the
/// pair). big.LITTLE datasets are per-cluster (one machine per cluster,
/// counts and energies summed in deterministic cluster order).
ClassDResult runClassD(const ClassDConfig &Config = ClassDConfig());

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_EXPERIMENTS_H
