//===- core/FleetTrace.h - Simulated fleet observation stream ---*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synthetic heavy-traffic observation stream for the serving engine:
/// millions of (tenant-id, app-id, PMC-vector) records drawn from a
/// Zipf-skewed tenant population running a catalogue of app templates.
/// Feature vectors are grounded in the simulator — each app template is
/// executed a few times on the machine and its single-run PMC subset read
/// back as prototype rows — then each observation picks a prototype and
/// applies per-observation lognormal jitter, so a million-record trace
/// costs a handful of machine runs, not a million.
///
/// Synthesis is deterministic: observation I draws everything from
/// Rng::fork(I), so generation parallelizes over the pool and the trace
/// is bit-identical at any thread count (the house splittable-seeding
/// style, see support/ThreadPool.h).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_FLEETTRACE_H
#define SLOPE_CORE_FLEETTRACE_H

#include "sim/Machine.h"
#include "support/Expected.h"

#include <cstdint>
#include <vector>

namespace slope {
namespace core {

/// Shape of the synthesized stream.
struct FleetTraceConfig {
  size_t NumObservations = 1000000;
  uint32_t NumTenants = 10000;
  /// Zipf exponent of the tenant popularity distribution: tenant T is
  /// drawn with weight (T+1)^-Skew, so low tenant ids are hot (the top
  /// tenant of a 10k-tenant fleet at 1.1 carries ~14% of the traffic).
  double TenantSkew = 1.1;
  /// Machine executions per app template; each observation reuses one.
  size_t PrototypesPerApp = 8;
  /// Sigma of the per-feature lognormal jitter applied per observation.
  double JitterSigma = 0.05;
  /// Sigma of the lognormal measurement noise on the energy labels.
  double LabelNoiseSigma = 0.02;
  /// Workload drift: each app's energy-per-feature ratio ramps linearly
  /// across the trace by a per-app factor in [-DriftMax, +DriftMax]
  /// (intensity creep a model trained on the head of the stream cannot
  /// see). 0 keeps labels stationary. Drift scales the labels only —
  /// feature values are bit-identical at any DriftMax, because the label
  /// draws come after the feature draws in observation I's fork(I)
  /// stream.
  double DriftMax = 0;
  uint64_t Seed = 0xF1EE7;
};

/// An immutable, replayable observation stream in columnar storage.
class FleetTrace {
public:
  /// Synthesizes a trace: runs every template in \p Apps
  /// Config.PrototypesPerApp times on \p M, reads the \p Events subset of
  /// each execution as a prototype row, then draws
  /// Config.NumObservations records. \returns an error for an empty app
  /// catalogue, an empty event subset, or zero tenants.
  static Expected<FleetTrace>
  synthesize(sim::Machine &M, const std::vector<pmc::EventId> &Events,
             const std::vector<sim::CompoundApplication> &Apps,
             const FleetTraceConfig &Config);

  size_t size() const { return Tenants.size(); }
  size_t width() const { return Width; }
  uint32_t numTenants() const { return NumTenants; }
  uint32_t numApps() const { return NumApps; }

  uint32_t tenant(size_t I) const { return Tenants[I]; }
  uint32_t app(size_t I) const { return Apps[I]; }

  /// \returns observation \p I's feature row (width() values).
  const double *features(size_t I) const {
    return Features.data() + I * Width;
  }

  /// \returns observation \p I's measured dynamic energy (J): the
  /// prototype run's ground truth under the configured drift ramp and
  /// label noise — the target the online-retrain path learns from.
  double label(size_t I) const { return Labels[I]; }

private:
  FleetTrace() = default;

  size_t Width = 0;
  uint32_t NumTenants = 0;
  uint32_t NumApps = 0;
  std::vector<uint32_t> Tenants;
  std::vector<uint32_t> Apps;
  std::vector<double> Features; ///< Flat row-major (size() x width()).
  std::vector<double> Labels;   ///< Energy target per observation (J).
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_FLEETTRACE_H
