//===- core/ModelZoo.h - Paper model configurations -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory for the three model families the paper evaluates, in their
/// paper configurations: LR — penalized linear regression with zero
/// intercept and non-negative coefficients; RF — a 100-tree regression
/// forest; NN — an MLP trained with a linear transfer function.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_MODELZOO_H
#define SLOPE_CORE_MODELZOO_H

#include "ml/KnnRegressor.h"
#include "ml/LinearRegression.h"
#include "ml/NeuralNetwork.h"
#include "ml/QuantizedModel.h"
#include "ml/RandomForest.h"

#include <memory>

namespace slope {
namespace core {

/// The three families of Tables 3-5 and 7, plus the nearest-neighbour
/// literature baseline (Mair et al.) the extension benches compare
/// against — it shares the Model interface, so the estimator and the
/// serving engine can host it like any paper family.
enum class ModelFamily { LR, RF, NN, Knn };

/// \returns "LR", "RF", "NN", or "kNN".
const char *modelFamilyName(ModelFamily Family);

/// Creates a model of \p Family in its paper configuration. \p Seed
/// varies the stochastic families (RF bootstrap, NN initialization);
/// the LR solver is deterministic.
std::unique_ptr<ml::Model> makePaperModel(ModelFamily Family, uint64_t Seed);

/// Fits a fresh paper-configured model on \p Training; asserts success
/// (experiment datasets are well formed by construction). With \p Algo ==
/// Quantized (the default follows --infer-algo / SLOPE_INFER_ALGO), the
/// fitted model is wrapped in its fixed-point twin, calibrated on
/// \p Training — never silently: an unquantizable configuration asserts
/// in debug and aborts in release via ml::QuantizedModel::build's error.
std::unique_ptr<ml::Model>
fitPaperModel(ModelFamily Family, uint64_t Seed, const ml::Dataset &Training,
              ml::InferenceAlgorithm Algo = ml::defaultInferenceAlgorithm());

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_MODELZOO_H
