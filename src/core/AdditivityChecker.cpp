//===- core/AdditivityChecker.cpp - The additivity test -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"

#include "stats/Descriptive.h"
#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

AdditivityChecker::AdditivityChecker(Machine &M, AdditivityTestConfig Config)
    : M(M), Config(Config) {
  assert(Config.TolerancePct > 0 && "tolerance must be positive");
  assert(Config.ReproducibilityRuns >= 2 && "stage 1 needs repeated runs");
  assert(Config.RunsPerMean >= 1 && "sample means need at least one run");
}

const std::vector<Execution> &
AdditivityChecker::executionsFor(const CompoundApplication &App,
                                 unsigned Runs) {
  std::string Key = App.str();
  // Read-only fast path; during a parallel checkAll every lookup lands
  // here because prewarm() already materialized the executions.
  if (auto It = Cache.find(Key); It != Cache.end() && It->second.size() >= Runs)
    return It->second;
  std::vector<Execution> &Stored = Cache[Key];
  while (Stored.size() < Runs)
    Stored.push_back(M.run(App));
  return Stored;
}

void AdditivityChecker::prewarm(
    const std::vector<CompoundApplication> &Compounds) {
  // Mirror check()'s lazy execution order exactly: stage 1 runs the
  // distinct bases (in discovery order), stage 2 then tops bases up to
  // RunsPerMean and runs each compound. The machine is stateful, so
  // matching this order keeps every synthesized execution — and thus every
  // downstream verdict — bit-identical to a serial, lazy scan.
  std::vector<Application> Bases;
  for (const CompoundApplication &Compound : Compounds)
    for (const Application &Base : Compound.Phases)
      if (std::find(Bases.begin(), Bases.end(), Base) == Bases.end())
        Bases.push_back(Base);
  for (const Application &Base : Bases)
    executionsFor(CompoundApplication(Base), Config.ReproducibilityRuns);
  for (const CompoundApplication &Compound : Compounds) {
    for (const Application &Base : Compound.Phases)
      executionsFor(CompoundApplication(Base), Config.RunsPerMean);
    executionsFor(Compound, Config.RunsPerMean);
  }
}

double AdditivityChecker::meanCount(pmc::EventId Id,
                                    const CompoundApplication &App,
                                    unsigned Runs) {
  const std::vector<Execution> &Execs = executionsFor(App, Runs);
  double Sum = 0;
  for (unsigned I = 0; I < Runs; ++I) {
    double Count = 0;
    M.readCountersBatch(&Id, 1, Execs[I], &Count);
    Sum += Count;
  }
  return Sum / Runs;
}

AdditivityResult
AdditivityChecker::check(pmc::EventId Id,
                         const std::vector<CompoundApplication> &Compounds) {
  assert(!Compounds.empty() && "additivity test needs compound apps");
  AdditivityResult Result;
  Result.Id = Id;
  Result.Name = M.registry().event(Id).Name;

  // Collect the distinct base applications of the suite.
  std::vector<Application> Bases;
  for (const CompoundApplication &Compound : Compounds)
    for (const Application &Base : Compound.Phases)
      if (std::find(Bases.begin(), Bases.end(), Base) == Bases.end())
        Bases.push_back(Base);

  // --- Stage 1: determinism / reproducibility over the base apps. An
  // event is significant if it reports meaningful counts for at least one
  // application (an event may legitimately count ~0 for kernels that do
  // not exercise it — the paper's "counts <= 10" filter is platform-wide,
  // not per-app); reproducibility is judged where counts are significant.
  bool AnySignificant = false;
  for (const Application &Base : Bases) {
    const std::vector<Execution> &Execs = executionsFor(
        CompoundApplication(Base), Config.ReproducibilityRuns);
    std::vector<double> Counts(Config.ReproducibilityRuns);
    for (unsigned I = 0; I < Config.ReproducibilityRuns; ++I)
      M.readCountersBatch(&Id, 1, Execs[I], &Counts[I]);
    double Mean = stats::mean(Counts);
    if (Mean <= Config.MinMeanCount)
      continue;
    AnySignificant = true;
    double Cv = stats::sampleStdDev(Counts) / Mean;
    Result.WorstCv = std::max(Result.WorstCv, Cv);
  }
  Result.Significant = AnySignificant;
  Result.Deterministic = Result.Significant && Result.WorstCv <= Config.MaxCv;

  // --- Stage 2: Eq. 1 over every compound in the suite. A base's mean is
  // shared by every compound containing it, so it is memoized — lazily, on
  // first touch, because executionsFor may still have to run the stateful
  // machine here (RunsPerMean > ReproducibilityRuns without a prewarm),
  // and those runs must happen at the same point of the lazy scan order.
  // The reads themselves are pure, so the memo returns the exact value a
  // recomputation would.
  std::vector<double> BaseMeans(Bases.size(),
                                std::numeric_limits<double>::quiet_NaN());
  auto memoizedBaseMean = [&](const Application &Base) {
    size_t Index = static_cast<size_t>(
        std::find(Bases.begin(), Bases.end(), Base) - Bases.begin());
    if (std::isnan(BaseMeans[Index]))
      BaseMeans[Index] =
          meanCount(Id, CompoundApplication(Base), Config.RunsPerMean);
    return BaseMeans[Index];
  };
  for (const CompoundApplication &Compound : Compounds) {
    assert(Compound.numPhases() >= 2 && "stage 2 needs real compounds");
    double SumOfBases = 0;
    for (const Application &Base : Compound.Phases)
      SumOfBases += memoizedBaseMean(Base);
    double CompoundMean = meanCount(Id, Compound, Config.RunsPerMean);
    double ErrorPct = SumOfBases > 0
                          ? std::fabs(SumOfBases - CompoundMean) /
                                SumOfBases * 100.0
                          : (CompoundMean > 0 ? 100.0 : 0.0);
    Result.Errors.push_back({Compound, ErrorPct});
    Result.MaxErrorPct = std::max(Result.MaxErrorPct, ErrorPct);
  }

  Result.Additive = Result.Deterministic && Result.Significant &&
                    Result.MaxErrorPct <= Config.TolerancePct;
  return Result;
}

std::vector<AdditivityResult> AdditivityChecker::checkAll(
    const std::vector<pmc::EventId> &Ids,
    const std::vector<CompoundApplication> &Compounds) {
  // Charged on the calling thread: wall clock, so the counter credits the
  // parallel per-event fan-out below.
  ScopedPhase Timer(Phase::Profile);
  prewarm(Compounds);
  // With the cache warm, each per-event check is a pure read of shared
  // state (cached executions + const counter synthesis), so the events
  // fan out over the pool into disjoint result slots.
  std::vector<AdditivityResult> Results(Ids.size());
  parallelFor(0, Ids.size(), 1,
              [&](size_t I) { Results[I] = check(Ids[I], Compounds); });
  return Results;
}
