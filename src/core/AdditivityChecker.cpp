//===- core/AdditivityChecker.cpp - The additivity test -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"

#include "stats/Descriptive.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

AdditivityChecker::AdditivityChecker(Machine &M, AdditivityTestConfig Config)
    : M(M), Config(Config) {
  assert(Config.TolerancePct > 0 && "tolerance must be positive");
  assert(Config.ReproducibilityRuns >= 2 && "stage 1 needs repeated runs");
  assert(Config.RunsPerMean >= 1 && "sample means need at least one run");
}

const std::vector<Execution> &
AdditivityChecker::executionsFor(const CompoundApplication &App,
                                 unsigned Runs) {
  std::vector<Execution> &Stored = Cache[App.str()];
  while (Stored.size() < Runs)
    Stored.push_back(M.run(App));
  return Stored;
}

double AdditivityChecker::meanCount(pmc::EventId Id,
                                    const CompoundApplication &App,
                                    unsigned Runs) {
  const std::vector<Execution> &Execs = executionsFor(App, Runs);
  double Sum = 0;
  for (unsigned I = 0; I < Runs; ++I)
    Sum += M.readCounter(Id, Execs[I]);
  return Sum / Runs;
}

AdditivityResult
AdditivityChecker::check(pmc::EventId Id,
                         const std::vector<CompoundApplication> &Compounds) {
  assert(!Compounds.empty() && "additivity test needs compound apps");
  AdditivityResult Result;
  Result.Id = Id;
  Result.Name = M.registry().event(Id).Name;

  // Collect the distinct base applications of the suite.
  std::vector<Application> Bases;
  for (const CompoundApplication &Compound : Compounds)
    for (const Application &Base : Compound.Phases)
      if (std::find(Bases.begin(), Bases.end(), Base) == Bases.end())
        Bases.push_back(Base);

  // --- Stage 1: determinism / reproducibility over the base apps. An
  // event is significant if it reports meaningful counts for at least one
  // application (an event may legitimately count ~0 for kernels that do
  // not exercise it — the paper's "counts <= 10" filter is platform-wide,
  // not per-app); reproducibility is judged where counts are significant.
  bool AnySignificant = false;
  for (const Application &Base : Bases) {
    const std::vector<Execution> &Execs = executionsFor(
        CompoundApplication(Base), Config.ReproducibilityRuns);
    std::vector<double> Counts;
    Counts.reserve(Config.ReproducibilityRuns);
    for (unsigned I = 0; I < Config.ReproducibilityRuns; ++I)
      Counts.push_back(M.readCounter(Id, Execs[I]));
    double Mean = stats::mean(Counts);
    if (Mean <= Config.MinMeanCount)
      continue;
    AnySignificant = true;
    double Cv = stats::sampleStdDev(Counts) / Mean;
    Result.WorstCv = std::max(Result.WorstCv, Cv);
  }
  Result.Significant = AnySignificant;
  Result.Deterministic = Result.Significant && Result.WorstCv <= Config.MaxCv;

  // --- Stage 2: Eq. 1 over every compound in the suite.
  for (const CompoundApplication &Compound : Compounds) {
    assert(Compound.numPhases() >= 2 && "stage 2 needs real compounds");
    double SumOfBases = 0;
    for (const Application &Base : Compound.Phases)
      SumOfBases +=
          meanCount(Id, CompoundApplication(Base), Config.RunsPerMean);
    double CompoundMean = meanCount(Id, Compound, Config.RunsPerMean);
    double ErrorPct = SumOfBases > 0
                          ? std::fabs(SumOfBases - CompoundMean) /
                                SumOfBases * 100.0
                          : (CompoundMean > 0 ? 100.0 : 0.0);
    Result.Errors.push_back({Compound, ErrorPct});
    Result.MaxErrorPct = std::max(Result.MaxErrorPct, ErrorPct);
  }

  Result.Additive = Result.Deterministic && Result.Significant &&
                    Result.MaxErrorPct <= Config.TolerancePct;
  return Result;
}

std::vector<AdditivityResult> AdditivityChecker::checkAll(
    const std::vector<pmc::EventId> &Ids,
    const std::vector<CompoundApplication> &Compounds) {
  std::vector<AdditivityResult> Results;
  Results.reserve(Ids.size());
  for (pmc::EventId Id : Ids)
    Results.push_back(check(Id, Compounds));
  return Results;
}
