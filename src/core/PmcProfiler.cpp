//===- core/PmcProfiler.cpp - Multi-run PMC collection -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcProfiler.h"

#include <algorithm>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

void (*core::detail::ProfilerRepLoopProbe)(bool) = nullptr;

Expected<ProfileResult>
PmcProfiler::collect(const CompoundApplication &App,
                     const std::vector<EventId> &Events,
                     unsigned Repetitions) {
  assert(Repetitions >= 1 && "need at least one repetition");
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();

  // Perform every execution of the campaign up front: seeds fork from the
  // machine's run counter in the exact order a serial per-run loop would
  // consume them, then the runs execute in parallel. The meter is stateful
  // (its sampling RNG advances per reading), so readings stay serial in
  // the same scan order.
  std::vector<Execution> Execs =
      M.runBatch(App, Plan->numRuns() * Repetitions);
  std::vector<power::EnergyReading> Readings;
  if (Meter)
    Readings = Meter->readingsFor(Execs);
  return reduceRuns(*Plan, Events, Repetitions, Execs.data(),
                    Meter ? Readings.data() : nullptr);
}

ProfileResult
PmcProfiler::reduceRuns(const CollectionPlan &Plan,
                        const std::vector<EventId> &Events,
                        unsigned Repetitions, const Execution *Execs,
                        const power::EnergyReading *Readings) const {
  // Dense accumulators indexed by the event's slot in the flattened plan
  // (collection runs concatenated): SlotOf maps an event id to its slot,
  // SlotMean accumulates the group sums in place, and Scratch receives
  // each run's batch-synthesized counts. All scratch is sized here, so
  // the reduction loop below performs no heap allocations.
  std::vector<uint32_t> SlotOf(M.registry().size(), UINT32_MAX);
  uint32_t NumSlots = 0;
  size_t MaxRunWidth = 0;
  for (const CollectionRun &Run : Plan.Runs) {
    MaxRunWidth = std::max(MaxRunWidth, Run.Events.size());
    for (EventId Id : Run.Events)
      SlotOf[Id] = NumSlots++;
  }
  std::vector<double> SlotMean(NumSlots, 0.0);
  std::vector<double> Scratch(MaxRunWidth);

  ProfileResult Result;
  double EnergySum = 0, TotalSum = 0, TimeSum = 0;
  if (detail::ProfilerRepLoopProbe)
    detail::ProfilerRepLoopProbe(true);
  size_t ExecIdx = 0;
  uint32_t SlotBase = 0;
  for (const CollectionRun &Run : Plan.Runs) {
    const size_t Width = Run.Events.size();
    for (unsigned Rep = 0; Rep < Repetitions; ++Rep, ++ExecIdx) {
      const Execution &Exec = Execs[ExecIdx];
      ++Result.RunsUsed;
      TimeSum += Exec.totalTimeSec();
      if (Readings) {
        EnergySum += Readings[ExecIdx].DynamicEnergyJ;
        TotalSum += Readings[ExecIdx].TotalEnergyJ;
      }
      M.readCountersBatch(Run.Events.data(), Width, Exec, Scratch.data());
      for (size_t I = 0; I < Width; ++I)
        SlotMean[SlotBase + I] += Scratch[I];
    }
    for (size_t I = 0; I < Width; ++I)
      SlotMean[SlotBase + I] /= Repetitions;
    SlotBase += static_cast<uint32_t>(Width);
  }
  if (detail::ProfilerRepLoopProbe)
    detail::ProfilerRepLoopProbe(false);

  Result.Counts.reserve(Events.size());
  for (EventId Id : Events)
    Result.Counts.push_back(SlotMean[SlotOf[Id]]);
  if (Result.RunsUsed > 0) {
    Result.TimeSec = TimeSum / static_cast<double>(Result.RunsUsed);
    Result.DynamicEnergyJ =
        Readings ? EnergySum / static_cast<double>(Result.RunsUsed) : 0.0;
    Result.TotalEnergyJ =
        Readings ? TotalSum / static_cast<double>(Result.RunsUsed) : 0.0;
  }
  return Result;
}

Expected<size_t>
PmcProfiler::collectionCost(const std::vector<EventId> &Events) const {
  auto Plan = planCollection(M.registry(), Events, M.platform().pmuSpec());
  if (!Plan)
    return Plan.error();
  return Plan->numRuns();
}
