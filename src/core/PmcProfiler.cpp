//===- core/PmcProfiler.cpp - Multi-run PMC collection -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcProfiler.h"

#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

Expected<ProfileResult>
PmcProfiler::collect(const CompoundApplication &App,
                     const std::vector<EventId> &Events,
                     unsigned Repetitions) {
  assert(Repetitions >= 1 && "need at least one repetition");
  auto Plan = planCollection(M.registry(), Events);
  if (!Plan)
    return Plan.error();

  std::map<EventId, double> MeanByEvent;
  ProfileResult Result;
  double EnergySum = 0, TotalSum = 0, TimeSum = 0;
  for (const CollectionRun &Run : Plan->Runs) {
    std::map<EventId, double> GroupSum;
    for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
      Execution Exec = M.run(App);
      ++Result.RunsUsed;
      TimeSum += Exec.totalTimeSec();
      if (Meter) {
        power::EnergyReading Reading = Meter->readingFor(Exec);
        EnergySum += Reading.DynamicEnergyJ;
        TotalSum += Reading.TotalEnergyJ;
      }
      for (EventId Id : Run.Events)
        GroupSum[Id] += M.readCounter(Id, Exec);
    }
    for (EventId Id : Run.Events)
      MeanByEvent[Id] = GroupSum[Id] / Repetitions;
  }

  Result.Counts.reserve(Events.size());
  for (EventId Id : Events)
    Result.Counts.push_back(MeanByEvent[Id]);
  if (Result.RunsUsed > 0) {
    Result.TimeSec = TimeSum / static_cast<double>(Result.RunsUsed);
    Result.DynamicEnergyJ =
        Meter ? EnergySum / static_cast<double>(Result.RunsUsed) : 0.0;
    Result.TotalEnergyJ =
        Meter ? TotalSum / static_cast<double>(Result.RunsUsed) : 0.0;
  }
  return Result;
}

Expected<size_t>
PmcProfiler::collectionCost(const std::vector<EventId> &Events) const {
  auto Plan = planCollection(M.registry(), Events);
  if (!Plan)
    return Plan.error();
  return Plan->numRuns();
}
