//===- core/ServingEngine.cpp - Fleet energy-attribution service ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ServingEngine.h"

#include "ml/QuantizedModel.h"
#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

using namespace slope;
using namespace slope::core;

double ServingStats::batchLatencyQuantileMs(double Q) const {
  if (BatchMs.empty())
    return 0;
  std::vector<double> Sorted(BatchMs);
  std::sort(Sorted.begin(), Sorted.end());
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sorted.size() - 1));
  return Sorted[std::min(I, Sorted.size() - 1)];
}

ServingEngine::ServingEngine(const ml::Model &M, size_t FeatureWidth,
                             uint32_t NumTenants, uint32_t NumApps,
                             ServingConfig Config)
    : Model(&M), Quant(dynamic_cast<const ml::QuantizedModel *>(&M)),
      Width(FeatureWidth), NumTenants(NumTenants), NumApps(NumApps),
      EpochSize(std::max<size_t>(1, Config.EpochSize)),
      BatchSize(std::max<size_t>(1, Config.BatchSize)),
      ScoreLabels(Config.ScoreLabels) {
  assert(FeatureWidth > 0 && "serving needs at least one feature");
  assert(NumTenants > 0 && NumApps > 0 && "serving needs a fleet shape");
  assert((!Quant || Quant->featureWidth() == Width) &&
         "quantized model width does not match the engine");
  unsigned NumShards = Config.NumShards > 0
                           ? Config.NumShards
                           : ThreadPool::global().numThreads();
  Shards.resize(std::max(1u, NumShards));
  TenantShard.resize(NumTenants);
  TenantLocal.resize(NumTenants);
  for (uint32_t T = 0; T < NumTenants; ++T) {
    TenantShard[T] = T % static_cast<uint32_t>(Shards.size());
    TenantLocal[T] = T / static_cast<uint32_t>(Shards.size());
  }
  std::vector<std::string> FeatureNames;
  FeatureNames.reserve(Width);
  for (size_t F = 0; F < Width; ++F)
    FeatureNames.push_back("pmc" + std::to_string(F));
  for (size_t SI = 0; SI < Shards.size(); ++SI) {
    // Shard SI owns the striped tenants {SI, SI + S, SI + 2S, ...};
    // shards past the tenant count (more shards than tenants) own none.
    size_t Owned = SI < NumTenants
                       ? (NumTenants - SI + Shards.size() - 1) / Shards.size()
                       : 0;
    Shards[SI].Cells.resize(Owned * NumApps);
    if (Quant) {
      // Integer path: quanta accumulators plus one fixed BatchSize batch
      // buffer, sized once here so the hot loop never allocates or
      // checks capacity.
      Shards[SI].CellsQ.resize(Owned * NumApps);
      Shards[SI].PendingRows.resize(BatchSize * Width);
      Shards[SI].PendingCells.resize(BatchSize);
      Shards[SI].PredQ.resize(BatchSize);
    } else {
      Shards[SI].Batch = ml::Dataset(FeatureNames);
      Shards[SI].Batch.reserveRows(BatchSize);
      Shards[SI].BatchCells.reserve(BatchSize);
    }
  }
  Folded.resize(static_cast<size_t>(NumTenants) * NumApps);
  if (!Quant) {
    PendingTenants.reserve(EpochSize);
    PendingApps.reserve(EpochSize);
    PendingFeatures.reserve(EpochSize * Width);
    PendingLabels.reserve(EpochSize);
  }
}

void ServingEngine::enableOnlineRetrain(ml::RlsLinearRegression &OnlineModel,
                                        ml::FitAlgorithm Algo,
                                        const ml::Dataset *SeedHistory) {
  assert(!Quant && "online retrain is incompatible with a quantized model: "
                   "a retrained model cannot keep a frozen quantization "
                   "grid");
  assert(OnlineModel.featureWidth() == Width &&
         "online model width does not match the engine");
  assert(Stats.Observations == 0 && PendingCount == 0 &&
         "enable retrain before ingesting");
  Online = &OnlineModel;
  RetrainAlgo = Algo;
  Model = &OnlineModel;
  if (RetrainAlgo == ml::FitAlgorithm::Refit) {
    if (SeedHistory) {
      assert(SeedHistory->numFeatures() == Width &&
             "seed history width does not match the engine");
      History = *SeedHistory;
    } else {
      std::vector<std::string> FeatureNames;
      FeatureNames.reserve(Width);
      for (size_t F = 0; F < Width; ++F)
        FeatureNames.push_back("pmc" + std::to_string(F));
      History = ml::Dataset(FeatureNames);
    }
  }
}

void ServingEngine::ingest(uint32_t Tenant, uint32_t App,
                           const double *Features) {
  if (Quant) {
    assert(Tenant < NumTenants && "tenant id out of range");
    assert(App < NumApps && "app id out of range");
    // Quantize once at the door and route straight to the owning shard's
    // batch; the rest of the pipeline is integer, and the staged row is
    // half the width of the FP path's.
    Shard &S = Shards[TenantShard[Tenant]];
    Quant->quantizeRow(Features, S.PendingRows.data() + S.PendingN * Width);
    S.PendingCells[S.PendingN] = TenantLocal[Tenant] * NumApps + App;
    if (++S.PendingN == BatchSize)
      flushShardBatch(S);
    if (++PendingCount >= EpochSize)
      foldEpoch();
    return;
  }
  ingest(Tenant, App, Features, std::numeric_limits<double>::quiet_NaN());
}

void ServingEngine::ingest(uint32_t Tenant, uint32_t App,
                           const double *Features, double Label) {
  assert(Tenant < NumTenants && "tenant id out of range");
  assert(App < NumApps && "app id out of range");
  assert(!Quant && "labeled ingestion requires the FP serving path");
  PendingTenants.push_back(Tenant);
  PendingApps.push_back(App);
  PendingFeatures.insert(PendingFeatures.end(), Features, Features + Width);
  PendingLabels.push_back(Label);
  if (++PendingCount >= EpochSize)
    foldEpoch();
}

void ServingEngine::processShard(Shard &S, const size_t *Indices,
                                 size_t NumIndices) {
  for (size_t First = 0; First < NumIndices; First += BatchSize) {
    const size_t Last = std::min(First + BatchSize, NumIndices);
    S.Batch.clearRows();
    S.BatchCells.clear();
    for (size_t I = First; I < Last; ++I) {
      const size_t Obs = Indices[I];
      S.Batch.addRow(PendingFeatures.data() + Obs * Width, 0.0);
      const size_t Local = TenantLocal[PendingTenants[Obs]];
      S.BatchCells.push_back(Local * NumApps + PendingApps[Obs]);
    }
    const auto Start = std::chrono::steady_clock::now();
    const std::vector<double> Predicted = Model->predictBatch(S.Batch);
    S.BatchMs.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - Start)
                            .count());
    ++S.Batches;
    for (size_t R = 0; R < Predicted.size(); ++R) {
      Cell &C = S.Cells[S.BatchCells[R]];
      C.EnergyJ += Predicted[R];
      C.Count += 1;
    }
  }
}

void ServingEngine::flushShardBatch(Shard &S) {
  const auto Start = std::chrono::steady_clock::now();
  Quant->predictQuantizedMany(S.PendingRows.data(), /*Indices=*/nullptr,
                              S.PendingN, S.PredQ.data());
  const int64_t *PredQ = S.PredQ.data();
  const uint32_t *Cells = S.PendingCells.data();
  for (size_t I = 0, N = S.PendingN; I < N; ++I) {
    Shard::QCell &C = S.CellsQ[Cells[I]];
    C.EnergyQ += PredQ[I];
    C.Count += 1;
  }
  S.BatchMs.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count());
  ++S.Batches;
  S.PendingN = 0;
}

void ServingEngine::retrainOnPending() {
  if (Quant || PendingLabels.empty() || (!Online && !ScoreLabels))
    return;
  const size_t NumPending = PendingTenants.size();
  assert(PendingLabels.size() == NumPending && "label column out of sync");

  // Staleness pass: score the epoch-start model — the one this epoch's
  // predictions were actually served with — against the epoch's labels,
  // serially in trace order (bit-identical at any shard/thread count).
  // Runs before any update so frozen and retrained engines are measured
  // on equal footing: the difference between their scores is exactly the
  // staleness the retraining removes.
  std::vector<double> RowBuf;
  bool AnyLabeled = false;
  for (size_t I = 0; I < NumPending; ++I) {
    const double Y = PendingLabels[I];
    if (!std::isfinite(Y))
      continue;
    AnyLabeled = true;
    const double *X = PendingFeatures.data() + I * Width;
    double Pred;
    if (Online) {
      Pred = Online->predictRow(X);
    } else {
      RowBuf.assign(X, X + Width);
      Pred = Model->predict(RowBuf);
    }
    Stats.PredictionAbsErrJ += std::abs(Pred - Y);
    Stats.LabelAbsJ += std::abs(Y);
  }
  if (!Online || !AnyLabeled)
    return;

  // Advance the model for the next epoch. Both paths apply the labeled
  // rows serially in trace order, so the retrained coefficients are as
  // shard/thread-invariant as the folded table.
  if (RetrainAlgo == ml::FitAlgorithm::Rls) {
    // O(F^2) per observation, no history: cost per fold is proportional
    // to the epoch, not to the stream consumed so far.
    ScopedPhase Timer(Phase::RlsUpdate);
    for (size_t I = 0; I < NumPending; ++I)
      if (std::isfinite(PendingLabels[I]))
        Online->update(PendingFeatures.data() + I * Width, PendingLabels[I]);
  } else {
    // The reference: append the epoch to the history and re-solve the
    // batch fit from scratch — O(N*F^2) with N the entire stream so far.
    ScopedPhase Timer(Phase::Refit);
    for (size_t I = 0; I < NumPending; ++I)
      if (std::isfinite(PendingLabels[I]))
        History.addRow(PendingFeatures.data() + I * Width, PendingLabels[I]);
    auto Refitted = Online->fit(History);
    assert(Refitted && "online refit failed on accumulated history");
    (void)Refitted;
  }
  ++Stats.Retrains;
}

void ServingEngine::foldEpoch() {
  ScopedPhase FoldTimer(Phase::ServeFold);
  const size_t NumShards = Shards.size();

  // FP path: stable counting-sort partition of the pending observations
  // by shard — per-shard contiguous index runs, each preserving trace
  // order, so a cell's accumulation order is independent of the shard
  // count. (The quantized path pre-routed its rows at ingest, which
  // preserves trace order within a shard the same way.)
  std::vector<size_t> Offsets(NumShards + 1, 0);
  if (!Quant) {
    const size_t NumPending = PendingTenants.size();
    PartitionScratch.resize(NumPending);
    if (NumShards == 1) {
      // Everything belongs to the one shard, already in trace order.
      Offsets[1] = NumPending;
      for (size_t I = 0; I < NumPending; ++I)
        PartitionScratch[I] = I;
    } else {
      for (size_t I = 0; I < NumPending; ++I)
        ++Offsets[shardOf(PendingTenants[I]) + 1];
      for (size_t SI = 0; SI < NumShards; ++SI)
        Offsets[SI + 1] += Offsets[SI];
      std::vector<size_t> Cursor(Offsets.begin(), Offsets.end() - 1);
      for (size_t I = 0; I < NumPending; ++I)
        PartitionScratch[Cursor[shardOf(PendingTenants[I])]++] = I;
    }
  }

  if (Quant) {
    // Integer path: full batches already flushed in place as they
    // filled; only each shard's partial remainder is left, one cheap
    // kernel call per shard — not worth a task dispatch.
    for (size_t SI = 0; SI < NumShards; ++SI)
      if (Shards[SI].PendingN > 0)
        flushShardBatch(Shards[SI]);
  } else {
    // Shard epochs: one task per shard, each writing only its own
    // slots — plain stores, no atomics (see support/ThreadPool.h
    // parallelInvoke).
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(NumShards);
    for (size_t SI = 0; SI < NumShards; ++SI)
      Tasks.push_back([this, SI, &Offsets] {
        processShard(Shards[SI], PartitionScratch.data() + Offsets[SI],
                     Offsets[SI + 1] - Offsets[SI]);
      });
    ThreadPool::global().parallelInvoke(Tasks);
  }

  // Score this epoch against its labels and (in retrain mode) advance
  // the model — the republish point: the next epoch's predictions see
  // the post-update coefficients, this epoch's saw the pre-update ones.
  retrainOnPending();

  // The fold: publish every shard's running accumulators into the
  // query-visible table, in shard order. Cells are owned by exactly one
  // shard, so this is a snapshot copy, never a cross-shard sum. The
  // quantized path converts each cell's exact quanta total to joules
  // here — one multiply per cell per fold, off the hot loop.
  const double DequantScale = Quant ? Quant->dequantScale() : 0;
  for (size_t SI = 0; SI < NumShards; ++SI) {
    Shard &S = Shards[SI];
    const size_t Owned = S.Cells.size() / NumApps;
    for (size_t Local = 0; Local < Owned; ++Local) {
      const size_t Tenant = Local * NumShards + SI;
      Cell *Out = Folded.data() + Tenant * NumApps;
      const size_t Base = Local * NumApps;
      if (Quant) {
        for (size_t A = 0; A < NumApps; ++A) {
          Out[A].EnergyJ =
              static_cast<double>(S.CellsQ[Base + A].EnergyQ) * DequantScale;
          Out[A].Count = S.CellsQ[Base + A].Count;
        }
      } else {
        std::copy_n(S.Cells.data() + Base, NumApps, Out);
      }
    }
    Stats.Batches += S.Batches;
    S.Batches = 0;
    Stats.BatchMs.insert(Stats.BatchMs.end(), S.BatchMs.begin(),
                         S.BatchMs.end());
    S.BatchMs.clear();
  }
  Stats.Observations += PendingCount;
  Stats.Epochs += 1;
  PendingCount = 0;
  PendingTenants.clear();
  PendingApps.clear();
  PendingFeatures.clear();
  PendingLabels.clear();
}

void ServingEngine::endEpoch() {
  if (PendingCount == 0)
    return;
  foldEpoch();
}

void ServingEngine::stageQuantized(const FleetTrace &Trace, size_t Begin,
                                   size_t End) {
  // Same body as the quantized arm of ingest(), minus the per-row call
  // and epoch bookkeeping: quantize straight into the owning shard's
  // batch, flush in place when it fills.
  for (size_t I = Begin; I < End; ++I) {
    const uint32_t Tenant = Trace.tenant(I);
    Shard &S = Shards[TenantShard[Tenant]];
    Quant->quantizeRow(Trace.features(I), S.PendingRows.data() + S.PendingN * Width);
    S.PendingCells[S.PendingN] = TenantLocal[Tenant] * NumApps + Trace.app(I);
    if (++S.PendingN == BatchSize)
      flushShardBatch(S);
  }
  PendingCount += End - Begin;
}

void ServingEngine::replay(const FleetTrace &Trace) {
  assert(Trace.width() == Width && "trace width does not match the engine");
  ScopedPhase Timer(Phase::Serve);
  // Bulk-stage in epoch-sized chunks; results are identical to a per-row
  // ingest loop (same rows, order, and fold boundaries), and the chunking
  // lets the staging slices and the folds charge disjoint sub-phases so
  // --bench-json can split replay cost into ingest_ms and fold_ms.
  size_t I = 0;
  while (I < Trace.size()) {
    const size_t End = std::min(Trace.size(), I + (EpochSize - PendingCount));
    {
      ScopedPhase IngestTimer(Phase::ServeIngest);
      if (Quant) {
        stageQuantized(Trace, I, End);
      } else {
        // The FP arm of ingest(), minus the per-row call and fold checks;
        // the trace's labels ride along for the retrain fold.
        for (size_t R = I; R < End; ++R) {
          PendingTenants.push_back(Trace.tenant(R));
          PendingApps.push_back(Trace.app(R));
          const double *X = Trace.features(R);
          PendingFeatures.insert(PendingFeatures.end(), X, X + Width);
          PendingLabels.push_back(Trace.label(R));
        }
        PendingCount += End - I;
      }
    }
    I = End;
    if (PendingCount >= EpochSize)
      foldEpoch();
  }
  endEpoch();
}

double ServingEngine::tenantEnergy(uint32_t Tenant) const {
  assert(Tenant < NumTenants && "tenant id out of range");
  const Cell *Row = Folded.data() + static_cast<size_t>(Tenant) * NumApps;
  double Sum = 0;
  for (uint32_t A = 0; A < NumApps; ++A)
    Sum += Row[A].EnergyJ;
  return Sum;
}

uint64_t ServingEngine::tenantObservations(uint32_t Tenant) const {
  assert(Tenant < NumTenants && "tenant id out of range");
  const Cell *Row = Folded.data() + static_cast<size_t>(Tenant) * NumApps;
  uint64_t Sum = 0;
  for (uint32_t A = 0; A < NumApps; ++A)
    Sum += Row[A].Count;
  return Sum;
}

double ServingEngine::appEnergy(uint32_t App) const {
  assert(App < NumApps && "app id out of range");
  double Sum = 0;
  for (uint32_t T = 0; T < NumTenants; ++T)
    Sum += Folded[static_cast<size_t>(T) * NumApps + App].EnergyJ;
  return Sum;
}

uint64_t ServingEngine::appObservations(uint32_t App) const {
  assert(App < NumApps && "app id out of range");
  uint64_t Sum = 0;
  for (uint32_t T = 0; T < NumTenants; ++T)
    Sum += Folded[static_cast<size_t>(T) * NumApps + App].Count;
  return Sum;
}

double ServingEngine::fleetEnergy() const {
  double Sum = 0;
  for (uint32_t T = 0; T < NumTenants; ++T)
    Sum += tenantEnergy(T);
  return Sum;
}
