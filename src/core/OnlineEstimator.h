//===- core/OnlineEstimator.h - Deployable online energy model ---*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact the paper's pipeline ultimately produces: an *online*
/// energy estimator — a trained model bound to a PMC subset that fits a
/// single collection run, so the energy of any application execution can
/// be estimated from one run with no power meter attached. Class C's
/// constraint (4 PMCs) is enforced at construction: the chosen events
/// must be schedulable in one run on the machine's PMU.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_ONLINEESTIMATOR_H
#define SLOPE_CORE_ONLINEESTIMATOR_H

#include "core/DatasetBuilder.h"
#include "core/ModelZoo.h"

#include <memory>

namespace slope {
namespace core {

/// A fitted model plus the single-run PMC subset it consumes.
class OnlineEstimator {
public:
  /// Trains an estimator: validates that \p PmcNames fit one collection
  /// run, builds the (PMC..., energy) dataset over \p TrainingApps with
  /// \p Meter as ground truth, and fits a \p Family model.
  /// \returns an error if the events are unknown, cannot be collected in
  /// a single run, or the fit fails.
  static Expected<OnlineEstimator>
  train(sim::Machine &M, power::HclWattsUp &Meter,
        const std::vector<std::string> &PmcNames,
        const std::vector<sim::CompoundApplication> &TrainingApps,
        ModelFamily Family = ModelFamily::LR, uint64_t Seed = 0);

  /// Estimates the dynamic energy (J) of one *fresh* run of \p App:
  /// executes it once, reads the subset, predicts. No meter involved.
  double estimateRun(const sim::CompoundApplication &App);

  /// Estimates from an already-performed execution (attach-to-run mode).
  double estimateExecution(const sim::Execution &Exec) const;

  /// Estimates a whole batch of already-performed executions in one pass
  /// (columnar inference; bit-identical to calling estimateExecution on
  /// each element in order).
  std::vector<double>
  estimateExecutions(const std::vector<sim::Execution> &Execs) const;

  const std::vector<std::string> &pmcNames() const { return Names; }
  const std::vector<pmc::EventId> &events() const { return Events; }
  const ml::Model &model() const { return *FittedModel; }

private:
  OnlineEstimator(sim::Machine &M, std::vector<pmc::EventId> Events,
                  std::vector<std::string> Names,
                  std::unique_ptr<ml::Model> FittedModel)
      : M(&M), Events(std::move(Events)), Names(std::move(Names)),
        FittedModel(std::move(FittedModel)) {}

  sim::Machine *M;
  std::vector<pmc::EventId> Events;
  std::vector<std::string> Names;
  std::unique_ptr<ml::Model> FittedModel;
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_ONLINEESTIMATOR_H
