//===- core/Report.h - Paper table rendering --------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders experiment results in the layout of the paper's tables so the
/// bench binaries print directly comparable output.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_REPORT_H
#define SLOPE_CORE_REPORT_H

#include "core/Experiments.h"
#include "sim/Platform.h"

#include <string>

namespace slope {
namespace core {

/// Table 1: specifications of the two platforms.
std::string renderTable1(const sim::Platform &Haswell,
                         const sim::Platform &Skylake);

/// Table 2: the six Class-A PMCs with their additivity test errors.
std::string renderTable2(const ClassAResult &Result);

/// Tables 3-5: one model family's nested subsets with error triples.
/// LR rows include the non-negative coefficients (Table 3 layout).
std::string renderModelFamilyTable(const std::string &Caption,
                                   const std::vector<ModelEvalRow> &Rows,
                                   bool WithCoefficients);

/// Table 6: PA and PNA sets with their energy correlations.
std::string renderTable6(const ClassBCResult &Result);

/// Table 7: Class B (a) and Class C (b) prediction errors side by side.
std::string renderTable7(const ClassBCResult &Result);

/// Class D platform summary: every zoo platform with its canonical
/// counter set and the empirically additive subset.
std::string renderClassDPlatforms(const ClassDResult &Result);

/// Class D transfer matrix: per ordered platform pair and model family,
/// prediction errors with the full common counter set and with the
/// additivity-filtered intersection.
std::string renderClassDTransfer(const ClassDResult &Result);

/// Class D big.LITTLE comparison: pooled board-level models vs one model
/// per cluster with attributions summed in cluster order.
std::string renderClassDBigLittle(const ClassDResult &Result);

/// Short per-PMC names ("X1".."Xn"/"Y1".."Yn") used in compact rendering.
std::string compactPmcList(const std::vector<std::string> &Subset,
                           const std::vector<std::string> &Universe,
                           char Prefix);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_REPORT_H
