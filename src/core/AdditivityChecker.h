//===- core/AdditivityChecker.h - The additivity test -----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two-stage additivity test (Sect. 4) and its automation
/// (the AdditivityChecker tool):
///
///   Stage 1 — the PMC must be deterministic and reproducible: its count
///   across repeated runs of the same application must be significant
///   (mean > 10) with a bounded coefficient of variation.
///
///   Stage 2 — for every compound application A;B in the suite, the
///   percentage error  |(mean(e_A) + mean(e_B) - mean(e_AB))| /
///   (mean(e_A) + mean(e_B)) * 100  (Eq. 1) must stay within tolerance
///   (5% by default). The event's additivity error is the maximum over
///   all compounds.
///
/// A PMC passing both stages is *potentially additive*; otherwise it is
/// branded non-additive on this platform for this suite.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_ADDITIVITYCHECKER_H
#define SLOPE_CORE_ADDITIVITYCHECKER_H

#include "sim/Machine.h"

#include <map>
#include <string>

namespace slope {
namespace core {

/// Parameters of the additivity test.
struct AdditivityTestConfig {
  double TolerancePct = 5.0;      ///< Stage-2 pass threshold.
  unsigned ReproducibilityRuns = 5; ///< Stage-1 repetitions per base app.
  double MaxCv = 0.25;            ///< Stage-1 coefficient-of-variation cap.
  double MinMeanCount = 10.0;     ///< Significance filter ("counts <= 10").
  unsigned RunsPerMean = 3;       ///< Runs averaged into each sample mean.
};

/// Stage-2 outcome for one compound application.
struct CompoundError {
  sim::CompoundApplication App;
  double ErrorPct = 0;
};

/// Complete verdict for one event.
struct AdditivityResult {
  pmc::EventId Id = 0;
  std::string Name;
  bool Significant = true;    ///< Mean count above the filter.
  bool Deterministic = true;  ///< Stage 1 passed.
  double WorstCv = 0;         ///< Largest CV observed across base apps.
  double MaxErrorPct = 0;     ///< Stage-2 maximum percentage error.
  bool Additive = false;      ///< Both stages passed within tolerance.
  std::vector<CompoundError> Errors;
};

/// Runs the additivity test against a simulated machine.
///
/// Executions are cached: each base and compound application in the suite
/// is run the required number of times once, and every queried event is
/// read against those stored runs. Counter observations are independent
/// per (run, event) — statistically equivalent to the real tool's
/// re-running per 4-event group, without the redundant simulation cost.
class AdditivityChecker {
public:
  AdditivityChecker(sim::Machine &M,
                    AdditivityTestConfig Config = AdditivityTestConfig());

  /// Tests one event over \p Compounds (and their base applications).
  AdditivityResult check(pmc::EventId Id,
                         const std::vector<sim::CompoundApplication> &Compounds);

  /// Tests many events over one suite, sharing the cached executions.
  /// Executions are materialized serially first (the machine is stateful,
  /// and the cache must match what a lazy serial scan would produce), then
  /// the per-event verdicts — pure reads against the cache — are computed
  /// in parallel on the global thread pool. Results are bit-identical to
  /// calling check() per event, at any thread count.
  std::vector<AdditivityResult>
  checkAll(const std::vector<pmc::EventId> &Ids,
           const std::vector<sim::CompoundApplication> &Compounds);

  const AdditivityTestConfig &config() const { return Config; }

private:
  /// Runs every execution check() would lazily trigger for \p Compounds,
  /// in the same machine-run order, so a subsequent check() is a pure
  /// cache read (and therefore safe to run concurrently per event).
  void prewarm(const std::vector<sim::CompoundApplication> &Compounds);

  /// \returns the cached executions of \p App, running it if needed. The
  /// cache is only mutated when fewer than \p Runs executions are stored;
  /// after prewarm() this is a read-only lookup.
  const std::vector<sim::Execution> &
  executionsFor(const sim::CompoundApplication &App, unsigned Runs);

  /// Mean observed count of \p Id over \p Runs runs of \p App.
  double meanCount(pmc::EventId Id, const sim::CompoundApplication &App,
                   unsigned Runs);

  sim::Machine &M;
  AdditivityTestConfig Config;
  /// Execution cache keyed by the application's string form.
  std::map<std::string, std::vector<sim::Execution>> Cache;
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_ADDITIVITYCHECKER_H
