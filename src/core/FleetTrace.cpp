//===- core/FleetTrace.cpp - Simulated fleet observation stream -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/FleetTrace.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

Expected<FleetTrace>
FleetTrace::synthesize(Machine &M, const std::vector<pmc::EventId> &Events,
                       const std::vector<CompoundApplication> &Apps,
                       const FleetTraceConfig &Config) {
  if (Apps.empty())
    return makeError("a fleet trace needs at least one app template");
  if (Events.empty())
    return makeError("a fleet trace needs at least one PMC");
  if (Config.NumTenants == 0)
    return makeError("a fleet trace needs at least one tenant");
  const size_t Protos = std::max<size_t>(1, Config.PrototypesPerApp);

  FleetTrace Trace;
  Trace.Width = Events.size();
  Trace.NumTenants = Config.NumTenants;
  Trace.NumApps = static_cast<uint32_t>(Apps.size());

  // Ground the prototype rows in the simulator: Protos executions per
  // template (runBatch forks the machine's run counter serially, so the
  // prototype set is a deterministic function of the machine state).
  std::vector<double> Prototypes(Apps.size() * Protos * Trace.Width);
  std::vector<double> ProtoEnergy(Apps.size() * Protos);
  for (size_t A = 0; A < Apps.size(); ++A) {
    std::vector<Execution> Runs = M.runBatch(Apps[A], Protos);
    for (size_t P = 0; P < Protos; ++P) {
      M.readCountersBatch(Events.data(), Events.size(), Runs[P],
                          Prototypes.data() +
                              (A * Protos + P) * Trace.Width);
      ProtoEnergy[A * Protos + P] = Runs[P].TrueDynamicEnergyJ;
    }
  }

  // Zipf popularity CDF over tenant ids; observations sample it by
  // binary search on one uniform draw.
  std::vector<double> TenantCdf(Config.NumTenants);
  double Total = 0;
  for (uint32_t T = 0; T < Config.NumTenants; ++T) {
    Total += std::pow(static_cast<double>(T) + 1.0, -Config.TenantSkew);
    TenantCdf[T] = Total;
  }

  // Per-app drift ramps: app A's energy-per-feature ratio scales by
  // (1 + DriftMax * RampA * t) with t sweeping 0 -> 1 across the trace.
  const Rng Base(Config.Seed);
  std::vector<double> Ramp(Apps.size(), 0.0);
  if (Config.DriftMax != 0) {
    const Rng RampRng = Base.fork("ramp");
    for (size_t A = 0; A < Apps.size(); ++A)
      Ramp[A] = RampRng.fork(A + 1).uniform(-1.0, 1.0);
  }
  const double TScale = Config.NumObservations > 1
                            ? 1.0 / static_cast<double>(
                                        Config.NumObservations - 1)
                            : 0.0;

  Trace.Tenants.resize(Config.NumObservations);
  Trace.Apps.resize(Config.NumObservations);
  Trace.Features.resize(Config.NumObservations * Trace.Width);
  Trace.Labels.resize(Config.NumObservations);
  parallelFor(0, Config.NumObservations, 4096, [&](size_t I) {
    Rng R = Base.fork(I);
    const double U = R.uniform(0.0, Total);
    const uint32_t Tenant = static_cast<uint32_t>(
        std::upper_bound(TenantCdf.begin(), TenantCdf.end(), U) -
        TenantCdf.begin());
    const uint32_t App = static_cast<uint32_t>(R.below(Trace.NumApps));
    const size_t Proto = R.below(Protos);
    const double *Row =
        Prototypes.data() + (App * Protos + Proto) * Trace.Width;
    double *Out = Trace.Features.data() + I * Trace.Width;
    Trace.Tenants[I] = std::min(Tenant, Config.NumTenants - 1);
    Trace.Apps[I] = App;
    for (size_t F = 0; F < Trace.Width; ++F)
      Out[F] = Row[F] * R.lognormalFactor(Config.JitterSigma);
    // Label draws come after every feature draw in the fork(I) stream, so
    // feature values are invariant under DriftMax and LabelNoiseSigma.
    const double Drift =
        1.0 + Config.DriftMax * Ramp[App] * (static_cast<double>(I) * TScale);
    Trace.Labels[I] = ProtoEnergy[App * Protos + Proto] * Drift *
                      R.lognormalFactor(Config.LabelNoiseSigma);
  });
  return Trace;
}
