//===- core/DatasetBuilder.h - Experiment dataset construction --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the (PMC..., dynamic energy) datasets the models are trained and
/// validated on: for every application, collect the requested PMCs through
/// the scheduler-constrained profiler and measure dynamic energy with
/// HCLWattsUp, producing one ml::Dataset row per application.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_DATASETBUILDER_H
#define SLOPE_CORE_DATASETBUILDER_H

#include "core/PmcProfiler.h"
#include "ml/Dataset.h"

namespace slope {
namespace core {

/// Dataset construction knobs.
struct DatasetBuildOptions {
  /// Executions per collection run whose counts are averaged.
  unsigned Repetitions = 1;
  /// Train against total energy (E_T) instead of dynamic energy
  /// (E_D = E_T - P_S * T_E). The paper argues for dynamic energy
  /// (Sect. 2); bench_ablation_dynamic_vs_total quantifies why.
  bool UseTotalEnergy = false;
};

/// Builds model datasets from applications, PMCs, and energy readings.
class DatasetBuilder {
public:
  DatasetBuilder(sim::Machine &M, power::HclWattsUp &Meter,
                 DatasetBuildOptions Options = DatasetBuildOptions())
      : M(M), Meter(Meter), Profiler(M, &Meter), Options(Options) {}

  /// One row per application in \p Apps; feature columns are the events'
  /// names in \p Events order; targets are measured dynamic energy (J).
  /// \returns an error if the event set cannot be scheduled.
  Expected<ml::Dataset>
  build(const std::vector<sim::CompoundApplication> &Apps,
        const std::vector<pmc::EventId> &Events);

  /// Convenience: looks the event names up in the machine's registry.
  Expected<ml::Dataset>
  buildByName(const std::vector<sim::CompoundApplication> &Apps,
              const std::vector<std::string> &EventNames);

private:
  sim::Machine &M;
  power::HclWattsUp &Meter;
  PmcProfiler Profiler;
  DatasetBuildOptions Options;
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_DATASETBUILDER_H
