//===- core/AdditivityStudy.cpp - Full-catalogue additivity scans ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityStudy.h"

#include <algorithm>

using namespace slope;
using namespace slope::core;

std::vector<size_t> AdditivityStudyResult::errorHistogram(
    const std::vector<double> &Edges) const {
  assert(Edges.size() >= 2 && "histogram needs at least two edges");
  assert(std::is_sorted(Edges.begin(), Edges.end()) &&
         "histogram edges must be ascending");
  std::vector<size_t> Buckets(Edges.size(), 0);
  for (const AdditivityResult &R : Results) {
    if (!R.Deterministic || !R.Significant)
      continue;
    if (R.MaxErrorPct >= Edges.back()) {
      ++Buckets.back();
      continue;
    }
    for (size_t I = 0; I + 1 < Edges.size(); ++I)
      if (R.MaxErrorPct >= Edges[I] && R.MaxErrorPct < Edges[I + 1]) {
        ++Buckets[I];
        break;
      }
  }
  return Buckets;
}

AdditivityStudyResult core::runAdditivityStudy(
    sim::Machine &M, const std::vector<sim::CompoundApplication> &Compounds,
    const AdditivityTestConfig &Config) {
  AdditivityChecker Checker(M, Config);
  std::vector<pmc::EventId> Events;
  for (pmc::EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Events.push_back(Id);

  AdditivityStudyResult Study;
  Study.Results = Checker.checkAll(Events, Compounds);
  for (const AdditivityResult &R : Study.Results) {
    if (!R.Significant)
      ++Study.NumInsignificant;
    else if (!R.Deterministic)
      ++Study.NumNonReproducible;
    else if (R.Additive)
      ++Study.NumAdditive;
    else
      ++Study.NumNonAdditive;
  }
  return Study;
}
