//===- core/Experiments.cpp - Class A/B/C/D experiment drivers -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "core/DatasetBuilder.h"
#include "core/PmcSelector.h"
#include "ml/Metrics.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <iterator>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {

/// Builds a family model honoring the experiment's budget knobs.
std::unique_ptr<ml::Model> makeModel(ModelFamily Family, uint64_t Seed,
                                     unsigned NnEpochs, size_t RfTrees) {
  switch (Family) {
  case ModelFamily::LR:
    return std::make_unique<ml::LinearRegression>(
        ml::LinearRegressionOptions::paperDefault());
  case ModelFamily::RF: {
    ml::RandomForestOptions Options;
    Options.NumTrees = RfTrees;
    Options.Seed = Seed;
    return std::make_unique<ml::RandomForest>(Options);
  }
  case ModelFamily::NN: {
    ml::NeuralNetworkOptions Options;
    Options.HiddenLayers = {16};
    Options.Transfer = ml::Activation::Identity;
    Options.Epochs = NnEpochs;
    Options.Seed = Seed;
    return std::make_unique<ml::NeuralNetwork>(Options);
  }
  case ModelFamily::Knn:
    // The kNN baseline ignores the budget knobs (no trees, no epochs).
    return std::make_unique<ml::KnnRegressor>(ml::KnnOptions());
  }
  assert(false && "unknown model family");
  return nullptr;
}

/// Fits a model of \p Family on the pre-selected train/test datasets and
/// evaluates it, producing one table row. \p SubTrain / \p SubTest must be
/// restricted to the \p Pmcs columns already — the subset datasets are
/// built once per subset and shared across the model families and sweep
/// passes instead of being re-copied per variant.
ModelEvalRow evaluateSubset(ModelFamily Family, const std::string &Label,
                            const std::vector<std::string> &Pmcs,
                            const ml::Dataset &SubTrain,
                            const ml::Dataset &SubTest, uint64_t Seed,
                            unsigned NnEpochs, size_t RfTrees) {
  ModelEvalRow Row;
  Row.Label = Label;
  Row.Pmcs = Pmcs;
  assert(SubTrain.numFeatures() == Pmcs.size() &&
         SubTest.numFeatures() == Pmcs.size() &&
         "expected pre-selected subset datasets");
  std::unique_ptr<ml::Model> M = makeModel(Family, Seed, NnEpochs, RfTrees);
  [[maybe_unused]] auto Fit = M->fit(SubTrain);
  assert(Fit && "experiment model failed to fit");
  Row.Errors = ml::evaluateModel(*M, SubTest);
  if (Family == ModelFamily::LR)
    Row.Coefficients =
        static_cast<const ml::LinearRegression &>(*M).coefficients();
  return Row;
}

/// Wraps base applications as single-phase compounds for the builder.
std::vector<CompoundApplication>
asCompounds(const std::vector<Application> &Bases) {
  std::vector<CompoundApplication> Out;
  Out.reserve(Bases.size());
  for (const Application &Base : Bases)
    Out.emplace_back(Base);
  return Out;
}

/// Per-core energy normalization for cross-platform transfer: dividing a
/// platform's measured energies by this scale removes the TDP ratio
/// between platforms, so transfer error reflects counter semantics
/// rather than absolute wattage. Mirrors EnergyModel's per-core scaling
/// (the Haswell reference scales to 1.0).
double perCoreEnergyScale(const Platform &P) {
  return (P.TdpWatts / static_cast<double>(P.totalCores())) / 10.0;
}

/// Rebuilds \p In with canonical feature names (same column order) and
/// targets divided by \p EnergyScale.
ml::Dataset canonicalizeDataset(const ml::Dataset &In,
                                const std::vector<std::string> &Canonical,
                                double EnergyScale) {
  assert(In.numFeatures() == Canonical.size() &&
         "canonical rename must preserve the column count");
  ml::Dataset Out{std::vector<std::string>(Canonical)};
  Out.reserveRows(In.numRows());
  std::vector<double> Row;
  for (size_t R = 0; R < In.numRows(); ++R) {
    In.gatherRow(R, Row);
    Out.addRow(Row, In.target(R) / EnergyScale);
  }
  return Out;
}

/// Elementwise sum of same-schema datasets: the board-level view of a
/// heterogeneous platform (features and energies summed over clusters in
/// the order given).
ml::Dataset sumDatasets(const std::vector<ml::Dataset> &Parts) {
  assert(!Parts.empty() && "need at least one cluster dataset");
  ml::Dataset Out{std::vector<std::string>(Parts.front().featureNames())};
  Out.reserveRows(Parts.front().numRows());
  std::vector<double> Row, Acc;
  for (size_t R = 0; R < Parts.front().numRows(); ++R) {
    Acc.assign(Parts.front().numFeatures(), 0.0);
    double Target = 0;
    for (const ml::Dataset &Part : Parts) {
      assert(Part.numRows() == Parts.front().numRows() &&
             Part.numFeatures() == Parts.front().numFeatures() &&
             "cluster datasets must align row-for-row");
      Part.gatherRow(R, Row);
      for (size_t F = 0; F < Row.size(); ++F)
        Acc[F] += Row[F];
      Target += Part.target(R);
    }
    Out.addRow(Acc, Target);
  }
  return Out;
}

/// Everything Class D needs from one profiled platform.
struct ClassDPlatformData {
  ClassDPlatformInfo Info;
  ml::Dataset Train; ///< Canonical-named, scale-normalized; base apps.
  ml::Dataset Test;  ///< Same schema; compound apps.
  /// big.LITTLE only: the per-cluster datasets the board view sums.
  std::vector<ml::Dataset> ClusterTrain, ClusterTest;
};

/// Canonical counters resolvable on \p Registry, in dictionary order,
/// with their native spellings.
void resolveCanonicalSet(const pmc::EventRegistry &Registry,
                         std::vector<std::string> &Canonical,
                         std::vector<std::string> &Native) {
  for (const pmc::CanonicalCounter &Counter : pmc::canonicalCounters()) {
    auto Resolved = pmc::resolveCanonicalCounter(Registry, Counter.Canonical);
    if (!Resolved)
      continue;
    Canonical.push_back(Counter.Canonical);
    Native.push_back(*Resolved);
  }
}

/// Profiles one machine: empirical additivity of \p Native over the
/// compound suite, then train (bases) / test (compounds) datasets.
void profileMachine(Machine &M, power::HclWattsUp &Meter,
                    const std::vector<Application> &Bases,
                    const std::vector<CompoundApplication> &Compounds,
                    const std::vector<std::string> &Native,
                    const AdditivityTestConfig &Additivity,
                    std::vector<bool> &AdditiveOut, ml::Dataset &TrainOut,
                    ml::Dataset &TestOut) {
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : Native)
    Events.push_back(*M.registry().lookup(Name));
  AdditivityChecker Checker(M, Additivity);
  std::vector<AdditivityResult> Results = Checker.checkAll(Events, Compounds);
  AdditiveOut.clear();
  for (const AdditivityResult &R : Results)
    AdditiveOut.push_back(R.Additive);
  DatasetBuilder Builder(M, Meter);
  TrainOut = *Builder.build(asCompounds(Bases), Events);
  TestOut = *Builder.build(Compounds, Events);
}

/// Profiles one Class D platform end to end. Homogeneous platforms use
/// one machine; heterogeneous ones get one machine and meter per cluster
/// (counts and energies summed in cluster order for the board view).
ClassDPlatformData profilePlatform(const std::string &Key, const Platform &P,
                                   const ClassDConfig &Config,
                                   uint64_t MachineSeed) {
  ClassDPlatformData Data;
  Data.Info.Key = Key;
  Data.Info.Name = P.Name;

  // The app suite is derived from the board platform so every cluster of
  // a heterogeneous SoC runs the same applications, row for row.
  Rng SuiteRng(Config.Seed);
  std::vector<Application> Bases = diverseBaseSuite(
      P, Config.NumBaseApps, SuiteRng.fork(Key + "-bases"));
  std::vector<CompoundApplication> Compounds = makeCompoundSuite(
      Bases, Config.NumCompounds, SuiteRng.fork(Key + "-pairs"));

  // Low-power boards are metered with a lab-grade sampler (SmartPower2
  // class): the WattsUp's 0.1 W quantization would swamp a sub-watt
  // cluster's dynamic power.
  power::WattsUpOptions MeterOpts;
  if (P.TdpWatts < 20)
    MeterOpts.QuantizationW = 0.001;

  std::vector<std::string> Native;
  if (!P.isHeterogeneous()) {
    Machine M(P, MachineSeed);
    resolveCanonicalSet(M.registry(), Data.Info.Canonical, Native);
    power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>(
                                   MeterOpts, MachineSeed ^ 0x22));
    std::vector<bool> Additive;
    ml::Dataset TrainNative, TestNative;
    profileMachine(M, Meter, Bases, Compounds, Native, Config.Additivity,
                   Additive, TrainNative, TestNative);
    double Scale = perCoreEnergyScale(P);
    Data.Train = canonicalizeDataset(TrainNative, Data.Info.Canonical, Scale);
    Data.Test = canonicalizeDataset(TestNative, Data.Info.Canonical, Scale);
    for (size_t I = 0; I < Additive.size(); ++I)
      if (Additive[I])
        Data.Info.AdditiveCanonical.push_back(Data.Info.Canonical[I]);
    return Data;
  }

  // Heterogeneous: one machine per cluster. A canonical counter is
  // available/additive for the platform iff it is on every cluster; the
  // board energy scale normalizes all cluster energies so summed cluster
  // attributions line up with the summed (board) target.
  double Scale = perCoreEnergyScale(P);
  std::vector<bool> AllAdditive;
  for (size_t C = 0; C < P.numClusters(); ++C) {
    Platform ClusterP = P.clusterPlatform(C);
    Machine M(ClusterP, MachineSeed + 0x101 * C);
    std::vector<std::string> ClusterCanonical, ClusterNative;
    resolveCanonicalSet(M.registry(), ClusterCanonical, ClusterNative);
    if (C == 0) {
      Data.Info.Canonical = ClusterCanonical;
      Native = ClusterNative;
    } else {
      assert(ClusterCanonical == Data.Info.Canonical &&
             ClusterNative == Native &&
             "clusters must agree on the canonical counter set");
    }
    power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>(
                                   MeterOpts, (MachineSeed + 0x101 * C) ^
                                                  0x22));
    std::vector<bool> Additive;
    ml::Dataset TrainNative, TestNative;
    profileMachine(M, Meter, Bases, Compounds, Native, Config.Additivity,
                   Additive, TrainNative, TestNative);
    Data.ClusterTrain.push_back(
        canonicalizeDataset(TrainNative, Data.Info.Canonical, Scale));
    Data.ClusterTest.push_back(
        canonicalizeDataset(TestNative, Data.Info.Canonical, Scale));
    if (C == 0)
      AllAdditive = Additive;
    else
      for (size_t I = 0; I < AllAdditive.size(); ++I)
        AllAdditive[I] = AllAdditive[I] && Additive[I];
  }
  Data.Train = sumDatasets(Data.ClusterTrain);
  Data.Test = sumDatasets(Data.ClusterTest);
  for (size_t I = 0; I < AllAdditive.size(); ++I)
    if (AllAdditive[I])
      Data.Info.AdditiveCanonical.push_back(Data.Info.Canonical[I]);
  return Data;
}

/// \returns the members of \p Set (canonical order) present in both
/// \p A and \p B.
std::vector<std::string> intersectSets(const std::vector<std::string> &A,
                                       const std::vector<std::string> &B) {
  std::vector<std::string> Out;
  for (const std::string &Name : A)
    if (std::find(B.begin(), B.end(), Name) != B.end())
      Out.push_back(Name);
  return Out;
}

} // namespace

ClassAResult core::runClassA(const ClassAConfig &Config) {
  Machine M(Platform::intelHaswellServer(), Config.Seed);
  power::HclWattsUp Meter(
      M, std::make_unique<power::WattsUpProMeter>(power::WattsUpOptions(),
                                                  Config.Seed ^ 0x11));

  Rng ExperimentRng(Config.Seed);
  std::vector<Application> Bases = diverseBaseSuite(
      M.platform(), Config.NumBaseApps, ExperimentRng.fork("bases"));
  std::vector<CompoundApplication> Compounds = makeCompoundSuite(
      Bases, Config.NumCompounds, ExperimentRng.fork("pairs"));

  // The six selected PMCs, X1..X6.
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : pmc::haswellClassAPmcNames())
    Events.push_back(*M.registry().lookup(Name));

  ClassAResult Result;
  AdditivityChecker Checker(M, Config.Additivity);
  Result.AdditivityTable = Checker.checkAll(Events, Compounds);

  // Train on base applications, test on the serial compounds — models
  // must predict the energy of executions they never saw, from counters
  // whose additivity they implicitly rely on.
  DatasetBuilder Builder(M, Meter);
  ml::Dataset Train = *Builder.build(asCompounds(Bases), Events);
  ml::Dataset Test = *Builder.build(Compounds, Events);
  Result.TrainRows = Train.numRows();
  Result.TestRows = Test.numRows();

  // The 3 x |Subsets| model variants are pure functions of (family,
  // subset, seed, datasets), so the whole sweep parallelizes over variant
  // slots; seeds match the serial sweep exactly. Variants whose family is
  // masked out are skipped without touching any other variant's inputs.
  std::vector<std::vector<std::string>> Subsets =
      nestedSubsetsByAdditivity(Result.AdditivityTable);
  Result.Lr.resize(Subsets.size());
  Result.Rf.resize(Subsets.size());
  Result.Nn.resize(Subsets.size());
  // Each subset's train/test datasets are shared by the three model
  // families and every sweep pass, so select the columns once per subset
  // rather than 3 x passes times.
  std::vector<ml::Dataset> SubTrain(Subsets.size()), SubTest(Subsets.size());
  parallelFor(0, Subsets.size(), 1, [&](size_t I) {
    SubTrain[I] = Train.selectFeatures(Subsets[I]);
    SubTest[I] = Test.selectFeatures(Subsets[I]);
  });
  unsigned Repeat = std::max(1u, Config.SweepRepeat);
  for (unsigned Pass = 0; Pass < Repeat; ++Pass)
    parallelFor(0, Subsets.size() * 3, 1, [&](size_t Task) {
      size_t I = Task / 3;
      std::string Index = std::to_string(I + 1);
      switch (Task % 3) {
      case 0:
        if (Config.Families & ClassAConfig::FamilyLR)
          Result.Lr[I] = evaluateSubset(
              ModelFamily::LR, "LR" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      case 1:
        if (Config.Families & ClassAConfig::FamilyRF)
          Result.Rf[I] = evaluateSubset(
              ModelFamily::RF, "RF" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      default:
        if (Config.Families & ClassAConfig::FamilyNN)
          Result.Nn[I] = evaluateSubset(
              ModelFamily::NN, "NN" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      }
    });
  return Result;
}

ClassBCResult core::runClassBC(const ClassBCConfig &Config) {
  Machine M(Platform::intelSkylakeServer(), Config.Seed ^ 0x5C7B);
  power::HclWattsUp Meter(
      M, std::make_unique<power::WattsUpProMeter>(power::WattsUpOptions(),
                                                  Config.Seed ^ 0x22));

  Rng ExperimentRng(Config.Seed);
  ClassBCResult Result;

  // --- Additivity over the DGEMM/FFT base + compound datasets.
  std::vector<Application> AddBases =
      dgemmFftAdditivityBases(Config.NumAdditivityBases);
  std::vector<CompoundApplication> AddCompounds = makeCompoundSuite(
      AddBases, Config.NumAdditivityCompounds, ExperimentRng.fork("pairs"));

  std::vector<std::string> PaNames = pmc::skylakePaNames();
  std::vector<std::string> PnaNames = pmc::skylakePnaNames();
  std::vector<pmc::EventId> PaEvents, PnaEvents, AllEvents;
  for (const std::string &Name : PaNames)
    PaEvents.push_back(*M.registry().lookup(Name));
  for (const std::string &Name : PnaNames)
    PnaEvents.push_back(*M.registry().lookup(Name));
  AllEvents = PaEvents;
  AllEvents.insert(AllEvents.end(), PnaEvents.begin(), PnaEvents.end());

  AdditivityChecker Checker(M, Config.Additivity);
  std::vector<AdditivityResult> PaAdd =
      Checker.checkAll(PaEvents, AddCompounds);
  std::vector<AdditivityResult> PnaAdd =
      Checker.checkAll(PnaEvents, AddCompounds);

  // --- The 801-point model dataset.
  std::vector<Application> Points = dgemmFftModelDataset();
  if (Config.MaxDatasetPoints != 0 &&
      Points.size() > Config.MaxDatasetPoints) {
    // Subsample evenly for quick runs.
    std::vector<Application> Reduced;
    double Stride = static_cast<double>(Points.size()) /
                    static_cast<double>(Config.MaxDatasetPoints);
    for (size_t I = 0; I < Config.MaxDatasetPoints; ++I)
      Reduced.push_back(Points[static_cast<size_t>(I * Stride)]);
    Points = std::move(Reduced);
  }

  DatasetBuilder Builder(M, Meter);
  std::vector<std::string> AllNames = PaNames;
  AllNames.insert(AllNames.end(), PnaNames.begin(), PnaNames.end());
  std::vector<CompoundApplication> PointCompounds = asCompounds(Points);
  ml::Dataset Full = *Builder.buildByName(PointCompounds, AllNames);

  // Extra profiling passes for perf gates: they re-run the campaign after
  // the real one and are discarded, so nothing downstream (and no table)
  // changes, while Phase::Profile grows past runner timing noise.
  for (unsigned Pass = 1; Pass < Config.ProfileRepeat; ++Pass) {
    (void)Checker.checkAll(PaEvents, AddCompounds);
    (void)Checker.checkAll(PnaEvents, AddCompounds);
    (void)Builder.buildByName(PointCompounds, AllNames);
  }

  // --- Table 6: correlation with dynamic energy over the full dataset.
  std::vector<double> Correlations = energyCorrelations(Full);
  auto MakeRows = [&](const std::vector<std::string> &Names,
                      const std::vector<AdditivityResult> &Add) {
    std::vector<PmcCorrelationRow> Rows;
    for (size_t I = 0; I < Names.size(); ++I) {
      PmcCorrelationRow Row;
      Row.Name = Names[I];
      Row.Correlation = Correlations[Full.indexOfFeature(Names[I])];
      Row.AdditivityErrorPct = Add[I].MaxErrorPct;
      Row.Additive = Add[I].Additive;
      Rows.push_back(Row);
    }
    return Rows;
  };
  Result.Pa = MakeRows(PaNames, PaAdd);
  Result.Pna = MakeRows(PnaNames, PnaAdd);

  // --- Train/test split (shuffled once, fixed by seed).
  size_t TrainRows = std::min(Config.TrainRows, Full.numRows());
  double TestFraction =
      1.0 - static_cast<double>(TrainRows) /
                static_cast<double>(Full.numRows());
  auto [Train, Test] = Full.split(TestFraction, ExperimentRng.fork("split"));
  Result.TrainRows = Train.numRows();
  Result.TestRows = Test.numRows();

  // --- Class B and C sweeps: like Class A, every variant is independent,
  // so both tables' twelve models train concurrently.
  const ModelFamily AllFamilies[] = {ModelFamily::LR, ModelFamily::RF,
                                     ModelFamily::NN};

  // Class B: nine-PMC application-specific models.
  Result.ClassB.resize(6);
  // Class C: four-PMC online models, picked by energy correlation within
  // each set (the paper's PA4 / PNA4 construction).
  Result.Pa4 = selectMostCorrelated(Full.selectFeatures(PaNames), 4);
  Result.Pna4 = selectMostCorrelated(Full.selectFeatures(PnaNames), 4);
  Result.ClassC.resize(6);

  // Four distinct feature subsets serve the twelve variants; build each
  // subset's train/test datasets once and share them across families.
  const std::vector<std::string> *SubsetNames[4] = {&PaNames, &PnaNames,
                                                    &Result.Pa4, &Result.Pna4};
  std::vector<ml::Dataset> SubTrain(4), SubTest(4);
  parallelFor(0, 4, 1, [&](size_t I) {
    SubTrain[I] = Train.selectFeatures(*SubsetNames[I]);
    SubTest[I] = Test.selectFeatures(*SubsetNames[I]);
  });

  parallelFor(0, 12, 1, [&](size_t Task) {
    ModelFamily Family = AllFamilies[(Task % 6) / 2];
    std::string Base = modelFamilyName(Family);
    bool Additive = (Task % 2) == 0;
    size_t Subset = (Task < 6 ? 0 : 2) + (Additive ? 0 : 1);
    if (Task < 6)
      Result.ClassB[Task] = evaluateSubset(
          Family, Base + (Additive ? "-A" : "-NA"), *SubsetNames[Subset],
          SubTrain[Subset], SubTest[Subset],
          Config.Seed + (Additive ? 31 : 37), Config.NnEpochs,
          Config.RfTrees);
    else
      Result.ClassC[Task - 6] = evaluateSubset(
          Family, Base + (Additive ? "-A4" : "-NA4"), *SubsetNames[Subset],
          SubTrain[Subset], SubTest[Subset],
          Config.Seed + (Additive ? 41 : 43), Config.NnEpochs,
          Config.RfTrees);
  });
  return Result;
}

ClassDResult core::runClassD(const ClassDConfig &Config) {
  // Platform zoo in fixed presentation order. Each platform's profiling
  // campaign is independent and internally deterministic, so the serial
  // platform loop produces bit-identical data at any thread count.
  struct ZooEntry {
    const char *Key;
    Platform P;
    uint64_t SeedSalt;
  };
  const ZooEntry Zoo[] = {
      {"haswell", Platform::intelHaswellServer(), 0},
      {"skylake", Platform::intelSkylakeServer(), 0x5C7B},
      {"zen2", Platform::amdZen2Server(), 0x3D92},
      {"biglittle", Platform::armBigLittle(), 0xB167},
  };
  const size_t NumPlatforms = std::size(Zoo);

  std::vector<ClassDPlatformData> Data;
  for (const ZooEntry &Entry : Zoo)
    Data.push_back(profilePlatform(Entry.Key, Entry.P, Config,
                                   Config.Seed ^ Entry.SeedSalt));

  ClassDResult Result;
  for (const ClassDPlatformData &D : Data)
    Result.Platforms.push_back(D.Info);
  Result.TrainRowsPerPlatform = Data.front().Train.numRows();
  Result.TestRowsPerPlatform = Data.front().Test.numRows();

  // Transfer sweep: every ordered (train, test) pair, three families,
  // unfiltered (counters common to both platforms) and additivity-filtered
  // (further intersected with both platforms' additive sets). The cell
  // grid is fixed up front so the parallel sweep writes disjoint slots
  // with per-cell deterministic seeds.
  const ModelFamily Families[] = {ModelFamily::LR, ModelFamily::RF,
                                  ModelFamily::NN};
  struct PairSets {
    size_t TrainIdx, TestIdx;
    std::vector<std::string> Unfiltered, Filtered;
    ml::Dataset TrainU, TestU, TrainF, TestF;
  };
  std::vector<PairSets> PairData;
  for (size_t X = 0; X < NumPlatforms; ++X)
    for (size_t Y = 0; Y < NumPlatforms; ++Y) {
      if (X == Y)
        continue;
      PairSets Sets;
      Sets.TrainIdx = X;
      Sets.TestIdx = Y;
      Sets.Unfiltered =
          intersectSets(Data[X].Info.Canonical, Data[Y].Info.Canonical);
      Sets.Filtered =
          intersectSets(intersectSets(Sets.Unfiltered,
                                      Data[X].Info.AdditiveCanonical),
                        Data[Y].Info.AdditiveCanonical);
      assert(!Sets.Unfiltered.empty() &&
             "zoo platforms must share canonical counters");
      PairData.push_back(std::move(Sets));
      TransferPairResult Pair;
      Pair.TrainPlatform = Data[X].Info.Key;
      Pair.TestPlatform = Data[Y].Info.Key;
      Pair.Cells.resize((PairData.back().Filtered.empty() ? 1 : 2) *
                        std::size(Families));
      Result.Pairs.push_back(std::move(Pair));
    }

  // Column selection is pure and per-pair; models do not store feature
  // names, so a model trained on platform X's canonical columns applies
  // to platform Y's as long as the column order matches — which the
  // dictionary-ordered canonical sets guarantee.
  parallelFor(0, PairData.size(), 1, [&](size_t I) {
    PairSets &Sets = PairData[I];
    Sets.TrainU = Data[Sets.TrainIdx].Train.selectFeatures(Sets.Unfiltered);
    Sets.TestU = Data[Sets.TestIdx].Test.selectFeatures(Sets.Unfiltered);
    if (!Sets.Filtered.empty()) {
      Sets.TrainF = Data[Sets.TrainIdx].Train.selectFeatures(Sets.Filtered);
      Sets.TestF = Data[Sets.TestIdx].Test.selectFeatures(Sets.Filtered);
    }
  });
  size_t CellsPerPair = 2 * std::size(Families);
  parallelFor(0, PairData.size() * CellsPerPair, 1, [&](size_t Task) {
    size_t I = Task / CellsPerPair;
    const PairSets &Sets = PairData[I];
    size_t FamilyIdx = (Task % CellsPerPair) / 2;
    bool Filtered = (Task % 2) == 1;
    if (Filtered && Sets.Filtered.empty())
      return;
    TransferCell Cell;
    Cell.Family = modelFamilyName(Families[FamilyIdx]);
    Cell.Filtered = Filtered;
    Cell.Pmcs = Filtered ? Sets.Filtered : Sets.Unfiltered;
    ModelEvalRow Row = evaluateSubset(
        Families[FamilyIdx], Cell.Family, Cell.Pmcs,
        Filtered ? Sets.TrainF : Sets.TrainU,
        Filtered ? Sets.TestF : Sets.TestU,
        Config.Seed + 1000 + I * CellsPerPair + FamilyIdx * 2 + Filtered,
        Config.NnEpochs, Config.RfTrees);
    Cell.Errors = Row.Errors;
    // Cells are laid out family-major with the filtered variant (when it
    // exists) immediately after its unfiltered sibling.
    size_t Slot = Sets.Filtered.empty() ? FamilyIdx : FamilyIdx * 2 + Filtered;
    Result.Pairs[I].Cells[Slot] = std::move(Cell);
  });

  // big.LITTLE on-board comparison: one pooled model on the summed board
  // dataset vs one model per cluster with attributions summed in cluster
  // order. Both predict the same board-level test energies.
  const ClassDPlatformData &Board = Data.back();
  assert(!Board.ClusterTrain.empty() && "expected a heterogeneous platform");
  Result.BigLittle.resize(2 * std::size(Families));
  parallelFor(0, Result.BigLittle.size(), 1, [&](size_t Task) {
    size_t FamilyIdx = Task / 2;
    std::string Base = modelFamilyName(Families[FamilyIdx]);
    uint64_t Seed = Config.Seed + 2000 + FamilyIdx * 8;
    if (Task % 2 == 0) {
      Result.BigLittle[Task] = evaluateSubset(
          Families[FamilyIdx], Base + "-pooled", Board.Info.Canonical,
          Board.Train, Board.Test, Seed, Config.NnEpochs, Config.RfTrees);
      return;
    }
    ModelEvalRow Row;
    Row.Label = Base + "-cluster";
    Row.Pmcs = Board.Info.Canonical;
    std::vector<double> Sum(Board.Test.numRows(), 0.0);
    for (size_t C = 0; C < Board.ClusterTrain.size(); ++C) {
      std::unique_ptr<ml::Model> M = makeModel(
          Families[FamilyIdx], Seed + 1 + C, Config.NnEpochs, Config.RfTrees);
      [[maybe_unused]] auto Fit = M->fit(Board.ClusterTrain[C]);
      assert(Fit && "cluster model failed to fit");
      std::vector<double> Pred = M->predictBatch(Board.ClusterTest[C]);
      for (size_t R = 0; R < Pred.size(); ++R)
        Sum[R] += Pred[R];
    }
    Row.Errors = stats::predictionErrorSummary(Sum, Board.Test.targets());
    Result.BigLittle[Task] = Row;
  });
  return Result;
}
