//===- core/Experiments.cpp - Class A/B/C experiment drivers -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"

#include "core/DatasetBuilder.h"
#include "core/PmcSelector.h"
#include "ml/Metrics.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {

/// Builds a family model honoring the experiment's budget knobs.
std::unique_ptr<ml::Model> makeModel(ModelFamily Family, uint64_t Seed,
                                     unsigned NnEpochs, size_t RfTrees) {
  switch (Family) {
  case ModelFamily::LR:
    return std::make_unique<ml::LinearRegression>(
        ml::LinearRegressionOptions::paperDefault());
  case ModelFamily::RF: {
    ml::RandomForestOptions Options;
    Options.NumTrees = RfTrees;
    Options.Seed = Seed;
    return std::make_unique<ml::RandomForest>(Options);
  }
  case ModelFamily::NN: {
    ml::NeuralNetworkOptions Options;
    Options.HiddenLayers = {16};
    Options.Transfer = ml::Activation::Identity;
    Options.Epochs = NnEpochs;
    Options.Seed = Seed;
    return std::make_unique<ml::NeuralNetwork>(Options);
  }
  case ModelFamily::Knn:
    // The kNN baseline ignores the budget knobs (no trees, no epochs).
    return std::make_unique<ml::KnnRegressor>(ml::KnnOptions());
  }
  assert(false && "unknown model family");
  return nullptr;
}

/// Fits a model of \p Family on the pre-selected train/test datasets and
/// evaluates it, producing one table row. \p SubTrain / \p SubTest must be
/// restricted to the \p Pmcs columns already — the subset datasets are
/// built once per subset and shared across the model families and sweep
/// passes instead of being re-copied per variant.
ModelEvalRow evaluateSubset(ModelFamily Family, const std::string &Label,
                            const std::vector<std::string> &Pmcs,
                            const ml::Dataset &SubTrain,
                            const ml::Dataset &SubTest, uint64_t Seed,
                            unsigned NnEpochs, size_t RfTrees) {
  ModelEvalRow Row;
  Row.Label = Label;
  Row.Pmcs = Pmcs;
  assert(SubTrain.numFeatures() == Pmcs.size() &&
         SubTest.numFeatures() == Pmcs.size() &&
         "expected pre-selected subset datasets");
  std::unique_ptr<ml::Model> M = makeModel(Family, Seed, NnEpochs, RfTrees);
  [[maybe_unused]] auto Fit = M->fit(SubTrain);
  assert(Fit && "experiment model failed to fit");
  Row.Errors = ml::evaluateModel(*M, SubTest);
  if (Family == ModelFamily::LR)
    Row.Coefficients =
        static_cast<const ml::LinearRegression &>(*M).coefficients();
  return Row;
}

/// Wraps base applications as single-phase compounds for the builder.
std::vector<CompoundApplication>
asCompounds(const std::vector<Application> &Bases) {
  std::vector<CompoundApplication> Out;
  Out.reserve(Bases.size());
  for (const Application &Base : Bases)
    Out.emplace_back(Base);
  return Out;
}

} // namespace

ClassAResult core::runClassA(const ClassAConfig &Config) {
  Machine M(Platform::intelHaswellServer(), Config.Seed);
  power::HclWattsUp Meter(
      M, std::make_unique<power::WattsUpProMeter>(power::WattsUpOptions(),
                                                  Config.Seed ^ 0x11));

  Rng ExperimentRng(Config.Seed);
  std::vector<Application> Bases = diverseBaseSuite(
      M.platform(), Config.NumBaseApps, ExperimentRng.fork("bases"));
  std::vector<CompoundApplication> Compounds = makeCompoundSuite(
      Bases, Config.NumCompounds, ExperimentRng.fork("pairs"));

  // The six selected PMCs, X1..X6.
  std::vector<pmc::EventId> Events;
  for (const std::string &Name : pmc::haswellClassAPmcNames())
    Events.push_back(*M.registry().lookup(Name));

  ClassAResult Result;
  AdditivityChecker Checker(M, Config.Additivity);
  Result.AdditivityTable = Checker.checkAll(Events, Compounds);

  // Train on base applications, test on the serial compounds — models
  // must predict the energy of executions they never saw, from counters
  // whose additivity they implicitly rely on.
  DatasetBuilder Builder(M, Meter);
  ml::Dataset Train = *Builder.build(asCompounds(Bases), Events);
  ml::Dataset Test = *Builder.build(Compounds, Events);
  Result.TrainRows = Train.numRows();
  Result.TestRows = Test.numRows();

  // The 3 x |Subsets| model variants are pure functions of (family,
  // subset, seed, datasets), so the whole sweep parallelizes over variant
  // slots; seeds match the serial sweep exactly. Variants whose family is
  // masked out are skipped without touching any other variant's inputs.
  std::vector<std::vector<std::string>> Subsets =
      nestedSubsetsByAdditivity(Result.AdditivityTable);
  Result.Lr.resize(Subsets.size());
  Result.Rf.resize(Subsets.size());
  Result.Nn.resize(Subsets.size());
  // Each subset's train/test datasets are shared by the three model
  // families and every sweep pass, so select the columns once per subset
  // rather than 3 x passes times.
  std::vector<ml::Dataset> SubTrain(Subsets.size()), SubTest(Subsets.size());
  parallelFor(0, Subsets.size(), 1, [&](size_t I) {
    SubTrain[I] = Train.selectFeatures(Subsets[I]);
    SubTest[I] = Test.selectFeatures(Subsets[I]);
  });
  unsigned Repeat = std::max(1u, Config.SweepRepeat);
  for (unsigned Pass = 0; Pass < Repeat; ++Pass)
    parallelFor(0, Subsets.size() * 3, 1, [&](size_t Task) {
      size_t I = Task / 3;
      std::string Index = std::to_string(I + 1);
      switch (Task % 3) {
      case 0:
        if (Config.Families & ClassAConfig::FamilyLR)
          Result.Lr[I] = evaluateSubset(
              ModelFamily::LR, "LR" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      case 1:
        if (Config.Families & ClassAConfig::FamilyRF)
          Result.Rf[I] = evaluateSubset(
              ModelFamily::RF, "RF" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      default:
        if (Config.Families & ClassAConfig::FamilyNN)
          Result.Nn[I] = evaluateSubset(
              ModelFamily::NN, "NN" + Index, Subsets[I], SubTrain[I],
              SubTest[I], Config.Seed + I, Config.NnEpochs, Config.RfTrees);
        break;
      }
    });
  return Result;
}

ClassBCResult core::runClassBC(const ClassBCConfig &Config) {
  Machine M(Platform::intelSkylakeServer(), Config.Seed ^ 0x5C7B);
  power::HclWattsUp Meter(
      M, std::make_unique<power::WattsUpProMeter>(power::WattsUpOptions(),
                                                  Config.Seed ^ 0x22));

  Rng ExperimentRng(Config.Seed);
  ClassBCResult Result;

  // --- Additivity over the DGEMM/FFT base + compound datasets.
  std::vector<Application> AddBases =
      dgemmFftAdditivityBases(Config.NumAdditivityBases);
  std::vector<CompoundApplication> AddCompounds = makeCompoundSuite(
      AddBases, Config.NumAdditivityCompounds, ExperimentRng.fork("pairs"));

  std::vector<std::string> PaNames = pmc::skylakePaNames();
  std::vector<std::string> PnaNames = pmc::skylakePnaNames();
  std::vector<pmc::EventId> PaEvents, PnaEvents, AllEvents;
  for (const std::string &Name : PaNames)
    PaEvents.push_back(*M.registry().lookup(Name));
  for (const std::string &Name : PnaNames)
    PnaEvents.push_back(*M.registry().lookup(Name));
  AllEvents = PaEvents;
  AllEvents.insert(AllEvents.end(), PnaEvents.begin(), PnaEvents.end());

  AdditivityChecker Checker(M, Config.Additivity);
  std::vector<AdditivityResult> PaAdd =
      Checker.checkAll(PaEvents, AddCompounds);
  std::vector<AdditivityResult> PnaAdd =
      Checker.checkAll(PnaEvents, AddCompounds);

  // --- The 801-point model dataset.
  std::vector<Application> Points = dgemmFftModelDataset();
  if (Config.MaxDatasetPoints != 0 &&
      Points.size() > Config.MaxDatasetPoints) {
    // Subsample evenly for quick runs.
    std::vector<Application> Reduced;
    double Stride = static_cast<double>(Points.size()) /
                    static_cast<double>(Config.MaxDatasetPoints);
    for (size_t I = 0; I < Config.MaxDatasetPoints; ++I)
      Reduced.push_back(Points[static_cast<size_t>(I * Stride)]);
    Points = std::move(Reduced);
  }

  DatasetBuilder Builder(M, Meter);
  std::vector<std::string> AllNames = PaNames;
  AllNames.insert(AllNames.end(), PnaNames.begin(), PnaNames.end());
  std::vector<CompoundApplication> PointCompounds = asCompounds(Points);
  ml::Dataset Full = *Builder.buildByName(PointCompounds, AllNames);

  // Extra profiling passes for perf gates: they re-run the campaign after
  // the real one and are discarded, so nothing downstream (and no table)
  // changes, while Phase::Profile grows past runner timing noise.
  for (unsigned Pass = 1; Pass < Config.ProfileRepeat; ++Pass) {
    (void)Checker.checkAll(PaEvents, AddCompounds);
    (void)Checker.checkAll(PnaEvents, AddCompounds);
    (void)Builder.buildByName(PointCompounds, AllNames);
  }

  // --- Table 6: correlation with dynamic energy over the full dataset.
  std::vector<double> Correlations = energyCorrelations(Full);
  auto MakeRows = [&](const std::vector<std::string> &Names,
                      const std::vector<AdditivityResult> &Add) {
    std::vector<PmcCorrelationRow> Rows;
    for (size_t I = 0; I < Names.size(); ++I) {
      PmcCorrelationRow Row;
      Row.Name = Names[I];
      Row.Correlation = Correlations[Full.indexOfFeature(Names[I])];
      Row.AdditivityErrorPct = Add[I].MaxErrorPct;
      Row.Additive = Add[I].Additive;
      Rows.push_back(Row);
    }
    return Rows;
  };
  Result.Pa = MakeRows(PaNames, PaAdd);
  Result.Pna = MakeRows(PnaNames, PnaAdd);

  // --- Train/test split (shuffled once, fixed by seed).
  size_t TrainRows = std::min(Config.TrainRows, Full.numRows());
  double TestFraction =
      1.0 - static_cast<double>(TrainRows) /
                static_cast<double>(Full.numRows());
  auto [Train, Test] = Full.split(TestFraction, ExperimentRng.fork("split"));
  Result.TrainRows = Train.numRows();
  Result.TestRows = Test.numRows();

  // --- Class B and C sweeps: like Class A, every variant is independent,
  // so both tables' twelve models train concurrently.
  const ModelFamily AllFamilies[] = {ModelFamily::LR, ModelFamily::RF,
                                     ModelFamily::NN};

  // Class B: nine-PMC application-specific models.
  Result.ClassB.resize(6);
  // Class C: four-PMC online models, picked by energy correlation within
  // each set (the paper's PA4 / PNA4 construction).
  Result.Pa4 = selectMostCorrelated(Full.selectFeatures(PaNames), 4);
  Result.Pna4 = selectMostCorrelated(Full.selectFeatures(PnaNames), 4);
  Result.ClassC.resize(6);

  // Four distinct feature subsets serve the twelve variants; build each
  // subset's train/test datasets once and share them across families.
  const std::vector<std::string> *SubsetNames[4] = {&PaNames, &PnaNames,
                                                    &Result.Pa4, &Result.Pna4};
  std::vector<ml::Dataset> SubTrain(4), SubTest(4);
  parallelFor(0, 4, 1, [&](size_t I) {
    SubTrain[I] = Train.selectFeatures(*SubsetNames[I]);
    SubTest[I] = Test.selectFeatures(*SubsetNames[I]);
  });

  parallelFor(0, 12, 1, [&](size_t Task) {
    ModelFamily Family = AllFamilies[(Task % 6) / 2];
    std::string Base = modelFamilyName(Family);
    bool Additive = (Task % 2) == 0;
    size_t Subset = (Task < 6 ? 0 : 2) + (Additive ? 0 : 1);
    if (Task < 6)
      Result.ClassB[Task] = evaluateSubset(
          Family, Base + (Additive ? "-A" : "-NA"), *SubsetNames[Subset],
          SubTrain[Subset], SubTest[Subset],
          Config.Seed + (Additive ? 31 : 37), Config.NnEpochs,
          Config.RfTrees);
    else
      Result.ClassC[Task - 6] = evaluateSubset(
          Family, Base + (Additive ? "-A4" : "-NA4"), *SubsetNames[Subset],
          SubTrain[Subset], SubTest[Subset],
          Config.Seed + (Additive ? 41 : 43), Config.NnEpochs,
          Config.RfTrees);
  });
  return Result;
}
