//===- core/Report.cpp - Paper table rendering ----------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "pmc/PlatformEvents.h"
#include "support/Str.h"
#include "support/TablePrinter.h"

#include <algorithm>

using namespace slope;
using namespace slope::core;

std::string core::compactPmcList(const std::vector<std::string> &Subset,
                                 const std::vector<std::string> &Universe,
                                 char Prefix) {
  std::vector<std::string> Short;
  for (const std::string &Name : Subset) {
    auto It = std::find(Universe.begin(), Universe.end(), Name);
    if (It == Universe.end()) {
      Short.push_back(Name);
      continue;
    }
    Short.push_back(std::string(1, Prefix) +
                    std::to_string(It - Universe.begin() + 1));
  }
  return str::join(Short, ",");
}

std::string core::renderTable1(const sim::Platform &Haswell,
                               const sim::Platform &Skylake) {
  TablePrinter T({"Technical Specifications", "Intel Haswell Server",
                  "Intel Skylake Server"});
  T.setCaption("Table 1. Specification of the Intel Haswell and Intel "
               "Skylake multicore CPUs (simulated).");
  auto Row = [&](const std::string &Label, const std::string &H,
                 const std::string &S) { T.addRow({Label, H, S}); };
  Row("Processor", Haswell.Processor, Skylake.Processor);
  Row("OS", Haswell.Os, Skylake.Os);
  Row("Micro-architecture", sim::microarchName(Haswell.Arch),
      sim::microarchName(Skylake.Arch));
  Row("Thread(s) per core", std::to_string(Haswell.ThreadsPerCore),
      std::to_string(Skylake.ThreadsPerCore));
  Row("Cores per socket", std::to_string(Haswell.CoresPerSocket),
      std::to_string(Skylake.CoresPerSocket));
  Row("Socket(s)", std::to_string(Haswell.Sockets),
      std::to_string(Skylake.Sockets));
  Row("NUMA node(s)", std::to_string(Haswell.NumaNodes),
      std::to_string(Skylake.NumaNodes));
  Row("L1d/L1i cache", std::to_string(Haswell.L1DKB) + " KB/" +
                           std::to_string(Haswell.L1IKB) + " KB",
      std::to_string(Skylake.L1DKB) + " KB/" +
          std::to_string(Skylake.L1IKB) + " KB");
  Row("L2 cache", std::to_string(Haswell.L2KB) + " KB",
      std::to_string(Skylake.L2KB) + " KB");
  Row("L3 cache", std::to_string(Haswell.L3KB) + " KB",
      std::to_string(Skylake.L3KB) + " KB");
  Row("Main memory", std::to_string(Haswell.MainMemoryGB) + " GB DDR4",
      std::to_string(Skylake.MainMemoryGB) + " GB DDR4");
  Row("TDP", str::compact(Haswell.TdpWatts, 4) + " W",
      str::compact(Skylake.TdpWatts, 4) + " W");
  Row("Idle Power", str::compact(Haswell.IdlePowerWatts, 4) + " W",
      str::compact(Skylake.IdlePowerWatts, 4) + " W");
  return T.render();
}

std::string core::renderTable2(const ClassAResult &Result) {
  TablePrinter T({"Selected PMCs", "Additivity test error (%)"});
  T.setCaption("Table 2. Selected PMCs for modelling with their additivity "
               "test errors (%).");
  std::vector<std::string> Universe = pmc::haswellClassAPmcNames();
  for (size_t I = 0; I < Result.AdditivityTable.size(); ++I) {
    const AdditivityResult &R = Result.AdditivityTable[I];
    T.addRow({"X" + std::to_string(I + 1) + ": " + R.Name,
              str::fixed(R.MaxErrorPct, 0)});
  }
  return T.render();
}

std::string
core::renderModelFamilyTable(const std::string &Caption,
                             const std::vector<ModelEvalRow> &Rows,
                             bool WithCoefficients) {
  std::vector<std::string> Universe = pmc::haswellClassAPmcNames();
  std::vector<std::string> Headers = {"Model", "PMCs"};
  if (WithCoefficients)
    Headers.push_back("Coefficients");
  Headers.push_back("Prediction errors (min, avg, max)");
  TablePrinter T(Headers);
  T.setCaption(Caption);
  for (const ModelEvalRow &Row : Rows) {
    std::vector<std::string> Cells = {
        Row.Label, compactPmcList(Row.Pmcs, Universe, 'X')};
    if (WithCoefficients) {
      std::vector<std::string> Coeffs;
      for (double C : Row.Coefficients)
        Coeffs.push_back(str::scientific(C));
      Cells.push_back(str::join(Coeffs, ", "));
    }
    Cells.push_back(Row.Errors.str());
    T.addRow(Cells);
  }
  return T.render();
}

std::string core::renderTable6(const ClassBCResult &Result) {
  TablePrinter T({"", "PMC", "Correlation", "Additivity err (%)"});
  T.setCaption("Table 6. Additive and non-additive PMCs with their "
               "correlation with dynamic energy.");
  for (size_t I = 0; I < Result.Pa.size(); ++I) {
    const PmcCorrelationRow &Row = Result.Pa[I];
    T.addRow({"X" + std::to_string(I + 1), Row.Name,
              str::fixed(Row.Correlation, 3),
              str::fixed(Row.AdditivityErrorPct, 2)});
  }
  for (size_t I = 0; I < Result.Pna.size(); ++I) {
    const PmcCorrelationRow &Row = Result.Pna[I];
    T.addRow({"Y" + std::to_string(I + 1), Row.Name,
              str::fixed(Row.Correlation, 3),
              str::fixed(Row.AdditivityErrorPct, 2)});
  }
  return T.render();
}

std::string core::renderTable7(const ClassBCResult &Result) {
  TablePrinter T({"Model", "PMCs", "Prediction errors [Min, Avg, Max]"});
  T.setCaption("Table 7. Prediction accuracies of LR, RF, and NN models. "
               "(a) Class B: nine PMCs. (b) Class C: four PMCs.");
  auto SetName = [&](const ModelEvalRow &Row) {
    if (str::contains(Row.Label, "NA4"))
      return std::string("PNA4");
    if (str::contains(Row.Label, "A4"))
      return std::string("PA4");
    if (str::contains(Row.Label, "NA"))
      return std::string("PNA");
    return std::string("PA");
  };
  for (const ModelEvalRow &Row : Result.ClassB)
    T.addRow({Row.Label, SetName(Row), Row.Errors.str()});
  for (const ModelEvalRow &Row : Result.ClassC)
    T.addRow({Row.Label, SetName(Row), Row.Errors.str()});
  return T.render();
}

std::string core::renderClassDPlatforms(const ClassDResult &Result) {
  TablePrinter T({"Platform", "Canonical counters", "Additive subset"});
  T.setCaption("Class D platform zoo: canonical cross-architecture "
               "counters per platform and the empirically additive "
               "subset.");
  for (const ClassDPlatformInfo &P : Result.Platforms)
    T.addRow({P.Name, str::join(P.Canonical, ","),
              P.AdditiveCanonical.empty()
                  ? std::string("(none)")
                  : str::join(P.AdditiveCanonical, ",")});
  return T.render();
}

std::string core::renderClassDTransfer(const ClassDResult &Result) {
  TablePrinter T({"Train -> Test", "Model", "Counter set", "PMCs",
                  "Prediction errors [Min, Avg, Max]"});
  T.setCaption("Class D cross-architecture transfer: models trained on one "
               "platform, evaluated on another, with the full common "
               "counter set vs the additivity-filtered intersection.");
  for (const TransferPairResult &Pair : Result.Pairs)
    for (const TransferCell &Cell : Pair.Cells)
      T.addRow({Pair.TrainPlatform + " -> " + Pair.TestPlatform, Cell.Family,
                Cell.Filtered ? "additive" : "common",
                std::to_string(Cell.Pmcs.size()), Cell.Errors.str()});
  return T.render();
}

std::string core::renderClassDBigLittle(const ClassDResult &Result) {
  TablePrinter T({"Model", "PMCs", "Prediction errors [Min, Avg, Max]"});
  T.setCaption("Class D big.LITTLE: pooled board-level models vs one model "
               "per cluster (predictions summed in cluster order).");
  for (const ModelEvalRow &Row : Result.BigLittle)
    T.addRow({Row.Label, std::to_string(Row.Pmcs.size()), Row.Errors.str()});
  return T.render();
}
