//===- core/ModelZoo.cpp - Paper model configurations --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ModelZoo.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;

const char *core::modelFamilyName(ModelFamily Family) {
  switch (Family) {
  case ModelFamily::LR:
    return "LR";
  case ModelFamily::RF:
    return "RF";
  case ModelFamily::NN:
    return "NN";
  case ModelFamily::Knn:
    return "kNN";
  }
  assert(false && "unknown model family");
  return "?";
}

std::unique_ptr<Model> core::makePaperModel(ModelFamily Family,
                                            uint64_t Seed) {
  switch (Family) {
  case ModelFamily::LR:
    return std::make_unique<LinearRegression>(
        LinearRegressionOptions::paperDefault());
  case ModelFamily::RF: {
    RandomForestOptions Options;
    Options.NumTrees = 100;
    Options.Seed = Seed;
    return std::make_unique<RandomForest>(Options);
  }
  case ModelFamily::NN: {
    NeuralNetworkOptions Options;
    Options.HiddenLayers = {16};
    Options.Transfer = Activation::Identity; // The paper's linear transfer.
    Options.Epochs = 300;
    Options.Seed = Seed;
    return std::make_unique<NeuralNetwork>(Options);
  }
  case ModelFamily::Knn:
    // Deterministic (no stochastic fitting); Seed intentionally unused.
    return std::make_unique<KnnRegressor>(KnnOptions());
  }
  assert(false && "unknown model family");
  return nullptr;
}

std::unique_ptr<Model> core::fitPaperModel(ModelFamily Family, uint64_t Seed,
                                           const Dataset &Training,
                                           InferenceAlgorithm Algo) {
  std::unique_ptr<Model> M = makePaperModel(Family, Seed);
  [[maybe_unused]] auto Fit = M->fit(Training);
  assert(Fit && "paper model failed to fit an experiment dataset");
  if (Algo == InferenceAlgorithm::Quantized) {
    // Never fall back silently: a quantized run that cannot quantize is a
    // configuration error, not a licence to serve FP numbers under a
    // quantized label (the perf gate would pass vacuously).
    Expected<std::unique_ptr<QuantizedModel>> Q =
        QuantizedModel::build(std::move(M), Training);
    if (!Q) {
      std::fprintf(stderr, "fatal: --infer-algo quantized: %s\n",
                   Q.error().message().c_str());
      std::abort();
    }
    return Q.takeValue();
  }
  return M;
}
