//===- core/ModelZoo.cpp - Paper model configurations --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/ModelZoo.h"

#include <cassert>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;

const char *core::modelFamilyName(ModelFamily Family) {
  switch (Family) {
  case ModelFamily::LR:
    return "LR";
  case ModelFamily::RF:
    return "RF";
  case ModelFamily::NN:
    return "NN";
  case ModelFamily::Knn:
    return "kNN";
  }
  assert(false && "unknown model family");
  return "?";
}

std::unique_ptr<Model> core::makePaperModel(ModelFamily Family,
                                            uint64_t Seed) {
  switch (Family) {
  case ModelFamily::LR:
    return std::make_unique<LinearRegression>(
        LinearRegressionOptions::paperDefault());
  case ModelFamily::RF: {
    RandomForestOptions Options;
    Options.NumTrees = 100;
    Options.Seed = Seed;
    return std::make_unique<RandomForest>(Options);
  }
  case ModelFamily::NN: {
    NeuralNetworkOptions Options;
    Options.HiddenLayers = {16};
    Options.Transfer = Activation::Identity; // The paper's linear transfer.
    Options.Epochs = 300;
    Options.Seed = Seed;
    return std::make_unique<NeuralNetwork>(Options);
  }
  case ModelFamily::Knn:
    // Deterministic (no stochastic fitting); Seed intentionally unused.
    return std::make_unique<KnnRegressor>(KnnOptions());
  }
  assert(false && "unknown model family");
  return nullptr;
}

std::unique_ptr<Model> core::fitPaperModel(ModelFamily Family, uint64_t Seed,
                                           const Dataset &Training) {
  std::unique_ptr<Model> M = makePaperModel(Family, Seed);
  [[maybe_unused]] auto Fit = M->fit(Training);
  assert(Fit && "paper model failed to fit an experiment dataset");
  return M;
}
