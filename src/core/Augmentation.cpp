//===- core/Augmentation.cpp - Additivity-based training augmentation -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/Augmentation.h"

#include <cassert>

using namespace slope;
using namespace slope::core;

ml::Dataset core::augmentWithSyntheticCompounds(const ml::Dataset &Bases,
                                                size_t NumSynthetic,
                                                Rng PairRng) {
  assert(Bases.numRows() >= 2 && "augmentation needs at least two rows");
  ml::Dataset Augmented = Bases;
  std::vector<double> Row(Bases.numFeatures());
  for (size_t I = 0; I < NumSynthetic; ++I) {
    size_t A = PairRng.below(Bases.numRows());
    size_t B = PairRng.below(Bases.numRows());
    if (B == A)
      B = (B + 1) % Bases.numRows();
    for (size_t C = 0; C < Row.size(); ++C) {
      const double *Col = Bases.column(C);
      Row[C] = Col[A] + Col[B];
    }
    Augmented.addRow(Row, Bases.target(A) + Bases.target(B));
  }
  return Augmented;
}
