//===- core/Attribution.h - Component-level energy attribution ---*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-counter energy attribution for linear models. The paper's
/// introduction argues the decisive advantage of PMC models over power
/// meters is *fine-grained component-level decomposition* of an
/// application's energy; for the paper's linear models that decomposition
/// is exactly the per-term breakdown  coefficient_i * count_i. This
/// utility computes it for any fitted LinearRegression, giving the
/// "which activity class burned the joules" view a meter cannot provide.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_ATTRIBUTION_H
#define SLOPE_CORE_ATTRIBUTION_H

#include "ml/LinearRegression.h"

#include <string>
#include <vector>

namespace slope {
namespace core {

/// One PMC's share of a predicted energy.
struct EnergyContribution {
  std::string Pmc;
  double Joules = 0;
  double Share = 0; ///< Fraction of the predicted total in [0, 1].
};

/// Decomposes a linear model's prediction for one observation into
/// per-PMC contributions, sorted descending by share. The contributions
/// sum to the model's prediction (plus the intercept, reported under the
/// pseudo-PMC name "(intercept)" when nonzero).
std::vector<EnergyContribution>
attributeEnergy(const ml::LinearRegression &Model,
                const std::vector<std::string> &PmcNames,
                const std::vector<double> &Counts);

/// Renders an attribution as an aligned text table.
std::string renderAttribution(const std::vector<EnergyContribution> &Parts);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_ATTRIBUTION_H
