//===- core/ServingEngine.h - Fleet energy-attribution service --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running estimator service the pipeline's artifact plugs into:
/// ingests a stream of (tenant-id, app-id, PMC-vector) observations from
/// a simulated fleet and answers per-tenant / per-app dynamic-energy
/// queries, with inference through the model's batch path in bounded-size
/// batches so latency stays bounded while throughput scales.
///
/// Concurrency follows the per-CPU accumulator + periodic-fold idiom of
/// in-kernel energy models: tenant state is sharded (tenant % NumShards,
/// striped so Zipf-hot low tenant ids spread across shards), each shard
/// owns plain per-shard accumulation slots written by exactly one task
/// per epoch — no locks or atomics on the hot path — and an explicit
/// epoch boundary folds every shard's running totals into the
/// query-visible table in deterministic shard order.
///
/// Determinism argument (the house bit-identity style): a (tenant, app)
/// cell is owned by exactly one shard, that shard processes its
/// observations in trace order (the epoch partition is a stable counting
/// sort), and each prediction is a pure function of one feature row — so
/// every cell's float accumulation order is trace order regardless of
/// shard count, thread count, or batch size. Derived aggregates are
/// summed from the folded cells in ascending (tenant, app) order, never
/// across shards, so replaying the same trace is bit-identical at any
/// shard/thread count.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_SERVINGENGINE_H
#define SLOPE_CORE_SERVINGENGINE_H

#include "core/FleetTrace.h"
#include "ml/Model.h"

#include <cstdint>
#include <vector>

namespace slope {
namespace core {

/// Serving knobs. None of them changes any query result — they trade
/// wall clock and memory only (EpochSize additionally sets how much
/// ingested traffic may be pending before it becomes query-visible).
struct ServingConfig {
  /// Tenant-state shards; 0 means one per global-pool thread.
  unsigned NumShards = 0;
  /// Observations buffered before an automatic epoch fold.
  size_t EpochSize = 65536;
  /// Maximum rows per Model::predictBatch call (bounds batch latency).
  size_t BatchSize = 256;
};

/// Serving-side counters, populated as epochs fold.
struct ServingStats {
  uint64_t Observations = 0; ///< Observations folded into the table.
  uint64_t Epochs = 0;       ///< Folds performed.
  uint64_t Batches = 0;      ///< predictBatch calls issued.
  /// Wall-clock latency of every predictBatch call, appended in shard
  /// order at each fold. Values are timing (not deterministic); counts
  /// are deterministic for a fixed shard count.
  std::vector<double> BatchMs;

  /// \returns the \p Q quantile (0..1) of BatchMs, 0 when empty.
  double batchLatencyQuantileMs(double Q) const;
};

/// A sharded, epoch-folded energy-attribution engine over one fitted
/// model (typically OnlineEstimator::model()).
class ServingEngine {
public:
  /// Serves \p M (borrowed; must outlive the engine and be fitted) for a
  /// fleet of \p NumTenants tenants running \p NumApps app templates,
  /// with \p FeatureWidth PMCs per observation.
  ServingEngine(const ml::Model &M, size_t FeatureWidth, uint32_t NumTenants,
                uint32_t NumApps, ServingConfig Config = ServingConfig());

  /// Buffers one observation (\p Features: featureWidth() values); folds
  /// automatically once EpochSize observations are pending.
  void ingest(uint32_t Tenant, uint32_t App, const double *Features);

  /// Flushes pending observations through the shards and folds every
  /// shard's accumulators into the query-visible table (shard order).
  void endEpoch();

  /// Ingests the whole trace and ends the epoch; the standard replay
  /// driver (charged to Phase::Serve).
  void replay(const FleetTrace &Trace);

  /// Folded per-tenant dynamic energy (J) / observation count.
  double tenantEnergy(uint32_t Tenant) const;
  uint64_t tenantObservations(uint32_t Tenant) const;

  /// Folded per-app dynamic energy (J) / observation count, summed over
  /// tenants in ascending order.
  double appEnergy(uint32_t App) const;
  uint64_t appObservations(uint32_t App) const;

  /// Folded fleet-wide dynamic energy: per-tenant totals summed in
  /// ascending tenant order.
  double fleetEnergy() const;

  size_t featureWidth() const { return Width; }
  uint32_t numTenants() const { return NumTenants; }
  uint32_t numApps() const { return NumApps; }
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  const ServingStats &stats() const { return Stats; }

private:
  /// One (tenant, app) accumulation slot.
  struct Cell {
    double EnergyJ = 0;
    uint64_t Count = 0;
  };

  /// Per-shard state: running accumulators for the owned tenants plus
  /// reused inference scratch. Written only by this shard's epoch task.
  struct Shard {
    /// Running totals, local-tenant-major (localTenant * NumApps + app);
    /// local tenant L is global tenant L * NumShards + shardIndex.
    std::vector<Cell> Cells;
    ml::Dataset Batch;               ///< Reused bounded inference batch.
    std::vector<size_t> BatchCells;  ///< Cell index per batch row.
    std::vector<double> BatchMs;     ///< Latencies since the last fold.
    uint64_t Batches = 0;            ///< Batches since the last fold.
  };

  unsigned shardOf(uint32_t Tenant) const {
    return Tenant % static_cast<unsigned>(Shards.size());
  }

  /// Runs one shard's slice of the pending epoch: batches the rows
  /// through the model and accumulates predictions in trace order.
  void processShard(Shard &S, const size_t *Indices, size_t NumIndices);

  /// Partitions pending observations by shard (stable), fans the shards
  /// out over the pool, then folds in shard order.
  void foldEpoch();

  const ml::Model *Model;
  size_t Width;
  uint32_t NumTenants;
  uint32_t NumApps;
  size_t EpochSize;
  size_t BatchSize;

  std::vector<Shard> Shards;
  std::vector<Cell> Folded; ///< Query-visible table (tenant * NumApps + app).
  ServingStats Stats;

  // Pending (unprocessed) observations, columnar like the trace.
  std::vector<uint32_t> PendingTenants;
  std::vector<uint32_t> PendingApps;
  std::vector<double> PendingFeatures; ///< Flat row-major.
  std::vector<size_t> PartitionScratch; ///< Reused stable-partition output.
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_SERVINGENGINE_H
