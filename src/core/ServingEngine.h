//===- core/ServingEngine.h - Fleet energy-attribution service --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running estimator service the pipeline's artifact plugs into:
/// ingests a stream of (tenant-id, app-id, PMC-vector) observations from
/// a simulated fleet and answers per-tenant / per-app dynamic-energy
/// queries, with inference through the model's batch path in bounded-size
/// batches so latency stays bounded while throughput scales.
///
/// Concurrency follows the per-CPU accumulator + periodic-fold idiom of
/// in-kernel energy models: tenant state is sharded (tenant % NumShards,
/// striped so Zipf-hot low tenant ids spread across shards), each shard
/// owns plain per-shard accumulation slots written by exactly one task
/// per epoch — no locks or atomics on the hot path — and an explicit
/// epoch boundary folds every shard's running totals into the
/// query-visible table in deterministic shard order.
///
/// Determinism argument (the house bit-identity style): a (tenant, app)
/// cell is owned by exactly one shard, that shard processes its
/// observations in trace order (the epoch partition is a stable counting
/// sort), and each prediction is a pure function of one feature row — so
/// every cell's float accumulation order is trace order regardless of
/// shard count, thread count, or batch size. Derived aggregates are
/// summed from the folded cells in ascending (tenant, app) order, never
/// across shards, so replaying the same trace is bit-identical at any
/// shard/thread count.
///
/// Serving a ml::QuantizedModel switches the hot loop to the integer fast
/// path: each observation is quantized once at ingest (int32 rows, half
/// the memory traffic of doubles) and staged directly into its owning
/// shard's batch buffer with a precomputed accumulation slot — the shard
/// is a pure function of the tenant id, so the integer path skips the
/// epoch partition pass and the index gather entirely. The moment a
/// shard's batch fills, predictQuantizedMany runs over it in place — no
/// Dataset assembly, no per-batch allocation, no FP in the loop — and
/// accumulates raw int64 prediction quanta into per-cell 128-bit integer
/// slots, converted to joules once per cell at fold time. Flushing
/// in place keeps the whole pipeline inside one BatchSize buffer per
/// shard (L1-resident) instead of writing an epoch of rows to memory and
/// reading them back at the fold; the integer kernel is cheap enough
/// that the saved traffic outweighs fold-task parallelism. Per-shard
/// staging preserves trace order within a shard (appends happen in
/// arrival order), and integer accumulation is exact, so the bit-identity
/// argument above holds trivially; the quantized replay additionally
/// matches the FP reference within the model's documented error bound.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_SERVINGENGINE_H
#define SLOPE_CORE_SERVINGENGINE_H

#include "core/FleetTrace.h"
#include "ml/Model.h"
#include "ml/RlsLinearRegression.h"
#include "support/AlignedBuffer.h"

#include <cstdint>
#include <vector>

namespace slope {
namespace ml {
class QuantizedModel;
} // namespace ml
namespace core {

/// Serving knobs. None of them changes any query result — they trade
/// wall clock and memory only (EpochSize additionally sets how much
/// ingested traffic may be pending before it becomes query-visible).
struct ServingConfig {
  /// Tenant-state shards; 0 means one per global-pool thread.
  unsigned NumShards = 0;
  /// Observations buffered before an automatic epoch fold.
  size_t EpochSize = 65536;
  /// Maximum rows per Model::predictBatch call (bounds batch latency).
  size_t BatchSize = 256;
  /// Score labeled observations against the serving model at each fold
  /// (ServingStats staleness counters) even without online retrain. Off
  /// by default: the scoring pass is serial per-row prediction, which a
  /// frozen forest-family replay does not want on its critical path.
  /// Online-retrain mode always scores (its per-row predict is O(F)).
  bool ScoreLabels = false;
};

/// Serving-side counters, populated as epochs fold.
struct ServingStats {
  uint64_t Observations = 0; ///< Observations folded into the table.
  uint64_t Epochs = 0;       ///< Folds performed.
  uint64_t Batches = 0;      ///< predictBatch calls issued.
  uint64_t Retrains = 0;     ///< Online-retrain passes performed at folds.
  /// Sum of |prediction - label| over every labeled observation, with
  /// each epoch's predictions made by the model that epoch was actually
  /// served with (the epoch-start model). This is the staleness measure:
  /// a frozen model accumulates error as the workload drifts; a retrained
  /// one tracks it. Accumulated in one serial trace-order pass per fold,
  /// so it is bit-identical at any shard/thread count.
  double PredictionAbsErrJ = 0;
  double LabelAbsJ = 0; ///< Sum of |label| over the same observations.
  /// Wall-clock latency of every predictBatch call, appended in shard
  /// order at each fold. Values are timing (not deterministic); counts
  /// are deterministic for a fixed shard count.
  std::vector<double> BatchMs;

  /// \returns the \p Q quantile (0..1) of BatchMs, 0 when empty.
  double batchLatencyQuantileMs(double Q) const;

  /// \returns the relative staleness error: sum |pred - label| over
  /// sum |label| (0 when no labeled observations were served).
  double stalenessError() const {
    return LabelAbsJ > 0 ? PredictionAbsErrJ / LabelAbsJ : 0;
  }
};

/// A sharded, epoch-folded energy-attribution engine over one fitted
/// model (typically OnlineEstimator::model()).
class ServingEngine {
public:
  /// Serves \p M (borrowed; must outlive the engine and be fitted) for a
  /// fleet of \p NumTenants tenants running \p NumApps app templates,
  /// with \p FeatureWidth PMCs per observation.
  ServingEngine(const ml::Model &M, size_t FeatureWidth, uint32_t NumTenants,
                uint32_t NumApps, ServingConfig Config = ServingConfig());

  /// Switches the engine to online-retrain mode: predictions are served
  /// from \p Online (borrowed; must be fitted — typically seeded from the
  /// head of the stream — and must outlive the engine), and every epoch
  /// fold feeds that epoch's labeled observations back into it, then
  /// republishes the updated model for the next epoch. \p Algo selects
  /// the maintenance path: Rls folds each observation in with an O(F^2)
  /// Sherman-Morrison update; Refit accumulates the full history and
  /// re-runs the O(N*F^2) batch fit every fold (the reference). Either
  /// way the updates are applied serially in trace order at the fold, so
  /// replay stays bit-identical at any shard/thread/batch count. Must be
  /// called before any ingestion; incompatible with a quantized model
  /// (a retrained model cannot keep a frozen quantization grid).
  ///
  /// \p SeedHistory (Refit mode only): the dataset \p Online was seeded
  /// from. The refit accumulates new epochs on top of it, so the
  /// reference solves the same ridge system the RLS updates maintain —
  /// over the seed plus every epoch — and the two paths' attributions
  /// agree to solver precision.
  void enableOnlineRetrain(ml::RlsLinearRegression &Online,
                           ml::FitAlgorithm Algo = ml::defaultFitAlgorithm(),
                           const ml::Dataset *SeedHistory = nullptr);

  /// Buffers one observation (\p Features: featureWidth() values); folds
  /// automatically once EpochSize observations are pending.
  void ingest(uint32_t Tenant, uint32_t App, const double *Features);

  /// Buffers one labeled observation: like ingest(), plus a measured
  /// dynamic-energy target the online-retrain fold learns from (and
  /// scores the serving model against — see ServingStats). Without
  /// retrain mode the label only feeds the staleness stats.
  void ingest(uint32_t Tenant, uint32_t App, const double *Features,
              double Label);

  /// Flushes pending observations through the shards and folds every
  /// shard's accumulators into the query-visible table (shard order).
  void endEpoch();

  /// Ingests the whole trace and ends the epoch; the standard replay
  /// driver (charged to Phase::Serve, with the staging and fold slices
  /// sub-attributed to Phase::ServeIngest / Phase::ServeFold). In
  /// online-retrain mode the trace's labels ride along, so each fold
  /// retrains on the epoch just served.
  void replay(const FleetTrace &Trace);

  /// Folded per-tenant dynamic energy (J) / observation count.
  double tenantEnergy(uint32_t Tenant) const;
  uint64_t tenantObservations(uint32_t Tenant) const;

  /// Folded per-app dynamic energy (J) / observation count, summed over
  /// tenants in ascending order.
  double appEnergy(uint32_t App) const;
  uint64_t appObservations(uint32_t App) const;

  /// Folded fleet-wide dynamic energy: per-tenant totals summed in
  /// ascending tenant order.
  double fleetEnergy() const;

  size_t featureWidth() const { return Width; }
  uint32_t numTenants() const { return NumTenants; }
  uint32_t numApps() const { return NumApps; }
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  const ServingStats &stats() const { return Stats; }

private:
  /// One (tenant, app) accumulation slot.
  struct Cell {
    double EnergyJ = 0;
    uint64_t Count = 0;
  };

  /// Per-shard state: running accumulators for the owned tenants plus
  /// reused inference scratch. Written only by this shard's epoch task.
  struct Shard {
    /// Running totals, local-tenant-major (localTenant * NumApps + app);
    /// local tenant L is global tenant L * NumShards + shardIndex.
    std::vector<Cell> Cells;
    /// Quantized-path accumulation slot: running energy in raw
    /// prediction quanta plus the observation count, fused so the hot
    /// loop touches one cache line per observation. 128-bit quanta so
    /// even pathological output bases cannot overflow under millions of
    /// observations per cell; exact, converted to joules once per cell
    /// at fold time.
    struct QCell {
      __int128 EnergyQ = 0;
      uint64_t Count = 0;
    };
    /// Quantized path only: same cell layout as Cells.
    std::vector<QCell> CellsQ;
    /// Quantized path only: this shard's current batch, staged at ingest
    /// (the shard of an observation is known the moment it arrives, so
    /// the integer path never needs the epoch partition pass). Fixed
    /// BatchSize capacity — the moment it fills, the integer kernel runs
    /// over it in place (see flushShardBatch), so the quantized epoch
    /// never materialises: rows live in one L1-resident buffer instead of
    /// an epoch-sized staging array that would be written and re-read
    /// through memory. PendingRows is flat row-major int32 in trace
    /// order, in 64-byte-aligned line-padded storage so ingest's
    /// eight-wide quantizeRow never tangles with the allocation edge;
    /// PendingCells holds the precomputed accumulation slot per
    /// row; PendingN counts staged rows.
    AlignedBuffer<int32_t> PendingRows;
    std::vector<uint32_t> PendingCells;
    size_t PendingN = 0;
    /// Quantized path only: reused per-batch prediction-quanta buffer.
    std::vector<int64_t> PredQ;
    ml::Dataset Batch;               ///< Reused bounded inference batch.
    std::vector<size_t> BatchCells;  ///< Cell index per batch row.
    std::vector<double> BatchMs;     ///< Latencies since the last fold.
    uint64_t Batches = 0;            ///< Batches since the last fold.
  };

  unsigned shardOf(uint32_t Tenant) const { return TenantShard[Tenant]; }

  /// Runs one shard's slice of the pending epoch: batches the rows
  /// through the model and accumulates predictions in trace order.
  void processShard(Shard &S, const size_t *Indices, size_t NumIndices);

  /// Integer fast path: predictQuantizedMany straight over the shard's
  /// staged int32 batch into its quanta accumulators — no Dataset
  /// assembly, no allocation, no FP, no index gather. Called the moment a
  /// shard's batch fills (and once per shard at the epoch fold for the
  /// partial remainder), so per-shard batch counts match the FP path's
  /// ceil(rows / BatchSize) exactly. The kernel is cheap enough that
  /// running it inline beats shipping rows to fold-time tasks: the batch
  /// buffer stays cache-hot instead of round-tripping an epoch of rows
  /// through memory.
  void flushShardBatch(Shard &S);

  /// Bulk quantized staging for replay(): stages trace observations
  /// [Begin, End) exactly as per-row ingest would (same rows, same
  /// per-shard order, same cell slots, same flush points — replay results
  /// are identical), minus the per-row call overhead. [Begin, End) must
  /// fit in the current epoch.
  void stageQuantized(const FleetTrace &Trace, size_t Begin, size_t End);

  /// Partitions pending observations by shard (stable), fans the shards
  /// out over the pool, then folds in shard order. In online-retrain mode
  /// this is also where the model advances: a serial trace-order pass
  /// scores the epoch-start model against the epoch's labels (staleness
  /// stats), then feeds the labeled rows into the online model
  /// (Phase::RlsUpdate) or refits it over the accumulated history
  /// (Phase::Refit) before the next epoch begins.
  void foldEpoch();

  /// The serial staleness-scoring + retrain pass of foldEpoch().
  void retrainOnPending();

  const ml::Model *Model;
  /// Non-null when serving a quantized model; enables the integer path.
  const ml::QuantizedModel *Quant = nullptr;
  size_t Width;
  uint32_t NumTenants;
  uint32_t NumApps;
  size_t EpochSize;
  size_t BatchSize;
  bool ScoreLabels;

  std::vector<Shard> Shards;
  /// Precomputed striping maps: tenant -> owning shard (tenant %
  /// NumShards) and tenant -> local index within it (tenant / NumShards).
  /// The epoch partition and both shard loops read these per observation;
  /// a runtime-divisor div there costs more than the rest of the
  /// quantized per-row work combined.
  std::vector<uint32_t> TenantShard;
  std::vector<uint32_t> TenantLocal;
  std::vector<Cell> Folded; ///< Query-visible table (tenant * NumApps + app).
  ServingStats Stats;

  // Online-retrain state: the served-and-updated model (null when the
  // engine serves a frozen model), the maintenance algorithm, and — for
  // the Refit reference — the accumulated labeled history.
  ml::RlsLinearRegression *Online = nullptr;
  ml::FitAlgorithm RetrainAlgo = ml::FitAlgorithm::Rls;
  ml::Dataset History; ///< Refit mode only: every labeled row so far.

  // Pending (unprocessed) observations, columnar like the trace (FP path
  // only — a quantized engine stages rows pre-quantized and pre-routed in
  // the shards' PendingRows/PendingCells; ingest is the only place its
  // features exist as doubles).
  std::vector<uint32_t> PendingTenants;
  std::vector<uint32_t> PendingApps;
  std::vector<double> PendingFeatures; ///< Flat row-major (FP path).
  std::vector<double> PendingLabels; ///< Per-row label (NaN = unlabeled).
  std::vector<size_t> PartitionScratch; ///< Reused stable-partition output.
  size_t PendingCount = 0; ///< Observations buffered since the last fold.
};

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_SERVINGENGINE_H
