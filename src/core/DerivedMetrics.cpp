//===- core/DerivedMetrics.cpp - likwid-style derived metrics --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/DerivedMetrics.h"

#include "support/Str.h"
#include "support/TablePrinter.h"

#include <cassert>
#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;

namespace {
/// Looks a count up by (exact) event name; 0 if the group lacks it.
double countOf(const PerformanceGroup &Group,
               const std::vector<double> &Counts,
               const std::string &Name) {
  for (size_t I = 0; I < Group.EventNames.size(); ++I)
    if (Group.EventNames[I] == Name)
      return Counts[I];
  return 0;
}

/// First present event among \p Names.
double countOfAny(const PerformanceGroup &Group,
                  const std::vector<double> &Counts,
                  const std::vector<std::string> &Names) {
  for (const std::string &Name : Names) {
    for (size_t I = 0; I < Group.EventNames.size(); ++I)
      if (Group.EventNames[I] == Name)
        return Counts[I];
  }
  return 0;
}
} // namespace

std::vector<DerivedMetric>
core::computeDerivedMetrics(const PerformanceGroup &Group,
                            const std::vector<double> &Counts,
                            double TimeSec) {
  assert(Counts.size() == Group.EventNames.size() &&
         "counts do not match the group");
  assert(TimeSec > 0 && "derived rates need a positive runtime");

  std::vector<DerivedMetric> Metrics;
  Metrics.push_back({"Runtime (s)", TimeSec});

  if (Group.Name == "FLOPS_DP") {
    double Scalar = countOfAny(Group, Counts,
                               {"FP_ARITH_INST_RETIRED_SCALAR_DOUBLE"});
    double Packed = countOfAny(
        Group, Counts, {"AVX_INSTS_ALL", "FP_ARITH_INST_RETIRED_DOUBLE"});
    Metrics.push_back(
        {"DP GFLOP/s", (Scalar + Packed) / TimeSec / 1e9});
  } else if (Group.Name == "MEM") {
    double Reads = countOf(Group, Counts, "DRAM_CAS_COUNT_RD");
    double Writes = countOf(Group, Counts, "DRAM_CAS_COUNT_WR");
    Metrics.push_back(
        {"Memory read bandwidth (GB/s)", Reads * 64 / TimeSec / 1e9});
    Metrics.push_back(
        {"Memory write bandwidth (GB/s)", Writes * 64 / TimeSec / 1e9});
    Metrics.push_back({"Memory bandwidth (GB/s)",
                       (Reads + Writes) * 64 / TimeSec / 1e9});
  } else if (Group.Name == "BRANCH") {
    double Branches =
        countOf(Group, Counts, "BR_INST_RETIRED_ALL_BRANCHES");
    double Misses =
        countOf(Group, Counts, "BR_MISP_RETIRED_ALL_BRANCHES");
    if (Branches > 0)
      Metrics.push_back({"Branch misprediction ratio", Misses / Branches});
    Metrics.push_back({"Branch rate (G/s)", Branches / TimeSec / 1e9});
  } else if (Group.Name == "L2") {
    double References = countOf(Group, Counts, "L2_RQSTS_REFERENCES");
    double Misses = countOf(Group, Counts, "L2_RQSTS_MISS");
    if (References > 0)
      Metrics.push_back({"L2 miss ratio", Misses / References});
    Metrics.push_back(
        {"L2 miss bandwidth (GB/s)", Misses * 64 / TimeSec / 1e9});
  } else if (Group.Name == "L3") {
    double References = countOf(Group, Counts, "LLC_REFERENCES");
    double Misses = countOf(Group, Counts, "LLC_MISSES");
    if (References > 0)
      Metrics.push_back({"L3 miss ratio", Misses / References});
    Metrics.push_back(
        {"L3 miss bandwidth (GB/s)", Misses * 64 / TimeSec / 1e9});
  } else if (Group.Name == "UOPS") {
    double Issued = countOf(Group, Counts, "UOPS_ISSUED_ANY");
    double Executed = countOf(Group, Counts, "UOPS_EXECUTED_CORE");
    Metrics.push_back({"Uops issued (G/s)", Issued / TimeSec / 1e9});
    Metrics.push_back({"Uops executed (G/s)", Executed / TimeSec / 1e9});
  }

  // Generic per-event rates round the table out for every group.
  for (size_t I = 0; I < Group.EventNames.size(); ++I)
    Metrics.push_back(
        {Group.EventNames[I] + " (M/s)", Counts[I] / TimeSec / 1e6});
  return Metrics;
}

std::string
core::renderDerivedMetrics(const std::vector<DerivedMetric> &Metrics) {
  TablePrinter T({"Metric", "Value"});
  for (const DerivedMetric &Metric : Metrics)
    T.addRow({Metric.Name, str::compact(Metric.Value, 5)});
  return T.render();
}
