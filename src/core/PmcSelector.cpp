//===- core/PmcSelector.cpp - Additivity/correlation PMC selection ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "core/PmcSelector.h"

#include "stats/Correlation.h"
#include "stats/Pca.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::core;

std::vector<AdditivityResult>
core::rankByAdditivity(std::vector<AdditivityResult> Results) {
  // Non-deterministic or insignificant events are worse than any finite
  // additivity error; sink them to the end.
  std::stable_sort(Results.begin(), Results.end(),
                   [](const AdditivityResult &A, const AdditivityResult &B) {
                     bool AUsable = A.Deterministic && A.Significant;
                     bool BUsable = B.Deterministic && B.Significant;
                     if (AUsable != BUsable)
                       return AUsable;
                     return A.MaxErrorPct < B.MaxErrorPct;
                   });
  return Results;
}

std::vector<std::string>
core::selectMostAdditive(const std::vector<AdditivityResult> &Results,
                         size_t K) {
  assert(K <= Results.size() && "asking for more events than tested");
  std::vector<AdditivityResult> Ranked = rankByAdditivity(Results);
  std::vector<std::string> Names;
  Names.reserve(K);
  for (size_t I = 0; I < K; ++I)
    Names.push_back(Ranked[I].Name);
  return Names;
}

std::vector<double> core::energyCorrelations(const ml::Dataset &Data) {
  std::vector<double> Correlations;
  Correlations.reserve(Data.numFeatures());
  for (size_t C = 0; C < Data.numFeatures(); ++C)
    Correlations.push_back(stats::pearson(Data.column(C),
                                          Data.targets().data(),
                                          Data.numRows()));
  return Correlations;
}

std::vector<std::string> core::selectMostCorrelated(const ml::Dataset &Data,
                                                    size_t K, bool Absolute) {
  assert(K <= Data.numFeatures() && "asking for more features than exist");
  std::vector<double> Correlations = energyCorrelations(Data);
  std::vector<size_t> Order(Correlations.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    double Ra = Absolute ? std::fabs(Correlations[A]) : Correlations[A];
    double Rb = Absolute ? std::fabs(Correlations[B]) : Correlations[B];
    return Ra > Rb;
  });
  std::vector<std::string> Names;
  Names.reserve(K);
  for (size_t I = 0; I < K; ++I)
    Names.push_back(Data.featureNames()[Order[I]]);
  return Names;
}

std::vector<std::string> core::selectByPcaLoading(const ml::Dataset &Data,
                                                  size_t K,
                                                  double VarianceTarget) {
  assert(K <= Data.numFeatures() && "asking for more features than exist");
  assert(VarianceTarget > 0 && VarianceTarget <= 1 &&
         "variance target must be in (0, 1]");
  auto Pca = stats::fitPca(Data.featureMatrix());
  assert(Pca && "PCA failed on a model dataset");

  // Number of components needed to reach the variance target.
  size_t NumComponents = 1;
  while (NumComponents < Data.numFeatures() &&
         Pca->explainedVariance(NumComponents) < VarianceTarget)
    ++NumComponents;

  std::vector<double> Scores(Data.numFeatures(), 0.0);
  for (size_t C = 0; C < NumComponents; ++C) {
    double Weight = std::max(Pca->Eigen.Values[C], 0.0);
    for (size_t F = 0; F < Data.numFeatures(); ++F)
      Scores[F] += Weight * std::fabs(Pca->loading(F, C));
  }

  std::vector<size_t> Order(Scores.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Scores[A] > Scores[B];
  });
  std::vector<std::string> Names;
  Names.reserve(K);
  for (size_t I = 0; I < K; ++I)
    Names.push_back(Data.featureNames()[Order[I]]);
  return Names;
}

std::vector<std::vector<std::string>> core::nestedSubsetsByAdditivity(
    const std::vector<AdditivityResult> &Results) {
  assert(!Results.empty() && "no additivity results to nest");
  std::vector<AdditivityResult> Ranked = rankByAdditivity(Results);
  std::vector<std::vector<std::string>> Families;
  // Family i keeps the (n - i) most additive events, preserving the
  // original X-index order within each family like the paper's tables.
  for (size_t Drop = 0; Drop < Ranked.size(); ++Drop) {
    std::vector<std::string> Keep;
    for (size_t I = 0; I + Drop < Ranked.size(); ++I)
      Keep.push_back(Ranked[I].Name);
    // Restore presentation order: as listed in Results.
    std::vector<std::string> Ordered;
    for (const AdditivityResult &R : Results)
      if (std::find(Keep.begin(), Keep.end(), R.Name) != Keep.end())
        Ordered.push_back(R.Name);
    Families.push_back(std::move(Ordered));
  }
  return Families;
}
