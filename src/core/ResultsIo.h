//===- core/ResultsIo.h - Experiment result archival -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of experiment results so reproduction campaigns can
/// be archived and diffed across code versions — one row per model with
/// the (min, avg, max) error triple, and one row per PMC for the
/// additivity/correlation tables.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_CORE_RESULTSIO_H
#define SLOPE_CORE_RESULTSIO_H

#include "core/Experiments.h"

#include <string>

namespace slope {
namespace core {

/// Serializes Class A results as CSV with two sections' worth of rows:
/// `additivity` rows (pmc, max error, verdict) and `model` rows
/// (family, label, pmcs, min/avg/max).
std::string classAResultToCsv(const ClassAResult &Result);

/// Serializes Class B/C results: `correlation` rows (set, pmc,
/// correlation, additivity error) and `model` rows.
std::string classBCResultToCsv(const ClassBCResult &Result);

/// Writes \p Csv to \p Path. \returns an error on I/O failure.
Expected<bool> writeResultCsv(const std::string &Csv,
                              const std::string &Path);

} // namespace core
} // namespace slope

#endif // SLOPE_CORE_RESULTSIO_H
