//===- sim/Platform.h - Machine models (paper Table 1) ----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized multicore-CPU platform descriptions carrying the paper's
/// Table 1 specifications, plus derived quantities (flop rates, memory
/// bandwidth) the kernel models need. Substitutes for the physical Intel
/// Haswell and Skylake servers.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_PLATFORM_H
#define SLOPE_SIM_PLATFORM_H

#include "pmc/EventRegistry.h"

#include <string>

namespace slope {
namespace sim {

/// CPU micro-architecture family.
enum class Microarch { Haswell, Skylake };

/// \returns a printable name for \p Arch.
const char *microarchName(Microarch Arch);

/// A multicore CPU platform (one row of the paper's Table 1).
struct Platform {
  std::string Name;
  std::string Processor;
  std::string Os;
  Microarch Arch = Microarch::Haswell;
  unsigned ThreadsPerCore = 2;
  unsigned CoresPerSocket = 12;
  unsigned Sockets = 2;
  unsigned NumaNodes = 2;
  double BaseFreqGHz = 2.3;
  unsigned L1DKB = 32;   ///< Per core.
  unsigned L1IKB = 32;   ///< Per core.
  unsigned L2KB = 256;   ///< Per core.
  unsigned L3KB = 30720; ///< Shared per socket.
  unsigned MainMemoryGB = 64;
  double TdpWatts = 240;  ///< Whole machine (all sockets).
  double IdlePowerWatts = 58;
  /// Peak double-precision flops per core per cycle (2x FMA on 256-bit).
  double FlopsPerCorePerCycle = 16;
  /// Aggregate sustainable DRAM bandwidth in GB/s.
  double MemBandwidthGBs = 100;

  /// Optional DVFS/turbo model (off by default so baseline experiments
  /// match the paper's fixed-frequency calibration). When enabled, the
  /// effective core clock of a phase deviates from BaseFreqGHz with the
  /// workload's character: memory-stall-heavy phases upclock into turbo
  /// headroom, compute-dense phases downclock under the AVX power
  /// license. Affects CoreCycles (and every cycle-derived counter);
  /// RefCycles stay at TSC rate, as on real hardware.
  bool DvfsEnabled = false;
  /// Memory-bound upclock ceiling (factor over base frequency).
  double TurboBoostMax = 1.25;
  /// Compute-dense downclock floor (AVX license factor).
  double AvxThrottle = 0.88;

  unsigned totalCores() const { return CoresPerSocket * Sockets; }

  /// Aggregate peak double-precision GFLOP/s.
  double peakGflops() const {
    return static_cast<double>(totalCores()) * BaseFreqGHz *
           FlopsPerCorePerCycle;
  }

  /// Total shared L3 capacity in bytes (all sockets).
  double l3Bytes() const {
    return static_cast<double>(L3KB) * 1024.0 * Sockets;
  }

  /// Per-core L2 capacity in bytes.
  double l2Bytes() const { return static_cast<double>(L2KB) * 1024.0; }

  /// Per-core L1D capacity in bytes.
  double l1Bytes() const { return static_cast<double>(L1DKB) * 1024.0; }

  /// Builds this platform's Likwid-style event catalogue.
  pmc::EventRegistry buildRegistry() const;

  /// The dual-socket Intel Haswell server (Intel E5-2670 v3 @ 2.30GHz).
  static Platform intelHaswellServer();

  /// The single-socket Intel Skylake server (Intel Xeon Gold 6152).
  static Platform intelSkylakeServer();
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_PLATFORM_H
