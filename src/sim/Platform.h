//===- sim/Platform.h - Machine models (paper Table 1) ----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized multicore-CPU platform descriptions carrying the paper's
/// Table 1 specifications, plus derived quantities (flop rates, memory
/// bandwidth) the kernel models need. Substitutes for the physical Intel
/// Haswell and Skylake servers, and hosts the platform zoo: an AMD
/// Zen2-flavoured server (PerfEvtSel-style counters, no fixed set) and an
/// ARM big.LITTLE board (heterogeneous clusters with per-cluster counter
/// budgets and event sets).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_PLATFORM_H
#define SLOPE_SIM_PLATFORM_H

#include "pmc/CounterScheduler.h"
#include "pmc/EventRegistry.h"
#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {
namespace sim {

/// CPU micro-architecture family.
enum class Microarch { Haswell, Skylake, Zen2, CortexA7, CortexA15, BigLittle };

/// \returns a printable name for \p Arch.
const char *microarchName(Microarch Arch);

/// One homogeneous core cluster of a heterogeneous platform (e.g. the
/// A7 or A15 island of a big.LITTLE SoC). Clusters have their own core
/// counts, frequency ranges, cache sizes, power envelopes, and PMU
/// counter budgets; each drives a per-cluster energy model.
struct ClusterSpec {
  std::string Name;
  Microarch Arch = Microarch::CortexA7;
  unsigned Cores = 4;
  double MinFreqGHz = 0.2;
  double MaxFreqGHz = 1.4;
  unsigned L1DKB = 32;  ///< Per core.
  unsigned L2KB = 512;  ///< Shared across the cluster.
  double TdpWatts = 1;  ///< Whole cluster.
  double IdlePowerWatts = 0.1;
  double FlopsPerCorePerCycle = 2;
  unsigned NumProgrammableCounters = 4;
  unsigned NumFixedCounters = 1; ///< PMCCNTR on ARM.
};

/// The PMC names one cluster's energy model consumes (lluchs-style
/// per-cluster models: the A7 and A15 regressions use different event
/// sets). Validated against the cluster list and the cluster registry.
struct ClusterEventSet {
  std::string Cluster;               ///< Must name a ClusterSpec.
  std::vector<std::string> Events;   ///< Native event names.
};

/// A multicore CPU platform (one row of the paper's Table 1).
struct Platform {
  std::string Name;
  std::string Processor;
  std::string Os;
  Microarch Arch = Microarch::Haswell;
  unsigned ThreadsPerCore = 2;
  unsigned CoresPerSocket = 12;
  unsigned Sockets = 2;
  unsigned NumaNodes = 2;
  double BaseFreqGHz = 2.3;
  unsigned L1DKB = 32;   ///< Per core.
  unsigned L1IKB = 32;   ///< Per core.
  unsigned L2KB = 256;   ///< Per core.
  unsigned L3KB = 30720; ///< Shared per socket.
  unsigned MainMemoryGB = 64;
  double TdpWatts = 240;  ///< Whole machine (all sockets).
  double IdlePowerWatts = 58;
  /// Peak double-precision flops per core per cycle (2x FMA on 256-bit).
  double FlopsPerCorePerCycle = 16;
  /// Aggregate sustainable DRAM bandwidth in GB/s.
  double MemBandwidthGBs = 100;

  /// PMU counting resources. Intel parts expose 4 programmable + 3
  /// fixed-function counters; AMD PerfEvtSel0-3 parts have 4 programmable
  /// and no fixed set; ARM clusters carry their own budgets below.
  unsigned NumProgrammableCounters = 4;
  unsigned NumFixedCounters = 3;

  /// Heterogeneous core clusters. Empty for homogeneous platforms; a
  /// big.LITTLE SoC lists its islands here in fixed order (LITTLE first,
  /// as on the Exynos: "the A7 cores always come first").
  std::vector<ClusterSpec> Clusters;

  /// Per-cluster model event sets (may be empty even when Clusters is
  /// not; then each cluster model draws from its full registry).
  std::vector<ClusterEventSet> ClusterEvents;

  /// Optional DVFS/turbo model (off by default so baseline experiments
  /// match the paper's fixed-frequency calibration). When enabled, the
  /// effective core clock of a phase deviates from BaseFreqGHz with the
  /// workload's character: memory-stall-heavy phases upclock into turbo
  /// headroom, compute-dense phases downclock under the AVX power
  /// license. Affects CoreCycles (and every cycle-derived counter);
  /// RefCycles stay at TSC rate, as on real hardware.
  bool DvfsEnabled = false;
  /// Memory-bound upclock ceiling (factor over base frequency).
  double TurboBoostMax = 1.25;
  /// Compute-dense downclock floor (AVX license factor).
  double AvxThrottle = 0.88;

  bool isHeterogeneous() const { return !Clusters.empty(); }

  size_t numClusters() const { return Clusters.size(); }

  unsigned totalCores() const {
    if (isHeterogeneous()) {
      unsigned N = 0;
      for (const ClusterSpec &C : Clusters)
        N += C.Cores;
      return N;
    }
    return CoresPerSocket * Sockets;
  }

  /// This platform's counter budget as a scheduler PMU description.
  pmc::PmuSpec pmuSpec() const {
    pmc::PmuSpec Spec;
    Spec.NumProgrammable = NumProgrammableCounters;
    Spec.NumFixed = NumFixedCounters;
    return Spec;
  }

  /// Aggregate peak double-precision GFLOP/s.
  double peakGflops() const {
    if (isHeterogeneous()) {
      double G = 0;
      for (const ClusterSpec &C : Clusters)
        G += static_cast<double>(C.Cores) * C.MaxFreqGHz *
             C.FlopsPerCorePerCycle;
      return G;
    }
    return static_cast<double>(totalCores()) * BaseFreqGHz *
           FlopsPerCorePerCycle;
  }

  /// Total shared L3 capacity in bytes (all sockets).
  double l3Bytes() const {
    return static_cast<double>(L3KB) * 1024.0 * Sockets;
  }

  /// Per-core L2 capacity in bytes.
  double l2Bytes() const { return static_cast<double>(L2KB) * 1024.0; }

  /// Per-core L1D capacity in bytes.
  double l1Bytes() const { return static_cast<double>(L1DKB) * 1024.0; }

  /// Checks the profile for malformed configurations (zero cores, empty
  /// clusters, zero counter budgets, event sets naming unknown clusters
  /// or events) so they fail loudly instead of producing NaN tables.
  Expected<bool> validate() const;

  /// A homogeneous per-cluster view of cluster \p I of a heterogeneous
  /// platform: the cluster's cores, frequency, caches, power share, and
  /// counter budget as a standalone Platform, suitable for driving a
  /// `Machine` (and hence a per-cluster energy model).
  Platform clusterPlatform(size_t I) const;

  /// Builds this platform's Likwid-style event catalogue. For a
  /// heterogeneous platform this is the union catalogue (the big
  /// cluster's superset); use `clusterPlatform(i).buildRegistry()` for
  /// per-cluster catalogues.
  pmc::EventRegistry buildRegistry() const;

  /// The dual-socket Intel Haswell server (Intel E5-2670 v3 @ 2.30GHz).
  static Platform intelHaswellServer();

  /// The single-socket Intel Skylake server (Intel Xeon Gold 6152).
  static Platform intelSkylakeServer();

  /// An AMD Zen2 server (EPYC 7452-like): PerfEvtSel0-3 programmable
  /// counters only — no fixed-function set — with per-event slot
  /// restrictions in its registry.
  static Platform amdZen2Server();

  /// An ARM big.LITTLE developer board (Odroid-XU3-like, Exynos 5422):
  /// a 4-core Cortex-A7 LITTLE cluster and a 4-core Cortex-A15 big
  /// cluster, each with its own counter budget and model event set.
  static Platform armBigLittle();
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_PLATFORM_H
