//===- sim/Kernels.cpp - Analytic workload models ----------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The kernel catalogue and the shared engine that turns a KernelSpec into
// latent activities and a time estimate. Work formulas are first-order
// algorithmic counts (2N^3 flops for DGEMM, 10 N^2 log2 N for a 2-D FFT,
// ...), memory behaviour runs through sim::CacheModel, and frontend/OS
// counts are derived from instruction volume and footprint parameters.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernel.h"

#include "sim/CacheModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

double WorkTerm::eval(double N) const {
  if (Coef == 0)
    return 0;
  double Log = std::log2(std::max(N, 2.0));
  return Coef * std::pow(N, Exp) * std::pow(Log, LogPow);
}

namespace {

/// Shorthand for spec tables: {Coef, Exp, LogPow}.
constexpr WorkTerm term(double Coef, double Exp, double LogPow = 0) {
  return WorkTerm{Coef, Exp, LogPow};
}
constexpr WorkTerm none() { return WorkTerm{0, 0, 0}; }

const KernelSpec KernelTable[] = {
    // --- MKL-like DGEMM: 2N^3 flops, fully vectorized, register+cache
    // blocked so only ~N^3/8 loads reach the memory pipeline.
    {KernelKind::MklDgemm, "mkl-dgemm", "compute-bound",
     /*ContextIntensity=*/0.03,
     /*FlopsScalar=*/none(), /*FlopsVector=*/term(2.0, 3),
     /*IntOps=*/term(0.03, 3), /*Loads=*/term(0.25, 3),
     /*Stores=*/term(0.02, 3), /*DivOps=*/term(0.05, 2.5),
     /*Branches=*/term(0.016, 3), /*BranchMissRate=*/0.002,
     /*WorkingSetBytes=*/term(24.0, 2), /*Locality=*/0.95,
     /*CodeFootprintKB=*/24, /*DsbFraction=*/0.60, /*MsRate=*/8e-4,
     /*ParallelEfficiency=*/0.92, /*SizeMin=*/512, /*SizeMax=*/45000},

    // --- Textbook triple-loop DGEMM: scalar, every operand loaded.
    {KernelKind::NaiveDgemm, "naive-dgemm", "mixed",
     0.50,
     term(2.0, 3), none(),
     term(1.0, 3), term(2.0, 3),
     term(1.0, 2), term(10, 1),
     term(1.0, 3), 0.01,
     term(24.0, 2), 0.30,
     8, 0.50, 6e-4,
     0.85, 256, 8000},

    // --- MKL-like 2-D complex FFT on an N x N grid, batched 30x (the
    // usual repeat-loop that lifts runtimes past the meter's sampling
    // floor): 30 * 10 N^2 log2 N flops, strided butterfly passes.
    {KernelKind::MklFft, "mkl-fft", "memory-bound",
     0.035,
     term(60.0, 2, 1), term(240.0, 2, 1),
     term(30.0, 2, 1), term(60.0, 2, 1),
     term(30.0, 2, 1), term(2.0, 2),
     term(6.0, 2, 1), 0.004,
     term(32.0, 2), 0.75,
     28, 0.58, 8e-4,
     0.88, 1024, 45000},

    // --- STREAM triad a[i] = b[i] + s*c[i] over N doubles.
    {KernelKind::Stream, "stream-triad", "memory-bound",
     0.25,
     none(), term(2.0, 1),
     term(0.2, 1), term(2.0, 1),
     term(1.0, 1), none(),
     term(0.0625, 1), 0.001,
     term(24.0, 1), 0.10,
     10, 0.55, 5e-4,
     0.95, 1u << 20, 20000000000ull},

    // --- stress-style integer spin: N ALU iterations, tiny footprint.
    {KernelKind::Stress, "stress-int", "compute-bound",
     1.00,
     none(), none(),
     term(1.0, 1), term(0.01, 1),
     term(0.005, 1), none(),
     term(0.25, 1), 0.02,
     term(4096.0, 0), 0.90,
     12, 0.45, 9e-4,
     0.97, 1u << 22, 2000000000000ull},

    // --- NAS CG class-style sparse conjugate gradient, 27 nnz/row,
    // 75 iterations.
    {KernelKind::NpbCg, "npb-cg", "memory-bound",
     0.70,
     term(4050.0, 1), none(),
     term(2000.0, 1), term(5000.0, 1),
     term(400.0, 1), term(150, 0),
     term(500.0, 1), 0.02,
     term(400.0, 1), 0.25,
     32, 0.42, 8e-4,
     0.75, 10000, 30000000},

    // --- NAS MG multigrid stencil, ~40 V-cycles.
    {KernelKind::NpbMg, "npb-mg", "mixed",
     0.60,
     term(200.0, 1), term(1000.0, 1),
     term(400.0, 1), term(1500.0, 1),
     term(400.0, 1), none(),
     term(120.0, 1), 0.015,
     term(48.0, 1), 0.60,
     40, 0.50, 6e-4,
     0.80, 100000, 2000000000ull},

    // --- NAS FT: 3-D FFT over N total grid points.
    {KernelKind::NpbFt, "npb-ft", "memory-bound",
     0.55,
     term(4.0, 1, 1), term(11.0, 1, 1),
     term(2.0, 1, 1), term(4.0, 1, 1),
     term(2.0, 1, 1), none(),
     term(0.5, 1, 1), 0.006,
     term(32.0, 1), 0.70,
     40, 0.52, 6e-4,
     0.82, 100000, 4000000000ull},

    // --- NAS EP: independent pseudo-random streams, pure compute.
    {KernelKind::NpbEp, "npb-ep", "compute-bound",
     0.40,
     term(60.0, 1), none(),
     term(40.0, 1), term(4.0, 1),
     term(2.0, 1), term(2.0, 1),
     term(10.0, 1), 0.04,
     term(1048576.0, 0), 0.90,
     20, 0.55, 1e-3,
     0.96, 1u << 20, 100000000000ull},

    // --- HPCG-like SpMV + symmetric Gauss-Seidel, 50 iterations.
    {KernelKind::Hpcg, "hpcg", "memory-bound",
     0.75,
     term(2700.0, 1), none(),
     term(1500.0, 1), term(4000.0, 1),
     term(500.0, 1), term(54, 0),
     term(400.0, 1), 0.025,
     term(350.0, 1), 0.20,
     64, 0.40, 1e-3,
     0.70, 10000, 40000000},

    // --- Pointer chase over an N-node random cycle, 100 hops per node.
    {KernelKind::PtrChase, "ptr-chase", "memory-bound",
     0.90,
     none(), none(),
     term(100.0, 1), term(100.0, 1),
     term(0.5, 1), none(),
     term(25.0, 1), 0.10,
     term(16.0, 1), 0.02,
     10, 0.45, 7e-4,
     0.90, 1u << 18, 1000000000u},

    // --- Parallel quicksort over N 8-byte keys.
    {KernelKind::QuickSort, "quicksort", "mixed",
     1.20,
     none(), none(),
     term(30.0, 1, 1), term(2.0, 1, 1),
     term(1.0, 1, 1), none(),
     term(1.5, 1, 1), 0.12,
     term(8.0, 1), 0.45,
     16, 0.40, 1.5e-3,
     0.70, 1u << 20, 4000000000u},

    // --- Iterated 9-point stencil on an N x N grid, 100 sweeps.
    {KernelKind::Stencil2D, "stencil2d", "mixed",
     0.45,
     term(100.0, 2), term(800.0, 2),
     term(200.0, 2), term(1100.0, 2),
     term(110.0, 2), none(),
     term(60.0, 2), 0.008,
     term(16.0, 2), 0.80,
     16, 0.55, 6e-4,
     0.90, 512, 40000},

    // --- Monte Carlo path simulation: divides, RNG microcode, branches.
    {KernelKind::MonteCarlo, "montecarlo", "compute-bound",
     0.85,
     term(200.0, 1), none(),
     term(120.0, 1), term(30.0, 1),
     term(10.0, 1), term(4.0, 1),
     term(40.0, 1), 0.08,
     term(1048576.0, 0), 0.85,
     44, 0.40, 1.5e-3,
     0.93, 1u << 18, 2000000000u},

    // --- Standalone SpMV, 20 nnz/row, 40 repetitions.
    {KernelKind::SpMV, "spmv", "memory-bound",
     0.80,
     term(1600.0, 1), none(),
     term(900.0, 1), term(2400.0, 1),
     term(120.0, 1), none(),
     term(200.0, 1), 0.02,
     term(240.0, 1), 0.15,
     24, 0.42, 5e-4,
     0.75, 10000, 50000000},

    // --- k-means over N 16-d points, 8 centroids, 30 iterations.
    {KernelKind::KMeans, "kmeans", "mixed",
     0.65,
     term(1500.0, 1), term(6000.0, 1),
     term(2500.0, 1), term(7000.0, 1),
     term(300.0, 1), term(30.0, 1),
     term(400.0, 1), 0.06,
     term(128.0, 1), 0.50,
     28, 0.48, 8e-4,
     0.85, 10000, 100000000},
};

static_assert(sizeof(KernelTable) / sizeof(KernelTable[0]) == NumKernelKinds,
              "kernel table out of sync with KernelKind");

/// Instruction-footprint-driven icache miss rate: negligible while the
/// hot code fits the 32 KB L1I, growing toward ~1.2% for large footprints.
double icacheMissRate(double CodeFootprintKB) {
  double Rate = 2e-4 * std::pow(CodeFootprintKB / 24.0, 1.5);
  return std::clamp(Rate, 5e-5, 1.2e-2);
}

} // namespace

const KernelSpec &sim::kernelSpec(KernelKind Kind) {
  size_t Index = static_cast<size_t>(Kind);
  assert(Index < NumKernelKinds && "kernel kind out of range");
  assert(KernelTable[Index].Kind == Kind && "kernel table misordered");
  return KernelTable[Index];
}

std::vector<KernelKind> sim::allKernels() {
  std::vector<KernelKind> Kinds;
  Kinds.reserve(NumKernelKinds);
  for (size_t I = 0; I < NumKernelKinds; ++I)
    Kinds.push_back(static_cast<KernelKind>(I));
  return Kinds;
}

double TimeBreakdown::memoryShare() const {
  double C4 = std::pow(ComputeSec, 4);
  double M4 = std::pow(MemorySec, 4);
  if (C4 + M4 == 0)
    return 0;
  return M4 / (C4 + M4);
}

TimeBreakdown sim::kernelTimeBreakdown(KernelKind Kind, double N,
                                       const Platform &P) {
  const KernelSpec &Spec = kernelSpec(Kind);
  assert(N >= 1 && "problem size must be positive");

  double FlopsScalar = Spec.FlopsScalar.eval(N);
  double FlopsVector = Spec.FlopsVector.eval(N);
  double IntOps = Spec.IntOps.eval(N);
  double Loads = Spec.Loads.eval(N);
  double Stores = Spec.Stores.eval(N);
  double DivOps = Spec.DivOps.eval(N);

  double Cores = static_cast<double>(P.totalCores());

  // Compute-side cycle estimate per core.
  double ComputeCycles = FlopsVector / P.FlopsPerCorePerCycle +
                         FlopsScalar / 2.0 + IntOps / 3.0 + DivOps * 16.0 +
                         (Loads + Stores) / 2.0;
  TimeBreakdown Breakdown;
  Breakdown.ComputeSec =
      ComputeCycles /
      (Cores * Spec.ParallelEfficiency * P.BaseFreqGHz * 1e9);

  // Memory-side time from DRAM traffic.
  MemoryProfile Profile;
  Profile.Accesses = Loads + Stores;
  Profile.WorkingSetBytes = Spec.WorkingSetBytes.eval(N);
  Profile.Locality = Spec.Locality;
  CacheMisses Misses = estimateMisses(Profile, P);
  Breakdown.MemorySec = Misses.L3 * 64.0 / (P.MemBandwidthGBs * 1e9);
  // Latency-bound codes (no MLP) see per-access latency, not bandwidth.
  if (Spec.Locality < 0.05)
    Breakdown.MemorySec =
        std::max(Breakdown.MemorySec, Misses.L3 * 90e-9 / Cores);

  // Soft maximum: overlapping compute and memory with mild interference.
  double P4 = std::pow(Breakdown.ComputeSec, 4) +
              std::pow(Breakdown.MemorySec, 4);
  Breakdown.TotalSec = std::pow(P4, 0.25) + 0.002; // + process startup.
  return Breakdown;
}

double sim::kernelTimeSeconds(KernelKind Kind, double N, const Platform &P) {
  return kernelTimeBreakdown(Kind, N, P).TotalSec;
}

ActivityVector sim::kernelActivities(KernelKind Kind, double N,
                                     const Platform &P) {
  const KernelSpec &Spec = kernelSpec(Kind);
  assert(N >= 1 && "problem size must be positive");

  double FlopsScalar = Spec.FlopsScalar.eval(N);
  double FlopsVector = Spec.FlopsVector.eval(N);
  double IntOps = Spec.IntOps.eval(N);
  double Loads = Spec.Loads.eval(N);
  double Stores = Spec.Stores.eval(N);
  double DivOps = Spec.DivOps.eval(N);
  double Branches = Spec.Branches.eval(N);

  ActivityVector A;
  A[ActivityKind::FpScalarDouble] = FlopsScalar;
  A[ActivityKind::FpVectorDouble] = FlopsVector;
  A[ActivityKind::DivOps] = DivOps;
  A[ActivityKind::Loads] = Loads;
  A[ActivityKind::Stores] = Stores;
  A[ActivityKind::Branches] = Branches;
  A[ActivityKind::BranchMisses] = Branches * Spec.BranchMissRate;

  // Instruction volume: vector flops retire 4 lanes (and 2 flops per FMA
  // lane-op) per instruction; the rest map one-to-one.
  double VectorInstr = FlopsVector / 8.0;
  double Instructions = FlopsScalar + VectorInstr + IntOps + Loads + Stores +
                        Branches + DivOps;
  A[ActivityKind::Instructions] = Instructions;

  // Memory hierarchy.
  MemoryProfile Profile;
  Profile.Accesses = Loads + Stores;
  Profile.WorkingSetBytes = Spec.WorkingSetBytes.eval(N);
  Profile.Locality = Spec.Locality;
  CacheMisses Misses = estimateMisses(Profile, P);
  double ICacheAccesses = Instructions / 4.0;
  double ICacheMisses = ICacheAccesses * icacheMissRate(Spec.CodeFootprintKB);
  A[ActivityKind::L1DMisses] = Misses.L1D;
  A[ActivityKind::L2Requests] = Misses.L1D + ICacheMisses;
  A[ActivityKind::L2Misses] = Misses.L2 + ICacheMisses * 0.3;
  A[ActivityKind::L3Misses] = Misses.L3;
  A[ActivityKind::DramReads] = Misses.L3 * 1.25; // Prefetch overshoot.

  // Frontend.
  A[ActivityKind::ICacheAccesses] = ICacheAccesses;
  A[ActivityKind::ICacheMisses] = ICacheMisses;
  double MsUops = DivOps * 12.0 + Instructions * Spec.MsRate;
  double UopsIssued = Instructions * 1.05 + MsUops;
  A[ActivityKind::MsUops] = MsUops;
  A[ActivityKind::DsbUops] = UopsIssued * Spec.DsbFraction;
  A[ActivityKind::MiteUops] =
      std::max(0.0, UopsIssued - A[ActivityKind::DsbUops] - MsUops);
  A[ActivityKind::UopsIssued] = UopsIssued;
  A[ActivityKind::UopsRetired] = Instructions * 1.02;

  // Execution ports: compute uops to 0/1/5/6, loads to 2/3, stores to
  // 4 (data) and 7/2/3 (AGU).
  double ComputeUops = VectorInstr + FlopsScalar + IntOps + DivOps;
  A[ActivityKind::Port0] = ComputeUops * 0.40;
  A[ActivityKind::Port1] = ComputeUops * 0.40;
  A[ActivityKind::Port2] = Loads * 0.5 + Stores * 0.2;
  A[ActivityKind::Port3] = Loads * 0.5 + Stores * 0.2;
  A[ActivityKind::Port4] = Stores;
  A[ActivityKind::Port5] = ComputeUops * 0.12 + Loads * 0.05;
  A[ActivityKind::Port6] = Branches + ComputeUops * 0.05;
  A[ActivityKind::Port7] = Stores * 0.6;
  double UopsExecuted = 0;
  for (ActivityKind Port :
       {ActivityKind::Port0, ActivityKind::Port1, ActivityKind::Port2,
        ActivityKind::Port3, ActivityKind::Port4, ActivityKind::Port5,
        ActivityKind::Port6, ActivityKind::Port7})
    UopsExecuted += A[Port];
  A[ActivityKind::UopsExecuted] = UopsExecuted;

  // TLBs.
  double Pages = Profile.WorkingSetBytes / 4096.0;
  double DTlbMisses =
      Misses.L1D * 0.08 * (1.0 - Spec.Locality) + Pages;
  A[ActivityKind::DTlbMisses] = DTlbMisses;
  double ITlbMisses = ICacheMisses * 0.04 + Spec.CodeFootprintKB / 4.0;
  A[ActivityKind::ITlbMisses] = ITlbMisses;
  A[ActivityKind::StlbHits] = 1.5 * (DTlbMisses + ITlbMisses);

  // OS interaction.
  double TimeSec = kernelTimeSeconds(Kind, N, P);
  A[ActivityKind::PageFaults] = Pages * 1.05 + 600;
  A[ActivityKind::ContextSwitches] =
      100.0 * TimeSec * static_cast<double>(P.totalCores()) * 0.2 + 20;

  // Cycles: all cores busy for the duration. With the optional DVFS
  // model, the effective core clock depends on the workload's character
  // (turbo on memory stalls, AVX-license throttle under dense compute);
  // reference cycles always tick at TSC rate like real fixed counters.
  double AggregateRefCycles =
      TimeSec * P.BaseFreqGHz * 1e9 * static_cast<double>(P.totalCores());
  double FreqFactor = 1.0;
  if (P.DvfsEnabled) {
    double MemShare = kernelTimeBreakdown(Kind, N, P).memoryShare();
    FreqFactor =
        P.AvxThrottle + (P.TurboBoostMax - P.AvxThrottle) * MemShare;
  }
  A[ActivityKind::CoreCycles] = AggregateRefCycles * FreqFactor;
  A[ActivityKind::RefCycles] = AggregateRefCycles;

  return A;
}
