//===- sim/Platform.cpp - Machine models (paper Table 1) --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Platform.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace slope;
using namespace slope::sim;

const char *sim::microarchName(Microarch Arch) {
  switch (Arch) {
  case Microarch::Haswell:
    return "Haswell";
  case Microarch::Skylake:
    return "Skylake";
  case Microarch::Zen2:
    return "Zen2";
  case Microarch::CortexA7:
    return "Cortex-A7";
  case Microarch::CortexA15:
    return "Cortex-A15";
  case Microarch::BigLittle:
    return "big.LITTLE";
  }
  assert(false && "unknown microarchitecture");
  return "?";
}

pmc::EventRegistry Platform::buildRegistry() const {
  switch (Arch) {
  case Microarch::Haswell:
    return pmc::buildHaswellRegistry();
  case Microarch::Skylake:
    return pmc::buildSkylakeRegistry();
  case Microarch::Zen2:
    return pmc::buildAmdZen2Registry();
  case Microarch::CortexA7:
    return pmc::buildCortexA7Registry();
  case Microarch::CortexA15:
    return pmc::buildCortexA15Registry();
  case Microarch::BigLittle:
    // Union catalogue: the A7 event names are a strict subset of the
    // A15's, so the big cluster's registry covers the whole SoC.
    return pmc::buildCortexA15Registry();
  }
  assert(false && "unknown microarchitecture");
  return pmc::EventRegistry();
}

Expected<bool> Platform::validate() const {
  if (totalCores() == 0)
    return makeError("platform '" + Name + "' has no cores");
  if (NumProgrammableCounters == 0)
    return makeError("platform '" + Name +
                     "' has a programmable counter budget of 0");
  std::set<std::string> ClusterNames;
  for (const ClusterSpec &C : Clusters) {
    if (C.Name.empty())
      return makeError("platform '" + Name + "' has an unnamed cluster");
    if (!ClusterNames.insert(C.Name).second)
      return makeError("platform '" + Name + "' has duplicate cluster '" +
                       C.Name + "'");
    if (C.Cores == 0)
      return makeError("cluster '" + C.Name + "' of platform '" + Name +
                       "' has no cores");
    if (C.NumProgrammableCounters == 0)
      return makeError("cluster '" + C.Name + "' of platform '" + Name +
                       "' has a programmable counter budget of 0");
    if (C.MaxFreqGHz <= 0)
      return makeError("cluster '" + C.Name + "' of platform '" + Name +
                       "' has a non-positive frequency range");
  }
  for (const ClusterEventSet &Set : ClusterEvents) {
    size_t ClusterIndex = Clusters.size();
    for (size_t I = 0; I < Clusters.size(); ++I)
      if (Clusters[I].Name == Set.Cluster)
        ClusterIndex = I;
    if (ClusterIndex == Clusters.size())
      return makeError("event set references unknown cluster '" +
                       Set.Cluster + "' on platform '" + Name + "'");
    if (Set.Events.empty())
      return makeError("event set for cluster '" + Set.Cluster +
                       "' of platform '" + Name + "' is empty");
    pmc::EventRegistry Registry =
        clusterPlatform(ClusterIndex).buildRegistry();
    for (const std::string &Event : Set.Events)
      if (!Registry.hasEvent(Event))
        return makeError("cluster '" + Set.Cluster + "' of platform '" +
                         Name + "' has no event named '" + Event + "'");
  }
  return true;
}

Platform Platform::clusterPlatform(size_t I) const {
  assert(I < Clusters.size() && "cluster index out of range");
  const ClusterSpec &C = Clusters[I];
  Platform P = *this;
  P.Name = Name + " / " + C.Name + " cluster";
  P.Arch = C.Arch;
  P.ThreadsPerCore = 1;
  P.CoresPerSocket = C.Cores;
  P.Sockets = 1;
  P.NumaNodes = 1;
  P.BaseFreqGHz = C.MaxFreqGHz;
  P.L1DKB = C.L1DKB;
  P.L1IKB = C.L1DKB;
  // The cluster-shared L2 plays both mid-level (per-core share) and
  // last-level (full capacity) roles in the three-level cache model.
  P.L2KB = std::max(1u, C.L2KB / std::max(1u, C.Cores));
  P.L3KB = C.L2KB;
  P.TdpWatts = C.TdpWatts;
  P.IdlePowerWatts = C.IdlePowerWatts;
  P.FlopsPerCorePerCycle = C.FlopsPerCorePerCycle;
  P.NumProgrammableCounters = C.NumProgrammableCounters;
  P.NumFixedCounters = C.NumFixedCounters;
  P.Clusters.clear();
  P.ClusterEvents.clear();
  P.DvfsEnabled = false;
  return P;
}

Platform Platform::intelHaswellServer() {
  Platform P;
  P.Name = "HCLServer01 (Intel Haswell)";
  P.Processor = "Intel E5-2670 v3 @2.30GHz";
  P.Os = "CentOS 7";
  P.Arch = Microarch::Haswell;
  P.ThreadsPerCore = 2;
  P.CoresPerSocket = 12;
  P.Sockets = 2;
  P.NumaNodes = 2;
  P.BaseFreqGHz = 2.3;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 256;
  P.L3KB = 30720;
  P.MainMemoryGB = 64;
  P.TdpWatts = 240;
  P.IdlePowerWatts = 58;
  P.FlopsPerCorePerCycle = 16; // AVX2 FMA, 2x256-bit pipes.
  P.MemBandwidthGBs = 110;     // Dual socket, 4 DDR4 channels each.
  return P;
}

Platform Platform::intelSkylakeServer() {
  Platform P;
  P.Name = "HCLServer02 (Intel Skylake)";
  P.Processor = "Intel Xeon Gold 6152";
  P.Os = "Ubuntu 16.04 LTS";
  P.Arch = Microarch::Skylake;
  P.ThreadsPerCore = 2;
  P.CoresPerSocket = 22;
  P.Sockets = 1;
  P.NumaNodes = 1;
  P.BaseFreqGHz = 2.1;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 1024;
  P.L3KB = 30976;
  P.MainMemoryGB = 96;
  P.TdpWatts = 140;
  P.IdlePowerWatts = 32;
  P.FlopsPerCorePerCycle = 16; // Modeling the AVX2 path.
  P.MemBandwidthGBs = 105;     // 6 DDR4-2666 channels.
  return P;
}

Platform Platform::amdZen2Server() {
  Platform P;
  P.Name = "HCLServer03 (AMD Zen2)";
  P.Processor = "AMD EPYC 7452 @2.35GHz";
  P.Os = "Ubuntu 20.04 LTS";
  P.Arch = Microarch::Zen2;
  P.ThreadsPerCore = 2;
  P.CoresPerSocket = 32;
  P.Sockets = 1;
  P.NumaNodes = 4; // Four quadrant NUMA domains per socket.
  P.BaseFreqGHz = 2.35;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 512;
  P.L3KB = 131072; // 16 MB per CCX, 8 CCXs.
  P.MainMemoryGB = 128;
  P.TdpWatts = 155;
  P.IdlePowerWatts = 65;
  P.FlopsPerCorePerCycle = 16; // AVX2 FMA, 2x256-bit pipes.
  P.MemBandwidthGBs = 140;     // 8 DDR4-3200 channels.
  // PerfEvtSel0-3: four general-purpose counters, no fixed-function set.
  P.NumProgrammableCounters = 4;
  P.NumFixedCounters = 0;
  return P;
}

Platform Platform::armBigLittle() {
  Platform P;
  P.Name = "OdroidXU3 (ARM big.LITTLE)";
  P.Processor = "Samsung Exynos 5422 (4xA7 + 4xA15)";
  P.Os = "Ubuntu 14.04 LTS";
  P.Arch = Microarch::BigLittle;
  P.ThreadsPerCore = 1;
  P.CoresPerSocket = 8; // Unused for scheduling; clusters are authoritative.
  P.Sockets = 1;
  P.NumaNodes = 1;
  P.BaseFreqGHz = 2.0;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 256;
  P.L3KB = 2048; // No L3; the big cluster's shared L2 is the LLC.
  P.MainMemoryGB = 2;
  P.TdpWatts = 5.0;
  P.IdlePowerWatts = 0.5;
  P.FlopsPerCorePerCycle = 4; // NEONv2 FMA on the A15s.
  P.MemBandwidthGBs = 8.5;    // 2x32-bit LPDDR3-933.
  // Board-level budget is the LITTLE cluster's (conservative bound);
  // per-cluster budgets below are authoritative for cluster models.
  P.NumProgrammableCounters = 4;
  P.NumFixedCounters = 1; // PMCCNTR.

  ClusterSpec Little;
  Little.Name = "A7";
  Little.Arch = Microarch::CortexA7;
  Little.Cores = 4;
  Little.MinFreqGHz = 0.2;
  Little.MaxFreqGHz = 1.4;
  Little.L1DKB = 32;
  Little.L2KB = 512;
  Little.TdpWatts = 0.8;
  Little.IdlePowerWatts = 0.15;
  Little.FlopsPerCorePerCycle = 2;
  Little.NumProgrammableCounters = 4;
  Little.NumFixedCounters = 1;

  ClusterSpec Big;
  Big.Name = "A15";
  Big.Arch = Microarch::CortexA15;
  Big.Cores = 4;
  Big.MinFreqGHz = 0.2;
  Big.MaxFreqGHz = 2.0;
  Big.L1DKB = 32;
  Big.L2KB = 2048;
  Big.TdpWatts = 4.2;
  Big.IdlePowerWatts = 0.35;
  Big.FlopsPerCorePerCycle = 4;
  Big.NumProgrammableCounters = 6;
  Big.NumFixedCounters = 1;

  // LITTLE island first: on the Exynos the A7 cores always come first.
  P.Clusters = {Little, Big};

  // Per-cluster model PMCs after the lluchs A7/A15 regressions; the A15
  // model adds the speculative-issue (SPEC) events the A7 lacks.
  ClusterEventSet LittleEvents;
  LittleEvents.Cluster = "A7";
  LittleEvents.Events = {"PMCCNTR", "BR_MIS_PRED", "L1D_TLB_REFILL",
                         "L2D_CACHE_REFILL", "L2D_CACHE_WB"};
  ClusterEventSet BigEvents;
  BigEvents.Cluster = "A15";
  BigEvents.Events = {"PMCCNTR",          "ASE_SPEC",    "BR_MIS_PRED",
                      "DP_SPEC",          "L1D_TLB_REFILL",
                      "L2D_CACHE_REFILL", "L2D_CACHE_WB", "VFP_SPEC"};
  P.ClusterEvents = {LittleEvents, BigEvents};
  return P;
}
