//===- sim/Platform.cpp - Machine models (paper Table 1) --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Platform.h"

#include <cassert>

using namespace slope;
using namespace slope::sim;

const char *sim::microarchName(Microarch Arch) {
  switch (Arch) {
  case Microarch::Haswell:
    return "Haswell";
  case Microarch::Skylake:
    return "Skylake";
  }
  assert(false && "unknown microarchitecture");
  return "?";
}

pmc::EventRegistry Platform::buildRegistry() const {
  switch (Arch) {
  case Microarch::Haswell:
    return pmc::buildHaswellRegistry();
  case Microarch::Skylake:
    return pmc::buildSkylakeRegistry();
  }
  assert(false && "unknown microarchitecture");
  return pmc::EventRegistry();
}

Platform Platform::intelHaswellServer() {
  Platform P;
  P.Name = "HCLServer01 (Intel Haswell)";
  P.Processor = "Intel E5-2670 v3 @2.30GHz";
  P.Os = "CentOS 7";
  P.Arch = Microarch::Haswell;
  P.ThreadsPerCore = 2;
  P.CoresPerSocket = 12;
  P.Sockets = 2;
  P.NumaNodes = 2;
  P.BaseFreqGHz = 2.3;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 256;
  P.L3KB = 30720;
  P.MainMemoryGB = 64;
  P.TdpWatts = 240;
  P.IdlePowerWatts = 58;
  P.FlopsPerCorePerCycle = 16; // AVX2 FMA, 2x256-bit pipes.
  P.MemBandwidthGBs = 110;     // Dual socket, 4 DDR4 channels each.
  return P;
}

Platform Platform::intelSkylakeServer() {
  Platform P;
  P.Name = "HCLServer02 (Intel Skylake)";
  P.Processor = "Intel Xeon Gold 6152";
  P.Os = "Ubuntu 16.04 LTS";
  P.Arch = Microarch::Skylake;
  P.ThreadsPerCore = 2;
  P.CoresPerSocket = 22;
  P.Sockets = 1;
  P.NumaNodes = 1;
  P.BaseFreqGHz = 2.1;
  P.L1DKB = 32;
  P.L1IKB = 32;
  P.L2KB = 1024;
  P.L3KB = 30976;
  P.MainMemoryGB = 96;
  P.TdpWatts = 140;
  P.IdlePowerWatts = 32;
  P.FlopsPerCorePerCycle = 16; // Modeling the AVX2 path.
  P.MemBandwidthGBs = 105;     // 6 DDR4-2666 channels.
  return P;
}
