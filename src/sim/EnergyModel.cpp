//===- sim/EnergyModel.cpp - Ground-truth dynamic energy ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/EnergyModel.h"

#include <algorithm>
#include <cassert>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
/// Energy cost per activity count in nanojoules (Haswell reference).
/// Magnitudes follow the usual energy-per-operation hierarchy: register
/// compute ~0.1 nJ, cache accesses ~1 nJ, DRAM traffic tens of nJ,
/// OS events micro-joules.
double baseWeightNj(ActivityKind Kind) {
  switch (Kind) {
  case ActivityKind::CoreCycles:
    return 0.12; // Active-clock baseline.
  case ActivityKind::RefCycles:
    return 0.0; // Folded into CoreCycles.
  case ActivityKind::Instructions:
    return 0.0; // Folded into uop costs.
  case ActivityKind::UopsIssued:
    return 0.03;
  case ActivityKind::UopsExecuted:
    return 0.25;
  case ActivityKind::UopsRetired:
    return 0.02;
  case ActivityKind::Port0:
  case ActivityKind::Port1:
    return 0.05; // FMA pipes: extra over the generic uop cost.
  case ActivityKind::Port2:
  case ActivityKind::Port3:
  case ActivityKind::Port4:
  case ActivityKind::Port5:
  case ActivityKind::Port6:
  case ActivityKind::Port7:
    return 0.0; // Covered by UopsExecuted.
  case ActivityKind::FpScalarDouble:
    return 0.06;
  case ActivityKind::FpVectorDouble:
    return 0.04; // Per flop; vectors amortize control energy.
  case ActivityKind::DivOps:
    return 2.0;
  case ActivityKind::Loads:
    return 0.15;
  case ActivityKind::Stores:
    return 0.20;
  case ActivityKind::L1DMisses:
    return 0.5;
  case ActivityKind::L2Requests:
    return 0.0; // Covered by L1DMisses + ICacheMisses.
  case ActivityKind::L2Misses:
    return 2.0;
  case ActivityKind::L3Misses:
    return 6.0;
  case ActivityKind::DramReads:
    return 10.0;
  case ActivityKind::Branches:
    return 0.02;
  case ActivityKind::BranchMisses:
    return 1.5; // Pipeline flush.
  case ActivityKind::ICacheAccesses:
    return 0.01;
  case ActivityKind::ICacheMisses:
    return 2.0;
  case ActivityKind::ITlbMisses:
    return 1.0;
  case ActivityKind::DTlbMisses:
    return 1.0;
  case ActivityKind::StlbHits:
    return 0.2;
  case ActivityKind::MsUops:
    return 0.1;
  case ActivityKind::DsbUops:
    return 0.005;
  case ActivityKind::MiteUops:
    return 0.03; // Legacy decode burns more than the DSB.
  case ActivityKind::PageFaults:
    return 2000.0;
  case ActivityKind::ContextSwitches:
    return 5000.0;
  }
  assert(false && "unknown activity kind");
  return 0;
}
} // namespace

namespace {
/// Activities whose energy belongs to the memory subsystem for the
/// compute/memory overlap correction.
bool isMemorySide(ActivityKind Kind) {
  switch (Kind) {
  case ActivityKind::Loads:
  case ActivityKind::Stores:
  case ActivityKind::L1DMisses:
  case ActivityKind::L2Requests:
  case ActivityKind::L2Misses:
  case ActivityKind::L3Misses:
  case ActivityKind::DramReads:
  case ActivityKind::DTlbMisses:
  case ActivityKind::StlbHits:
    return true;
  default:
    return false;
  }
}
} // namespace

EnergyModel::EnergyModel(const Platform &P) {
  // The Skylake die runs a finer process and a lower TDP envelope; scale
  // per-event energy down proportionally to TDP per core.
  double HaswellTdpPerCore = 240.0 / 24.0;
  double TdpPerCore = P.TdpWatts / static_cast<double>(P.totalCores());
  Scale = TdpPerCore / HaswellTdpPerCore;
}

double EnergyModel::weight(ActivityKind Kind) const {
  return baseWeightNj(Kind) * 1e-9 * Scale;
}

EnergyModel::EnergySplit
EnergyModel::dynamicEnergySplit(const pmc::ActivityVector &A) const {
  EnergySplit Split;
  for (size_t I = 0; I < NumActivityKinds; ++I) {
    auto Kind = static_cast<ActivityKind>(I);
    (isMemorySide(Kind) ? Split.MemoryJ : Split.ComputeJ) +=
        A.at(I) * weight(Kind);
  }
  // Compute/memory power overlap: when both subsystems are busy, the
  // total is slightly less than the sum of their isolated costs (shared
  // clocks and voltage rails). This mild concavity is invisible to any
  // single counter — part of why linear counter models have an error
  // floor — yet small enough (<= 10% of the lesser side) that serial-
  // composition energy additivity still holds within the 5% tolerance.
  Split.OverlapJ = 0.10 * std::min(Split.ComputeJ, Split.MemoryJ);
  return Split;
}

double EnergyModel::dynamicEnergyJoules(const pmc::ActivityVector &A) const {
  EnergySplit Split = dynamicEnergySplit(A);
  double Joules = Split.ComputeJ + Split.MemoryJ - Split.OverlapJ;
  assert(Joules >= 0 && "negative dynamic energy");
  return Joules;
}
