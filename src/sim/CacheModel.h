//===- sim/CacheModel.h - Working-set miss estimation -----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analytic cache-hierarchy model. Given the access volume, working-set
/// size, and an access-locality factor of a kernel, estimates miss counts
/// at L1D, L2, and L3. Intentionally simple — the experiments need miss
/// counts that scale sensibly with problem size and distinguish compute-
/// bound from memory-bound kernels, not cycle-accurate simulation.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_CACHEMODEL_H
#define SLOPE_SIM_CACHEMODEL_H

#include "sim/Platform.h"

namespace slope {
namespace sim {

/// Estimated misses per hierarchy level for one kernel execution.
struct CacheMisses {
  double L1D = 0;
  double L2 = 0;
  double L3 = 0;
};

/// Describes a kernel's memory behaviour to the cache model.
struct MemoryProfile {
  double Accesses = 0;        ///< Total loads + stores.
  double WorkingSetBytes = 0; ///< Touched data footprint.
  /// Temporal locality in [0, 1]: 1 = perfectly blocked/tiled reuse
  /// (misses approach the compulsory minimum), 0 = random access (misses
  /// approach the capacity-limited maximum).
  double Locality = 0.5;
};

/// Estimates per-level miss counts for \p Profile on \p P.
///
/// Per level with capacity C and working set W:
///  - compulsory misses = W / 64 (one per touched line);
///  - if W <= C the level captures the set and only compulsory misses
///    remain;
///  - otherwise a (1 - C/W) fraction of accesses is capacity-exposed and
///    locality scales it down: missRate = (1 - C/W) * (1 - Locality^p).
/// Misses are clamped to be monotone down the hierarchy.
CacheMisses estimateMisses(const MemoryProfile &Profile, const Platform &P);

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_CACHEMODEL_H
