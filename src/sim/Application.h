//===- sim/Application.h - Base and compound applications -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Application is a kernel at a concrete problem size — one point of
/// the paper's datasets. A CompoundApplication is the serial execution of
/// two or more base applications in a single process: the construction
/// the additivity test is defined over ("the core computations of the
/// base applications programmatically placed one after the other").
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_APPLICATION_H
#define SLOPE_SIM_APPLICATION_H

#include "sim/Kernel.h"

#include <string>
#include <vector>

namespace slope {
namespace sim {

/// One base application: a kernel at a fixed problem size.
struct Application {
  KernelKind Kind = KernelKind::MklDgemm;
  uint64_t Size = 0;

  Application() = default;
  Application(KernelKind Kind, uint64_t Size) : Kind(Kind), Size(Size) {}

  /// \returns e.g. "mkl-dgemm(10240)".
  std::string str() const;

  /// \returns true if Size is within the kernel's supported range.
  bool isValid() const;

  friend bool operator==(const Application &A, const Application &B) {
    return A.Kind == B.Kind && A.Size == B.Size;
  }
};

/// A serial composition of base applications (usually two).
struct CompoundApplication {
  std::vector<Application> Phases;

  CompoundApplication() = default;

  /// Wraps a single base application.
  explicit CompoundApplication(Application App) : Phases({App}) {}

  /// Builds the two-phase compound "A; B".
  CompoundApplication(Application A, Application B) : Phases({A, B}) {}

  size_t numPhases() const { return Phases.size(); }
  bool isBase() const { return Phases.size() == 1; }

  /// \returns e.g. "mkl-dgemm(10240);mkl-fft(25600)".
  std::string str() const;
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_APPLICATION_H
