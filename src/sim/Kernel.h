//===- sim/Kernel.h - Analytic workload models ------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark catalogue standing in for the paper's test suite (MKL
/// DGEMM and FFT, NAS Parallel Benchmarks, HPCG, stress, naive and
/// non-scientific codes). Each kernel is an analytic model producing the
/// latent activity counts and execution time for a given problem size on
/// a given platform. Kernels are described by a KernelSpec — power-law
/// work terms C * N^e * log2(N)^l per activity class plus memory/frontend
/// characteristics — evaluated by a shared engine (Kernels.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_KERNEL_H
#define SLOPE_SIM_KERNEL_H

#include "pmc/Activity.h"
#include "sim/Platform.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slope {
namespace sim {

/// The modeled benchmark kernels.
enum class KernelKind : uint8_t {
  MklDgemm,   ///< Blocked, vectorized dense matrix multiply (MKL-like).
  NaiveDgemm, ///< Textbook triple loop, unvectorized.
  MklFft,     ///< 2-D complex FFT (MKL-like).
  Stream,     ///< STREAM triad: pure bandwidth.
  Stress,     ///< Integer spin loop (the 'stress' utility).
  NpbCg,      ///< NAS CG: sparse conjugate gradient.
  NpbMg,      ///< NAS MG: multigrid stencil.
  NpbFt,      ///< NAS FT: 3-D FFT.
  NpbEp,      ///< NAS EP: embarrassingly parallel RNG.
  Hpcg,       ///< HPCG: SpMV + Gauss-Seidel multigrid.
  PtrChase,   ///< Pointer chasing: latency-bound random access.
  QuickSort,  ///< Branch-heavy comparison sort.
  Stencil2D,  ///< Iterated 9-point stencil.
  MonteCarlo, ///< Path simulation: divides, RNG microcode, branches.
  SpMV,       ///< Standalone sparse matrix-vector product.
  KMeans,     ///< Distance computations with assignment branches.
};

/// Number of kernels in the catalogue.
constexpr size_t NumKernelKinds = static_cast<size_t>(KernelKind::KMeans) + 1;

/// One work term: Coef * N^Exp * log2(max(N,2))^LogPow.
struct WorkTerm {
  double Coef = 0;
  double Exp = 0;
  double LogPow = 0;

  /// Evaluates the term at problem size \p N.
  double eval(double N) const;
};

/// Static description of a kernel's behaviour.
struct KernelSpec {
  KernelKind Kind;
  const char *Name;     ///< e.g. "mkl-dgemm".
  const char *Category; ///< "compute-bound", "memory-bound", "mixed".

  /// Context-disturbance intensity in [0, ~1.2]: how strongly a run
  /// perturbs shared state (code footprint, OS interaction, microcode).
  /// Near 0 for tight optimized kernels; drives app-specific PMC
  /// non-additivity (see pmc::SynthesisModel).
  double ContextIntensity;

  WorkTerm FlopsScalar;  ///< Scalar double FP operations.
  WorkTerm FlopsVector;  ///< Vectorized double FP operations (flop count).
  WorkTerm IntOps;       ///< Integer ALU operations.
  WorkTerm Loads;
  WorkTerm Stores;
  WorkTerm DivOps;
  WorkTerm Branches;
  double BranchMissRate; ///< Fraction of branches mispredicted.

  WorkTerm WorkingSetBytes;
  double Locality;       ///< Temporal locality for the cache model.
  double CodeFootprintKB;///< Hot instruction footprint.
  double DsbFraction;    ///< Share of uops delivered from the DSB.
  double MsRate;         ///< Microcode uops per instruction.
  double ParallelEfficiency; ///< Scaling efficiency across all cores.

  uint64_t SizeMin;      ///< Smallest meaningful problem size.
  uint64_t SizeMax;      ///< Largest supported problem size.
};

/// \returns the spec of \p Kind.
const KernelSpec &kernelSpec(KernelKind Kind);

/// \returns every kernel in the catalogue.
std::vector<KernelKind> allKernels();

/// \returns the latent activity vector of one run of \p Kind at size \p N
/// on \p P (noise-free; the Machine adds run-to-run variation).
pmc::ActivityVector kernelActivities(KernelKind Kind, double N,
                                     const Platform &P);

/// \returns the modeled wall-clock seconds of the run.
double kernelTimeSeconds(KernelKind Kind, double N, const Platform &P);

/// Compute-side and memory-side time components of a run (before the
/// soft-max combination). Exposed for the DVFS model and analyses.
struct TimeBreakdown {
  double ComputeSec = 0;
  double MemorySec = 0;
  double TotalSec = 0; ///< Soft max of the two plus startup.

  /// Memory-boundedness in [0, 1]: 1 when memory time dominates.
  double memoryShare() const;
};

/// \returns the time breakdown of \p Kind at size \p N on \p P.
TimeBreakdown kernelTimeBreakdown(KernelKind Kind, double N,
                                  const Platform &P);

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_KERNEL_H
