//===- sim/TestSuite.cpp - Benchmark suite generators -------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/TestSuite.h"

#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::sim;

namespace {
/// Smallest size whose modeled runtime reaches \p TargetSec (monotone
/// bisection), clamped to the kernel's supported range.
uint64_t sizeForRuntime(KernelKind Kind, const Platform &P,
                        double TargetSec) {
  const KernelSpec &Spec = kernelSpec(Kind);
  uint64_t Lo = Spec.SizeMin, Hi = Spec.SizeMax;
  if (kernelTimeSeconds(Kind, static_cast<double>(Hi), P) <= TargetSec)
    return Hi;
  if (kernelTimeSeconds(Kind, static_cast<double>(Lo), P) >= TargetSec)
    return Lo;
  while (Hi - Lo > 1 && Hi - Lo > Lo / 512) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    if (kernelTimeSeconds(Kind, static_cast<double>(Mid), P) < TargetSec)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Hi;
}
} // namespace

std::vector<Application> sim::diverseBaseSuite(const Platform &P,
                                               size_t Count, Rng SuiteRng,
                                               double MinTimeSec,
                                               double MaxTimeSec) {
  assert(Count > 0 && "empty suite requested");
  assert(MinTimeSec < MaxTimeSec && "empty runtime window");
  std::vector<KernelKind> Kinds = allKernels();
  std::vector<Application> Suite;
  Suite.reserve(Count);
  // Round-robin over kernels; geometric size placement between the sizes
  // hitting the runtime window's ends, with jitter so sizes do not
  // repeat exactly.
  size_t PerKernel = (Count + Kinds.size() - 1) / Kinds.size();
  for (size_t Slot = 0; Suite.size() < Count; ++Slot) {
    KernelKind Kind = Kinds[Slot % Kinds.size()];
    const KernelSpec &Spec = kernelSpec(Kind);
    size_t Step = Slot / Kinds.size();
    double Lo = std::log(static_cast<double>(sizeForRuntime(Kind, P,
                                                            MinTimeSec)));
    double Hi = std::log(static_cast<double>(sizeForRuntime(Kind, P,
                                                            MaxTimeSec)));
    if (Hi < Lo)
      Hi = Lo;
    double Frac = PerKernel > 1
                      ? static_cast<double>(Step) /
                            static_cast<double>(PerKernel - 1)
                      : 0.5;
    double Log = Lo + Frac * (Hi - Lo) + SuiteRng.uniform(-0.02, 0.02);
    auto Size = static_cast<uint64_t>(std::exp(Log));
    Size = std::max<uint64_t>(Spec.SizeMin, std::min<uint64_t>(Size,
                                                               Spec.SizeMax));
    Suite.emplace_back(Kind, Size);
  }
  return Suite;
}

std::vector<CompoundApplication>
sim::makeCompoundSuite(const std::vector<Application> &Bases, size_t Count,
                       Rng PairRng) {
  assert(Bases.size() >= 2 && "need at least two base applications");
  std::vector<CompoundApplication> Compounds;
  Compounds.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    size_t A = PairRng.below(Bases.size());
    size_t B = PairRng.below(Bases.size());
    if (B == A)
      B = (B + 1) % Bases.size();
    Compounds.emplace_back(Bases[A], Bases[B]);
  }
  return Compounds;
}

std::vector<Application> sim::dgemmFftAdditivityBases(size_t Count) {
  assert(Count >= 2 && "need at least one application of each kernel");
  std::vector<Application> Bases;
  Bases.reserve(Count);
  size_t NumDgemm = Count / 2;
  size_t NumFft = Count - NumDgemm;
  // Paper ranges: DGEMM 6500^2..20000^2, FFT 22400^2..29000^2.
  for (size_t I = 0; I < NumDgemm; ++I) {
    uint64_t Size =
        6500 + (20000 - 6500) * I / (NumDgemm > 1 ? NumDgemm - 1 : 1);
    Bases.emplace_back(KernelKind::MklDgemm, Size);
  }
  for (size_t I = 0; I < NumFft; ++I) {
    uint64_t Size =
        22400 + (29000 - 22400) * I / (NumFft > 1 ? NumFft - 1 : 1);
    Bases.emplace_back(KernelKind::MklFft, Size);
  }
  return Bases;
}

Expected<uint64_t> sim::npbClassSize(KernelKind Kind, char Class) {
  // Official NPB class dimensions: CG matrix rows; MG/FT total grid
  // points; EP 2^M random-number pairs.
  size_t ClassIndex;
  switch (Class) {
  case 'A':
    ClassIndex = 0;
    break;
  case 'B':
    ClassIndex = 1;
    break;
  case 'C':
    ClassIndex = 2;
    break;
  case 'D':
    ClassIndex = 3;
    break;
  default:
    return makeError(std::string("unknown NPB class '") + Class +
                     "' (supported: A, B, C, D)");
  }

  uint64_t Size = 0;
  switch (Kind) {
  case KernelKind::NpbCg: {
    static const uint64_t Rows[] = {14000, 75000, 150000, 1500000};
    Size = Rows[ClassIndex];
    break;
  }
  case KernelKind::NpbMg: {
    // 256^3, 256^3 (more iterations), 512^3, 1024^3.
    static const uint64_t Points[] = {16777216, 16777216, 134217728,
                                      1073741824};
    Size = Points[ClassIndex];
    break;
  }
  case KernelKind::NpbFt: {
    // 256^2*128, 512*256^2, 512^3, 2048*1024^2.
    static const uint64_t Points[] = {8388608, 33554432, 134217728,
                                      2147483648};
    Size = Points[ClassIndex];
    break;
  }
  case KernelKind::NpbEp: {
    // 2^28, 2^30, 2^32, 2^36 pairs.
    static const uint64_t Pairs[] = {268435456ull, 1073741824ull,
                                     4294967296ull, 68719476736ull};
    Size = Pairs[ClassIndex];
    break;
  }
  default:
    return makeError(std::string("kernel '") + kernelSpec(Kind).Name +
                     "' is not an NPB-like kernel");
  }

  const KernelSpec &Spec = kernelSpec(Kind);
  if (Size < Spec.SizeMin || Size > Spec.SizeMax)
    return makeError(std::string("NPB class ") + Class +
                     " is outside the modeled size range of " +
                     Spec.Name);
  return Size;
}

std::vector<Application> sim::dgemmFftModelDataset() {
  std::vector<Application> Points;
  // DGEMM 6400..38400 step 64: 501 points; FFT 22400..41536 step 64:
  // 300 points; 801 total as in Sect. 5.2 of the paper.
  for (uint64_t N = 6400; N <= 38400; N += 64)
    Points.emplace_back(KernelKind::MklDgemm, N);
  for (uint64_t N = 22400; N < 41600; N += 64)
    Points.emplace_back(KernelKind::MklFft, N);
  assert(Points.size() == 801 && "dataset cardinality drifted from paper");
  return Points;
}
