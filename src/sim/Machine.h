//===- sim/Machine.h - Execution engine and PMC synthesis -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine: runs (compound) applications, producing an
/// Execution with per-phase latent activities, timing, and ground-truth
/// dynamic energy; and synthesizes PMC readings for any event of the
/// platform's registry against a given Execution. Counter readings are a
/// deterministic function of (execution run seed, event id), so all the
/// events collected in one run observe one consistent execution context,
/// while repeated runs of the same application vary realistically.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_MACHINE_H
#define SLOPE_SIM_MACHINE_H

#include "pmc/CounterScheduler.h"
#include "sim/Application.h"
#include "sim/EnergyModel.h"
#include "support/Rng.h"

namespace slope {
namespace sim {

/// One executed phase of a run.
struct ExecutionPhase {
  Application App;
  pmc::ActivityVector Activities; ///< This run's actual latent counts.
  double TimeSec = 0;
  double ContextIntensity = 0;    ///< This run's context disturbance.
};

/// One completed (compound) application run.
struct Execution {
  std::vector<ExecutionPhase> Phases;
  uint64_t RunSeed = 0;          ///< Identifies this run's context.
  double TrueDynamicEnergyJ = 0; ///< Ground truth (not observable).

  /// \returns the sum of the phases' activity vectors.
  pmc::ActivityVector totalActivities() const;

  /// \returns total wall-clock seconds.
  double totalTimeSec() const;
};

/// A simulated platform instance with its event registry and energy model.
class Machine {
public:
  /// Creates a machine for \p P; \p Seed fixes all stochastic behaviour.
  explicit Machine(Platform P, uint64_t Seed = 0xC0FFEE);

  const Platform &platform() const { return Plat; }
  const pmc::EventRegistry &registry() const { return Registry; }
  const EnergyModel &energyModel() const { return Energy; }

  /// Executes \p App once. Each call models a fresh process launch with
  /// new run-to-run variation.
  Execution run(const CompoundApplication &App);

  /// Convenience overload for a base application.
  Execution run(const Application &App) {
    return run(CompoundApplication(App));
  }

  /// Synthesizes the observed count of \p Id for \p Exec (see
  /// pmc::SynthesisModel for the formula). Deterministic per
  /// (Exec.RunSeed, Id).
  double readCounter(pmc::EventId Id, const Execution &Exec) const;

  /// Reads several counters against one execution. The caller is
  /// responsible for respecting PMU scheduling constraints (see
  /// pmc::planCollection); core::PmcProfiler does this.
  std::vector<double> readCounters(const std::vector<pmc::EventId> &Ids,
                                   const Execution &Exec) const;

private:
  Platform Plat;
  pmc::EventRegistry Registry;
  EnergyModel Energy;
  Rng MachineRng;
  uint64_t RunCounter = 0;
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_MACHINE_H
