//===- sim/Machine.h - Execution engine and PMC synthesis -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine: runs (compound) applications, producing an
/// Execution with per-phase latent activities, timing, and ground-truth
/// dynamic energy; and synthesizes PMC readings for any event of the
/// platform's registry against a given Execution. Counter readings are a
/// deterministic function of (execution run seed, event id), so all the
/// events collected in one run observe one consistent execution context,
/// while repeated runs of the same application vary realistically.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_MACHINE_H
#define SLOPE_SIM_MACHINE_H

#include "pmc/CounterScheduler.h"
#include "sim/Application.h"
#include "sim/EnergyModel.h"
#include "support/Rng.h"

namespace slope {
namespace sim {

/// One executed phase of a run.
struct ExecutionPhase {
  Application App;
  pmc::ActivityVector Activities; ///< This run's actual latent counts.
  double TimeSec = 0;
  double ContextIntensity = 0;    ///< This run's context disturbance.
};

/// One completed (compound) application run.
struct Execution {
  std::vector<ExecutionPhase> Phases;
  uint64_t RunSeed = 0;          ///< Identifies this run's context.
  double TrueDynamicEnergyJ = 0; ///< Ground truth (not observable).

  /// \returns the sum of the phases' activity vectors.
  pmc::ActivityVector totalActivities() const;

  /// \returns total wall-clock seconds.
  double totalTimeSec() const;
};

/// Selectable counter-synthesis kernel. Both produce bit-identical
/// counts; the naive kernel is the readable per-event reference, the
/// batched kernel synthesizes whole event groups per execution through a
/// flattened copy of the registry's synthesis models.
enum class SynthAlgorithm {
  Naive,   ///< Per-event readCounter through the registry (seed kernel).
  Batched, ///< Blocked pass over a machine-wide flattened term table.
};

/// Overrides the process-wide synthesis kernel. The initial value honours
/// the SLOPE_SYNTH_ALGO environment variable ("naive" / "batched") and
/// defaults to Batched; the --synth-algo driver flag routes here.
void setDefaultSynthAlgorithm(SynthAlgorithm A);

/// \returns the process-wide synthesis kernel.
SynthAlgorithm defaultSynthAlgorithm();

/// A simulated platform instance with its event registry and energy model.
class Machine {
public:
  /// Creates a machine for \p P; \p Seed fixes all stochastic behaviour.
  explicit Machine(Platform P, uint64_t Seed = 0xC0FFEE);

  const Platform &platform() const { return Plat; }
  const pmc::EventRegistry &registry() const { return Registry; }
  const EnergyModel &energyModel() const { return Energy; }

  /// Executes \p App once. Each call models a fresh process launch with
  /// new run-to-run variation.
  Execution run(const CompoundApplication &App);

  /// Convenience overload for a base application.
  Execution run(const Application &App) {
    return run(CompoundApplication(App));
  }

  /// Executes \p App against an explicit run seed. Pure: does not touch
  /// the machine's run counter, so pre-forked runs may execute
  /// concurrently. run() is exactly runWithSeed() on the next counter
  /// seed.
  Execution runWithSeed(const CompoundApplication &App,
                        uint64_t RunSeed) const;

  /// Draws the next \p NumRuns run seeds from the stateful run counter,
  /// in the order \p NumRuns successive run() calls would consume them.
  /// Forking serially and executing with runWithSeed() in parallel
  /// reproduces a serial scan bit for bit.
  std::vector<uint64_t> forkRunSeeds(size_t NumRuns);

  /// Executes \p App \p NumRuns times: seeds are forked serially, the
  /// runs execute in parallel on the global thread pool into disjoint
  /// slots. Bit-identical to \p NumRuns successive run() calls at any
  /// thread count.
  std::vector<Execution> runBatch(const CompoundApplication &App,
                                  size_t NumRuns);

  /// Synthesizes the observed count of \p Id for \p Exec (see
  /// pmc::SynthesisModel for the formula). Deterministic per
  /// (Exec.RunSeed, Id). This is the reference kernel the batched path
  /// must match bit for bit.
  double readCounter(pmc::EventId Id, const Execution &Exec) const;

  /// Reads several counters against one execution. The caller is
  /// responsible for respecting PMU scheduling constraints (see
  /// pmc::planCollection); core::PmcProfiler does this.
  std::vector<double> readCounters(const std::vector<pmc::EventId> &Ids,
                                   const Execution &Exec) const;

  /// Synthesizes all of \p Ids against \p Exec in one pass, dispatching
  /// on defaultSynthAlgorithm(). The batched kernel hoists the RNG seed
  /// state and the execution's per-phase activity vectors once and
  /// streams a flattened machine-wide weight table, preserving each
  /// event's term order and phase order — every count is bit-identical
  /// to readCounter().
  std::vector<double>
  readCountersBatch(const std::vector<pmc::EventId> &Ids,
                    const Execution &Exec) const;

  /// Allocation-free core of readCountersBatch: writes \p NumIds counts
  /// to \p Out. Hot rep loops reuse one output buffer across calls.
  void readCountersBatch(const pmc::EventId *Ids, size_t NumIds,
                         const Execution &Exec, double *Out) const;

private:
  /// Flattened, cache-contiguous copy of every event's SynthesisModel:
  /// one dense parameter entry per event plus a shared term table in the
  /// registry's original per-event term order (term order must be
  /// preserved — reassociating the weighted sums would change the
  /// floating-point result).
  struct SynthesisPlan {
    struct EventEntry {
      uint32_t TermBegin = 0;    ///< First index into TermKind/TermWeight.
      uint32_t TermEnd = 0;      ///< One past the last term.
      double NaFraction = 0;
      double NaBoundaryBeta = 0;
      double IntensityFloor = 0;
      double NaJitterSigma = 0;
      double ContextFloor = 0;
      double NoiseSigma = 0;
    };
    std::vector<EventEntry> Events; ///< Indexed by EventId.
    std::vector<uint32_t> TermKind; ///< ActivityKind per term.
    std::vector<double> TermWeight; ///< Weight per term.
  };

  void buildSynthesisPlan();

  Platform Plat;
  pmc::EventRegistry Registry;
  EnergyModel Energy;
  Rng MachineRng;
  uint64_t RunCounter = 0;
  SynthesisPlan Plan;
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_MACHINE_H
