//===- sim/Machine.h - Execution engine and PMC synthesis -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine: runs (compound) applications, producing an
/// Execution with per-phase latent activities, timing, and ground-truth
/// dynamic energy; and synthesizes PMC readings for any event of the
/// platform's registry against a given Execution. Counter readings are a
/// deterministic function of (execution run seed, event id), so all the
/// events collected in one run observe one consistent execution context,
/// while repeated runs of the same application vary realistically.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_MACHINE_H
#define SLOPE_SIM_MACHINE_H

#include "pmc/CounterScheduler.h"
#include "sim/Application.h"
#include "sim/EnergyModel.h"
#include "support/Rng.h"

namespace slope {
namespace sim {

/// One executed phase of a run.
struct ExecutionPhase {
  Application App;
  pmc::ActivityVector Activities; ///< This run's actual latent counts.
  double TimeSec = 0;
  double ContextIntensity = 0;    ///< This run's context disturbance.
};

/// One completed (compound) application run.
struct Execution {
  std::vector<ExecutionPhase> Phases;
  uint64_t RunSeed = 0;          ///< Identifies this run's context.
  double TrueDynamicEnergyJ = 0; ///< Ground truth (not observable).

  /// \returns the sum of the phases' activity vectors.
  pmc::ActivityVector totalActivities() const;

  /// \returns total wall-clock seconds.
  double totalTimeSec() const;
};

/// One sampled time window of an execution trace: the slice of latent
/// activity falling inside [StartSec, StartSec + DtSec) plus a noisy
/// power-meter sample over the same interval.
struct TraceWindow {
  double StartSec = 0;
  double DtSec = 0;
  /// Latent activity attributed to the window (time-proportional share of
  /// every overlapping phase's activities). Summing all windows'
  /// activities recovers the run's totalActivities() up to rounding.
  pmc::ActivityVector Activities;
  /// Time-weighted mean context disturbance over the window.
  double ContextIntensity = 0;
  /// Sampled dynamic power (W): the energy model applied to the window's
  /// activities over DtSec, under per-window lognormal meter noise.
  double PowerW = 0;
  /// Phases overlapping the window, as [FirstPhase, LastPhase] indices
  /// into Exec.Phases (phase boundaries inside a window distort
  /// phase-varying counters; see readCountersWindow).
  uint32_t FirstPhase = 0;
  uint32_t LastPhase = 0;
};

/// A sampled per-window view of one execution: the streaming (Class E)
/// telemetry the per-run scalar pipeline cannot express. The underlying
/// Execution is bit-identical to runWithSeed() on the same seed — trace
/// mode observes a run, it never perturbs one.
struct ExecutionTrace {
  Execution Exec;
  std::vector<TraceWindow> Windows;

  size_t windowCount() const { return Windows.size(); }

  /// \returns the sampled dynamic energy (J) of window \p W.
  double windowEnergyJ(size_t W) const {
    return Windows[W].PowerW * Windows[W].DtSec;
  }
};

/// Selectable counter-synthesis kernel. Both produce bit-identical
/// counts; the naive kernel is the readable per-event reference, the
/// batched kernel synthesizes whole event groups per execution through a
/// flattened copy of the registry's synthesis models.
enum class SynthAlgorithm {
  Naive,   ///< Per-event readCounter through the registry (seed kernel).
  Batched, ///< Blocked pass over a machine-wide flattened term table.
};

/// Overrides the process-wide synthesis kernel. The initial value honours
/// the SLOPE_SYNTH_ALGO environment variable ("naive" / "batched") and
/// defaults to Batched; the --synth-algo driver flag routes here.
void setDefaultSynthAlgorithm(SynthAlgorithm A);

/// \returns the process-wide synthesis kernel.
SynthAlgorithm defaultSynthAlgorithm();

/// A simulated platform instance with its event registry and energy model.
class Machine {
public:
  /// Creates a machine for \p P; \p Seed fixes all stochastic behaviour.
  explicit Machine(Platform P, uint64_t Seed = 0xC0FFEE);

  const Platform &platform() const { return Plat; }
  const pmc::EventRegistry &registry() const { return Registry; }
  const EnergyModel &energyModel() const { return Energy; }

  /// Executes \p App once. Each call models a fresh process launch with
  /// new run-to-run variation.
  Execution run(const CompoundApplication &App);

  /// Convenience overload for a base application.
  Execution run(const Application &App) {
    return run(CompoundApplication(App));
  }

  /// Executes \p App against an explicit run seed. Pure: does not touch
  /// the machine's run counter, so pre-forked runs may execute
  /// concurrently. run() is exactly runWithSeed() on the next counter
  /// seed.
  Execution runWithSeed(const CompoundApplication &App,
                        uint64_t RunSeed) const;

  /// Draws the next \p NumRuns run seeds from the stateful run counter,
  /// in the order \p NumRuns successive run() calls would consume them.
  /// Forking serially and executing with runWithSeed() in parallel
  /// reproduces a serial scan bit for bit.
  std::vector<uint64_t> forkRunSeeds(size_t NumRuns);

  /// Executes \p App \p NumRuns times: seeds are forked serially, the
  /// runs execute in parallel on the global thread pool into disjoint
  /// slots. Bit-identical to \p NumRuns successive run() calls at any
  /// thread count.
  std::vector<Execution> runBatch(const CompoundApplication &App,
                                  size_t NumRuns);

  /// Executes \p App once against an explicit run seed and slices the run
  /// into \p WindowCount equal time windows with per-window activity
  /// shares and power samples (see ExecutionTrace). Pure like
  /// runWithSeed(): the embedded Execution is bit-identical to
  /// runWithSeed(App, RunSeed) at any WindowCount, and every per-window
  /// draw comes from a forked Rng tagged by the window index alone — so
  /// window W's noise stream is invariant under both the total window
  /// count and the thread count (the FleetTrace splittable-seeding
  /// contract). Asserts WindowCount >= 1.
  ExecutionTrace runTrace(const CompoundApplication &App, uint64_t RunSeed,
                          size_t WindowCount) const;

  /// Stateful convenience overload: draws the next run-counter seed, so
  /// runTrace(App, N) advances the machine exactly like run(App).
  ExecutionTrace runTrace(const CompoundApplication &App, size_t WindowCount) {
    return runTrace(App, MachineRng.fork(++RunCounter).next(), WindowCount);
  }

  /// Synthesizes the per-window PMC deltas of \p Ids for window \p W of
  /// \p Trace through the flattened SynthesisPlan term table: base counts
  /// from the window's activity share, context distortion from the
  /// window's mean intensity, whole-run floors pro-rated by DtSec, and
  /// observation noise drawn from a fork tagged (window, event) — a pure
  /// function of (RunSeed, W, Id), invariant under the trace's window
  /// count. Summing a counter's deltas over all windows tracks the
  /// whole-run readCounter() (the reference path) up to sampling noise.
  void readCountersWindow(const pmc::EventId *Ids, size_t NumIds,
                          const ExecutionTrace &Trace, size_t W,
                          double *Out) const;

  /// Allocating convenience wrapper over readCountersWindow.
  std::vector<double>
  readCountersWindow(const std::vector<pmc::EventId> &Ids,
                     const ExecutionTrace &Trace, size_t W) const;

  /// Synthesizes the observed count of \p Id for \p Exec (see
  /// pmc::SynthesisModel for the formula). Deterministic per
  /// (Exec.RunSeed, Id). This is the reference kernel the batched path
  /// must match bit for bit.
  double readCounter(pmc::EventId Id, const Execution &Exec) const;

  /// Reads several counters against one execution. The caller is
  /// responsible for respecting PMU scheduling constraints (see
  /// pmc::planCollection); core::PmcProfiler does this.
  std::vector<double> readCounters(const std::vector<pmc::EventId> &Ids,
                                   const Execution &Exec) const;

  /// Synthesizes all of \p Ids against \p Exec in one pass, dispatching
  /// on defaultSynthAlgorithm(). The batched kernel hoists the RNG seed
  /// state and the execution's per-phase activity vectors once and
  /// streams a flattened machine-wide weight table, preserving each
  /// event's term order and phase order — every count is bit-identical
  /// to readCounter().
  std::vector<double>
  readCountersBatch(const std::vector<pmc::EventId> &Ids,
                    const Execution &Exec) const;

  /// Allocation-free core of readCountersBatch: writes \p NumIds counts
  /// to \p Out. Hot rep loops reuse one output buffer across calls.
  void readCountersBatch(const pmc::EventId *Ids, size_t NumIds,
                         const Execution &Exec, double *Out) const;

private:
  /// Flattened, cache-contiguous copy of every event's SynthesisModel:
  /// one dense parameter entry per event plus a shared term table in the
  /// registry's original per-event term order (term order must be
  /// preserved — reassociating the weighted sums would change the
  /// floating-point result).
  struct SynthesisPlan {
    struct EventEntry {
      uint32_t TermBegin = 0;    ///< First index into TermKind/TermWeight.
      uint32_t TermEnd = 0;      ///< One past the last term.
      double NaFraction = 0;
      double NaBoundaryBeta = 0;
      double IntensityFloor = 0;
      double NaJitterSigma = 0;
      double ContextFloor = 0;
      double NoiseSigma = 0;
    };
    std::vector<EventEntry> Events; ///< Indexed by EventId.
    std::vector<uint32_t> TermKind; ///< ActivityKind per term.
    std::vector<double> TermWeight; ///< Weight per term.
  };

  void buildSynthesisPlan();

  Platform Plat;
  pmc::EventRegistry Registry;
  EnergyModel Energy;
  Rng MachineRng;
  uint64_t RunCounter = 0;
  SynthesisPlan Plan;
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_MACHINE_H
