//===- sim/CacheModel.cpp - Working-set miss estimation ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::sim;

namespace {
constexpr double LineBytes = 64;

/// Miss count at one level given its capacity.
double levelMisses(const MemoryProfile &Profile, double CapacityBytes) {
  double Compulsory = Profile.WorkingSetBytes / LineBytes;
  if (Profile.WorkingSetBytes <= CapacityBytes)
    return std::min(Compulsory, Profile.Accesses);
  double Exposed = 1.0 - CapacityBytes / Profile.WorkingSetBytes;
  // Locality^0.35 rises steeply: even moderate blocking removes most of
  // the capacity misses, mirroring tiled BLAS behaviour.
  double LocalityShield = std::pow(std::clamp(Profile.Locality, 0.0, 1.0),
                                   0.35);
  double MissRate = Exposed * (1.0 - LocalityShield);
  // Streaming floor: even a perfectly blocked kernel must move each line
  // through the cache once per sweep of the working set.
  double Misses = std::max(Profile.Accesses * MissRate, Compulsory);
  return std::min(Misses, Profile.Accesses);
}
} // namespace

CacheMisses sim::estimateMisses(const MemoryProfile &Profile,
                                const Platform &P) {
  assert(Profile.Accesses >= 0 && Profile.WorkingSetBytes >= 0 &&
         "negative memory profile");
  CacheMisses Misses;
  if (Profile.Accesses == 0)
    return Misses;

  // Private caches see the per-core share of the working set under an
  // even data decomposition across cores.
  double Cores = static_cast<double>(P.totalCores());
  MemoryProfile PerCore = Profile;
  PerCore.WorkingSetBytes = Profile.WorkingSetBytes / Cores;
  PerCore.Accesses = Profile.Accesses / Cores;

  double L1PerCore = levelMisses(PerCore, P.l1Bytes());
  Misses.L1D = L1PerCore * Cores;

  MemoryProfile L2Profile = PerCore;
  L2Profile.Accesses = L1PerCore;
  double L2PerCore = levelMisses(L2Profile, P.l2Bytes());
  Misses.L2 = L2PerCore * Cores;

  MemoryProfile L3Profile = Profile;
  L3Profile.Accesses = Misses.L2;
  Misses.L3 = levelMisses(L3Profile, P.l3Bytes());

  // Monotone down the hierarchy.
  Misses.L2 = std::min(Misses.L2, Misses.L1D);
  Misses.L3 = std::min(Misses.L3, Misses.L2);
  return Misses;
}
