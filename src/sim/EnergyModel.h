//===- sim/EnergyModel.h - Ground-truth dynamic energy ----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's ground-truth dynamic-energy model: a per-activity
/// energy cost (nanojoules per event) summed over the latent activity
/// vector. Because energy is linear in activities and activities are
/// exactly additive over serial composition, dynamic energy obeys the
/// conservation property the paper's additivity criterion derives from.
/// Per-platform scale factors reflect process/design differences (the
/// Skylake part is a 140 W TDP die vs 240 W for the two Haswell sockets).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_ENERGYMODEL_H
#define SLOPE_SIM_ENERGYMODEL_H

#include "pmc/Activity.h"
#include "sim/Platform.h"

namespace slope {
namespace sim {

/// Ground-truth mapping from latent activities to dynamic energy.
class EnergyModel {
public:
  /// Creates the model for \p P (captures a per-platform scale).
  explicit EnergyModel(const Platform &P);

  /// \returns dynamic energy in joules for the activity vector \p A.
  double dynamicEnergyJoules(const pmc::ActivityVector &A) const;

  /// Component decomposition of the dynamic energy (before the overlap
  /// correction): core/compute side vs memory side. Used by the on-chip
  /// sensor model, whose per-domain counters carry different biases.
  struct EnergySplit {
    double ComputeJ = 0;
    double MemoryJ = 0;
    double OverlapJ = 0; ///< Subtracted overlap (see dynamicEnergyJoules).
  };

  /// \returns the compute/memory decomposition of \p A's dynamic energy;
  /// ComputeJ + MemoryJ - OverlapJ == dynamicEnergyJoules(A).
  EnergySplit dynamicEnergySplit(const pmc::ActivityVector &A) const;

  /// \returns the energy weight (J per count) of \p Kind, after platform
  /// scaling. Exposed for tests and the ablation benches.
  double weight(pmc::ActivityKind Kind) const;

private:
  double Scale = 1.0;
};

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_ENERGYMODEL_H
