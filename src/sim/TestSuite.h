//===- sim/TestSuite.h - Benchmark suite generators -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the paper's experimental datasets: the diverse Class-A
/// suite (277 base applications + 50 compounds on Haswell), the Class-B
/// additivity datasets (50 bases + 30 compounds of MKL DGEMM/FFT on
/// Skylake), and the 801-point DGEMM/FFT model dataset.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SIM_TESTSUITE_H
#define SLOPE_SIM_TESTSUITE_H

#include "sim/Application.h"
#include "support/Rng.h"

namespace slope {
namespace sim {

/// Generates \p Count base applications spanning the whole kernel
/// catalogue with geometrically spaced problem sizes (the paper's
/// "applications from our test suite with different problem sizes").
/// Sizes are restricted so the modeled runtime on \p P falls within
/// [MinTimeSec, MaxTimeSec] — the paper selects problem sizes with
/// "reasonable execution time (>3 s)" so the 1 Hz power meter sees
/// enough samples. Deterministic for a fixed \p SuiteRng seed.
std::vector<Application> diverseBaseSuite(const Platform &P, size_t Count,
                                          Rng SuiteRng,
                                          double MinTimeSec = 3.0,
                                          double MaxTimeSec = 120.0);

/// Builds \p Count two-phase compound applications by pairing randomly
/// drawn elements of \p Bases (the paper's serial executions of base
/// applications).
std::vector<CompoundApplication>
makeCompoundSuite(const std::vector<Application> &Bases, size_t Count,
                  Rng PairRng);

/// The Class-B additivity-test base dataset: \p Count applications split
/// between MKL DGEMM (paper range 6500..20000) and MKL FFT (22400..29000).
std::vector<Application> dgemmFftAdditivityBases(size_t Count = 50);

/// The Class-B/C model dataset: 801 applications — DGEMM 6400..38400 and
/// FFT 22400..41536, both with stride 64 (Sect. 5.2 of the paper).
std::vector<Application> dgemmFftModelDataset();

/// Maps a NAS Parallel Benchmarks problem class ('A', 'B', 'C', 'D') to
/// this catalogue's size parameter for the NPB-like kernels (NpbCg,
/// NpbMg, NpbFt, NpbEp), using the official class dimensions (CG rows,
/// MG/FT total grid points, EP sample counts). \returns an error for a
/// non-NPB kernel, an unknown class, or a class outside the kernel's
/// supported size range.
Expected<uint64_t> npbClassSize(KernelKind Kind, char Class);

} // namespace sim
} // namespace slope

#endif // SLOPE_SIM_TESTSUITE_H
