//===- sim/Application.cpp - Base and compound applications -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Application.h"

using namespace slope;
using namespace slope::sim;

std::string Application::str() const {
  return std::string(kernelSpec(Kind).Name) + "(" + std::to_string(Size) +
         ")";
}

bool Application::isValid() const {
  const KernelSpec &Spec = kernelSpec(Kind);
  return Size >= Spec.SizeMin && Size <= Spec.SizeMax;
}

std::string CompoundApplication::str() const {
  std::string Out;
  for (size_t I = 0; I < Phases.size(); ++I) {
    if (I != 0)
      Out += ";";
    Out += Phases[I].str();
  }
  return Out;
}
