//===- sim/Machine.cpp - Execution engine and PMC synthesis ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

ActivityVector Execution::totalActivities() const {
  ActivityVector Total;
  for (const ExecutionPhase &Phase : Phases)
    Total += Phase.Activities;
  return Total;
}

double Execution::totalTimeSec() const {
  double Total = 0;
  for (const ExecutionPhase &Phase : Phases)
    Total += Phase.TimeSec;
  return Total;
}

Machine::Machine(Platform P, uint64_t Seed)
    : Plat(std::move(P)), Registry(Plat.buildRegistry()), Energy(Plat),
      MachineRng(Seed) {}

Execution Machine::run(const CompoundApplication &App) {
  assert(!App.Phases.empty() && "running an empty compound application");
  Execution Exec;
  Exec.RunSeed = MachineRng.fork(++RunCounter).next();

  Rng RunRng(Exec.RunSeed);
  for (const Application &Base : App.Phases) {
    assert(Base.isValid() && "problem size outside the kernel's range");
    const KernelSpec &Spec = kernelSpec(Base.Kind);

    ExecutionPhase Phase;
    Phase.App = Base;
    Phase.Activities =
        kernelActivities(Base.Kind, static_cast<double>(Base.Size), Plat);
    // Run-to-run workload variation: a common multiplicative factor on
    // all data-dependent work of the phase (scheduling, frequency wander).
    double WorkJitter = RunRng.lognormalFactor(0.008);
    Phase.Activities *= WorkJitter;
    Phase.TimeSec =
        kernelTimeSeconds(Base.Kind, static_cast<double>(Base.Size), Plat) *
        RunRng.lognormalFactor(0.01);
    Phase.ContextIntensity =
        Spec.ContextIntensity * RunRng.lognormalFactor(0.05);
    // With the DVFS model on, the achieved clock also wanders run to
    // run (thermal state, turbo bins): unhalted-cycle counts pick up
    // variance that no other counter and no energy component shares.
    if (Plat.DvfsEnabled)
      Phase.Activities[ActivityKind::CoreCycles] *=
          RunRng.lognormalFactor(0.10);

    // Energy carries additional run-to-run variance no counter observes
    // (thermal state, voltage, fan). Kept at ~3% so serial-composition
    // energy additivity — the paper's premise — still holds within the
    // 5% tolerance, while models face some irreducible error.
    Exec.TrueDynamicEnergyJ += Energy.dynamicEnergyJoules(Phase.Activities) *
                               RunRng.lognormalFactor(0.03);
    Exec.Phases.push_back(std::move(Phase));
  }

  // Phase-transition overhead: ~0.1% of the smaller neighbour's energy
  // per boundary. Real but far below the 5% additivity tolerance — the
  // paper's premise that dynamic energy composes additively holds.
  for (size_t I = 1; I < Exec.Phases.size(); ++I) {
    double Smaller =
        std::min(Energy.dynamicEnergyJoules(Exec.Phases[I - 1].Activities),
                 Energy.dynamicEnergyJoules(Exec.Phases[I].Activities));
    Exec.TrueDynamicEnergyJ += 0.001 * Smaller;
  }
  return Exec;
}

double Machine::readCounter(EventId Id, const Execution &Exec) const {
  assert(!Exec.Phases.empty() && "reading a counter without an execution");
  const SynthesisModel &Model = Registry.event(Id).Model;

  // The counter's observation noise is a pure function of (run, event):
  // reading the same counter twice against one run gives one value.
  Rng EventRng = Rng(Exec.RunSeed).fork(static_cast<uint64_t>(Id) + 1);

  double BaseTotal = 0;
  double ContextSum = 0;
  for (const ExecutionPhase &Phase : Exec.Phases) {
    double Base = 0;
    for (const ActivityTerm &Term : Model.Coeffs)
      Base += Term.Weight * Phase.Activities[Term.Kind];
    BaseTotal += Base;
    ContextSum +=
        Base * std::max(Phase.ContextIntensity, Model.IntensityFloor);
  }

  double Boundaries = static_cast<double>(Exec.Phases.size()) - 1.0;
  double Context = Model.NaFraction * ContextSum *
                   (1.0 + Model.NaBoundaryBeta * Boundaries) *
                   EventRng.lognormalFactor(Model.NaJitterSigma);

  double Floor = Model.ContextFloor;
  if (Floor > 0)
    Floor *= EventRng.lognormalFactor(Model.NoiseSigma);

  double Count = (BaseTotal + Context + Floor) *
                 EventRng.lognormalFactor(Model.NoiseSigma);
  return std::max(Count, 0.0);
}

std::vector<double>
Machine::readCounters(const std::vector<EventId> &Ids,
                      const Execution &Exec) const {
  std::vector<double> Counts;
  Counts.reserve(Ids.size());
  for (EventId Id : Ids)
    Counts.push_back(readCounter(Id, Exec));
  return Counts;
}
