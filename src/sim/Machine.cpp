//===- sim/Machine.cpp - Execution engine and PMC synthesis ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "stats/SimdKernels.h"
#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string_view>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
SynthAlgorithm initialSynthAlgorithm() {
  if (const char *Env = std::getenv("SLOPE_SYNTH_ALGO")) {
    if (std::string_view(Env) == "naive")
      return SynthAlgorithm::Naive;
    if (std::string_view(Env) == "batched")
      return SynthAlgorithm::Batched;
  }
  return SynthAlgorithm::Batched;
}

SynthAlgorithm GlobalSynthAlgorithm = initialSynthAlgorithm();
} // namespace

void sim::setDefaultSynthAlgorithm(SynthAlgorithm A) {
  GlobalSynthAlgorithm = A;
}

SynthAlgorithm sim::defaultSynthAlgorithm() { return GlobalSynthAlgorithm; }

ActivityVector Execution::totalActivities() const {
  ActivityVector Total;
  for (const ExecutionPhase &Phase : Phases)
    Total += Phase.Activities;
  return Total;
}

double Execution::totalTimeSec() const {
  double Total = 0;
  for (const ExecutionPhase &Phase : Phases)
    Total += Phase.TimeSec;
  return Total;
}

Machine::Machine(Platform P, uint64_t Seed)
    : Plat(std::move(P)), Registry(Plat.buildRegistry()), Energy(Plat),
      MachineRng(Seed) {
  buildSynthesisPlan();
}

void Machine::buildSynthesisPlan() {
  Plan.Events.resize(Registry.size());
  size_t NumTerms = 0;
  for (size_t Id = 0; Id < Registry.size(); ++Id)
    NumTerms += Registry.event(static_cast<EventId>(Id)).Model.Coeffs.size();
  Plan.TermKind.reserve(NumTerms);
  Plan.TermWeight.reserve(NumTerms);

  for (size_t Id = 0; Id < Registry.size(); ++Id) {
    const SynthesisModel &Model =
        Registry.event(static_cast<EventId>(Id)).Model;
    SynthesisPlan::EventEntry &Entry = Plan.Events[Id];
    Entry.TermBegin = static_cast<uint32_t>(Plan.TermKind.size());
    // Keep the registry's term order: the weighted base sums below must
    // associate exactly as readCounter's loop over Model.Coeffs does.
    for (const ActivityTerm &Term : Model.Coeffs) {
      Plan.TermKind.push_back(static_cast<uint32_t>(Term.Kind));
      Plan.TermWeight.push_back(Term.Weight);
    }
    Entry.TermEnd = static_cast<uint32_t>(Plan.TermKind.size());
    Entry.NaFraction = Model.NaFraction;
    Entry.NaBoundaryBeta = Model.NaBoundaryBeta;
    Entry.IntensityFloor = Model.IntensityFloor;
    Entry.NaJitterSigma = Model.NaJitterSigma;
    Entry.ContextFloor = Model.ContextFloor;
    Entry.NoiseSigma = Model.NoiseSigma;
  }
}

Execution Machine::runWithSeed(const CompoundApplication &App,
                               uint64_t RunSeed) const {
  assert(!App.Phases.empty() && "running an empty compound application");
  Execution Exec;
  Exec.RunSeed = RunSeed;

  Rng RunRng(Exec.RunSeed);
  for (const Application &Base : App.Phases) {
    assert(Base.isValid() && "problem size outside the kernel's range");
    const KernelSpec &Spec = kernelSpec(Base.Kind);

    ExecutionPhase Phase;
    Phase.App = Base;
    Phase.Activities =
        kernelActivities(Base.Kind, static_cast<double>(Base.Size), Plat);
    // Run-to-run workload variation: a common multiplicative factor on
    // all data-dependent work of the phase (scheduling, frequency wander).
    double WorkJitter = RunRng.lognormalFactor(0.008);
    Phase.Activities *= WorkJitter;
    Phase.TimeSec =
        kernelTimeSeconds(Base.Kind, static_cast<double>(Base.Size), Plat) *
        RunRng.lognormalFactor(0.01);
    Phase.ContextIntensity =
        Spec.ContextIntensity * RunRng.lognormalFactor(0.05);
    // With the DVFS model on, the achieved clock also wanders run to
    // run (thermal state, turbo bins): unhalted-cycle counts pick up
    // variance that no other counter and no energy component shares.
    if (Plat.DvfsEnabled)
      Phase.Activities[ActivityKind::CoreCycles] *=
          RunRng.lognormalFactor(0.10);

    // Energy carries additional run-to-run variance no counter observes
    // (thermal state, voltage, fan). Kept at ~3% so serial-composition
    // energy additivity — the paper's premise — still holds within the
    // 5% tolerance, while models face some irreducible error.
    Exec.TrueDynamicEnergyJ += Energy.dynamicEnergyJoules(Phase.Activities) *
                               RunRng.lognormalFactor(0.03);
    Exec.Phases.push_back(std::move(Phase));
  }

  // Phase-transition overhead: ~0.1% of the smaller neighbour's energy
  // per boundary. Real but far below the 5% additivity tolerance — the
  // paper's premise that dynamic energy composes additively holds.
  for (size_t I = 1; I < Exec.Phases.size(); ++I) {
    double Smaller =
        std::min(Energy.dynamicEnergyJoules(Exec.Phases[I - 1].Activities),
                 Energy.dynamicEnergyJoules(Exec.Phases[I].Activities));
    Exec.TrueDynamicEnergyJ += 0.001 * Smaller;
  }
  return Exec;
}

Execution Machine::run(const CompoundApplication &App) {
  return runWithSeed(App, MachineRng.fork(++RunCounter).next());
}

std::vector<uint64_t> Machine::forkRunSeeds(size_t NumRuns) {
  std::vector<uint64_t> Seeds;
  Seeds.reserve(NumRuns);
  for (size_t I = 0; I < NumRuns; ++I)
    Seeds.push_back(MachineRng.fork(++RunCounter).next());
  return Seeds;
}

std::vector<Execution> Machine::runBatch(const CompoundApplication &App,
                                         size_t NumRuns) {
  std::vector<uint64_t> Seeds = forkRunSeeds(NumRuns);
  std::vector<Execution> Execs(NumRuns);
  parallelFor(0, NumRuns, 1, [&](size_t I) {
    Execs[I] = runWithSeed(App, Seeds[I]);
  });
  return Execs;
}

namespace {
/// Lognormal sigma of the per-window power-meter sample in runTrace.
/// Matches the ~3% unobserved energy variance of whole runs, so windowed
/// power telemetry is exactly as trustworthy per sample as the WattsUp
/// trace the offline pipeline consumes.
constexpr double TracePowerNoiseSigma = 0.03;
} // namespace

ExecutionTrace Machine::runTrace(const CompoundApplication &App,
                                 uint64_t RunSeed, size_t WindowCount) const {
  assert(WindowCount >= 1 && "a trace needs at least one window");
  ExecutionTrace Trace;
  Trace.Exec = runWithSeed(App, RunSeed);

  const size_t NumPhases = Trace.Exec.Phases.size();
  std::vector<double> PhaseEnd(NumPhases);
  double Total = 0;
  for (size_t P = 0; P < NumPhases; ++P) {
    Total += Trace.Exec.Phases[P].TimeSec;
    PhaseEnd[P] = Total;
  }
  const double Dt = Total / static_cast<double>(WindowCount);

  // Every window is a pure function of (RunSeed, window index): activity
  // shares come from the fixed phase timeline, and the power sample's
  // noise is drawn from a fork tagged by the index alone. Windows
  // therefore synthesize in parallel, bit-identical at any thread count,
  // and window W's draw stream does not change when the trace is cut into
  // more or fewer windows.
  Trace.Windows.resize(WindowCount);
  const Rng SeedRng = Rng(RunSeed).fork("trace");
  parallelFor(0, WindowCount, 16, [&](size_t W) {
    TraceWindow &Win = Trace.Windows[W];
    Win.StartSec = static_cast<double>(W) * Dt;
    // The last window absorbs the division rounding so the windows
    // partition [0, Total) exactly.
    const double End =
        W + 1 == WindowCount ? Total : static_cast<double>(W + 1) * Dt;
    Win.DtSec = End - Win.StartSec;

    double IntensitySum = 0;
    bool AnyPhase = false;
    for (size_t P = 0; P < NumPhases; ++P) {
      const double P0 = P == 0 ? 0.0 : PhaseEnd[P - 1];
      const double P1 = PhaseEnd[P];
      const double Overlap =
          std::min(End, P1) - std::max(Win.StartSec, P0);
      if (Overlap <= 0)
        continue;
      if (!AnyPhase)
        Win.FirstPhase = static_cast<uint32_t>(P);
      Win.LastPhase = static_cast<uint32_t>(P);
      AnyPhase = true;
      const ExecutionPhase &Phase = Trace.Exec.Phases[P];
      const double Share = Overlap / Phase.TimeSec;
      for (size_t K = 0; K < pmc::NumActivityKinds; ++K)
        Win.Activities.at(K) += Share * Phase.Activities.at(K);
      IntensitySum += Overlap * Phase.ContextIntensity;
    }
    Win.ContextIntensity = Win.DtSec > 0 ? IntensitySum / Win.DtSec : 0;

    // The meter sample: true window power under lognormal noise, drawn
    // from fork(W + 1) so the jitter stream is a pure function of the
    // window index (window-count and thread-count invariant).
    Rng WindowRng = SeedRng.fork(W + 1);
    const double TrueWindowJ = Energy.dynamicEnergyJoules(Win.Activities);
    Win.PowerW = Win.DtSec > 0
                     ? (TrueWindowJ / Win.DtSec) *
                           WindowRng.lognormalFactor(TracePowerNoiseSigma)
                     : 0;
  });
  return Trace;
}

void Machine::readCountersWindow(const EventId *Ids, size_t NumIds,
                                 const ExecutionTrace &Trace, size_t W,
                                 double *Out) const {
  assert(W < Trace.windowCount() && "window index out of range");
  ScopedPhase Timer(Phase::Synth);
  const TraceWindow &Win = Trace.Windows[W];
  const double TotalTime = Trace.Exec.totalTimeSec();
  const double TimeShare = TotalTime > 0 ? Win.DtSec / TotalTime : 0;
  const double Boundaries =
      static_cast<double>(Win.LastPhase - Win.FirstPhase);
  const Rng WindowRng = Rng(Trace.Exec.RunSeed).fork("tracewin").fork(W + 1);
  const double *Act = Win.Activities.data();

  for (size_t I = 0; I < NumIds; ++I) {
    const EventId Id = Ids[I];
    assert(Id < Plan.Events.size() && "event id out of range");
    const SynthesisPlan::EventEntry &E = Plan.Events[Id];

    // The same draw sequence as readCounter against a (window, event)
    // fork: NA jitter, floor jitter (when a floor exists), observation
    // noise. A pure function of (RunSeed, W, Id) — reading the same
    // window twice gives one value, and cutting the trace into a
    // different window count leaves window W's stream untouched.
    Rng EventRng = WindowRng.fork(static_cast<uint64_t>(Id) + 1);

    const double Base = stats::weightedIndexedSum(
        Plan.TermWeight.data() + E.TermBegin,
        Plan.TermKind.data() + E.TermBegin, E.TermEnd - E.TermBegin, Act);
    const double ContextSum =
        Base * std::max(Win.ContextIntensity, E.IntensityFloor);
    const double Context = E.NaFraction * ContextSum *
                           (1.0 + E.NaBoundaryBeta * Boundaries) *
                           EventRng.lognormalFactor(E.NaJitterSigma);

    // Whole-run floors (fixed overheads) are pro-rated onto the window's
    // time share, so the deltas' sum still tracks the whole-run count.
    double Floor = E.ContextFloor * TimeShare;
    if (Floor > 0)
      Floor *= EventRng.lognormalFactor(E.NoiseSigma);

    const double Count =
        (Base + Context + Floor) * EventRng.lognormalFactor(E.NoiseSigma);
    Out[I] = std::max(Count, 0.0);
  }
}

std::vector<double>
Machine::readCountersWindow(const std::vector<EventId> &Ids,
                            const ExecutionTrace &Trace, size_t W) const {
  std::vector<double> Counts(Ids.size());
  readCountersWindow(Ids.data(), Ids.size(), Trace, W, Counts.data());
  return Counts;
}

double Machine::readCounter(EventId Id, const Execution &Exec) const {
  assert(!Exec.Phases.empty() && "reading a counter without an execution");
  const SynthesisModel &Model = Registry.event(Id).Model;

  // The counter's observation noise is a pure function of (run, event):
  // reading the same counter twice against one run gives one value.
  Rng EventRng = Rng(Exec.RunSeed).fork(static_cast<uint64_t>(Id) + 1);

  double BaseTotal = 0;
  double ContextSum = 0;
  for (const ExecutionPhase &Phase : Exec.Phases) {
    double Base = 0;
    for (const ActivityTerm &Term : Model.Coeffs)
      Base += Term.Weight * Phase.Activities[Term.Kind];
    BaseTotal += Base;
    ContextSum +=
        Base * std::max(Phase.ContextIntensity, Model.IntensityFloor);
  }

  double Boundaries = static_cast<double>(Exec.Phases.size()) - 1.0;
  double Context = Model.NaFraction * ContextSum *
                   (1.0 + Model.NaBoundaryBeta * Boundaries) *
                   EventRng.lognormalFactor(Model.NaJitterSigma);

  double Floor = Model.ContextFloor;
  if (Floor > 0)
    Floor *= EventRng.lognormalFactor(Model.NoiseSigma);

  double Count = (BaseTotal + Context + Floor) *
                 EventRng.lognormalFactor(Model.NoiseSigma);
  return std::max(Count, 0.0);
}

std::vector<double>
Machine::readCounters(const std::vector<EventId> &Ids,
                      const Execution &Exec) const {
  std::vector<double> Counts;
  Counts.reserve(Ids.size());
  for (EventId Id : Ids)
    Counts.push_back(readCounter(Id, Exec));
  return Counts;
}

std::vector<double>
Machine::readCountersBatch(const std::vector<EventId> &Ids,
                           const Execution &Exec) const {
  std::vector<double> Counts(Ids.size());
  readCountersBatch(Ids.data(), Ids.size(), Exec, Counts.data());
  return Counts;
}

void Machine::readCountersBatch(const EventId *Ids, size_t NumIds,
                                const Execution &Exec, double *Out) const {
  assert(!Exec.Phases.empty() && "reading counters without an execution");
  ScopedPhase Timer(Phase::Synth);

  if (GlobalSynthAlgorithm == SynthAlgorithm::Naive) {
    for (size_t I = 0; I < NumIds; ++I)
      Out[I] = readCounter(Ids[I], Exec);
    return;
  }

  // Batched kernel. Everything shared across events is hoisted out of the
  // event loop: the seed generator (fork() is const, so one Rng serves all
  // events), the per-phase activity pointers and effective intensities,
  // and the boundary count. The per-event work then streams the flattened
  // term table. Order guarantees that make each count bit-identical to
  // readCounter: terms accumulate in the registry's Coeffs order, phases
  // accumulate in execution order, and the three RNG draws happen in the
  // same sequence against the same fork tag.
  const Rng SeedRng(Exec.RunSeed);
  const size_t NumPhases = Exec.Phases.size();
  const double Boundaries = static_cast<double>(NumPhases) - 1.0;

  // Phase views on the stack for the common case; direct access (still
  // allocation-free) for pathologically long compounds.
  constexpr size_t MaxHoistedPhases = 32;
  const double *ActData[MaxHoistedPhases];
  double Intensity[MaxHoistedPhases];
  const bool Hoisted = NumPhases <= MaxHoistedPhases;
  if (Hoisted) {
    for (size_t P = 0; P < NumPhases; ++P) {
      ActData[P] = Exec.Phases[P].Activities.data();
      Intensity[P] = Exec.Phases[P].ContextIntensity;
    }
  }

  for (size_t I = 0; I < NumIds; ++I) {
    const EventId Id = Ids[I];
    assert(Id < Plan.Events.size() && "event id out of range");
    const SynthesisPlan::EventEntry &E = Plan.Events[Id];

    Rng EventRng = SeedRng.fork(static_cast<uint64_t>(Id) + 1);

    double BaseTotal = 0;
    double ContextSum = 0;
    for (size_t P = 0; P < NumPhases; ++P) {
      const double *Act =
          Hoisted ? ActData[P] : Exec.Phases[P].Activities.data();
      const double PhaseIntensity =
          Hoisted ? Intensity[P] : Exec.Phases[P].ContextIntensity;
      // Gathered weighted sum over the event's term-table slice; the
      // scalar reference accumulates in ascending term order (the
      // registry's Coeffs order), and the opt-in AVX2 variant K-splits
      // it (see stats/SimdKernels.h).
      double Base = stats::weightedIndexedSum(
          Plan.TermWeight.data() + E.TermBegin,
          Plan.TermKind.data() + E.TermBegin, E.TermEnd - E.TermBegin, Act);
      BaseTotal += Base;
      ContextSum += Base * std::max(PhaseIntensity, E.IntensityFloor);
    }

    double Context = E.NaFraction * ContextSum *
                     (1.0 + E.NaBoundaryBeta * Boundaries) *
                     EventRng.lognormalFactor(E.NaJitterSigma);

    double Floor = E.ContextFloor;
    if (Floor > 0)
      Floor *= EventRng.lognormalFactor(E.NoiseSigma);

    double Count = (BaseTotal + Context + Floor) *
                   EventRng.lognormalFactor(E.NoiseSigma);
    Out[I] = std::max(Count, 0.0);
  }
}
