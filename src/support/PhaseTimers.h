//===- support/PhaseTimers.h - Process-wide phase accumulators --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap process-wide wall-clock accumulators for named hot phases. Library
/// code charges the duration of a scope to a fixed Phase slot (one atomic
/// add per scope, safe under parallelFor); bench drivers read the totals
/// into their BENCH_*.json summaries so CI perf gates can compare a kernel
/// in isolation from the fixed setup and evaluation work around it.
///
/// The counters are observational only: they never feed back into any
/// computation, so enabling or reading them cannot perturb results.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_PHASETIMERS_H
#define SLOPE_SUPPORT_PHASETIMERS_H

#include <chrono>
#include <cstdint>

namespace slope {

/// Instrumented phases. Each names one hot kernel whose cumulative cost a
/// perf gate wants to see separately from its surrounding workload.
enum class Phase : unsigned {
  ForestTreeFit, ///< DecisionTree::fitRows calls made by RandomForest::fit.
  NnFit,         ///< NeuralNetwork::fit training loops (either kernel).
  Profile,       ///< Profiling campaigns: DatasetBuilder::build and
                 ///< AdditivityChecker::checkAll, timed on the calling
                 ///< thread so the counter reflects wall clock (and thus
                 ///< credits parallel execution), never summed CPU time.
  Synth,         ///< Machine::readCountersBatch counter synthesis
                 ///< (either kernel).
  Serve,         ///< ServingEngine trace replay (ingest, shard epochs,
                 ///< folds), timed on the calling thread so the counter
                 ///< reflects wall clock and credits the per-shard
                 ///< fan-out.
  ServeIngest,   ///< ServingEngine replay ingest/staging slices (row
                 ///< buffering; on the quantized path also the inline
                 ///< batch inference). Disjoint from ServeFold; both are
                 ///< sub-slices of Serve.
  ServeFold,     ///< ServingEngine epoch folds (partition, shard epochs,
                 ///< publish, online retrain). Includes RlsUpdate/Refit
                 ///< when retraining is enabled.
  RlsUpdate,     ///< RlsLinearRegression::update calls made by the
                 ///< ServingEngine online-retrain path (O(F^2) per
                 ///< observation, epoch-size-independent).
  Refit,         ///< Full batch refits over the accumulated history (the
                 ///< O(N*F^2) reference the RLS path is gated against).
  NumPhases,
};

/// Adds \p Ns nanoseconds to phase \p P (thread-safe, relaxed order).
void phaseAccumulate(Phase P, uint64_t Ns);

/// \returns the cumulative nanoseconds charged to phase \p P so far.
uint64_t phaseTotalNs(Phase P);

/// Resets every phase counter to zero (tests and repeated measurements).
void phaseResetAll();

/// Charges the lifetime of the scope to one phase.
class ScopedPhase {
public:
  explicit ScopedPhase(Phase P)
      : P(P), Start(std::chrono::steady_clock::now()) {}
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;
  ~ScopedPhase() {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    phaseAccumulate(P, static_cast<uint64_t>(Ns));
  }

private:
  Phase P;
  std::chrono::steady_clock::time_point Start;
};

} // namespace slope

#endif // SLOPE_SUPPORT_PHASETIMERS_H
