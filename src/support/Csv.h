//===- support/Csv.h - Minimal CSV writer -----------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes experiment datasets and results as RFC-4180-ish CSV so they can
/// be inspected or post-processed outside the harness.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_CSV_H
#define SLOPE_SUPPORT_CSV_H

#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {

/// Accumulates rows and serializes them as CSV text or to a file.
class CsvWriter {
public:
  /// Creates a writer with the given header row.
  explicit CsvWriter(std::vector<std::string> Header);

  /// Appends a row of already-formatted cells; width must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a row of doubles formatted with maximum round-trip precision.
  void addNumericRow(const std::vector<double> &Values);

  /// \returns the CSV text, including the header.
  std::string str() const;

  /// Writes the CSV text to \p Path. \returns an error on I/O failure.
  Expected<bool> writeFile(const std::string &Path) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Quotes a cell if it contains a comma, quote, or newline.
std::string csvQuote(const std::string &Cell);

} // namespace slope

#endif // SLOPE_SUPPORT_CSV_H
