//===- support/Expected.h - Lightweight error handling ---------*- C++ -*-===//
//
// Part of SLOPE-PMC++, a reproduction of "Improving the Accuracy of Energy
// Predictive Models for Multicore CPUs Using Additivity of Performance
// Monitoring Counters" (PaCT 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Expected<T>/Error pair for recoverable errors in library code.
/// The library is built without throwing; programmatic errors are handled
/// with assert, recoverable errors (bad user input, infeasible requests)
/// travel through these types.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_EXPECTED_H
#define SLOPE_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace slope {

/// A recoverable error carrying a human-readable message.
///
/// Messages follow tool style: start lowercase, no trailing period.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  /// \returns the diagnostic message, empty for a default-constructed error.
  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Creates an Error from a message string.
inline Error makeError(std::string Message) {
  return Error(std::move(Message));
}

/// Either a value of type \p T or an Error.
///
/// Modeled on llvm::Expected but without the checked-flag machinery; use
/// operator bool before dereferencing.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Storage(std::move(Value)) {}

  /// Constructs a failure value.
  Expected(Error Err) : Storage(std::move(Err)) {}

  /// \returns true if this holds a value rather than an error.
  explicit operator bool() const {
    return std::holds_alternative<T>(Storage);
  }

  /// Accesses the contained value. Asserts on error state.
  T &operator*() {
    assert(*this && "dereferencing an Expected in error state");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an Expected in error state");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Accesses the contained error. Asserts on success state.
  const Error &error() const {
    assert(!*this && "taking the error of an Expected in success state");
    return std::get<Error>(Storage);
  }

  /// Moves the value out. Asserts on error state.
  T takeValue() {
    assert(*this && "taking the value of an Expected in error state");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace slope

#endif // SLOPE_SUPPORT_EXPECTED_H
