//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/Str.h"

#include <cassert>

using namespace slope;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() &&
         "row width does not match header width");
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t C = 0; C < Cells.size(); ++C) {
      Line += " ";
      Line += str::padRight(Cells[C], Widths[C]);
      Line += " |";
    }
    Line += "\n";
    return Line;
  };

  std::string Rule = "+";
  for (size_t W : Widths)
    Rule += std::string(W + 2, '-') + "+";
  Rule += "\n";

  std::string Out;
  if (!Caption.empty())
    Out += Caption + "\n";
  Out += Rule;
  Out += RenderRow(Headers);
  Out += Rule;
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  Out += Rule;
  return Out;
}
