//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a chunked parallel-for helper, used to
/// parallelize the experiment engine (per-tree forest fitting, per-variant
/// model sweeps, per-event additivity trials). Determinism is a design
/// requirement: parallelFor only distributes *independent* index ranges,
/// and every call site derives per-task randomness via Rng::fork(Index)
/// and reduces results in index order, so parallel output is bit-identical
/// to serial output at any thread count.
///
/// The pool size is process-global by default: `ThreadPool::global()`
/// obeys `setGlobalThreadCount(N)` (the `--threads` flag of the drivers)
/// or, failing that, the `SLOPE_THREADS` environment variable, or, failing
/// that, the hardware concurrency.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_THREADPOOL_H
#define SLOPE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slope {

/// Fixed-size worker pool. Tasks are arbitrary callables; parallelFor is
/// the structured entry point the experiment engine uses.
class ThreadPool {
public:
  /// Creates a pool with \p NumThreads workers. A count of 0 or 1 creates
  /// no worker threads at all; every task then runs inline on the caller.
  explicit ThreadPool(unsigned NumThreads);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  /// \returns the number of worker threads (0 for an inline pool).
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// \returns the parallel width: workers plus the participating caller.
  unsigned numThreads() const { return numWorkers() + 1; }

  /// Runs Fn(I) for every I in [Begin, End), distributing contiguous
  /// chunks of \p Chunk indices over the workers; the calling thread
  /// participates. Blocks until every index completed. The first exception
  /// thrown by any task is rethrown on the caller (remaining chunks are
  /// abandoned). Nested calls from inside a worker run inline, so call
  /// sites may parallelize freely at every level without deadlock.
  ///
  /// Fn must be safe to invoke concurrently for distinct indices; results
  /// must be written to disjoint, pre-sized slots.
  void parallelFor(size_t Begin, size_t End, size_t Chunk,
                   const std::function<void(size_t)> &Fn);

  /// Runs every task in \p Tasks once, distributing them over the workers
  /// with the calling thread participating; blocks until all completed.
  /// This is the epoch-coordination entry point for a small number of
  /// heterogeneous tasks (e.g. one per state shard) rather than a
  /// homogeneous index range: each task owns its slot of pre-partitioned
  /// work and writes only its own state, so no locks or atomics are
  /// needed inside the tasks. Exceptions propagate as in parallelFor.
  void parallelInvoke(const std::vector<std::function<void()>> &Tasks);

  /// \returns the process-global pool, (re)sized per the current
  /// configuration. Do not reconfigure while parallel work is in flight.
  static ThreadPool &global();

  /// Overrides the global pool size; 0 restores automatic sizing
  /// (SLOPE_THREADS, then hardware concurrency). Takes effect on the next
  /// global() call.
  static void setGlobalThreadCount(unsigned NumThreads);

  /// \returns the thread count global() would use right now.
  static unsigned globalThreadCount();

private:
  void workerLoop();

  /// \returns true when called from one of this pool's workers.
  static bool onWorkerThread();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  bool Stopping = false;
};

/// Chunked parallel loop over [Begin, End) on the global pool. See
/// ThreadPool::parallelFor for the contract.
inline void parallelFor(size_t Begin, size_t End, size_t Chunk,
                        const std::function<void(size_t)> &Fn) {
  ThreadPool::global().parallelFor(Begin, End, Chunk, Fn);
}

} // namespace slope

#endif // SLOPE_SUPPORT_THREADPOOL_H
