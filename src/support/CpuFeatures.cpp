//===- support/CpuFeatures.cpp - Runtime CPU capability probes -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/CpuFeatures.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <cstdint>
#endif

using namespace slope;

namespace {

#if defined(__x86_64__) || defined(_M_X64)
bool probeAvx2() {
  // Leaf 1: OSXSAVE (OS uses XSAVE), AVX, and FMA.
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (!__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx))
    return false;
  constexpr unsigned OsxsaveBit = 1u << 27;
  constexpr unsigned AvxBit = 1u << 28;
  constexpr unsigned FmaBit = 1u << 12;
  if ((Ecx & (OsxsaveBit | AvxBit | FmaBit)) != (OsxsaveBit | AvxBit | FmaBit))
    return false;
  // XCR0: the OS must have enabled xmm (bit 1) and ymm (bit 2) state.
  uint32_t Xcr0Lo = 0, Xcr0Hi = 0;
  __asm__("xgetbv" : "=a"(Xcr0Lo), "=d"(Xcr0Hi) : "c"(0));
  if ((Xcr0Lo & 0x6) != 0x6)
    return false;
  // Leaf 7 subleaf 0: AVX2.
  if (__get_cpuid_max(0, nullptr) < 7)
    return false;
  __cpuid_count(7, 0, Eax, Ebx, Ecx, Edx);
  constexpr unsigned Avx2Bit = 1u << 5;
  return (Ebx & Avx2Bit) != 0;
}
#else
bool probeAvx2() { return false; }
#endif

} // namespace

bool slope::cpuHasAvx2() {
  static const bool Supported = probeAvx2();
  return Supported;
}
