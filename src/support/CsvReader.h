//===- support/CsvReader.h - Minimal CSV parser ------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the CSV dialect CsvWriter emits (RFC-4180-ish: quoted cells,
/// doubled quotes, embedded newlines inside quotes). Round-trips
/// experiment datasets written by ml::writeDatasetCsv.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_CSVREADER_H
#define SLOPE_SUPPORT_CSVREADER_H

#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {

/// A parsed CSV document: a header row plus data rows.
struct CsvDocument {
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;

  size_t numColumns() const { return Header.size(); }
  size_t numRows() const { return Rows.size(); }
};

/// Parses CSV text. Every row must have exactly the header's width.
/// \returns an error naming the first offending line on malformed input
/// (unterminated quote, ragged row, empty document).
Expected<CsvDocument> parseCsv(const std::string &Text);

/// Reads and parses a CSV file.
Expected<CsvDocument> readCsvFile(const std::string &Path);

} // namespace slope

#endif // SLOPE_SUPPORT_CSVREADER_H
