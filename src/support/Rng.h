//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, splittable random number generation. Every stochastic component
/// of the simulator draws from an Rng constructed from an explicit seed so
/// that experiments are reproducible run to run; "independent" streams are
/// derived with fork() so adding draws in one component does not perturb
/// another.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_RNG_H
#define SLOPE_SUPPORT_RNG_H

#include <cstdint>
#include <string_view>

namespace slope {

/// Deterministic pseudo-random generator (xoshiro256** core, SplitMix64
/// seeding).
///
/// Not cryptographic; chosen for speed, quality, and a trivially portable
/// implementation with exactly reproducible streams across platforms.
class Rng {
public:
  /// Seeds the generator. Equal seeds give equal streams.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// \returns the next raw 64-bit draw.
  uint64_t next();

  /// \returns a uniform double in [0, 1).
  double uniform();

  /// \returns a uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// \returns a uniform integer in [0, N). Asserts N > 0.
  uint64_t below(uint64_t N);

  /// \returns a standard normal draw (Box-Muller, no cached spare so the
  /// stream position is a pure function of the number of calls).
  double gaussian();

  /// \returns a normal draw with the given mean and standard deviation.
  double gaussian(double Mean, double Sigma);

  /// \returns a lognormal multiplicative factor with median 1 and the given
  /// sigma of the underlying normal; useful for "noisy but positive"
  /// perturbations of counters and energies.
  double lognormalFactor(double Sigma);

  /// Derives an independent child generator. The child stream is a pure
  /// function of (parent seed, Tag), so components identified by stable
  /// tags get stable streams regardless of call order elsewhere. This is
  /// also the parallel seeding API: a task indexed I draws from
  /// fork(I), which depends on neither sibling tasks nor thread
  /// scheduling, so parallel experiments reproduce serial ones bit for
  /// bit (see support/ThreadPool.h).
  Rng fork(uint64_t Tag) const;

  /// Derives an independent child generator from a string tag (FNV-1a).
  Rng fork(std::string_view Tag) const;

private:
  uint64_t State[4];
  uint64_t Seed;
};

/// FNV-1a hash of a string; used for stable stream tags.
uint64_t hashTag(std::string_view Tag);

} // namespace slope

#endif // SLOPE_SUPPORT_RNG_H
