//===- support/Rng.cpp - Deterministic random number generation ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace slope;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) : Seed(Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Rng::below(uint64_t N) {
  assert(N > 0 && "below(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0ULL - N) % N;
  for (;;) {
    uint64_t Draw = next();
    if (Draw >= Threshold)
      return Draw % N;
  }
}

double Rng::gaussian() {
  // Box-Muller; always consumes exactly two uniforms.
  double U1 = uniform();
  double U2 = uniform();
  if (U1 < 1e-300)
    U1 = 1e-300;
  return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
}

double Rng::gaussian(double Mean, double Sigma) {
  assert(Sigma >= 0 && "negative standard deviation");
  return Mean + Sigma * gaussian();
}

double Rng::lognormalFactor(double Sigma) {
  assert(Sigma >= 0 && "negative lognormal sigma");
  return std::exp(Sigma * gaussian());
}

Rng Rng::fork(uint64_t Tag) const {
  // Mix the parent seed with the tag through SplitMix64 twice so nearby
  // tags do not yield correlated child seeds.
  uint64_t S = Seed ^ (Tag * 0xD1B54A32D192ED03ULL);
  uint64_t Child = splitMix64(S);
  Child ^= splitMix64(S);
  return Rng(Child);
}

Rng Rng::fork(std::string_view Tag) const { return fork(hashTag(Tag)); }

uint64_t slope::hashTag(std::string_view Tag) {
  uint64_t Hash = 0xCBF29CE484222325ULL;
  for (char C : Tag) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001B3ULL;
  }
  return Hash;
}
