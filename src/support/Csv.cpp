//===- support/Csv.cpp - Minimal CSV writer -------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include <cassert>
#include <cstdio>

using namespace slope;

std::string slope::csvQuote(const std::string &Cell) {
  bool NeedsQuoting = false;
  for (char C : Cell)
    if (C == ',' || C == '"' || C == '\n' || C == '\r')
      NeedsQuoting = true;
  if (!NeedsQuoting)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

CsvWriter::CsvWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {
  assert(!this->Header.empty() && "CSV needs at least one column");
}

void CsvWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "CSV row width mismatch");
  Rows.push_back(std::move(Cells));
}

void CsvWriter::addNumericRow(const std::vector<double> &Values) {
  std::vector<std::string> Cells;
  Cells.reserve(Values.size());
  for (double V : Values) {
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", V);
    Cells.push_back(Buffer);
  }
  addRow(std::move(Cells));
}

std::string CsvWriter::str() const {
  auto RenderRow = [](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I != 0)
        Line += ',';
      Line += csvQuote(Cells[I]);
    }
    Line += '\n';
    return Line;
  };
  std::string Out = RenderRow(Header);
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

Expected<bool> CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return makeError("cannot open '" + Path + "' for writing");
  std::string Text = str();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  if (Written != Text.size())
    return makeError("short write to '" + Path + "'");
  return true;
}
