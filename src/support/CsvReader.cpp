//===- support/CsvReader.cpp - Minimal CSV parser -------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/CsvReader.h"

#include <cstdio>

using namespace slope;

namespace {

/// Splits \p Text into records of cells, honouring quoting. \returns
/// false on an unterminated quote, setting \p ErrorLine.
bool tokenize(const std::string &Text,
              std::vector<std::vector<std::string>> &Records,
              size_t &ErrorLine) {
  std::vector<std::string> Current;
  std::string Cell;
  bool InQuotes = false;
  bool CellWasQuoted = false;
  size_t Line = 1;

  auto EndCell = [&]() {
    Current.push_back(Cell);
    Cell.clear();
    CellWasQuoted = false;
  };
  auto EndRecord = [&]() {
    EndCell();
    Records.push_back(Current);
    Current.clear();
  };

  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (InQuotes) {
      if (C == '"') {
        if (I + 1 < Text.size() && Text[I + 1] == '"') {
          Cell += '"';
          ++I;
        } else {
          InQuotes = false;
        }
      } else {
        if (C == '\n')
          ++Line;
        Cell += C;
      }
      continue;
    }
    switch (C) {
    case '"':
      // Opening quote is only special at cell start.
      if (Cell.empty() && !CellWasQuoted) {
        InQuotes = true;
        CellWasQuoted = true;
      } else {
        Cell += C;
      }
      break;
    case ',':
      EndCell();
      break;
    case '\r':
      break; // Tolerate CRLF.
    case '\n':
      EndRecord();
      ++Line;
      break;
    default:
      Cell += C;
    }
  }
  if (InQuotes) {
    ErrorLine = Line;
    return false;
  }
  // Final record without a trailing newline.
  if (!Cell.empty() || !Current.empty())
    EndRecord();
  return true;
}

} // namespace

Expected<CsvDocument> slope::parseCsv(const std::string &Text) {
  std::vector<std::vector<std::string>> Records;
  size_t ErrorLine = 0;
  if (!tokenize(Text, Records, ErrorLine))
    return makeError("unterminated quote starting near line " +
                     std::to_string(ErrorLine));
  if (Records.empty())
    return makeError("empty CSV document");

  CsvDocument Doc;
  Doc.Header = Records.front();
  for (size_t R = 1; R < Records.size(); ++R) {
    if (Records[R].size() != Doc.Header.size())
      return makeError("row " + std::to_string(R + 1) + " has " +
                       std::to_string(Records[R].size()) +
                       " cells, expected " +
                       std::to_string(Doc.Header.size()));
    Doc.Rows.push_back(std::move(Records[R]));
  }
  return Doc;
}

Expected<CsvDocument> slope::readCsvFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError("cannot open '" + Path + "' for reading");
  std::string Text;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  return parseCsv(Text);
}
