//===- support/Str.cpp - String formatting helpers -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/Str.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace slope;

std::string str::fixed(double Value, int Decimals) {
  assert(Decimals >= 0 && Decimals <= 17 && "unreasonable decimal count");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string str::compact(double Value, int Digits) {
  assert(Digits > 0 && "need at least one significant digit");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*g", Digits, Value);
  return Buffer;
}

std::string str::scientific(double Value, int Decimals) {
  if (Value == 0.0)
    return "0";
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*E", Decimals, Value);
  return Buffer;
}

std::string str::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string str::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string str::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool str::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool str::contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

std::string str::lower(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}
