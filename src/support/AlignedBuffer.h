//===- support/AlignedBuffer.h - 64-byte aligned padded storage -*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A growable array whose storage is 64-byte aligned and whose capacity is
/// padded up to a whole number of 64-byte lines. The padding makes every
/// span "vector-safe": a SIMD kernel may issue a full-width load that
/// reaches past size() without reading outside the allocation, so column
/// sweeps never need a masked or scalar epilogue for safety (they still
/// must not let the lanes past size() affect results). Padding is
/// zero-filled at allocation so such overreads are deterministic.
///
/// Deliberately minimal — the subset of std::vector the columnar stores
/// use (push_back/reserve/resize/clear with capacity retention, copy and
/// move) — because the point is the allocation contract, not the API.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_ALIGNEDBUFFER_H
#define SLOPE_SUPPORT_ALIGNEDBUFFER_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace slope {

/// Storage alignment (and padding granularity) of AlignedBuffer, in
/// bytes: one cache line, which is also the widest vector register any
/// target we dispatch for uses (64 bytes covers AVX-512; AVX2 needs 32).
inline constexpr size_t SimdAlignment = 64;

/// Growable 64-byte-aligned array of trivially-copyable T with padded,
/// zero-initialized capacity (see file comment).
template <typename T> class AlignedBuffer {
  static_assert(alignof(T) <= SimdAlignment, "over-aligned element type");
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer moves elements with memcpy");

public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t N, T Fill = T()) {
    resize(N, Fill);
  }

  AlignedBuffer(const AlignedBuffer &Other) {
    reserve(Other.Count);
    std::memcpy(Ptr, Other.Ptr, Other.Count * sizeof(T));
    Count = Other.Count;
  }

  AlignedBuffer(AlignedBuffer &&Other) noexcept
      : Ptr(Other.Ptr), Count(Other.Count), Cap(Other.Cap) {
    Other.Ptr = nullptr;
    Other.Count = Other.Cap = 0;
  }

  AlignedBuffer &operator=(const AlignedBuffer &Other) {
    if (this == &Other)
      return *this;
    Count = 0;
    reserve(Other.Count);
    std::memcpy(Ptr, Other.Ptr, Other.Count * sizeof(T));
    Count = Other.Count;
    return *this;
  }

  AlignedBuffer &operator=(AlignedBuffer &&Other) noexcept {
    if (this == &Other)
      return *this;
    release();
    Ptr = Other.Ptr;
    Count = Other.Count;
    Cap = Other.Cap;
    Other.Ptr = nullptr;
    Other.Count = Other.Cap = 0;
    return *this;
  }

  ~AlignedBuffer() { release(); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  /// Usable capacity in elements (always a multiple of the pad quantum).
  size_t capacity() const { return Cap; }

  T *data() { return Ptr; }
  const T *data() const { return Ptr; }
  T *begin() { return Ptr; }
  T *end() { return Ptr + Count; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Count; }

  T &operator[](size_t I) {
    assert(I < Count && "aligned buffer index out of range");
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "aligned buffer index out of range");
    return Ptr[I];
  }
  T &back() {
    assert(Count > 0 && "back() on empty buffer");
    return Ptr[Count - 1];
  }

  /// Ensures capacity for \p N elements (rounded up to whole 64-byte
  /// lines); geometric growth so repeated push_back stays amortized O(1).
  void reserve(size_t N) {
    if (N <= Cap)
      return;
    grow(N);
  }

  void push_back(T Value) {
    if (Count == Cap)
      grow(Count + 1);
    Ptr[Count++] = Value;
  }

  /// Grows or shrinks to exactly \p N elements; new elements get \p Fill.
  void resize(size_t N, T Fill = T()) {
    reserve(N);
    for (size_t I = Count; I < N; ++I)
      Ptr[I] = Fill;
    Count = N;
  }

  /// Drops the contents but keeps the allocation, so refill loops run
  /// allocation-free once the first pass has sized the buffer.
  void clear() { Count = 0; }

  friend bool operator==(const AlignedBuffer &A, const AlignedBuffer &B) {
    if (A.Count != B.Count)
      return false;
    return A.Count == 0 ||
           std::memcmp(A.Ptr, B.Ptr, A.Count * sizeof(T)) == 0;
  }
  friend bool operator!=(const AlignedBuffer &A, const AlignedBuffer &B) {
    return !(A == B);
  }

private:
  static constexpr size_t PadElems = SimdAlignment / sizeof(T);

  void grow(size_t MinCap) {
    size_t NewCap = Cap < PadElems ? PadElems : 2 * Cap;
    if (NewCap < MinCap)
      NewCap = MinCap;
    NewCap = (NewCap + PadElems - 1) / PadElems * PadElems;
    T *NewPtr = static_cast<T *>(::operator new(
        NewCap * sizeof(T), std::align_val_t(SimdAlignment)));
    // Zero the whole padded region first (deterministic overreads), then
    // move the live prefix over.
    std::memset(NewPtr, 0, NewCap * sizeof(T));
    if (Count > 0)
      std::memcpy(NewPtr, Ptr, Count * sizeof(T));
    release();
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void release() {
    if (Ptr)
      ::operator delete(Ptr, std::align_val_t(SimdAlignment));
    Ptr = nullptr;
  }

  T *Ptr = nullptr;
  size_t Count = 0;
  size_t Cap = 0;
};

} // namespace slope

#endif // SLOPE_SUPPORT_ALIGNEDBUFFER_H
