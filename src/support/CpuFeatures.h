//===- support/CpuFeatures.h - Runtime CPU capability probes ----*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime detection of the instruction-set extensions the SIMD kernel
/// variants need (stats/SimdKernels.h). Detection is a pure function of
/// the hardware: it reports what the CPU and OS support, independently of
/// what this binary was compiled with — the dispatcher combines both.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_CPUFEATURES_H
#define SLOPE_SUPPORT_CPUFEATURES_H

namespace slope {

/// \returns true when the CPU supports AVX2 and FMA *and* the OS saves
/// the 256-bit ymm state across context switches (OSXSAVE + XCR0), i.e.
/// the AVX2 kernel variants may actually execute. Always false on
/// non-x86-64 targets. The probe runs once; subsequent calls return the
/// cached verdict.
bool cpuHasAvx2();

} // namespace slope

#endif // SLOPE_SUPPORT_CPUFEATURES_H
