//===- support/ThreadPool.cpp - Fixed-size worker pool -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>

using namespace slope;

namespace {

/// Set while a thread is executing inside any pool's worker loop; nested
/// parallelFor calls detect this and run inline instead of re-entering
/// the (possibly saturated) queue.
thread_local bool InsideWorker = false;

/// Shared bookkeeping for one parallelFor invocation.
struct LoopState {
  size_t Begin = 0;
  size_t End = 0;
  size_t Chunk = 1;
  size_t NumChunks = 0;
  const std::function<void(size_t)> *Fn = nullptr;

  std::atomic<size_t> NextChunk{0};
  std::atomic<size_t> DoneChunks{0};
  std::atomic<bool> Cancelled{false};

  std::mutex Mutex;
  std::condition_variable Done;
  std::exception_ptr FirstError;

  /// Claims and runs chunks until the range (or the loop) is exhausted.
  void runChunks() {
    for (;;) {
      size_t C = NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (C >= NumChunks)
        return;
      if (!Cancelled.load(std::memory_order_relaxed)) {
        size_t First = Begin + C * Chunk;
        size_t Last = std::min(First + Chunk, End);
        try {
          for (size_t I = First; I < Last; ++I)
            (*Fn)(I);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(Mutex);
          if (!FirstError)
            FirstError = std::current_exception();
          Cancelled.store(true, std::memory_order_relaxed);
        }
      }
      if (DoneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          NumChunks) {
        std::lock_guard<std::mutex> Lock(Mutex);
        Done.notify_all();
      }
    }
  }
};

} // namespace

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned NumWorkers = NumThreads > 1 ? NumThreads - 1 : 0;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  InsideWorker = true;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

bool ThreadPool::onWorkerThread() { return InsideWorker; }

void ThreadPool::parallelFor(size_t Begin, size_t End, size_t Chunk,
                             const std::function<void(size_t)> &Fn) {
  if (End <= Begin)
    return;
  if (Chunk == 0)
    Chunk = 1;
  size_t N = End - Begin;

  // Inline paths: no workers, a range that fits one chunk, or a nested
  // call from inside a worker (the outer loop already owns the pool).
  if (numWorkers() == 0 || N <= Chunk || onWorkerThread()) {
    for (size_t I = Begin; I < End; ++I)
      Fn(I);
    return;
  }

  auto State = std::make_shared<LoopState>();
  State->Begin = Begin;
  State->End = End;
  State->Chunk = Chunk;
  State->NumChunks = (N + Chunk - 1) / Chunk;
  State->Fn = &Fn;

  // One runner task per worker that could usefully claim a chunk; the
  // caller participates too, so State->NumChunks - 1 helpers suffice.
  size_t NumHelpers =
      std::min<size_t>(numWorkers(), State->NumChunks - 1);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I < NumHelpers; ++I)
      Queue.emplace_back([State] { State->runChunks(); });
  }
  QueueCv.notify_all();

  State->runChunks();
  {
    std::unique_lock<std::mutex> Lock(State->Mutex);
    State->Done.wait(Lock, [&] {
      return State->DoneChunks.load(std::memory_order_acquire) ==
             State->NumChunks;
    });
  }
  if (State->FirstError)
    std::rethrow_exception(State->FirstError);
}

void ThreadPool::parallelInvoke(
    const std::vector<std::function<void()>> &Tasks) {
  parallelFor(0, Tasks.size(), 1, [&Tasks](size_t I) { Tasks[I](); });
}

namespace {

std::mutex GlobalPoolMutex;
std::unique_ptr<ThreadPool> GlobalPool;
unsigned GlobalThreadOverride = 0;

unsigned autoThreadCount() {
  if (const char *Env = std::getenv("SLOPE_THREADS")) {
    char *EndPtr = nullptr;
    long Value = std::strtol(Env, &EndPtr, 10);
    if (EndPtr != Env && *EndPtr == '\0' && Value > 0)
      return static_cast<unsigned>(Value);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

} // namespace

unsigned ThreadPool::globalThreadCount() {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  return GlobalThreadOverride > 0 ? GlobalThreadOverride : autoThreadCount();
}

void ThreadPool::setGlobalThreadCount(unsigned NumThreads) {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  GlobalThreadOverride = NumThreads;
  // Drop a stale pool so the next global() call rebuilds at the new size.
  if (GlobalPool && GlobalPool->numThreads() !=
                        (NumThreads > 0 ? NumThreads : autoThreadCount()))
    GlobalPool.reset();
}

ThreadPool &ThreadPool::global() {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  unsigned Want =
      GlobalThreadOverride > 0 ? GlobalThreadOverride : autoThreadCount();
  if (!GlobalPool || GlobalPool->numThreads() != Want)
    GlobalPool = std::make_unique<ThreadPool>(Want);
  return *GlobalPool;
}
