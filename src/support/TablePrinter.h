//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's tables as aligned monospace text. The bench binaries
/// print one TablePrinter per paper table so the reproduction output can be
/// compared against the publication side by side.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_TABLEPRINTER_H
#define SLOPE_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace slope {

/// Accumulates rows of string cells and renders them with per-column
/// alignment and a header rule, e.g.:
///
/// \code
///   TablePrinter T({"Model", "PMCs", "Errors"});
///   T.addRow({"LR1", "X1..X6", "(6.6, 31.2, 61.9)"});
///   std::string Text = T.render();
/// \endcode
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void addRow(std::vector<std::string> Cells);

  /// Sets an optional caption printed above the table.
  void setCaption(std::string NewCaption) { Caption = std::move(NewCaption); }

  /// \returns the number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Renders the table to a string (trailing newline included).
  std::string render() const;

private:
  std::string Caption;
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace slope

#endif // SLOPE_SUPPORT_TABLEPRINTER_H
