//===- support/Str.h - String formatting helpers ---------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities used by the report/table layer: fixed and
/// significant-digit numeric formatting, scientific notation matching the
/// paper's coefficient style (e.g. "3.83E-09"), padding and joining.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_SUPPORT_STR_H
#define SLOPE_SUPPORT_STR_H

#include <string>
#include <vector>

namespace slope {
namespace str {

/// Formats \p Value with \p Decimals digits after the point.
std::string fixed(double Value, int Decimals);

/// Formats \p Value with at most \p Digits significant digits, trimming
/// trailing zeros ("31.20" -> "31.2", "18.010" -> "18.01").
std::string compact(double Value, int Digits = 4);

/// Formats \p Value in the paper's coefficient notation, e.g. "3.83E-09".
/// Zero is rendered as "0".
std::string scientific(double Value, int Decimals = 2);

/// Right-pads \p S with spaces to \p Width (no-op if already wider).
std::string padRight(const std::string &S, size_t Width);

/// Left-pads \p S with spaces to \p Width (no-op if already wider).
std::string padLeft(const std::string &S, size_t Width);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// \returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// \returns true if \p Needle occurs in \p Haystack.
bool contains(const std::string &Haystack, const std::string &Needle);

/// Converts to lowercase (ASCII only).
std::string lower(std::string S);

} // namespace str
} // namespace slope

#endif // SLOPE_SUPPORT_STR_H
