//===- support/PhaseTimers.cpp - Process-wide phase accumulators ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "support/PhaseTimers.h"

#include <atomic>
#include <cassert>

using namespace slope;

namespace {
std::atomic<uint64_t> Totals[static_cast<unsigned>(Phase::NumPhases)];
} // namespace

void slope::phaseAccumulate(Phase P, uint64_t Ns) {
  assert(P < Phase::NumPhases && "phase slot out of range");
  Totals[static_cast<unsigned>(P)].fetch_add(Ns, std::memory_order_relaxed);
}

uint64_t slope::phaseTotalNs(Phase P) {
  assert(P < Phase::NumPhases && "phase slot out of range");
  return Totals[static_cast<unsigned>(P)].load(std::memory_order_relaxed);
}

void slope::phaseResetAll() {
  for (auto &Total : Totals)
    Total.store(0, std::memory_order_relaxed);
}
