//===- pmc/EventRegistry.h - Platform event catalogue -----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalogue of performance events a platform offers, mirroring what
/// Likwid exposes: 164 events on the Intel Haswell server and 385 on the
/// Intel Skylake server of the paper's Table 1. Registries are built by
/// buildHaswellRegistry()/buildSkylakeRegistry() in PlatformEvents.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_EVENTREGISTRY_H
#define SLOPE_PMC_EVENTREGISTRY_H

#include "pmc/Event.h"
#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {
namespace pmc {

/// An immutable-after-construction table of EventDefs with name lookup.
class EventRegistry {
public:
  /// Appends \p Def and \returns its id. Asserts the name is unique.
  EventId addEvent(EventDef Def);

  size_t size() const { return Events.size(); }

  const EventDef &event(EventId Id) const {
    assert(Id < Events.size() && "event id out of range");
    return Events[Id];
  }

  /// \returns the id of the event named \p Name, or an error.
  Expected<EventId> lookup(const std::string &Name) const;

  /// \returns true if an event with \p Name exists.
  bool hasEvent(const std::string &Name) const;

  /// \returns all event ids (0..size-1).
  std::vector<EventId> allEvents() const;

  /// \returns the ids whose names match all of \p NameParts (substring
  /// conjunction), e.g. {"IDQ", "UOPS"}.
  std::vector<EventId>
  findByName(const std::vector<std::string> &NameParts) const;

  /// \returns the number of events with the given constraint.
  size_t countByConstraint(CounterConstraintKind Kind) const;

private:
  std::vector<EventDef> Events;
};

/// Builds the 164-event catalogue of the dual-socket Intel Haswell server
/// (Intel E5-2670 v3; Table 1 of the paper). Includes the six Class-A
/// model PMCs of Table 2.
EventRegistry buildHaswellRegistry();

/// Builds the 385-event catalogue of the single-socket Intel Skylake
/// server (Intel Xeon Gold 6152; Table 1). Includes the PA and PNA sets
/// of Table 6.
EventRegistry buildSkylakeRegistry();

/// Builds the AMD Zen2 catalogue (PMCx-style events counted on the four
/// PerfEvtSel0-3 slots; no fixed-function counters). A subset of events
/// carries per-slot restrictions via EventDef::SlotMask.
EventRegistry buildAmdZen2Registry();

/// Builds the ARMv7 Cortex-A7 (LITTLE cluster) catalogue: architectural
/// PMUv2 events plus PMCCNTR as the sole fixed counter.
EventRegistry buildCortexA7Registry();

/// Builds the ARMv7 Cortex-A15 (big cluster) catalogue: a strict name
/// superset of the A7's, adding the speculative-issue (\*_SPEC) and
/// wider-machine events.
EventRegistry buildCortexA15Registry();

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_EVENTREGISTRY_H
