//===- pmc/Event.h - Performance event definitions --------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definition of one performance monitoring counter event: its Likwid-style
/// name, the PMU register constraint governing how it can be scheduled, and
/// the synthesis model describing how the simulator derives its observed
/// count from the latent activities — including the knobs that make an
/// event *non-additive*.
///
/// Observed count for an execution of phases p_1..p_k (compound apps have
/// k > 1, base apps k == 1):
///
///   base_i  = sum_a Coeff[a] * Activity_i[a]
///   eff_i   = max(ContextIntensity(phase_i), IntensityFloor)
///   context = NaFraction * sum_i (base_i * eff_i)
///               * (1 + NaBoundaryBeta * (k - 1)) * lognormal(NaJitterSigma)
///   count   = (sum_i base_i + context + ContextFloor)
///               * lognormal(NoiseSigma)
///
/// ContextIntensity is a per-kernel scalar (see sim::Kernel) describing
/// how strongly an execution disturbs shared context (frontend footprint,
/// OS interaction, microcode): near 0 for tight optimized kernels like
/// MKL DGEMM/FFT, near 1 for branchy/irregular codes. This reproduces the
/// paper's app-specific additivity: an event with NaFraction > 0 but
/// IntensityFloor == 0 is nearly additive for DGEMM/FFT (tiny intensity)
/// yet fails the 5% test on the diverse suite, while an event with a high
/// IntensityFloor (self-generated context: divider microcode, ITLB, ...)
/// is non-additive everywhere.
///
/// Additive events have NaFraction == 0 and small NoiseSigma, so their
/// compound count equals the sum of base counts up to measurement noise.
/// Non-additive events inflate in compound runs (BoundaryBeta), wander
/// with execution context (NaJitterSigma), or are dominated by a floor
/// that does not scale with work — the mechanisms the paper attributes to
/// non-additivity on real silicon.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_EVENT_H
#define SLOPE_PMC_EVENT_H

#include "pmc/Activity.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slope {
namespace pmc {

/// Index of an event within its EventRegistry.
using EventId = uint32_t;

/// How an event may be placed on the PMU's counter registers. Mirrors the
/// paper's observation that "some PMCs can only be collected individually
/// or in sets of two or three for single execution of an application".
enum class CounterConstraintKind : uint8_t {
  Fixed,          ///< Lives on a fixed counter; rides along with any run.
  AnyProgrammable,///< Any of the 4 programmable counters (up to 4 per run).
  TripleOnly,     ///< At most 3 such events per run (shared PMU resource).
  PairOnly,       ///< At most 2 such events per run.
  Solo,           ///< Must be measured alone.
};

/// \returns the maximum number of events with constraint \p Kind that fit
/// in one collection run (UINT32_MAX for Fixed).
uint32_t maxPerRun(CounterConstraintKind Kind);

/// \returns a printable name for \p Kind.
const char *counterConstraintName(CounterConstraintKind Kind);

/// Where an event originates; informational, mirrors Likwid groups.
enum class EventDomain : uint8_t {
  Core,     ///< Core PMU (uops, FP, branches, L1/L2).
  Uncore,   ///< Uncore/CBo/IMC (L3, DRAM).
  Software, ///< Kernel software events (page faults, context switches).
};

/// One (activity, weight) term of an event's linear synthesis model.
struct ActivityTerm {
  ActivityKind Kind;
  double Weight;
};

/// Synthesis model: how the simulator produces this event's observed
/// count from latent activities (see file comment for the formula).
struct SynthesisModel {
  std::vector<ActivityTerm> Coeffs;
  double NaFraction = 0.0;      ///< Context share of the count.
  double NaBoundaryBeta = 0.0;  ///< Inflation per compound boundary.
  double IntensityFloor = 0.0;  ///< Minimum effective context intensity.
  double NaJitterSigma = 0.0;   ///< Context lognormal sigma.
  double ContextFloor = 0.0;    ///< Work-independent floor count.
  double NoiseSigma = 0.004;    ///< Measurement lognormal sigma.
};

/// A performance monitoring counter event.
struct EventDef {
  std::string Name;                ///< Likwid-style event name.
  EventDomain Domain = EventDomain::Core;
  CounterConstraintKind Constraint = CounterConstraintKind::AnyProgrammable;
  SynthesisModel Model;

  /// Which programmable counter slots may count this event, as a bitmask
  /// over slots 0..NumProgrammable-1 (AMD PerfEvtSel-style: some events
  /// only count on specific PMCx registers). 0xFF = any slot, the Intel
  /// default. Ignored for Fixed events.
  uint8_t SlotMask = 0xFF;

  /// \returns true if this event cannot use every programmable slot.
  bool isSlotRestricted() const { return SlotMask != 0xFF; }

  /// \returns true if the synthesis model makes this event additive by
  /// construction (no context share and no floor). The AdditivityChecker
  /// must *discover* this empirically; tests use it as the oracle.
  bool isAdditiveByConstruction() const {
    return Model.NaFraction == 0.0 && Model.ContextFloor == 0.0;
  }
};

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_EVENT_H
