//===- pmc/PlatformEvents.h - Paper PMC selections --------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named PMC selections used by the paper's experiments: the six Class-A
/// model PMCs (Table 2, Haswell) and the PA/PNA nine-event sets (Table 6,
/// Skylake). Registry construction itself is declared in EventRegistry.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_PLATFORMEVENTS_H
#define SLOPE_PMC_PLATFORMEVENTS_H

#include <string>
#include <vector>

namespace slope {
namespace pmc {

/// The six PMCs of Table 2 (X1..X6), widely used in energy predictive
/// models and selected for the Class A experiments, in X-index order.
std::vector<std::string> haswellClassAPmcNames();

/// The nine highly additive PMCs of Table 6 (PA, X1..X9).
std::vector<std::string> skylakePaNames();

/// The nine non-additive but literature-popular PMCs of Table 6 (PNA,
/// Y1..Y9).
std::vector<std::string> skylakePnaNames();

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_PLATFORMEVENTS_H
