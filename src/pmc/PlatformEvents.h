//===- pmc/PlatformEvents.h - Paper PMC selections --------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named PMC selections used by the paper's experiments: the six Class-A
/// model PMCs (Table 2, Haswell) and the PA/PNA nine-event sets (Table 6,
/// Skylake), plus the canonical cross-architecture counter dictionary the
/// Class D transfer experiment uses to intersect event sets across the
/// platform zoo. Registry construction itself is declared in
/// EventRegistry.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_PLATFORMEVENTS_H
#define SLOPE_PMC_PLATFORMEVENTS_H

#include "pmc/EventRegistry.h"
#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {
namespace pmc {

/// The six PMCs of Table 2 (X1..X6), widely used in energy predictive
/// models and selected for the Class A experiments, in X-index order.
std::vector<std::string> haswellClassAPmcNames();

/// The nine highly additive PMCs of Table 6 (PA, X1..X9).
std::vector<std::string> skylakePaNames();

/// The nine non-additive but literature-popular PMCs of Table 6 (PNA,
/// Y1..Y9).
std::vector<std::string> skylakePnaNames();

/// One cross-architecture counter: a canonical name (e.g. "instructions")
/// and the native event-name candidates that realize it per platform, in
/// preference order (Intel, ARM, AMD spellings).
struct CanonicalCounter {
  std::string Canonical;
  std::vector<std::string> Candidates;
};

/// The canonical counter dictionary used by cross-architecture transfer:
/// a fixed-order list of architecture-neutral counters with per-platform
/// native spellings. Not every platform offers every counter (ARM has no
/// divider event), which is what makes cross-platform intersection a real
/// operation.
const std::vector<CanonicalCounter> &canonicalCounters();

/// Resolves canonical counter \p Canonical to the first candidate present
/// in \p Registry. \returns an error for an unknown canonical name or a
/// platform that offers no candidate.
Expected<std::string> resolveCanonicalCounter(const EventRegistry &Registry,
                                              const std::string &Canonical);

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_PLATFORMEVENTS_H
