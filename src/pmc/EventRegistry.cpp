//===- pmc/EventRegistry.cpp - Platform event catalogue ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/EventRegistry.h"

#include "support/Str.h"

#include <numeric>

using namespace slope;
using namespace slope::pmc;

EventId EventRegistry::addEvent(EventDef Def) {
  assert(!hasEvent(Def.Name) && "duplicate event name in registry");
  Events.push_back(std::move(Def));
  return static_cast<EventId>(Events.size() - 1);
}

Expected<EventId> EventRegistry::lookup(const std::string &Name) const {
  for (size_t I = 0; I < Events.size(); ++I)
    if (Events[I].Name == Name)
      return static_cast<EventId>(I);
  return makeError("unknown event '" + Name + "'");
}

bool EventRegistry::hasEvent(const std::string &Name) const {
  for (const EventDef &Def : Events)
    if (Def.Name == Name)
      return true;
  return false;
}

std::vector<EventId> EventRegistry::allEvents() const {
  std::vector<EventId> Ids(Events.size());
  std::iota(Ids.begin(), Ids.end(), EventId{0});
  return Ids;
}

std::vector<EventId>
EventRegistry::findByName(const std::vector<std::string> &NameParts) const {
  std::vector<EventId> Ids;
  for (size_t I = 0; I < Events.size(); ++I) {
    bool All = true;
    for (const std::string &Part : NameParts)
      if (!str::contains(Events[I].Name, Part)) {
        All = false;
        break;
      }
    if (All)
      Ids.push_back(static_cast<EventId>(I));
  }
  return Ids;
}

size_t EventRegistry::countByConstraint(CounterConstraintKind Kind) const {
  size_t Count = 0;
  for (const EventDef &Def : Events)
    if (Def.Constraint == Kind)
      ++Count;
  return Count;
}
