//===- pmc/Activity.cpp - Latent micro-architectural activities ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/Activity.h"

using namespace slope;
using namespace slope::pmc;

const char *pmc::activityKindName(ActivityKind Kind) {
  switch (Kind) {
  case ActivityKind::CoreCycles:
    return "core_cycles";
  case ActivityKind::Instructions:
    return "instructions";
  case ActivityKind::UopsIssued:
    return "uops_issued";
  case ActivityKind::UopsExecuted:
    return "uops_executed";
  case ActivityKind::UopsRetired:
    return "uops_retired";
  case ActivityKind::Port0:
    return "port0";
  case ActivityKind::Port1:
    return "port1";
  case ActivityKind::Port2:
    return "port2";
  case ActivityKind::Port3:
    return "port3";
  case ActivityKind::Port4:
    return "port4";
  case ActivityKind::Port5:
    return "port5";
  case ActivityKind::Port6:
    return "port6";
  case ActivityKind::Port7:
    return "port7";
  case ActivityKind::FpScalarDouble:
    return "fp_scalar_double";
  case ActivityKind::FpVectorDouble:
    return "fp_vector_double";
  case ActivityKind::DivOps:
    return "div_ops";
  case ActivityKind::Loads:
    return "loads";
  case ActivityKind::Stores:
    return "stores";
  case ActivityKind::L1DMisses:
    return "l1d_misses";
  case ActivityKind::L2Requests:
    return "l2_requests";
  case ActivityKind::L2Misses:
    return "l2_misses";
  case ActivityKind::L3Misses:
    return "l3_misses";
  case ActivityKind::DramReads:
    return "dram_reads";
  case ActivityKind::Branches:
    return "branches";
  case ActivityKind::BranchMisses:
    return "branch_misses";
  case ActivityKind::ICacheAccesses:
    return "icache_accesses";
  case ActivityKind::ICacheMisses:
    return "icache_misses";
  case ActivityKind::ITlbMisses:
    return "itlb_misses";
  case ActivityKind::DTlbMisses:
    return "dtlb_misses";
  case ActivityKind::StlbHits:
    return "stlb_hits";
  case ActivityKind::MsUops:
    return "ms_uops";
  case ActivityKind::DsbUops:
    return "dsb_uops";
  case ActivityKind::MiteUops:
    return "mite_uops";
  case ActivityKind::PageFaults:
    return "page_faults";
  case ActivityKind::ContextSwitches:
    return "context_switches";
  case ActivityKind::RefCycles:
    return "ref_cycles";
  }
  assert(false && "unknown activity kind");
  return "?";
}
