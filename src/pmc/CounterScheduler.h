//===- pmc/CounterScheduler.h - PMC collection planning ---------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plans how to collect a set of PMCs across multiple application runs.
/// The PMU has only 4 programmable counter registers (plus 3 fixed ones),
/// and some events are further restricted to sets of 3, 2, or must run
/// alone. This is the mechanism behind the paper's observation that
/// collecting all events takes ~53 runs on Haswell and ~99 on Skylake —
/// and hence why online models must make do with 4 PMCs.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_COUNTERSCHEDULER_H
#define SLOPE_PMC_COUNTERSCHEDULER_H

#include "pmc/EventRegistry.h"

#include <vector>

namespace slope {
namespace pmc {

/// Description of a PMU's counting resources.
struct PmuSpec {
  unsigned NumProgrammable = 4; ///< General-purpose counter registers.
  unsigned NumFixed = 3;        ///< Fixed-function counters.
};

/// One application execution collecting a group of compatible events.
struct CollectionRun {
  std::vector<EventId> Events;
};

/// A complete plan: every requested event appears in exactly one run
/// (fixed-counter events are attached to existing runs when possible).
struct CollectionPlan {
  std::vector<CollectionRun> Runs;

  size_t numRuns() const { return Runs.size(); }

  /// \returns true if every event in \p Requested appears exactly once.
  bool covers(const std::vector<EventId> &Requested) const;
};

/// Plans collection runs for \p Requested events under \p Pmu.
///
/// Grouping strategy: events are bucketed by constraint class; Solo events
/// get singleton runs; Pair/Triple-restricted events fill runs of their
/// class width; unrestricted events pack 4 per run; fixed-counter events
/// ride along on the first runs with spare fixed registers (or get their
/// own run if the plan would otherwise be empty). Events carrying
/// PerfEvtSel-style slot masks (EventDef::SlotMask) only share a run when
/// a legal slot assignment exists.
///
/// \returns an error if \p Requested contains duplicate events, if a
/// fixed-counter event is requested on a PMU without fixed counters, or
/// if an event's slot mask lies outside the PMU's slot budget.
Expected<CollectionPlan> planCollection(const EventRegistry &Registry,
                                        const std::vector<EventId> &Requested,
                                        const PmuSpec &Pmu = PmuSpec());

/// \returns true if the events of \p Run can legally be measured together
/// under \p Pmu (register budget and class restrictions).
bool isFeasibleRun(const EventRegistry &Registry, const CollectionRun &Run,
                   const PmuSpec &Pmu = PmuSpec());

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_COUNTERSCHEDULER_H
