//===- pmc/PlatformEvents.cpp - Haswell/Skylake event catalogues ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Builds the two platform registries with the cardinalities the paper
// reports for Likwid:
//
//   Haswell:  164 events total, 151 significant (counts > 10), needing
//             ~53 runs to collect (4 programmable counters, some events
//             restricted to sets of 3, 2, or solo).
//   Skylake:  385 events total, 323 significant, needing ~99 runs.
//
// The significant-event constraint mix is chosen so the CounterScheduler
// reproduces those run counts exactly:
//
//   Haswell:  3 fixed + 10 solo + 22 pair + 30 triple + 86 general
//             -> 10 + 11 + 10 + 22 = 53 runs.
//   Skylake:  3 fixed +  9 solo + 32 pair + 42 triple + 237 general
//             ->  9 + 16 + 14 + 60 = 99 runs.
//
// Non-additivity parameters of the named events are calibrated against
// Table 2 (Haswell additivity errors of X1..X6) and Table 6 (Skylake
// PA/PNA sets); see the per-event comments.
//
//===----------------------------------------------------------------------===//

#include "pmc/PlatformEvents.h"

#include "pmc/EventRegistry.h"
#include "support/Rng.h"

#include <cassert>

using namespace slope;
using namespace slope::pmc;

namespace {

/// Incrementally assembles a registry while tracking per-constraint quota
/// usage for significant events, then tops the buckets up with generated
/// filler events.
class RegistryAssembler {
public:
  explicit RegistryAssembler(uint64_t Seed) : FillerRng(Seed) {}

  /// Adds a named significant event. \p SlotMask carries PerfEvtSel-style
  /// per-slot restrictions (0xFF = any programmable slot).
  void add(const std::string &Name, EventDomain Domain,
           CounterConstraintKind Constraint, SynthesisModel Model,
           uint8_t SlotMask = 0xFF) {
    EventDef Def;
    Def.Name = Name;
    Def.Domain = Domain;
    Def.Constraint = Constraint;
    Def.Model = std::move(Model);
    Def.SlotMask = SlotMask;
    Registry.addEvent(std::move(Def));
  }

  /// Adds generated significant filler events from \p NamePool until the
  /// constraint bucket \p Kind holds exactly \p Target significant events.
  /// Pool names already present in the registry are skipped.
  void fillBucket(CounterConstraintKind Kind, size_t Target,
                  const std::vector<std::string> &NamePool, size_t &PoolPos) {
    while (Registry.countByConstraint(Kind) < Target) {
      assert(PoolPos < NamePool.size() && "filler name pool exhausted");
      const std::string &Name = NamePool[PoolPos++];
      if (Registry.hasEvent(Name))
        continue;
      EventDef Def;
      Def.Name = Name;
      Def.Domain = pickDomain(Name);
      Def.Constraint = Kind;
      Def.Model = makeFillerModel();
      Registry.addEvent(std::move(Def));
    }
  }

  /// Adds \p Count insignificant events (counts <= 10, non-reproducible;
  /// eliminated by the paper's pre-filter).
  void addInsignificant(const std::vector<std::string> &Names, size_t Count) {
    assert(Count <= Names.size() && "not enough insignificant names");
    for (size_t I = 0; I < Count; ++I) {
      EventDef Def;
      Def.Name = Names[I];
      Def.Domain = EventDomain::Core;
      Def.Constraint = CounterConstraintKind::AnyProgrammable;
      // A handful of stray counts with ~100% run-to-run noise: these fail
      // both the "counts > 10" filter and any reproducibility test.
      Def.Model.ContextFloor = 0.5 + 0.5 * static_cast<double>(I % 3);
      Def.Model.NoiseSigma = 0.6;
      Registry.addEvent(std::move(Def));
    }
  }

  EventRegistry take() { return std::move(Registry); }

private:
  static EventDomain pickDomain(const std::string &Name) {
    if (Name.rfind("UNC_", 0) == 0)
      return EventDomain::Uncore;
    return EventDomain::Core;
  }

  /// Deterministically varied synthesis models for filler events: a
  /// rotating palette of activity mappings with a spread of additivity
  /// characteristics (roughly 60% additive-by-construction).
  SynthesisModel makeFillerModel() {
    static const ActivityKind Palette[] = {
        ActivityKind::UopsIssued,    ActivityKind::UopsExecuted,
        ActivityKind::UopsRetired,   ActivityKind::Loads,
        ActivityKind::Stores,        ActivityKind::L1DMisses,
        ActivityKind::L2Requests,    ActivityKind::L2Misses,
        ActivityKind::L3Misses,      ActivityKind::DramReads,
        ActivityKind::Branches,      ActivityKind::BranchMisses,
        ActivityKind::ICacheAccesses,ActivityKind::ICacheMisses,
        ActivityKind::DTlbMisses,    ActivityKind::MsUops,
        ActivityKind::DsbUops,       ActivityKind::MiteUops,
        ActivityKind::Instructions,  ActivityKind::CoreCycles,
    };
    constexpr size_t PaletteSize = sizeof(Palette) / sizeof(Palette[0]);

    SynthesisModel Model;
    size_t Primary = FillerIndex % PaletteSize;
    Model.Coeffs.push_back(
        {Palette[Primary], 0.05 + 1.2 * FillerRng.uniform()});
    if (FillerIndex % 3 == 0)
      Model.Coeffs.push_back({Palette[(Primary + 7) % PaletteSize],
                              0.02 + 0.3 * FillerRng.uniform()});
    switch (FillerIndex % 5) {
    case 0:
    case 1:
    case 2:
      // Additive by construction; tight measurement noise.
      Model.NoiseSigma = 0.002 + 0.006 * FillerRng.uniform();
      break;
    case 3:
      // Mildly context-coupled: fails 5% additivity on branchy suites.
      Model.NaFraction = 0.1 + 0.2 * FillerRng.uniform();
      Model.NaBoundaryBeta = 0.5 + 0.5 * FillerRng.uniform();
      Model.NaJitterSigma = 0.03;
      Model.NoiseSigma = 0.01;
      break;
    case 4:
      // Strongly context-dominated: non-additive everywhere.
      Model.NaFraction = 0.5 + 1.0 * FillerRng.uniform();
      Model.NaBoundaryBeta = 0.6 + 0.4 * FillerRng.uniform();
      Model.IntensityFloor = 0.4 + 0.4 * FillerRng.uniform();
      Model.NaJitterSigma = 0.08;
      Model.NoiseSigma = 0.03;
      break;
    }
    ++FillerIndex;
    return Model;
  }

  EventRegistry Registry;
  Rng FillerRng;
  size_t FillerIndex = 0;
};

/// Generates a large pool of realistic Likwid-style event names used to
/// top up the constraint buckets (offcore response matrix, uncore CBo and
/// IMC boxes, stall/activity cycles, retirement breakdowns).
std::vector<std::string> makeFillerNamePool(bool Skylake) {
  std::vector<std::string> Pool;

  static const char *Requests[] = {
      "DMND_DATA_RD", "DMND_RFO",      "DMND_CODE_RD", "PF_L2_DATA_RD",
      "PF_L2_RFO",    "PF_L3_DATA_RD", "ALL_READS",    "ALL_RFO",
      "ALL_PF",       "STRM_ST"};
  static const char *Responses[] = {"L3_HIT", "L3_MISS", "LOCAL_DRAM",
                                    "ANY", "SNOOP_HITM"};
  for (int Unit = 0; Unit < 2; ++Unit)
    for (const char *Req : Requests)
      for (const char *Resp : Responses)
        Pool.push_back("OFFCORE_RESPONSE_" + std::to_string(Unit) + "_" +
                       std::string(Req) + "_" + Resp);

  int NumCbo = Skylake ? 22 : 12;
  for (int Box = 0; Box < NumCbo; ++Box)
    for (const char *Ev : {"LLC_LOOKUP_ANY", "LLC_VICTIMS_M", "RING_BL_USED"})
      Pool.push_back("UNC_CBO" + std::to_string(Box) + "_" + Ev);

  for (int Chan = 0; Chan < 4; ++Chan)
    for (const char *Ev : {"CAS_COUNT_RD", "CAS_COUNT_WR", "PRE_COUNT_MISS",
                           "ACT_COUNT"})
      Pool.push_back("UNC_IMC" + std::to_string(Chan) + "_" + Ev);

  static const char *CycleKinds[] = {
      "STALLS_L1D_MISS",  "STALLS_L2_MISS", "STALLS_L3_MISS",
      "STALLS_MEM_ANY",   "STALLS_TOTAL",   "CYCLES_L1D_MISS",
      "CYCLES_L2_MISS",   "CYCLES_MEM_ANY", "CYCLES_NO_EXECUTE"};
  for (const char *Kind : CycleKinds)
    Pool.push_back(std::string("CYCLE_ACTIVITY_") + Kind);

  static const char *ExeKinds[] = {"1_PORTS_UTIL", "2_PORTS_UTIL",
                                   "3_PORTS_UTIL", "4_PORTS_UTIL",
                                   "BOUND_ON_STORES", "EXE_BOUND_0_PORTS"};
  for (const char *Kind : ExeKinds)
    Pool.push_back(std::string("EXE_ACTIVITY_") + Kind);

  static const char *RsKinds[] = {"EMPTY_CYCLES", "EMPTY_END", "ANY_DISPATCH"};
  for (const char *Kind : RsKinds)
    Pool.push_back(std::string("RS_EVENTS_") + Kind);

  static const char *LsdKinds[] = {"UOPS", "CYCLES_ACTIVE", "CYCLES_4_UOPS"};
  for (const char *Kind : LsdKinds)
    Pool.push_back(std::string("LSD_") + Kind);

  static const char *RetKinds[] = {
      "TOTAL_CYCLES",   "STALL_CYCLES", "MACRO_FUSED",
      "RETIRE_SLOTS",   "MS_CYCLES",    "FP_ARITH_CYCLES"};
  for (const char *Kind : RetKinds)
    Pool.push_back(std::string("UOPS_RETIRED_") + Kind);

  static const char *MemLoad[] = {
      "L1_HIT", "L1_MISS", "L2_HIT", "L2_MISS", "L3_HIT", "FB_HIT",
      "LOCAL_DRAM"};
  for (const char *Kind : MemLoad)
    Pool.push_back(std::string("MEM_LOAD_RETIRED_") + Kind);

  static const char *Dsb[] = {"CYCLES_ANY", "CYCLES_4_UOPS", "MISS_ANY",
                              "FILL_DROPPED"};
  for (const char *Kind : Dsb)
    Pool.push_back(std::string("DSB2MITE_") + Kind);

  static const char *L2Trans[] = {"DEMAND_DATA_RD", "RFO", "L1D_WB",
                                  "L2_FILL", "ALL_REQUESTS"};
  for (const char *Kind : L2Trans)
    Pool.push_back(std::string("L2_TRANS_") + Kind);

  static const char *L2Lines[] = {"SILENT", "NON_SILENT", "USELESS_HWPF",
                                  "ALL"};
  for (const char *Kind : L2Lines)
    Pool.push_back(std::string("L2_LINES_OUT_") + Kind);

  static const char *Br[] = {"CONDITIONAL", "NEAR_CALL", "NEAR_RETURN",
                             "NEAR_TAKEN", "NOT_TAKEN", "FAR_BRANCH"};
  for (const char *Kind : Br)
    Pool.push_back(std::string("BR_INST_RETIRED_") + Kind);
  for (const char *Kind : {"CONDITIONAL", "NEAR_CALL", "NEAR_TAKEN"})
    Pool.push_back(std::string("BR_MISP_RETIRED_") + Kind);

  static const char *Tlb[] = {"WALK_COMPLETED", "WALK_PENDING",
                              "WALK_ACTIVE", "STLB_HIT_4K"};
  for (const char *Kind : Tlb) {
    Pool.push_back(std::string("DTLB_LOAD_MISSES_") + Kind);
    Pool.push_back(std::string("DTLB_STORE_MISSES_") + Kind);
  }

  static const char *Sw[] = {"MINOR_FAULTS", "MAJOR_FAULTS", "CPU_MIGRATIONS",
                             "ALIGNMENT_FAULTS"};
  for (const char *Kind : Sw)
    Pool.push_back(std::string("SW_") + Kind);

  if (Skylake) {
    // Skylake's much larger catalogue: per-port cycle breakdowns, PEBS
    // frontend retirement latencies, and power-license counters.
    for (int Port = 0; Port < 8; ++Port)
      for (const char *Kind : {"CYCLES", "CORE_CYCLES"})
        Pool.push_back("UOPS_DISPATCHED_PORT_" + std::to_string(Port) + "_" +
                       Kind);
    static const char *Fe[] = {"DSB_MISS",      "L1I_MISS",   "ITLB_MISS",
                               "STLB_MISS",     "LATENCY_GE_8",
                               "LATENCY_GE_16", "LATENCY_GE_32"};
    for (const char *Kind : Fe)
      Pool.push_back(std::string("FRONTEND_RETIRED_") + Kind);
    for (const char *Kind : {"LVL0_TURBO_LICENSE", "LVL1_TURBO_LICENSE",
                             "LVL2_TURBO_LICENSE", "THROTTLE"})
      Pool.push_back(std::string("CORE_POWER_") + Kind);
    static const char *IdqVariants[] = {
        "DSB_CYCLES_ANY",       "DSB_CYCLES_OK",   "MITE_CYCLES_ANY",
        "MITE_CYCLES_OK",       "MS_CYCLES_ANY",   "MS_SWITCHES",
        "ALL_MITE_CYCLES_ANY",  "ALL_MITE_CYCLES_4_UOPS",
        "ALL_DSB_CYCLES_ANY",   "ALL_DSB_CYCLES_4_UOPS"};
    for (const char *Kind : IdqVariants)
      Pool.push_back(std::string("IDQ_") + Kind);
    for (int Box = 0; Box < 10; ++Box)
      for (const char *Ev : {"TXR_INSERTS", "RING_AD_USED", "RING_AK_USED"})
        Pool.push_back("UNC_CHA" + std::to_string(Box) + "_" + Ev);
    static const char *Pebs[] = {"LOAD_LATENCY_GT_4", "LOAD_LATENCY_GT_8",
                                 "LOAD_LATENCY_GT_16", "LOAD_LATENCY_GT_32",
                                 "LOAD_LATENCY_GT_64", "LOAD_LATENCY_GT_128"};
    for (const char *Kind : Pebs)
      Pool.push_back(std::string("MEM_TRANS_RETIRED_") + Kind);
  }

  return Pool;
}

/// Names for events that fail the "counts > 10" significance filter:
/// transactional memory, SGX, and ISA extensions absent from the machine.
std::vector<std::string> makeInsignificantNamePool() {
  std::vector<std::string> Pool;
  static const char *Rtm[] = {"ABORTED", "ABORTED_MEM", "ABORTED_TIMER",
                              "ABORTED_UNFRIENDLY", "ABORTED_MEMTYPE",
                              "ABORTED_EVENTS", "COMMIT", "START"};
  for (const char *Kind : Rtm)
    Pool.push_back(std::string("RTM_RETIRED_") + Kind);
  static const char *Hle[] = {"ABORTED", "ABORTED_MEM", "ABORTED_TIMER",
                              "COMMIT", "START"};
  for (const char *Kind : Hle)
    Pool.push_back(std::string("HLE_RETIRED_") + Kind);
  static const char *TxMem[] = {
      "ABORT_CONFLICT", "ABORT_CAPACITY", "ABORT_HLE_STORE_TO_ELIDED_LOCK",
      "ABORT_HLE_ELISION_BUFFER_NOT_EMPTY", "ABORT_HLE_ELISION_BUFFER_FULL"};
  for (const char *Kind : TxMem)
    Pool.push_back(std::string("TX_MEM_") + Kind);
  static const char *TxExec[] = {"MISC1", "MISC2", "MISC3", "MISC4", "MISC5"};
  for (const char *Kind : TxExec)
    Pool.push_back(std::string("TX_EXEC_") + Kind);
  static const char *Misc[] = {
      "FP_ASSIST_ANY",          "FP_ASSIST_SIMD_INPUT",
      "FP_ASSIST_SIMD_OUTPUT",  "FP_ASSIST_X87_INPUT",
      "FP_ASSIST_X87_OUTPUT",   "MACHINE_CLEARS_SMC",
      "MACHINE_CLEARS_MASKMOV", "MACHINE_CLEARS_MEMORY_ORDERING",
      "SGX_ENCLS_ANY",          "SGX_ENCLU_ANY",
      "AVX512_VL_TRANSITIONS",  "X87_ASSIST_SIMD",
      "MISALIGN_MEM_REF_LOADS", "MISALIGN_MEM_REF_STORES",
      "LOCK_CYCLES_SPLIT_LOCK", "ILD_STALL_LCP",
      "PARTIAL_RAT_STALLS_SCOREBOARD",
      "LOAD_BLOCKS_NO_SR",      "LOAD_BLOCKS_STORE_FORWARD",
      "OTHER_ASSISTS_ANY",      "HW_INTERRUPTS_RECEIVED",
      "BACLEARS_ANY_RARE",      "DECODE_ICACHE_STALLS",
      "IDQ_EMPTY_RARE",         "TOPDOWN_BAD_SPEC_RARE",
      "UOP_DROPPING_RARE",      "INT_MISC_CLEARS_COUNT",
      "INT_MISC_RECOVERY_CYCLES_RARE", "ARITH_FPU_DIV_ACTIVE_RARE",
      "CPU_CLK_UNHALTED_ONE_THREAD_ACTIVE_RARE",
      "SGX_EPC_PAGE_EVICT",     "SGX_EPC_PAGE_LOAD",
      "PKG_CSTATE_DEMOTIONS",   "CORE_CSTATE_DEMOTIONS",
      "SMI_RECEIVED",           "THERMAL_TRIP_EVENTS",
      "MCA_CORRECTED_ERRORS",   "BUS_LOCK_CYCLES",
      "SPLIT_STORES_RARE",      "SPLIT_LOADS_RARE",
      "AVX512_FMA_RARE",        "AMX_TILE_LOADS_RARE"};
  for (const char *Kind : Misc)
    Pool.push_back(Kind);
  return Pool;
}

/// Shorthand for a one-term linear mapping.
SynthesisModel simple(ActivityKind Kind, double Weight = 1.0,
                      double NoiseSigma = 0.004) {
  SynthesisModel Model;
  Model.Coeffs.push_back({Kind, Weight});
  Model.NoiseSigma = NoiseSigma;
  return Model;
}

/// Shorthand for a context-coupled (non-additive) mapping; see Event.h
/// for the semantics of the parameters.
SynthesisModel contextCoupled(std::vector<ActivityTerm> Coeffs,
                              double NaFraction, double Beta,
                              double IntensityFloor = 0.0,
                              double Jitter = 0.03, double Noise = 0.01) {
  SynthesisModel Model;
  Model.Coeffs = std::move(Coeffs);
  Model.NaFraction = NaFraction;
  Model.NaBoundaryBeta = Beta;
  Model.IntensityFloor = IntensityFloor;
  Model.NaJitterSigma = Jitter;
  Model.NoiseSigma = Noise;
  return Model;
}

void addFixedCounters(RegistryAssembler &A) {
  A.add("INSTR_RETIRED_ANY", EventDomain::Core, CounterConstraintKind::Fixed,
        simple(ActivityKind::Instructions, 1.0, 0.002));
  A.add("CPU_CLK_UNHALTED_CORE", EventDomain::Core,
        CounterConstraintKind::Fixed,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
  A.add("CPU_CLK_UNHALTED_REF", EventDomain::Core,
        CounterConstraintKind::Fixed,
        contextCoupled({{ActivityKind::RefCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
}

/// ARMv7 PMU filler names (shared by the A7 and A15 builders so the A15
/// catalogue stays a strict name superset of the A7's).
std::vector<std::string> makeArmFillerNamePool() {
  return {"L1D_CACHE_WB_VICTIM", "L1I_CACHE",          "L1D_TLB_ACCESS",
          "BR_IMMED_RETIRED",    "BR_RETURN_RETIRED",  "UNALIGNED_LDST_RETIRED",
          "L1D_CACHE_ALLOCATE",  "L2D_CACHE_ALLOCATE", "LDST_SPEC_SHARED",
          "DMB_SPEC_SHARED",     "DSB_SPEC_SHARED",    "ISB_SPEC_SHARED",
          "TLB_FLUSH",           "CID_WRITE_RETIRED",  "TTBR_WRITE_RETIRED",
          "BUS_READ_ACCESS",     "BUS_WRITE_ACCESS",   "EXT_MEM_REQUEST",
          "PREFETCH_LINEFILL",   "ICACHE_DEP_STALL",   "DCACHE_DEP_STALL",
          "MAIN_TLB_MISS_STALL", "STREX_PASSED",       "STREX_FAILED",
          "DATA_EVICTION",       "ISSUE_EMPTY_CYCLES", "ISSUE_NO_DISPATCH",
          "INT_REG_WRITE",       "NEON_REG_WRITE",     "PLD_LINEFILL",
          "WRITE_STALL",         "READ_ALLOC_MODE"};
}

/// ARM events below the significance filter on this board (exceptions
/// and error counters that barely fire).
std::vector<std::string> makeArmInsignificantNamePool() {
  return {"EXC_UNDEF",  "EXC_SVC",          "EXC_IRQ",
          "EXC_FIQ",    "EXC_HVC",          "MEM_ERROR",
          "BUS_ERROR",  "L1D_CACHE_PARITY", "CCI_SNOOP_ERROR",
          "WDT_RESETS"};
}

/// Adds the named ARMv7 architectural events common to both clusters:
/// the lluchs per-cluster model PMCs plus the usual PMUv2 set.
void addArmCommonEvents(RegistryAssembler &A) {
  using CC = CounterConstraintKind;
  // PMCCNTR is the single fixed cycle counter on both clusters.
  A.add("PMCCNTR", EventDomain::Core, CC::Fixed,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
  A.add("INST_RETIRED", EventDomain::Core, CC::AnyProgrammable,
        simple(ActivityKind::Instructions, 1.0, 0.002));
  // The lluchs A7 model PMCs: branch mispredicts, dTLB refills, L2
  // refills and writebacks (plus PMCCNTR above).
  A.add("BR_MIS_PRED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.40, 0.8, 0.4,
                       0.05, 0.015));
  A.add("L1D_TLB_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));
  A.add("L2D_CACHE_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("L2D_CACHE_WB", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Misses, 0.45},
                        {ActivityKind::Stores, 0.01}},
                       0.16, 0.9, 0.1, 0.02, 0.008));
  // Loads/stores/branches: mildly coupled, floor 0 (additive for tight
  // kernels, like their Intel counterparts).
  A.add("LD_RETIRED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.08, 0.8, 0.0, 0.015,
                       0.004));
  A.add("ST_RETIRED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.08, 0.8, 0.0, 0.015,
                       0.004));
  A.add("PC_WRITE_RETIRED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("L1I_CACHE_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75, 0.5,
                       0.05, 0.01));
  A.add("L1D_CACHE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0},
                        {ActivityKind::Stores, 1.0}},
                       0.08, 0.8, 0.1, 0.015, 0.004));
  A.add("L1D_CACHE_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L1DMisses, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.006));
  A.add("L2D_CACHE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("MEM_ACCESS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0},
                        {ActivityKind::Stores, 1.0}},
                       0.09, 0.8, 0.1, 0.015, 0.005));
  A.add("ITLB_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ITlbMisses, 1.0}}, 1.2, 0.9, 0.7,
                       0.08, 0.03));
  A.add("BR_PRED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 0.97}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  // Bus/CCI events share a probe port: pair-restricted.
  A.add("BUS_ACCESS", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 1.0}}, 0.15, 0.8, 0.1,
                       0.025, 0.008));
  A.add("BUS_CYCLES", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::RefCycles, 0.5}}, 0.12, 0.6, 0.3,
                       0.02, 0.008));
  // Software-visible events measured alone on this board.
  A.add("EXC_TAKEN", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("SW_INCR", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));
}

/// AMD Zen2 filler names (PMCx core events plus DF/L3 uncore boxes).
std::vector<std::string> makeAmdFillerNamePool() {
  std::vector<std::string> Pool;
  static const char *LsKinds[] = {
      "BAD_STATUS_2",     "DC_ACCESSES",      "MAB_ALLOC_PIPE",
      "REFILLS_FROM_SYS", "L1_D_TLB_MISS_4K", "L1_D_TLB_MISS_2M",
      "MISAL_ACCESSES",   "PREF_INSTR_DISP",  "INEF_SW_PREF",
      "SW_PF_DC_FILLS",   "HW_PF_DC_FILLS",   "ALLOC_MAB_COUNT"};
  for (const char *Kind : LsKinds)
    Pool.push_back(std::string("LS_") + Kind);
  static const char *IcKinds[] = {"FW32", "FW32_MISS", "CACHE_FILL_L2",
                                  "CACHE_FILL_SYS", "CACHE_INVAL_FILL",
                                  "OC_MODE_SWITCH"};
  for (const char *Kind : IcKinds)
    Pool.push_back(std::string("IC_") + Kind);
  static const char *BpKinds[] = {"L1_BTB_CORRECT", "L2_BTB_CORRECT",
                                  "DYN_IND_PRED", "DE_REDIRECT",
                                  "L1_TLB_FETCH_HIT", "TLB_RELOAD"};
  for (const char *Kind : BpKinds)
    Pool.push_back(std::string("BP_") + Kind);
  static const char *DeKinds[] = {"DIS_UOPS_FROM_DECODER",
                                  "DIS_UOPS_FROM_OPCACHE",
                                  "DIS_DISPATCH_TOKEN_STALLS0",
                                  "DIS_DISPATCH_TOKEN_STALLS1",
                                  "MS_NOP_UOPS", "UOP_QUEUE_EMPTY"};
  for (const char *Kind : DeKinds)
    Pool.push_back(std::string("DE_") + Kind);
  static const char *ExKinds[] = {
      "RET_COND",          "RET_COND_MISP",  "RET_BRN_TKN",
      "RET_BRN_TKN_MISP",  "RET_BRN_FAR",    "RET_BRN_IND_MISP",
      "RET_NEAR_RET",      "RET_NEAR_RET_MISPRED", "RET_MSPRD_BRNCH_INSTR_DIR",
      "RET_MMX_FP_INSTR",  "RET_FUSED_INSTR", "DIV_BUSY_CYCLES"};
  for (const char *Kind : ExKinds)
    Pool.push_back(std::string("EX_") + Kind);
  static const char *L2Kinds[] = {
      "REQUEST_G1_RD_BLK_L",   "REQUEST_G1_RD_BLK_X", "REQUEST_G1_LS_RD_BLK_C_S",
      "REQUEST_G1_CACHEABLE_IC", "WCB_REQ_CL_ZERO",   "WCB_REQ_WCB_CLOSE",
      "LATENCY_L2_FILL_BUSY",  "PF_HIT_L2",           "PF_MISS_L2_HIT_L3",
      "PF_MISS_L2_L3"};
  for (const char *Kind : L2Kinds)
    Pool.push_back(std::string("L2_") + Kind);
  for (int Box = 0; Box < 8; ++Box)
    for (const char *Ev : {"L3_LOOKUP_STATE", "L3_XI_SAMPLED_LATENCY"})
      Pool.push_back("UNC_CCX" + std::to_string(Box) + "_" + Ev);
  for (int Cs = 0; Cs < 4; ++Cs)
    for (const char *Ev : {"UMC_MEM_READ", "UMC_MEM_WRITE"})
      Pool.push_back("UNC_DF_CS" + std::to_string(Cs) + "_" + Ev);
  return Pool;
}

/// AMD events below the significance filter (SMM, SCF and error paths).
std::vector<std::string> makeAmdInsignificantNamePool() {
  return {"LS_SMI_RX",          "LS_INT_TAKEN",      "LS_STLF_NO_DATA",
          "IC_SMM_ENTER",       "EX_SMM_EXIT",       "DE_MS_STALL_RARE",
          "L2_FENCE_PENDING",   "UNC_DF_ECC_ERRORS", "MCA_POISON_CONSUMED",
          "CPUID_SERIALIZING"};
}

} // namespace

EventRegistry pmc::buildHaswellRegistry() {
  RegistryAssembler A(/*Seed=*/0x4A51ULL);
  addFixedCounters(A);

  // --- The six Class-A model PMCs (Table 2). NaFraction/Beta pairs are
  // calibrated so the additivity test's maximum error over the diverse
  // compound suite lands at the paper's values: with suite context
  // intensities reaching ~1.2, maxError ~= F*1.2*Beta / (1 + F*1.2).
  using CC = CounterConstraintKind;
  A.add("IDQ_MITE_UOPS", EventDomain::Core, CC::AnyProgrammable, // 13%
        contextCoupled({{ActivityKind::MiteUops, 1.0}}, 0.13, 1.0, 0.1,
                       0.03, 0.008));
  A.add("IDQ_MS_UOPS", EventDomain::Core, CC::AnyProgrammable, // 37%
        contextCoupled({{ActivityKind::MsUops, 1.0}}, 0.50, 1.0, 0.6, 0.05,
                       0.01));
  A.add("ICACHE_64B_IFTAG_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75, // 36%
                       0.5, 0.05, 0.01));
  A.add("ARITH_DIVIDER_COUNT", EventDomain::Core, CC::AnyProgrammable, // 80%
        contextCoupled({{ActivityKind::DivOps, 1.0}}, 4.0, 1.0, 0.8, 0.08,
                       0.02));
  A.add("L2_RQSTS_MISS", EventDomain::Core, CC::AnyProgrammable, // 14%
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("UOPS_EXECUTED_PORT_PORT_6", EventDomain::Core,
        CC::AnyProgrammable, // 10%
        contextCoupled({{ActivityKind::Port6, 1.0}}, 0.10, 1.0, 0.1, 0.02,
                       0.005));

  // --- Remaining execution ports.
  static const ActivityKind PortKinds[] = {
      ActivityKind::Port0, ActivityKind::Port1, ActivityKind::Port2,
      ActivityKind::Port3, ActivityKind::Port4, ActivityKind::Port5,
      ActivityKind::Port7};
  static const char *PortNames[] = {
      "UOPS_EXECUTED_PORT_PORT_0", "UOPS_EXECUTED_PORT_PORT_1",
      "UOPS_EXECUTED_PORT_PORT_2", "UOPS_EXECUTED_PORT_PORT_3",
      "UOPS_EXECUTED_PORT_PORT_4", "UOPS_EXECUTED_PORT_PORT_5",
      "UOPS_EXECUTED_PORT_PORT_7"};
  for (size_t I = 0; I < 7; ++I)
    A.add(PortNames[I], EventDomain::Core, CC::AnyProgrammable,
          contextCoupled({{PortKinds[I], 1.0}}, 0.06 + 0.01 * I, 0.8, 0.1,
                         0.02, 0.005));

  // --- Frontend / uop flow.
  A.add("UOPS_ISSUED_ANY", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsIssued, 1.0}}, 0.06, 0.8, 0.1,
                       0.015, 0.004));
  A.add("UOPS_EXECUTED_CORE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsExecuted, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("UOPS_RETIRED_ALL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsRetired, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("IDQ_DSB_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 1.0}}, 0.08, 0.8, 0.1, 0.02,
                       0.006));
  A.add("ICACHE_ACCESSES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheAccesses, 1.0}}, 0.30, 0.7,
                       0.3, 0.04, 0.01));

  // --- Memory hierarchy (core side).
  A.add("L2_RQSTS_REFERENCES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("MEM_UOPS_RETIRED_ALL_LOADS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.08, 0.8, 0.1, 0.015,
                       0.004));
  A.add("MEM_UOPS_RETIRED_ALL_STORES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.08, 0.8, 0.1, 0.015,
                       0.004));

  // --- Floating point and branches.
  A.add("FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0}}, 0.07, 0.8,
                       0.1, 0.015, 0.004));
  A.add("AVX_INSTS_ALL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpVectorDouble, 1.0}}, 0.06, 0.8,
                       0.1, 0.015, 0.004));
  A.add("BR_INST_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("BR_MISP_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.40, 0.8, 0.4,
                       0.05, 0.015));

  // --- TLBs.
  A.add("ITLB_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ITlbMisses, 1.0}}, 1.2, 0.9, 0.7,
                       0.08, 0.03));
  A.add("DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));

  // --- Uncore (pair-restricted on this PMU).
  A.add("LLC_REFERENCES", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("LLC_MISSES", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 1.0}}, 0.15, 0.8, 0.1,
                       0.025, 0.008));
  A.add("LLC_LOOKUP_ANY_REQUEST", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.05}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("DRAM_CAS_COUNT_RD", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("DRAM_CAS_COUNT_WR", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 0.4}}, 0.12, 0.8, 0.1,
                       0.02, 0.01));

  // --- PEBS-assisted load breakdowns (triple-restricted).
  A.add("MEM_LOAD_UOPS_RETIRED_L1_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::Loads, 0.95}}, 0.10, 0.8, 0.1, 0.02,
                       0.006));
  A.add("MEM_LOAD_UOPS_RETIRED_L2_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L1DMisses, 0.8}}, 0.15, 0.8, 0.1,
                       0.03, 0.01));
  A.add("MEM_LOAD_UOPS_RETIRED_L3_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.8}}, 0.18, 0.8, 0.1,
                       0.03, 0.01));
  A.add("MEM_LOAD_UOPS_RETIRED_L3_MISS", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L3Misses, 0.8}}, 0.20, 0.8, 0.1,
                       0.03, 0.012));
  A.add("OFFCORE_REQUESTS_ALL_DATA_RD", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.1}}, 0.15, 0.8, 0.1,
                       0.025, 0.01));

  // --- Software events (perf-style; measured alone on this setup).
  A.add("PAGE_FAULTS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("CONTEXT_SWITCHES", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));
  A.add("CPU_MIGRATIONS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 0.05}}, 2.0, 0.9,
                       0.9, 0.3, 0.15));

  // --- Fill the constraint buckets to the Haswell quotas (see file
  // header): 10 solo, 22 pair, 30 triple, 86 general significant events.
  std::vector<std::string> Pool = makeFillerNamePool(/*Skylake=*/false);
  size_t PoolPos = 0;
  A.fillBucket(CC::Solo, 10, Pool, PoolPos);
  A.fillBucket(CC::PairOnly, 22, Pool, PoolPos);
  A.fillBucket(CC::TripleOnly, 30, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 86, Pool, PoolPos);

  // --- 13 insignificant events: 164 total, 151 significant.
  A.addInsignificant(makeInsignificantNamePool(), 13);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 164 && "Haswell registry must offer 164 events");
  return Registry;
}

EventRegistry pmc::buildSkylakeRegistry() {
  RegistryAssembler A(/*Seed=*/0x5C7BULL);
  addFixedCounters(A);

  using CC = CounterConstraintKind;
  // --- PA: the nine highly additive PMCs of Table 6 (X1..X9). Their
  // context coupling has IntensityFloor 0, so for MKL DGEMM/FFT (context
  // intensity ~0.03) the additivity error is far below 1%, while the
  // diverse suite (intensity up to ~1.2) still pushes them past the 5%
  // tolerance — matching the paper's app-specific additivity findings.
  A.add("UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsRetired, 0.16}}, 0.18, 0.8, 0.0,
                       0.015, 0.003));
  A.add("FP_ARITH_INST_RETIRED_DOUBLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0},
                        {ActivityKind::FpVectorDouble, 1.0}},
                       0.10, 1.0, 0.0, 0.015, 0.003));
  A.add("MEM_INST_RETIRED_ALL_STORES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.15, 0.8, 0.0, 0.015,
                       0.003));
  A.add("UOPS_EXECUTED_CORE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsExecuted, 1.0}}, 0.12, 0.9, 0.0,
                       0.015, 0.003));
  A.add("UOPS_DISPATCHED_PORT_PORT_4", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Port4, 1.0}}, 0.10, 1.0, 0.0, 0.015,
                       0.003));
  A.add("IDQ_DSB_CYCLES_6_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.13}}, 0.20, 0.7, 0.0,
                       0.015, 0.003));
  A.add("IDQ_ALL_DSB_CYCLES_5_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.17}}, 0.18, 0.8, 0.0,
                       0.015, 0.003));
  A.add("IDQ_ALL_CYCLES_6_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.12},
                        {ActivityKind::MiteUops, 0.08}},
                       0.15, 0.9, 0.0, 0.015, 0.003));
  A.add("MEM_LOAD_RETIRED_L3_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L3Misses, 0.8}}, 0.20, 0.8, 0.0,
                       0.015, 0.003));

  // --- PNA: nine non-additive but literature-popular PMCs (Y1..Y9).
  // IntensityFloor >= 0.5 keeps them non-additive even for DGEMM/FFT:
  // their context is self-generated (microcode, code footprint, snoops).
  A.add("ICACHE_64B_IFTAG_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75,
                       0.55, 0.15, 0.04));
  A.add("CPU_CLOCK_THREAD_UNHALTED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.30, 0.7, 0.5,
                       0.12, 0.03));
  A.add("BR_MISP_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.50, 0.9, 0.6,
                       0.15, 0.04));
  A.add("MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS", EventDomain::Core,
        CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.015}}, 1.5, 0.8, 0.6,
                       0.35, 0.12));
  A.add("FRONTEND_RETIRED_L2_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.3}}, 0.9, 0.7, 0.5,
                       0.20, 0.06));
  A.add("ITLB_MISSES_STLB_HIT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::StlbHits, 0.5}}, 1.5, 0.9, 0.7, 0.25,
                       0.08));
  A.add("L2_TRANS_CODE_RD", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.8},
                        {ActivityKind::L2Requests, 0.008}},
                       0.7, 0.8, 0.5, 0.18, 0.05));
  A.add("IDQ_MS_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::MsUops, 1.0}}, 0.5, 1.0, 0.6, 0.15,
                       0.04));
  A.add("ARITH_DIVIDER_COUNT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DivOps, 1.0}}, 3.0, 1.0, 0.7, 0.20,
                       0.05));

  // --- Additional named Skylake core events.
  A.add("UOPS_ISSUED_ANY", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsIssued, 1.0}}, 0.08, 0.8, 0.0,
                       0.015, 0.004));
  A.add("MEM_INST_RETIRED_ALL_LOADS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.10, 0.8, 0.0, 0.015,
                       0.004));
  A.add("IDQ_MITE_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::MiteUops, 1.0}}, 0.13, 1.0, 0.1,
                       0.03, 0.008));
  A.add("IDQ_DSB_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 1.0}}, 0.09, 0.8, 0.0,
                       0.02, 0.006));
  A.add("L2_RQSTS_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("L2_RQSTS_REFERENCES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("BR_INST_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("ICACHE_64B_IFTAG_HIT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheAccesses, 0.98}}, 0.25, 0.7,
                       0.3, 0.03, 0.008));
  A.add("FP_ARITH_INST_RETIRED_SCALAR_SINGLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 0.05}}, 0.2, 0.8,
                       0.2, 0.05, 0.02));
  A.add("DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));
  static const ActivityKind SkxPortKinds[] = {
      ActivityKind::Port0, ActivityKind::Port1, ActivityKind::Port2,
      ActivityKind::Port3, ActivityKind::Port5, ActivityKind::Port6,
      ActivityKind::Port7};
  static const char *SkxPortNames[] = {
      "UOPS_DISPATCHED_PORT_PORT_0", "UOPS_DISPATCHED_PORT_PORT_1",
      "UOPS_DISPATCHED_PORT_PORT_2", "UOPS_DISPATCHED_PORT_PORT_3",
      "UOPS_DISPATCHED_PORT_PORT_5", "UOPS_DISPATCHED_PORT_PORT_6",
      "UOPS_DISPATCHED_PORT_PORT_7"};
  for (size_t I = 0; I < 7; ++I)
    A.add(SkxPortNames[I], EventDomain::Core, CC::AnyProgrammable,
          contextCoupled({{SkxPortKinds[I], 1.0}}, 0.07 + 0.01 * I, 0.8,
                         0.1, 0.02, 0.005));

  // --- PEBS load breakdown (triple-restricted).
  A.add("MEM_LOAD_RETIRED_L2_MISS_PS", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.9}}, 0.18, 0.8, 0.1,
                       0.03, 0.01));

  // --- Software events.
  A.add("PAGE_FAULTS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("CONTEXT_SWITCHES", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));

  // --- Fill to the Skylake quotas (see file header): 9 solo, 32 pair,
  // 42 triple, 237 general significant events.
  std::vector<std::string> Pool = makeFillerNamePool(/*Skylake=*/true);
  size_t PoolPos = 0;
  A.fillBucket(CC::Solo, 9, Pool, PoolPos);
  A.fillBucket(CC::PairOnly, 32, Pool, PoolPos);
  A.fillBucket(CC::TripleOnly, 42, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 237, Pool, PoolPos);

  // --- 62 insignificant events: 385 total, 323 significant.
  A.addInsignificant(makeInsignificantNamePool(), 62);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 385 && "Skylake registry must offer 385 events");
  return Registry;
}

std::vector<std::string> pmc::haswellClassAPmcNames() {
  return {"IDQ_MITE_UOPS",       "IDQ_MS_UOPS",
          "ICACHE_64B_IFTAG_MISS", "ARITH_DIVIDER_COUNT",
          "L2_RQSTS_MISS",       "UOPS_EXECUTED_PORT_PORT_6"};
}

std::vector<std::string> pmc::skylakePaNames() {
  return {"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC",
          "FP_ARITH_INST_RETIRED_DOUBLE",
          "MEM_INST_RETIRED_ALL_STORES",
          "UOPS_EXECUTED_CORE",
          "UOPS_DISPATCHED_PORT_PORT_4",
          "IDQ_DSB_CYCLES_6_UOPS",
          "IDQ_ALL_DSB_CYCLES_5_UOPS",
          "IDQ_ALL_CYCLES_6_UOPS",
          "MEM_LOAD_RETIRED_L3_MISS"};
}

std::vector<std::string> pmc::skylakePnaNames() {
  return {"ICACHE_64B_IFTAG_MISS",
          "CPU_CLOCK_THREAD_UNHALTED",
          "BR_MISP_RETIRED_ALL_BRANCHES",
          "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS",
          "FRONTEND_RETIRED_L2_MISS",
          "ITLB_MISSES_STLB_HIT",
          "L2_TRANS_CODE_RD",
          "IDQ_MS_UOPS",
          "ARITH_DIVIDER_COUNT"};
}

EventRegistry pmc::buildCortexA7Registry() {
  RegistryAssembler A(/*Seed=*/0xA7A7ULL);
  addArmCommonEvents(A);

  // --- Fill to the LITTLE-cluster quotas: 2 solo, 4 pair, 33 general
  // significant events (no triple-restricted class on this PMU).
  using CC = CounterConstraintKind;
  std::vector<std::string> Pool = makeArmFillerNamePool();
  size_t PoolPos = 0;
  A.fillBucket(CC::PairOnly, 4, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 33, Pool, PoolPos);

  // --- 4 insignificant events: 44 total, 40 significant.
  A.addInsignificant(makeArmInsignificantNamePool(), 4);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 44 && "Cortex-A7 registry must offer 44 events");
  return Registry;
}

EventRegistry pmc::buildCortexA15Registry() {
  RegistryAssembler A(/*Seed=*/0xA7A7ULL);
  addArmCommonEvents(A);

  using CC = CounterConstraintKind;
  // --- Events the out-of-order A15 adds over the A7: the speculative
  // issue (\*_SPEC) counters the lluchs A15 model draws on, plus split
  // L2/bus breakdowns. Names are a strict superset of the A7 catalogue.
  A.add("ASE_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpVectorDouble, 1.0}}, 0.06, 0.8,
                       0.1, 0.015, 0.004));
  A.add("VFP_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0}}, 0.07, 0.8,
                       0.1, 0.015, 0.004));
  A.add("DP_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsExecuted, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("LD_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.05}}, 0.08, 0.8, 0.1,
                       0.015, 0.005));
  A.add("ST_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.05}}, 0.08, 0.8, 0.1,
                       0.015, 0.005));
  A.add("INST_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsIssued, 1.0}}, 0.06, 0.8, 0.1,
                       0.015, 0.004));
  A.add("BR_IMMED_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 0.8}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("BR_INDIRECT_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 0.12}}, 0.12, 0.8, 0.1,
                       0.02, 0.006));
  A.add("BR_RETURN_SPEC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 0.08}}, 0.12, 0.8, 0.1,
                       0.02, 0.006));
  A.add("L1I_TLB_REFILL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ITlbMisses, 0.9}}, 1.1, 0.9, 0.7,
                       0.08, 0.03));
  A.add("L2D_CACHE_LD", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 0.7}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("L2D_CACHE_ST", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 0.3}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("BUS_ACCESS_LD", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 0.7}}, 0.15, 0.8, 0.1,
                       0.025, 0.008));
  A.add("BUS_ACCESS_ST", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 0.3}}, 0.15, 0.8, 0.1,
                       0.025, 0.01));

  // --- Fill to the big-cluster quotas: 2 solo, 6 pair, 45 general. The
  // fill consumes the same pool prefix as the A7 build, keeping the A15
  // catalogue a superset.
  std::vector<std::string> Pool = makeArmFillerNamePool();
  size_t PoolPos = 0;
  A.fillBucket(CC::PairOnly, 6, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 45, Pool, PoolPos);

  // --- 8 insignificant events: 62 total, 54 significant.
  A.addInsignificant(makeArmInsignificantNamePool(), 8);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 62 && "Cortex-A15 registry must offer 62 events");
  return Registry;
}

EventRegistry pmc::buildAmdZen2Registry() {
  RegistryAssembler A(/*Seed=*/0x3D92ULL);
  using CC = CounterConstraintKind;

  // --- Core events on the four PerfEvtSel0-3 slots. There is no
  // fixed-function set: instructions and cycles occupy programmable
  // slots like everything else. A subset is slot-restricted the way
  // PPR event tables restrict PMCx assignment: FP/FPU events count
  // only on PMC0-2, divider events only on PMC3.
  A.add("RETIRED_INSTRUCTIONS", EventDomain::Core, CC::AnyProgrammable,
        simple(ActivityKind::Instructions, 1.0, 0.002));
  A.add("CYCLES_NOT_IN_HALT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
  A.add("RETIRED_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsRetired, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("RETIRED_BRANCH_INSTRUCTIONS", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("RETIRED_BRANCH_MISPREDICTED", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.40, 0.8, 0.4,
                       0.05, 0.015));
  A.add("RETIRED_MICROCODED_INSTRUCTIONS", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::MsUops, 1.0}}, 0.50, 1.0, 0.6, 0.05,
                       0.01));
  A.add("LS_DISPATCH_LOADS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.08, 0.8, 0.0, 0.015,
                       0.004));
  A.add("LS_DISPATCH_STORES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.08, 0.8, 0.0,
                       0.015, 0.004));
  A.add("L2_CACHE_MISS_FROM_DC_MISS", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("L2_CACHE_REQ", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("IC_FETCH", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheAccesses, 1.0}}, 0.30, 0.7,
                       0.3, 0.04, 0.01));
  A.add("IC_FETCH_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75,
                       0.5, 0.05, 0.01));
  A.add("L1_DTLB_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));
  A.add("L1_ITLB_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ITlbMisses, 1.0}}, 1.2, 0.9, 0.7,
                       0.08, 0.03));
  A.add("L2_DTLB_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::StlbHits, 0.5}}, 0.6, 0.8, 0.4,
                       0.08, 0.02));
  A.add("RETIRED_SSE_AVX_FLOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpVectorDouble, 1.0}}, 0.06, 0.8,
                       0.1, 0.015, 0.004),
        /*SlotMask=*/0x7);
  A.add("FP_RET_X87_FLOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0}}, 0.07, 0.8,
                       0.1, 0.015, 0.004),
        /*SlotMask=*/0x7);
  A.add("FPU_PIPE_ASSIGNMENT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Port0, 1.0},
                        {ActivityKind::Port1, 1.0}},
                       0.07, 0.8, 0.1, 0.02, 0.005),
        /*SlotMask=*/0x7);
  A.add("DIV_OP_COUNT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DivOps, 1.0}}, 4.0, 1.0, 0.8, 0.08,
                       0.02),
        /*SlotMask=*/0x8);
  A.add("DIV_CYCLES_BUSY", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DivOps, 3.5}}, 3.0, 1.0, 0.7, 0.08,
                       0.02),
        /*SlotMask=*/0x8);
  A.add("LS_NOT_HALTED_CYC", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::CoreCycles, 0.98}}, 0.15, 0.6, 0.3,
                       0.02, 0.008),
        /*SlotMask=*/0x1);

  // --- L3 and data-fabric events (uncore; pair-restricted probes).
  A.add("L3_LOOKUP", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.05}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("L3_MISS", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 1.0}}, 0.15, 0.8, 0.1,
                       0.025, 0.008));
  A.add("DF_MEM_READ_TOTAL", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("DF_MEM_WRITE_TOTAL", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 0.4}}, 0.12, 0.8, 0.1,
                       0.02, 0.01));

  // --- Software events.
  A.add("SW_PAGE_FAULTS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("SW_CONTEXT_SWITCHES", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));

  // --- Fill to the Zen2 quotas: 4 solo, 8 pair, 76 general significant
  // events.
  std::vector<std::string> Pool = makeAmdFillerNamePool();
  size_t PoolPos = 0;
  A.fillBucket(CC::Solo, 4, Pool, PoolPos);
  A.fillBucket(CC::PairOnly, 8, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 76, Pool, PoolPos);

  // --- 8 insignificant events: 96 total, 88 significant.
  A.addInsignificant(makeAmdInsignificantNamePool(), 8);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 96 && "Zen2 registry must offer 96 events");
  return Registry;
}

const std::vector<CanonicalCounter> &pmc::canonicalCounters() {
  static const std::vector<CanonicalCounter> Counters = {
      {"instructions",
       {"INSTR_RETIRED_ANY", "INST_RETIRED", "RETIRED_INSTRUCTIONS"}},
      {"cycles", {"CPU_CLK_UNHALTED_CORE", "PMCCNTR", "CYCLES_NOT_IN_HALT"}},
      {"branches",
       {"BR_INST_RETIRED_ALL_BRANCHES", "PC_WRITE_RETIRED",
        "RETIRED_BRANCH_INSTRUCTIONS"}},
      {"branch_misses",
       {"BR_MISP_RETIRED_ALL_BRANCHES", "BR_MIS_PRED",
        "RETIRED_BRANCH_MISPREDICTED"}},
      {"loads",
       {"MEM_UOPS_RETIRED_ALL_LOADS", "MEM_INST_RETIRED_ALL_LOADS",
        "LD_RETIRED", "LS_DISPATCH_LOADS"}},
      {"stores",
       {"MEM_UOPS_RETIRED_ALL_STORES", "MEM_INST_RETIRED_ALL_STORES",
        "ST_RETIRED", "LS_DISPATCH_STORES"}},
      {"l2_misses",
       {"L2_RQSTS_MISS", "L2D_CACHE_REFILL", "L2_CACHE_MISS_FROM_DC_MISS"}},
      {"icache_misses",
       {"ICACHE_64B_IFTAG_MISS", "L1I_CACHE_REFILL", "IC_FETCH_MISS"}},
      {"dtlb_misses",
       {"DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", "L1D_TLB_REFILL",
        "L1_DTLB_MISS"}},
      // No divider event exists on the ARM clusters: resolving "divides"
      // fails there, which is what makes cross-platform intersection a
      // real operation.
      {"divides", {"ARITH_DIVIDER_COUNT", "DIV_OP_COUNT"}},
  };
  return Counters;
}

Expected<std::string>
pmc::resolveCanonicalCounter(const EventRegistry &Registry,
                             const std::string &Canonical) {
  for (const CanonicalCounter &Counter : canonicalCounters()) {
    if (Counter.Canonical != Canonical)
      continue;
    for (const std::string &Candidate : Counter.Candidates)
      if (Registry.hasEvent(Candidate))
        return Candidate;
    return makeError("platform offers no candidate for canonical counter '" +
                     Canonical + "'");
  }
  return makeError("unknown canonical counter '" + Canonical + "'");
}
