//===- pmc/PlatformEvents.cpp - Haswell/Skylake event catalogues ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Builds the two platform registries with the cardinalities the paper
// reports for Likwid:
//
//   Haswell:  164 events total, 151 significant (counts > 10), needing
//             ~53 runs to collect (4 programmable counters, some events
//             restricted to sets of 3, 2, or solo).
//   Skylake:  385 events total, 323 significant, needing ~99 runs.
//
// The significant-event constraint mix is chosen so the CounterScheduler
// reproduces those run counts exactly:
//
//   Haswell:  3 fixed + 10 solo + 22 pair + 30 triple + 86 general
//             -> 10 + 11 + 10 + 22 = 53 runs.
//   Skylake:  3 fixed +  9 solo + 32 pair + 42 triple + 237 general
//             ->  9 + 16 + 14 + 60 = 99 runs.
//
// Non-additivity parameters of the named events are calibrated against
// Table 2 (Haswell additivity errors of X1..X6) and Table 6 (Skylake
// PA/PNA sets); see the per-event comments.
//
//===----------------------------------------------------------------------===//

#include "pmc/PlatformEvents.h"

#include "pmc/EventRegistry.h"
#include "support/Rng.h"

#include <cassert>

using namespace slope;
using namespace slope::pmc;

namespace {

/// Incrementally assembles a registry while tracking per-constraint quota
/// usage for significant events, then tops the buckets up with generated
/// filler events.
class RegistryAssembler {
public:
  explicit RegistryAssembler(uint64_t Seed) : FillerRng(Seed) {}

  /// Adds a named significant event.
  void add(const std::string &Name, EventDomain Domain,
           CounterConstraintKind Constraint, SynthesisModel Model) {
    EventDef Def;
    Def.Name = Name;
    Def.Domain = Domain;
    Def.Constraint = Constraint;
    Def.Model = std::move(Model);
    Registry.addEvent(std::move(Def));
  }

  /// Adds generated significant filler events from \p NamePool until the
  /// constraint bucket \p Kind holds exactly \p Target significant events.
  /// Pool names already present in the registry are skipped.
  void fillBucket(CounterConstraintKind Kind, size_t Target,
                  const std::vector<std::string> &NamePool, size_t &PoolPos) {
    while (Registry.countByConstraint(Kind) < Target) {
      assert(PoolPos < NamePool.size() && "filler name pool exhausted");
      const std::string &Name = NamePool[PoolPos++];
      if (Registry.hasEvent(Name))
        continue;
      EventDef Def;
      Def.Name = Name;
      Def.Domain = pickDomain(Name);
      Def.Constraint = Kind;
      Def.Model = makeFillerModel();
      Registry.addEvent(std::move(Def));
    }
  }

  /// Adds \p Count insignificant events (counts <= 10, non-reproducible;
  /// eliminated by the paper's pre-filter).
  void addInsignificant(const std::vector<std::string> &Names, size_t Count) {
    assert(Count <= Names.size() && "not enough insignificant names");
    for (size_t I = 0; I < Count; ++I) {
      EventDef Def;
      Def.Name = Names[I];
      Def.Domain = EventDomain::Core;
      Def.Constraint = CounterConstraintKind::AnyProgrammable;
      // A handful of stray counts with ~100% run-to-run noise: these fail
      // both the "counts > 10" filter and any reproducibility test.
      Def.Model.ContextFloor = 0.5 + 0.5 * static_cast<double>(I % 3);
      Def.Model.NoiseSigma = 0.6;
      Registry.addEvent(std::move(Def));
    }
  }

  EventRegistry take() { return std::move(Registry); }

private:
  static EventDomain pickDomain(const std::string &Name) {
    if (Name.rfind("UNC_", 0) == 0)
      return EventDomain::Uncore;
    return EventDomain::Core;
  }

  /// Deterministically varied synthesis models for filler events: a
  /// rotating palette of activity mappings with a spread of additivity
  /// characteristics (roughly 60% additive-by-construction).
  SynthesisModel makeFillerModel() {
    static const ActivityKind Palette[] = {
        ActivityKind::UopsIssued,    ActivityKind::UopsExecuted,
        ActivityKind::UopsRetired,   ActivityKind::Loads,
        ActivityKind::Stores,        ActivityKind::L1DMisses,
        ActivityKind::L2Requests,    ActivityKind::L2Misses,
        ActivityKind::L3Misses,      ActivityKind::DramReads,
        ActivityKind::Branches,      ActivityKind::BranchMisses,
        ActivityKind::ICacheAccesses,ActivityKind::ICacheMisses,
        ActivityKind::DTlbMisses,    ActivityKind::MsUops,
        ActivityKind::DsbUops,       ActivityKind::MiteUops,
        ActivityKind::Instructions,  ActivityKind::CoreCycles,
    };
    constexpr size_t PaletteSize = sizeof(Palette) / sizeof(Palette[0]);

    SynthesisModel Model;
    size_t Primary = FillerIndex % PaletteSize;
    Model.Coeffs.push_back(
        {Palette[Primary], 0.05 + 1.2 * FillerRng.uniform()});
    if (FillerIndex % 3 == 0)
      Model.Coeffs.push_back({Palette[(Primary + 7) % PaletteSize],
                              0.02 + 0.3 * FillerRng.uniform()});
    switch (FillerIndex % 5) {
    case 0:
    case 1:
    case 2:
      // Additive by construction; tight measurement noise.
      Model.NoiseSigma = 0.002 + 0.006 * FillerRng.uniform();
      break;
    case 3:
      // Mildly context-coupled: fails 5% additivity on branchy suites.
      Model.NaFraction = 0.1 + 0.2 * FillerRng.uniform();
      Model.NaBoundaryBeta = 0.5 + 0.5 * FillerRng.uniform();
      Model.NaJitterSigma = 0.03;
      Model.NoiseSigma = 0.01;
      break;
    case 4:
      // Strongly context-dominated: non-additive everywhere.
      Model.NaFraction = 0.5 + 1.0 * FillerRng.uniform();
      Model.NaBoundaryBeta = 0.6 + 0.4 * FillerRng.uniform();
      Model.IntensityFloor = 0.4 + 0.4 * FillerRng.uniform();
      Model.NaJitterSigma = 0.08;
      Model.NoiseSigma = 0.03;
      break;
    }
    ++FillerIndex;
    return Model;
  }

  EventRegistry Registry;
  Rng FillerRng;
  size_t FillerIndex = 0;
};

/// Generates a large pool of realistic Likwid-style event names used to
/// top up the constraint buckets (offcore response matrix, uncore CBo and
/// IMC boxes, stall/activity cycles, retirement breakdowns).
std::vector<std::string> makeFillerNamePool(bool Skylake) {
  std::vector<std::string> Pool;

  static const char *Requests[] = {
      "DMND_DATA_RD", "DMND_RFO",      "DMND_CODE_RD", "PF_L2_DATA_RD",
      "PF_L2_RFO",    "PF_L3_DATA_RD", "ALL_READS",    "ALL_RFO",
      "ALL_PF",       "STRM_ST"};
  static const char *Responses[] = {"L3_HIT", "L3_MISS", "LOCAL_DRAM",
                                    "ANY", "SNOOP_HITM"};
  for (int Unit = 0; Unit < 2; ++Unit)
    for (const char *Req : Requests)
      for (const char *Resp : Responses)
        Pool.push_back("OFFCORE_RESPONSE_" + std::to_string(Unit) + "_" +
                       std::string(Req) + "_" + Resp);

  int NumCbo = Skylake ? 22 : 12;
  for (int Box = 0; Box < NumCbo; ++Box)
    for (const char *Ev : {"LLC_LOOKUP_ANY", "LLC_VICTIMS_M", "RING_BL_USED"})
      Pool.push_back("UNC_CBO" + std::to_string(Box) + "_" + Ev);

  for (int Chan = 0; Chan < 4; ++Chan)
    for (const char *Ev : {"CAS_COUNT_RD", "CAS_COUNT_WR", "PRE_COUNT_MISS",
                           "ACT_COUNT"})
      Pool.push_back("UNC_IMC" + std::to_string(Chan) + "_" + Ev);

  static const char *CycleKinds[] = {
      "STALLS_L1D_MISS",  "STALLS_L2_MISS", "STALLS_L3_MISS",
      "STALLS_MEM_ANY",   "STALLS_TOTAL",   "CYCLES_L1D_MISS",
      "CYCLES_L2_MISS",   "CYCLES_MEM_ANY", "CYCLES_NO_EXECUTE"};
  for (const char *Kind : CycleKinds)
    Pool.push_back(std::string("CYCLE_ACTIVITY_") + Kind);

  static const char *ExeKinds[] = {"1_PORTS_UTIL", "2_PORTS_UTIL",
                                   "3_PORTS_UTIL", "4_PORTS_UTIL",
                                   "BOUND_ON_STORES", "EXE_BOUND_0_PORTS"};
  for (const char *Kind : ExeKinds)
    Pool.push_back(std::string("EXE_ACTIVITY_") + Kind);

  static const char *RsKinds[] = {"EMPTY_CYCLES", "EMPTY_END", "ANY_DISPATCH"};
  for (const char *Kind : RsKinds)
    Pool.push_back(std::string("RS_EVENTS_") + Kind);

  static const char *LsdKinds[] = {"UOPS", "CYCLES_ACTIVE", "CYCLES_4_UOPS"};
  for (const char *Kind : LsdKinds)
    Pool.push_back(std::string("LSD_") + Kind);

  static const char *RetKinds[] = {
      "TOTAL_CYCLES",   "STALL_CYCLES", "MACRO_FUSED",
      "RETIRE_SLOTS",   "MS_CYCLES",    "FP_ARITH_CYCLES"};
  for (const char *Kind : RetKinds)
    Pool.push_back(std::string("UOPS_RETIRED_") + Kind);

  static const char *MemLoad[] = {
      "L1_HIT", "L1_MISS", "L2_HIT", "L2_MISS", "L3_HIT", "FB_HIT",
      "LOCAL_DRAM"};
  for (const char *Kind : MemLoad)
    Pool.push_back(std::string("MEM_LOAD_RETIRED_") + Kind);

  static const char *Dsb[] = {"CYCLES_ANY", "CYCLES_4_UOPS", "MISS_ANY",
                              "FILL_DROPPED"};
  for (const char *Kind : Dsb)
    Pool.push_back(std::string("DSB2MITE_") + Kind);

  static const char *L2Trans[] = {"DEMAND_DATA_RD", "RFO", "L1D_WB",
                                  "L2_FILL", "ALL_REQUESTS"};
  for (const char *Kind : L2Trans)
    Pool.push_back(std::string("L2_TRANS_") + Kind);

  static const char *L2Lines[] = {"SILENT", "NON_SILENT", "USELESS_HWPF",
                                  "ALL"};
  for (const char *Kind : L2Lines)
    Pool.push_back(std::string("L2_LINES_OUT_") + Kind);

  static const char *Br[] = {"CONDITIONAL", "NEAR_CALL", "NEAR_RETURN",
                             "NEAR_TAKEN", "NOT_TAKEN", "FAR_BRANCH"};
  for (const char *Kind : Br)
    Pool.push_back(std::string("BR_INST_RETIRED_") + Kind);
  for (const char *Kind : {"CONDITIONAL", "NEAR_CALL", "NEAR_TAKEN"})
    Pool.push_back(std::string("BR_MISP_RETIRED_") + Kind);

  static const char *Tlb[] = {"WALK_COMPLETED", "WALK_PENDING",
                              "WALK_ACTIVE", "STLB_HIT_4K"};
  for (const char *Kind : Tlb) {
    Pool.push_back(std::string("DTLB_LOAD_MISSES_") + Kind);
    Pool.push_back(std::string("DTLB_STORE_MISSES_") + Kind);
  }

  static const char *Sw[] = {"MINOR_FAULTS", "MAJOR_FAULTS", "CPU_MIGRATIONS",
                             "ALIGNMENT_FAULTS"};
  for (const char *Kind : Sw)
    Pool.push_back(std::string("SW_") + Kind);

  if (Skylake) {
    // Skylake's much larger catalogue: per-port cycle breakdowns, PEBS
    // frontend retirement latencies, and power-license counters.
    for (int Port = 0; Port < 8; ++Port)
      for (const char *Kind : {"CYCLES", "CORE_CYCLES"})
        Pool.push_back("UOPS_DISPATCHED_PORT_" + std::to_string(Port) + "_" +
                       Kind);
    static const char *Fe[] = {"DSB_MISS",      "L1I_MISS",   "ITLB_MISS",
                               "STLB_MISS",     "LATENCY_GE_8",
                               "LATENCY_GE_16", "LATENCY_GE_32"};
    for (const char *Kind : Fe)
      Pool.push_back(std::string("FRONTEND_RETIRED_") + Kind);
    for (const char *Kind : {"LVL0_TURBO_LICENSE", "LVL1_TURBO_LICENSE",
                             "LVL2_TURBO_LICENSE", "THROTTLE"})
      Pool.push_back(std::string("CORE_POWER_") + Kind);
    static const char *IdqVariants[] = {
        "DSB_CYCLES_ANY",       "DSB_CYCLES_OK",   "MITE_CYCLES_ANY",
        "MITE_CYCLES_OK",       "MS_CYCLES_ANY",   "MS_SWITCHES",
        "ALL_MITE_CYCLES_ANY",  "ALL_MITE_CYCLES_4_UOPS",
        "ALL_DSB_CYCLES_ANY",   "ALL_DSB_CYCLES_4_UOPS"};
    for (const char *Kind : IdqVariants)
      Pool.push_back(std::string("IDQ_") + Kind);
    for (int Box = 0; Box < 10; ++Box)
      for (const char *Ev : {"TXR_INSERTS", "RING_AD_USED", "RING_AK_USED"})
        Pool.push_back("UNC_CHA" + std::to_string(Box) + "_" + Ev);
    static const char *Pebs[] = {"LOAD_LATENCY_GT_4", "LOAD_LATENCY_GT_8",
                                 "LOAD_LATENCY_GT_16", "LOAD_LATENCY_GT_32",
                                 "LOAD_LATENCY_GT_64", "LOAD_LATENCY_GT_128"};
    for (const char *Kind : Pebs)
      Pool.push_back(std::string("MEM_TRANS_RETIRED_") + Kind);
  }

  return Pool;
}

/// Names for events that fail the "counts > 10" significance filter:
/// transactional memory, SGX, and ISA extensions absent from the machine.
std::vector<std::string> makeInsignificantNamePool() {
  std::vector<std::string> Pool;
  static const char *Rtm[] = {"ABORTED", "ABORTED_MEM", "ABORTED_TIMER",
                              "ABORTED_UNFRIENDLY", "ABORTED_MEMTYPE",
                              "ABORTED_EVENTS", "COMMIT", "START"};
  for (const char *Kind : Rtm)
    Pool.push_back(std::string("RTM_RETIRED_") + Kind);
  static const char *Hle[] = {"ABORTED", "ABORTED_MEM", "ABORTED_TIMER",
                              "COMMIT", "START"};
  for (const char *Kind : Hle)
    Pool.push_back(std::string("HLE_RETIRED_") + Kind);
  static const char *TxMem[] = {
      "ABORT_CONFLICT", "ABORT_CAPACITY", "ABORT_HLE_STORE_TO_ELIDED_LOCK",
      "ABORT_HLE_ELISION_BUFFER_NOT_EMPTY", "ABORT_HLE_ELISION_BUFFER_FULL"};
  for (const char *Kind : TxMem)
    Pool.push_back(std::string("TX_MEM_") + Kind);
  static const char *TxExec[] = {"MISC1", "MISC2", "MISC3", "MISC4", "MISC5"};
  for (const char *Kind : TxExec)
    Pool.push_back(std::string("TX_EXEC_") + Kind);
  static const char *Misc[] = {
      "FP_ASSIST_ANY",          "FP_ASSIST_SIMD_INPUT",
      "FP_ASSIST_SIMD_OUTPUT",  "FP_ASSIST_X87_INPUT",
      "FP_ASSIST_X87_OUTPUT",   "MACHINE_CLEARS_SMC",
      "MACHINE_CLEARS_MASKMOV", "MACHINE_CLEARS_MEMORY_ORDERING",
      "SGX_ENCLS_ANY",          "SGX_ENCLU_ANY",
      "AVX512_VL_TRANSITIONS",  "X87_ASSIST_SIMD",
      "MISALIGN_MEM_REF_LOADS", "MISALIGN_MEM_REF_STORES",
      "LOCK_CYCLES_SPLIT_LOCK", "ILD_STALL_LCP",
      "PARTIAL_RAT_STALLS_SCOREBOARD",
      "LOAD_BLOCKS_NO_SR",      "LOAD_BLOCKS_STORE_FORWARD",
      "OTHER_ASSISTS_ANY",      "HW_INTERRUPTS_RECEIVED",
      "BACLEARS_ANY_RARE",      "DECODE_ICACHE_STALLS",
      "IDQ_EMPTY_RARE",         "TOPDOWN_BAD_SPEC_RARE",
      "UOP_DROPPING_RARE",      "INT_MISC_CLEARS_COUNT",
      "INT_MISC_RECOVERY_CYCLES_RARE", "ARITH_FPU_DIV_ACTIVE_RARE",
      "CPU_CLK_UNHALTED_ONE_THREAD_ACTIVE_RARE",
      "SGX_EPC_PAGE_EVICT",     "SGX_EPC_PAGE_LOAD",
      "PKG_CSTATE_DEMOTIONS",   "CORE_CSTATE_DEMOTIONS",
      "SMI_RECEIVED",           "THERMAL_TRIP_EVENTS",
      "MCA_CORRECTED_ERRORS",   "BUS_LOCK_CYCLES",
      "SPLIT_STORES_RARE",      "SPLIT_LOADS_RARE",
      "AVX512_FMA_RARE",        "AMX_TILE_LOADS_RARE"};
  for (const char *Kind : Misc)
    Pool.push_back(Kind);
  return Pool;
}

/// Shorthand for a one-term linear mapping.
SynthesisModel simple(ActivityKind Kind, double Weight = 1.0,
                      double NoiseSigma = 0.004) {
  SynthesisModel Model;
  Model.Coeffs.push_back({Kind, Weight});
  Model.NoiseSigma = NoiseSigma;
  return Model;
}

/// Shorthand for a context-coupled (non-additive) mapping; see Event.h
/// for the semantics of the parameters.
SynthesisModel contextCoupled(std::vector<ActivityTerm> Coeffs,
                              double NaFraction, double Beta,
                              double IntensityFloor = 0.0,
                              double Jitter = 0.03, double Noise = 0.01) {
  SynthesisModel Model;
  Model.Coeffs = std::move(Coeffs);
  Model.NaFraction = NaFraction;
  Model.NaBoundaryBeta = Beta;
  Model.IntensityFloor = IntensityFloor;
  Model.NaJitterSigma = Jitter;
  Model.NoiseSigma = Noise;
  return Model;
}

void addFixedCounters(RegistryAssembler &A) {
  A.add("INSTR_RETIRED_ANY", EventDomain::Core, CounterConstraintKind::Fixed,
        simple(ActivityKind::Instructions, 1.0, 0.002));
  A.add("CPU_CLK_UNHALTED_CORE", EventDomain::Core,
        CounterConstraintKind::Fixed,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
  A.add("CPU_CLK_UNHALTED_REF", EventDomain::Core,
        CounterConstraintKind::Fixed,
        contextCoupled({{ActivityKind::RefCycles, 1.0}}, 0.12, 0.6, 0.3,
                       0.02, 0.006));
}

} // namespace

EventRegistry pmc::buildHaswellRegistry() {
  RegistryAssembler A(/*Seed=*/0x4A51ULL);
  addFixedCounters(A);

  // --- The six Class-A model PMCs (Table 2). NaFraction/Beta pairs are
  // calibrated so the additivity test's maximum error over the diverse
  // compound suite lands at the paper's values: with suite context
  // intensities reaching ~1.2, maxError ~= F*1.2*Beta / (1 + F*1.2).
  using CC = CounterConstraintKind;
  A.add("IDQ_MITE_UOPS", EventDomain::Core, CC::AnyProgrammable, // 13%
        contextCoupled({{ActivityKind::MiteUops, 1.0}}, 0.13, 1.0, 0.1,
                       0.03, 0.008));
  A.add("IDQ_MS_UOPS", EventDomain::Core, CC::AnyProgrammable, // 37%
        contextCoupled({{ActivityKind::MsUops, 1.0}}, 0.50, 1.0, 0.6, 0.05,
                       0.01));
  A.add("ICACHE_64B_IFTAG_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75, // 36%
                       0.5, 0.05, 0.01));
  A.add("ARITH_DIVIDER_COUNT", EventDomain::Core, CC::AnyProgrammable, // 80%
        contextCoupled({{ActivityKind::DivOps, 1.0}}, 4.0, 1.0, 0.8, 0.08,
                       0.02));
  A.add("L2_RQSTS_MISS", EventDomain::Core, CC::AnyProgrammable, // 14%
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("UOPS_EXECUTED_PORT_PORT_6", EventDomain::Core,
        CC::AnyProgrammable, // 10%
        contextCoupled({{ActivityKind::Port6, 1.0}}, 0.10, 1.0, 0.1, 0.02,
                       0.005));

  // --- Remaining execution ports.
  static const ActivityKind PortKinds[] = {
      ActivityKind::Port0, ActivityKind::Port1, ActivityKind::Port2,
      ActivityKind::Port3, ActivityKind::Port4, ActivityKind::Port5,
      ActivityKind::Port7};
  static const char *PortNames[] = {
      "UOPS_EXECUTED_PORT_PORT_0", "UOPS_EXECUTED_PORT_PORT_1",
      "UOPS_EXECUTED_PORT_PORT_2", "UOPS_EXECUTED_PORT_PORT_3",
      "UOPS_EXECUTED_PORT_PORT_4", "UOPS_EXECUTED_PORT_PORT_5",
      "UOPS_EXECUTED_PORT_PORT_7"};
  for (size_t I = 0; I < 7; ++I)
    A.add(PortNames[I], EventDomain::Core, CC::AnyProgrammable,
          contextCoupled({{PortKinds[I], 1.0}}, 0.06 + 0.01 * I, 0.8, 0.1,
                         0.02, 0.005));

  // --- Frontend / uop flow.
  A.add("UOPS_ISSUED_ANY", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsIssued, 1.0}}, 0.06, 0.8, 0.1,
                       0.015, 0.004));
  A.add("UOPS_EXECUTED_CORE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsExecuted, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("UOPS_RETIRED_ALL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsRetired, 1.0}}, 0.05, 0.8, 0.1,
                       0.015, 0.004));
  A.add("IDQ_DSB_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 1.0}}, 0.08, 0.8, 0.1, 0.02,
                       0.006));
  A.add("ICACHE_ACCESSES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheAccesses, 1.0}}, 0.30, 0.7,
                       0.3, 0.04, 0.01));

  // --- Memory hierarchy (core side).
  A.add("L2_RQSTS_REFERENCES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("MEM_UOPS_RETIRED_ALL_LOADS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.08, 0.8, 0.1, 0.015,
                       0.004));
  A.add("MEM_UOPS_RETIRED_ALL_STORES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.08, 0.8, 0.1, 0.015,
                       0.004));

  // --- Floating point and branches.
  A.add("FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0}}, 0.07, 0.8,
                       0.1, 0.015, 0.004));
  A.add("AVX_INSTS_ALL", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpVectorDouble, 1.0}}, 0.06, 0.8,
                       0.1, 0.015, 0.004));
  A.add("BR_INST_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("BR_MISP_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.40, 0.8, 0.4,
                       0.05, 0.015));

  // --- TLBs.
  A.add("ITLB_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ITlbMisses, 1.0}}, 1.2, 0.9, 0.7,
                       0.08, 0.03));
  A.add("DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));

  // --- Uncore (pair-restricted on this PMU).
  A.add("LLC_REFERENCES", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("LLC_MISSES", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L3Misses, 1.0}}, 0.15, 0.8, 0.1,
                       0.025, 0.008));
  A.add("LLC_LOOKUP_ANY_REQUEST", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.05}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("DRAM_CAS_COUNT_RD", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 1.0}}, 0.12, 0.8, 0.1,
                       0.02, 0.008));
  A.add("DRAM_CAS_COUNT_WR", EventDomain::Uncore, CC::PairOnly,
        contextCoupled({{ActivityKind::DramReads, 0.4}}, 0.12, 0.8, 0.1,
                       0.02, 0.01));

  // --- PEBS-assisted load breakdowns (triple-restricted).
  A.add("MEM_LOAD_UOPS_RETIRED_L1_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::Loads, 0.95}}, 0.10, 0.8, 0.1, 0.02,
                       0.006));
  A.add("MEM_LOAD_UOPS_RETIRED_L2_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L1DMisses, 0.8}}, 0.15, 0.8, 0.1,
                       0.03, 0.01));
  A.add("MEM_LOAD_UOPS_RETIRED_L3_HIT", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.8}}, 0.18, 0.8, 0.1,
                       0.03, 0.01));
  A.add("MEM_LOAD_UOPS_RETIRED_L3_MISS", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L3Misses, 0.8}}, 0.20, 0.8, 0.1,
                       0.03, 0.012));
  A.add("OFFCORE_REQUESTS_ALL_DATA_RD", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 1.1}}, 0.15, 0.8, 0.1,
                       0.025, 0.01));

  // --- Software events (perf-style; measured alone on this setup).
  A.add("PAGE_FAULTS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("CONTEXT_SWITCHES", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));
  A.add("CPU_MIGRATIONS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 0.05}}, 2.0, 0.9,
                       0.9, 0.3, 0.15));

  // --- Fill the constraint buckets to the Haswell quotas (see file
  // header): 10 solo, 22 pair, 30 triple, 86 general significant events.
  std::vector<std::string> Pool = makeFillerNamePool(/*Skylake=*/false);
  size_t PoolPos = 0;
  A.fillBucket(CC::Solo, 10, Pool, PoolPos);
  A.fillBucket(CC::PairOnly, 22, Pool, PoolPos);
  A.fillBucket(CC::TripleOnly, 30, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 86, Pool, PoolPos);

  // --- 13 insignificant events: 164 total, 151 significant.
  A.addInsignificant(makeInsignificantNamePool(), 13);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 164 && "Haswell registry must offer 164 events");
  return Registry;
}

EventRegistry pmc::buildSkylakeRegistry() {
  RegistryAssembler A(/*Seed=*/0x5C7BULL);
  addFixedCounters(A);

  using CC = CounterConstraintKind;
  // --- PA: the nine highly additive PMCs of Table 6 (X1..X9). Their
  // context coupling has IntensityFloor 0, so for MKL DGEMM/FFT (context
  // intensity ~0.03) the additivity error is far below 1%, while the
  // diverse suite (intensity up to ~1.2) still pushes them past the 5%
  // tolerance — matching the paper's app-specific additivity findings.
  A.add("UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsRetired, 0.16}}, 0.18, 0.8, 0.0,
                       0.015, 0.003));
  A.add("FP_ARITH_INST_RETIRED_DOUBLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 1.0},
                        {ActivityKind::FpVectorDouble, 1.0}},
                       0.10, 1.0, 0.0, 0.015, 0.003));
  A.add("MEM_INST_RETIRED_ALL_STORES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Stores, 1.0}}, 0.15, 0.8, 0.0, 0.015,
                       0.003));
  A.add("UOPS_EXECUTED_CORE", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsExecuted, 1.0}}, 0.12, 0.9, 0.0,
                       0.015, 0.003));
  A.add("UOPS_DISPATCHED_PORT_PORT_4", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Port4, 1.0}}, 0.10, 1.0, 0.0, 0.015,
                       0.003));
  A.add("IDQ_DSB_CYCLES_6_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.13}}, 0.20, 0.7, 0.0,
                       0.015, 0.003));
  A.add("IDQ_ALL_DSB_CYCLES_5_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.17}}, 0.18, 0.8, 0.0,
                       0.015, 0.003));
  A.add("IDQ_ALL_CYCLES_6_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 0.12},
                        {ActivityKind::MiteUops, 0.08}},
                       0.15, 0.9, 0.0, 0.015, 0.003));
  A.add("MEM_LOAD_RETIRED_L3_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L3Misses, 0.8}}, 0.20, 0.8, 0.0,
                       0.015, 0.003));

  // --- PNA: nine non-additive but literature-popular PMCs (Y1..Y9).
  // IntensityFloor >= 0.5 keeps them non-additive even for DGEMM/FFT:
  // their context is self-generated (microcode, code footprint, snoops).
  A.add("ICACHE_64B_IFTAG_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.9}}, 0.80, 0.75,
                       0.55, 0.15, 0.04));
  A.add("CPU_CLOCK_THREAD_UNHALTED", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::CoreCycles, 1.0}}, 0.30, 0.7, 0.5,
                       0.12, 0.03));
  A.add("BR_MISP_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::BranchMisses, 1.0}}, 0.50, 0.9, 0.6,
                       0.15, 0.04));
  A.add("MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS", EventDomain::Core,
        CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.015}}, 1.5, 0.8, 0.6,
                       0.35, 0.12));
  A.add("FRONTEND_RETIRED_L2_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.3}}, 0.9, 0.7, 0.5,
                       0.20, 0.06));
  A.add("ITLB_MISSES_STLB_HIT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::StlbHits, 0.5}}, 1.5, 0.9, 0.7, 0.25,
                       0.08));
  A.add("L2_TRANS_CODE_RD", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheMisses, 0.8},
                        {ActivityKind::L2Requests, 0.008}},
                       0.7, 0.8, 0.5, 0.18, 0.05));
  A.add("IDQ_MS_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::MsUops, 1.0}}, 0.5, 1.0, 0.6, 0.15,
                       0.04));
  A.add("ARITH_DIVIDER_COUNT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DivOps, 1.0}}, 3.0, 1.0, 0.7, 0.20,
                       0.05));

  // --- Additional named Skylake core events.
  A.add("UOPS_ISSUED_ANY", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::UopsIssued, 1.0}}, 0.08, 0.8, 0.0,
                       0.015, 0.004));
  A.add("MEM_INST_RETIRED_ALL_LOADS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Loads, 1.0}}, 0.10, 0.8, 0.0, 0.015,
                       0.004));
  A.add("IDQ_MITE_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::MiteUops, 1.0}}, 0.13, 1.0, 0.1,
                       0.03, 0.008));
  A.add("IDQ_DSB_UOPS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DsbUops, 1.0}}, 0.09, 0.8, 0.0,
                       0.02, 0.006));
  A.add("L2_RQSTS_MISS", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Misses, 1.0}}, 0.14, 1.0, 0.1,
                       0.02, 0.006));
  A.add("L2_RQSTS_REFERENCES", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::L2Requests, 1.0}}, 0.10, 0.9, 0.1,
                       0.02, 0.006));
  A.add("BR_INST_RETIRED_ALL_BRANCHES", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::Branches, 1.0}}, 0.09, 0.8, 0.1,
                       0.02, 0.005));
  A.add("ICACHE_64B_IFTAG_HIT", EventDomain::Core, CC::AnyProgrammable,
        contextCoupled({{ActivityKind::ICacheAccesses, 0.98}}, 0.25, 0.7,
                       0.3, 0.03, 0.008));
  A.add("FP_ARITH_INST_RETIRED_SCALAR_SINGLE", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::FpScalarDouble, 0.05}}, 0.2, 0.8,
                       0.2, 0.05, 0.02));
  A.add("DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK", EventDomain::Core,
        CC::AnyProgrammable,
        contextCoupled({{ActivityKind::DTlbMisses, 1.0}}, 0.35, 0.8, 0.3,
                       0.04, 0.012));
  static const ActivityKind SkxPortKinds[] = {
      ActivityKind::Port0, ActivityKind::Port1, ActivityKind::Port2,
      ActivityKind::Port3, ActivityKind::Port5, ActivityKind::Port6,
      ActivityKind::Port7};
  static const char *SkxPortNames[] = {
      "UOPS_DISPATCHED_PORT_PORT_0", "UOPS_DISPATCHED_PORT_PORT_1",
      "UOPS_DISPATCHED_PORT_PORT_2", "UOPS_DISPATCHED_PORT_PORT_3",
      "UOPS_DISPATCHED_PORT_PORT_5", "UOPS_DISPATCHED_PORT_PORT_6",
      "UOPS_DISPATCHED_PORT_PORT_7"};
  for (size_t I = 0; I < 7; ++I)
    A.add(SkxPortNames[I], EventDomain::Core, CC::AnyProgrammable,
          contextCoupled({{SkxPortKinds[I], 1.0}}, 0.07 + 0.01 * I, 0.8,
                         0.1, 0.02, 0.005));

  // --- PEBS load breakdown (triple-restricted).
  A.add("MEM_LOAD_RETIRED_L2_MISS_PS", EventDomain::Core, CC::TripleOnly,
        contextCoupled({{ActivityKind::L2Misses, 0.9}}, 0.18, 0.8, 0.1,
                       0.03, 0.01));

  // --- Software events.
  A.add("PAGE_FAULTS", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::PageFaults, 1.0}}, 1.5, 0.9, 0.8,
                       0.1, 0.05));
  A.add("CONTEXT_SWITCHES", EventDomain::Software, CC::Solo,
        contextCoupled({{ActivityKind::ContextSwitches, 1.0}}, 2.0, 0.9,
                       0.9, 0.25, 0.1));

  // --- Fill to the Skylake quotas (see file header): 9 solo, 32 pair,
  // 42 triple, 237 general significant events.
  std::vector<std::string> Pool = makeFillerNamePool(/*Skylake=*/true);
  size_t PoolPos = 0;
  A.fillBucket(CC::Solo, 9, Pool, PoolPos);
  A.fillBucket(CC::PairOnly, 32, Pool, PoolPos);
  A.fillBucket(CC::TripleOnly, 42, Pool, PoolPos);
  A.fillBucket(CC::AnyProgrammable, 237, Pool, PoolPos);

  // --- 62 insignificant events: 385 total, 323 significant.
  A.addInsignificant(makeInsignificantNamePool(), 62);

  EventRegistry Registry = A.take();
  assert(Registry.size() == 385 && "Skylake registry must offer 385 events");
  return Registry;
}

std::vector<std::string> pmc::haswellClassAPmcNames() {
  return {"IDQ_MITE_UOPS",       "IDQ_MS_UOPS",
          "ICACHE_64B_IFTAG_MISS", "ARITH_DIVIDER_COUNT",
          "L2_RQSTS_MISS",       "UOPS_EXECUTED_PORT_PORT_6"};
}

std::vector<std::string> pmc::skylakePaNames() {
  return {"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC",
          "FP_ARITH_INST_RETIRED_DOUBLE",
          "MEM_INST_RETIRED_ALL_STORES",
          "UOPS_EXECUTED_CORE",
          "UOPS_DISPATCHED_PORT_PORT_4",
          "IDQ_DSB_CYCLES_6_UOPS",
          "IDQ_ALL_DSB_CYCLES_5_UOPS",
          "IDQ_ALL_CYCLES_6_UOPS",
          "MEM_LOAD_RETIRED_L3_MISS"};
}

std::vector<std::string> pmc::skylakePnaNames() {
  return {"ICACHE_64B_IFTAG_MISS",
          "CPU_CLOCK_THREAD_UNHALTED",
          "BR_MISP_RETIRED_ALL_BRANCHES",
          "MEM_LOAD_L3_HIT_RETIRED_XSNP_MISS",
          "FRONTEND_RETIRED_L2_MISS",
          "ITLB_MISSES_STLB_HIT",
          "L2_TRANS_CODE_RD",
          "IDQ_MS_UOPS",
          "ARITH_DIVIDER_COUNT"};
}
