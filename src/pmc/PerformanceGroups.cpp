//===- pmc/PerformanceGroups.cpp - Likwid-style event groups ---------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/PerformanceGroups.h"

#include "support/Str.h"

using namespace slope;
using namespace slope::pmc;

std::vector<PerformanceGroup> pmc::haswellPerformanceGroups() {
  return {
      {"FLOPS_DP",
       "double-precision flop rate",
       {"FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", "AVX_INSTS_ALL",
        "UOPS_EXECUTED_PORT_PORT_0", "UOPS_EXECUTED_PORT_PORT_1"}},
      {"MEM",
       "main-memory traffic",
       {"DRAM_CAS_COUNT_RD", "DRAM_CAS_COUNT_WR"}},
      {"L2",
       "L2 cache demand and misses",
       {"L2_RQSTS_REFERENCES", "L2_RQSTS_MISS",
        "MEM_UOPS_RETIRED_ALL_LOADS", "MEM_UOPS_RETIRED_ALL_STORES"}},
      {"L3",
       "last-level cache behaviour",
       {"LLC_REFERENCES", "LLC_MISSES"}},
      {"BRANCH",
       "branch volume and misprediction",
       {"BR_INST_RETIRED_ALL_BRANCHES", "BR_MISP_RETIRED_ALL_BRANCHES"}},
      {"ICACHE",
       "instruction-cache pressure",
       {"ICACHE_ACCESSES", "ICACHE_64B_IFTAG_MISS"}},
      {"TLB",
       "address-translation misses",
       {"ITLB_MISSES_MISS_CAUSES_A_WALK",
        "DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK"}},
      {"UOPS",
       "uop pipeline volume",
       {"UOPS_ISSUED_ANY", "UOPS_EXECUTED_CORE", "UOPS_RETIRED_ALL"}},
      {"DIVIDER",
       "divider-unit activity",
       {"ARITH_DIVIDER_COUNT", "IDQ_MS_UOPS"}},
      {"ENERGY_MODEL",
       "the paper's Class-A predictor set, first half",
       {"IDQ_MITE_UOPS", "IDQ_MS_UOPS", "ICACHE_64B_IFTAG_MISS",
        "ARITH_DIVIDER_COUNT"}},
  };
}

std::vector<PerformanceGroup> pmc::skylakePerformanceGroups() {
  return {
      {"FLOPS_DP",
       "double-precision flop rate",
       {"FP_ARITH_INST_RETIRED_DOUBLE",
        "FP_ARITH_INST_RETIRED_SCALAR_SINGLE",
        "UOPS_DISPATCHED_PORT_PORT_0", "UOPS_DISPATCHED_PORT_PORT_1"}},
      {"L2",
       "L2 cache demand and misses",
       {"L2_RQSTS_REFERENCES", "L2_RQSTS_MISS",
        "MEM_INST_RETIRED_ALL_LOADS", "MEM_INST_RETIRED_ALL_STORES"}},
      {"BRANCH",
       "branch volume and misprediction",
       {"BR_INST_RETIRED_ALL_BRANCHES", "BR_MISP_RETIRED_ALL_BRANCHES"}},
      {"ICACHE",
       "instruction-cache pressure",
       {"ICACHE_64B_IFTAG_HIT", "ICACHE_64B_IFTAG_MISS",
        "L2_TRANS_CODE_RD"}},
      {"TLB",
       "address-translation misses",
       {"ITLB_MISSES_STLB_HIT",
        "DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK"}},
      {"UOPS",
       "uop pipeline volume",
       {"UOPS_ISSUED_ANY", "UOPS_EXECUTED_CORE",
        "UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC"}},
      {"FRONTEND",
       "uop delivery paths",
       {"IDQ_MITE_UOPS", "IDQ_DSB_UOPS", "IDQ_MS_UOPS"}},
      {"PA4",
       "the paper's additive online set (Class C)",
       {"UOPS_RETIRED_CYCLES_GE_4_UOPS_EXEC",
        "FP_ARITH_INST_RETIRED_DOUBLE", "UOPS_EXECUTED_CORE",
        "IDQ_ALL_CYCLES_6_UOPS"}},
      {"PNA4",
       "the correlation-picked non-additive set (Class C)",
       {"ICACHE_64B_IFTAG_MISS", "BR_MISP_RETIRED_ALL_BRANCHES",
        "IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT"}},
  };
}

Expected<PerformanceGroup>
pmc::findGroup(const std::vector<PerformanceGroup> &Groups,
               const std::string &Name) {
  std::vector<std::string> Available;
  for (const PerformanceGroup &Group : Groups) {
    if (Group.Name == Name)
      return Group;
    Available.push_back(Group.Name);
  }
  return makeError("unknown performance group '" + Name +
                   "' (available: " + str::join(Available, ", ") + ")");
}

Expected<std::vector<EventId>>
pmc::resolveGroup(const EventRegistry &Registry,
                  const PerformanceGroup &Group) {
  std::vector<EventId> Ids;
  for (const std::string &Name : Group.EventNames) {
    auto Id = Registry.lookup(Name);
    if (!Id)
      return Id.error();
    Ids.push_back(*Id);
  }
  return Ids;
}
