//===- pmc/Activity.h - Latent micro-architectural activities ---*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The latent activity model underlying the simulator. An application run
/// produces a vector of *true* activity counts (flops, loads, cache misses
/// per level, uops per port, ...). Ground-truth dynamic energy is a
/// weighted sum of these activities — which makes energy exactly additive
/// over serial composition, the physical premise of the paper. PMCs are
/// (possibly distorted) views of the same activities; see pmc::EventDef.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_ACTIVITY_H
#define SLOPE_PMC_ACTIVITY_H

#include <array>
#include <cassert>
#include <cstddef>

namespace slope {
namespace pmc {

/// The latent hardware/software activities tracked by the simulator.
enum class ActivityKind : unsigned {
  CoreCycles = 0,   ///< Unhalted core cycles.
  Instructions,     ///< Retired instructions.
  UopsIssued,       ///< Uops issued by the front end.
  UopsExecuted,     ///< Uops executed by the backend ports.
  UopsRetired,      ///< Retired uops.
  Port0,            ///< Uops dispatched to execution port 0 (ALU/FMA).
  Port1,            ///< Port 1 (ALU/FMA).
  Port2,            ///< Port 2 (load AGU).
  Port3,            ///< Port 3 (load AGU).
  Port4,            ///< Port 4 (store data).
  Port5,            ///< Port 5 (ALU/shuffle).
  Port6,            ///< Port 6 (ALU/branch).
  Port7,            ///< Port 7 (store AGU).
  FpScalarDouble,   ///< Scalar double-precision FP operations.
  FpVectorDouble,   ///< Packed double-precision FP operations.
  DivOps,           ///< Divider-unit operations.
  Loads,            ///< Retired load instructions.
  Stores,           ///< Retired store instructions.
  L1DMisses,        ///< L1 data-cache misses (== L2 data requests).
  L2Requests,       ///< All L2 requests (data + code).
  L2Misses,         ///< L2 misses (== L3 requests).
  L3Misses,         ///< L3 misses (== DRAM accesses).
  DramReads,        ///< Memory-controller read CAS operations.
  Branches,         ///< Retired branch instructions.
  BranchMisses,     ///< Mispredicted branches.
  ICacheAccesses,   ///< Instruction-cache fetch accesses.
  ICacheMisses,     ///< Instruction-cache misses.
  ITlbMisses,       ///< Instruction TLB misses.
  DTlbMisses,       ///< Data TLB misses.
  StlbHits,         ///< Second-level TLB hits.
  MsUops,           ///< Uops delivered by the microcode sequencer.
  DsbUops,          ///< Uops delivered by the decoded-uop cache (DSB).
  MiteUops,         ///< Uops delivered by the legacy decode path (MITE).
  PageFaults,       ///< Software events: page faults.
  ContextSwitches,  ///< Software events: context switches.
  RefCycles,        ///< Reference (TSC-rate) cycles.
};

/// Number of ActivityKind values; keep in sync with the enum.
constexpr size_t NumActivityKinds =
    static_cast<size_t>(ActivityKind::RefCycles) + 1;

/// \returns a stable printable name for \p Kind.
const char *activityKindName(ActivityKind Kind);

/// A dense vector of latent activity counts for one execution phase.
///
/// Activities are physically additive: composing two phases serially sums
/// their activity vectors exactly (operator+). All counts are modeled as
/// doubles since they reach 1e12 and enter linear algebra directly.
class ActivityVector {
public:
  ActivityVector() { Counts.fill(0.0); }

  double &operator[](ActivityKind Kind) {
    return Counts[static_cast<size_t>(Kind)];
  }
  double operator[](ActivityKind Kind) const {
    return Counts[static_cast<size_t>(Kind)];
  }

  double &at(size_t Index) {
    assert(Index < NumActivityKinds && "activity index out of range");
    return Counts[Index];
  }
  double at(size_t Index) const {
    assert(Index < NumActivityKinds && "activity index out of range");
    return Counts[Index];
  }

  ActivityVector &operator+=(const ActivityVector &Other) {
    for (size_t I = 0; I < NumActivityKinds; ++I)
      Counts[I] += Other.Counts[I];
    return *this;
  }

  friend ActivityVector operator+(ActivityVector A, const ActivityVector &B) {
    A += B;
    return A;
  }

  ActivityVector &operator*=(double Scale) {
    for (double &C : Counts)
      C *= Scale;
    return *this;
  }

  /// \returns the dense count array (NumActivityKinds doubles, indexed by
  /// ActivityKind). Batch synthesis streams phases through this view.
  const double *data() const { return Counts.data(); }

  /// \returns the sum of all counts (used in sanity checks).
  double total() const {
    double Sum = 0;
    for (double C : Counts)
      Sum += C;
    return Sum;
  }

private:
  std::array<double, NumActivityKinds> Counts;
};

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_ACTIVITY_H
