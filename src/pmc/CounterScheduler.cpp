//===- pmc/CounterScheduler.cpp - PMC collection planning -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/CounterScheduler.h"

#include <algorithm>
#include <set>

using namespace slope;
using namespace slope::pmc;

bool CollectionPlan::covers(const std::vector<EventId> &Requested) const {
  std::set<EventId> Seen;
  for (const CollectionRun &Run : Runs)
    for (EventId Id : Run.Events)
      if (!Seen.insert(Id).second)
        return false; // Duplicate placement.
  for (EventId Id : Requested)
    if (!Seen.count(Id))
      return false;
  return Seen.size() == Requested.size();
}

bool pmc::isFeasibleRun(const EventRegistry &Registry,
                        const CollectionRun &Run, const PmuSpec &Pmu) {
  unsigned NumFixed = 0;
  unsigned NumProgrammable = 0;
  unsigned NumPair = 0, NumTriple = 0, NumSolo = 0;
  for (EventId Id : Run.Events) {
    switch (Registry.event(Id).Constraint) {
    case CounterConstraintKind::Fixed:
      ++NumFixed;
      break;
    case CounterConstraintKind::AnyProgrammable:
      ++NumProgrammable;
      break;
    case CounterConstraintKind::TripleOnly:
      ++NumTriple;
      ++NumProgrammable;
      break;
    case CounterConstraintKind::PairOnly:
      ++NumPair;
      ++NumProgrammable;
      break;
    case CounterConstraintKind::Solo:
      ++NumSolo;
      ++NumProgrammable;
      break;
    }
  }
  if (NumFixed > Pmu.NumFixed || NumProgrammable > Pmu.NumProgrammable)
    return false;
  if (NumSolo > 0 && NumProgrammable > 1)
    return false;
  if (NumPair > 0 && NumProgrammable > 2)
    return false;
  if (NumTriple > 0 && NumProgrammable > 3)
    return false;
  return true;
}

Expected<CollectionPlan>
pmc::planCollection(const EventRegistry &Registry,
                    const std::vector<EventId> &Requested,
                    const PmuSpec &Pmu) {
  {
    std::set<EventId> Unique(Requested.begin(), Requested.end());
    if (Unique.size() != Requested.size())
      return makeError("duplicate events in collection request");
  }

  std::vector<EventId> Fixed, Solo, Pair, Triple, General;
  for (EventId Id : Requested) {
    switch (Registry.event(Id).Constraint) {
    case CounterConstraintKind::Fixed:
      Fixed.push_back(Id);
      break;
    case CounterConstraintKind::Solo:
      Solo.push_back(Id);
      break;
    case CounterConstraintKind::PairOnly:
      Pair.push_back(Id);
      break;
    case CounterConstraintKind::TripleOnly:
      Triple.push_back(Id);
      break;
    case CounterConstraintKind::AnyProgrammable:
      General.push_back(Id);
      break;
    }
  }

  CollectionPlan Plan;
  auto EmitChunks = [&Plan](const std::vector<EventId> &Ids, size_t Width) {
    for (size_t Start = 0; Start < Ids.size(); Start += Width) {
      CollectionRun Run;
      size_t End = std::min(Start + Width, Ids.size());
      Run.Events.assign(Ids.begin() + Start, Ids.begin() + End);
      Plan.Runs.push_back(std::move(Run));
    }
  };
  for (EventId Id : Solo)
    Plan.Runs.push_back(CollectionRun{{Id}});
  EmitChunks(Pair, 2);
  EmitChunks(Triple, 3);
  EmitChunks(General, Pmu.NumProgrammable);

  // Fixed-counter events ride along: spread them over existing runs,
  // Pmu.NumFixed per run. If there are no runs yet, they need one.
  if (!Fixed.empty() && Plan.Runs.empty())
    Plan.Runs.push_back(CollectionRun{});
  size_t RunIndex = 0;
  unsigned UsedInRun = 0;
  for (EventId Id : Fixed) {
    if (UsedInRun == Pmu.NumFixed) {
      ++RunIndex;
      UsedInRun = 0;
      if (RunIndex == Plan.Runs.size())
        Plan.Runs.push_back(CollectionRun{});
    }
    Plan.Runs[RunIndex].Events.push_back(Id);
    ++UsedInRun;
  }

  for ([[maybe_unused]] const CollectionRun &Run : Plan.Runs)
    assert(isFeasibleRun(Registry, Run, Pmu) && "planned an infeasible run");
  assert(Plan.covers(Requested) && "plan does not cover the request");
  return Plan;
}
