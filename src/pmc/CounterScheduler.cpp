//===- pmc/CounterScheduler.cpp - PMC collection planning -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/CounterScheduler.h"

#include <algorithm>
#include <set>

using namespace slope;
using namespace slope::pmc;

bool CollectionPlan::covers(const std::vector<EventId> &Requested) const {
  std::set<EventId> Seen;
  for (const CollectionRun &Run : Runs)
    for (EventId Id : Run.Events)
      if (!Seen.insert(Id).second)
        return false; // Duplicate placement.
  for (EventId Id : Requested)
    if (!Seen.count(Id))
      return false;
  return Seen.size() == Requested.size();
}

/// \returns true if every programmable event in \p Masks can be assigned
/// its own slot (a distinct set bit). Exact backtracking; the PMU has at
/// most 8 programmable slots, so this is cheap.
static bool hasSlotAssignment(const std::vector<uint8_t> &Masks, size_t I,
                              unsigned Used) {
  if (I == Masks.size())
    return true;
  unsigned Avail = Masks[I] & ~Used;
  while (Avail) {
    unsigned Slot = Avail & (~Avail + 1u); // Lowest available slot bit.
    if (hasSlotAssignment(Masks, I + 1, Used | Slot))
      return true;
    Avail &= Avail - 1u;
  }
  return false;
}

bool pmc::isFeasibleRun(const EventRegistry &Registry,
                        const CollectionRun &Run, const PmuSpec &Pmu) {
  unsigned NumFixed = 0;
  unsigned NumProgrammable = 0;
  unsigned NumPair = 0, NumTriple = 0, NumSolo = 0;
  bool AnyRestricted = false;
  for (EventId Id : Run.Events) {
    const EventDef &Def = Registry.event(Id);
    switch (Def.Constraint) {
    case CounterConstraintKind::Fixed:
      ++NumFixed;
      break;
    case CounterConstraintKind::AnyProgrammable:
      ++NumProgrammable;
      break;
    case CounterConstraintKind::TripleOnly:
      ++NumTriple;
      ++NumProgrammable;
      break;
    case CounterConstraintKind::PairOnly:
      ++NumPair;
      ++NumProgrammable;
      break;
    case CounterConstraintKind::Solo:
      ++NumSolo;
      ++NumProgrammable;
      break;
    }
    if (Def.Constraint != CounterConstraintKind::Fixed &&
        Def.isSlotRestricted())
      AnyRestricted = true;
  }
  if (NumFixed > Pmu.NumFixed || NumProgrammable > Pmu.NumProgrammable)
    return false;
  if (NumSolo > 0 && NumProgrammable > 1)
    return false;
  if (NumPair > 0 && NumProgrammable > 2)
    return false;
  if (NumTriple > 0 && NumProgrammable > 3)
    return false;
  if (!AnyRestricted)
    return true;

  // PerfEvtSel-style slot restrictions: every programmable event must be
  // assignable to a distinct slot it is allowed to use.
  unsigned BudgetMask = Pmu.NumProgrammable >= 8
                            ? 0xFFu
                            : ((1u << Pmu.NumProgrammable) - 1u);
  std::vector<uint8_t> Masks;
  Masks.reserve(Run.Events.size());
  for (EventId Id : Run.Events) {
    const EventDef &Def = Registry.event(Id);
    if (Def.Constraint == CounterConstraintKind::Fixed)
      continue;
    uint8_t Mask = static_cast<uint8_t>(Def.SlotMask & BudgetMask);
    if (Mask == 0)
      return false; // Restricted to slots this PMU does not have.
    Masks.push_back(Mask);
  }
  return hasSlotAssignment(Masks, 0, 0);
}

Expected<CollectionPlan>
pmc::planCollection(const EventRegistry &Registry,
                    const std::vector<EventId> &Requested,
                    const PmuSpec &Pmu) {
  {
    std::set<EventId> Unique(Requested.begin(), Requested.end());
    if (Unique.size() != Requested.size())
      return makeError("duplicate events in collection request");
  }

  std::vector<EventId> Fixed, Solo, Pair, Triple, General;
  for (EventId Id : Requested) {
    switch (Registry.event(Id).Constraint) {
    case CounterConstraintKind::Fixed:
      Fixed.push_back(Id);
      break;
    case CounterConstraintKind::Solo:
      Solo.push_back(Id);
      break;
    case CounterConstraintKind::PairOnly:
      Pair.push_back(Id);
      break;
    case CounterConstraintKind::TripleOnly:
      Triple.push_back(Id);
      break;
    case CounterConstraintKind::AnyProgrammable:
      General.push_back(Id);
      break;
    }
  }

  if (!Fixed.empty() && Pmu.NumFixed == 0)
    return makeError("event '" + Registry.event(Fixed.front()).Name +
                     "' needs a fixed counter but the pmu has none");

  CollectionPlan Plan;
  // Greedy width-limited fill. An event joins the open run only while a
  // legal slot assignment still exists; for unrestricted (Intel-default)
  // masks this degenerates to plain chunking, so Intel plans are
  // unchanged. \returns an error for events no in-budget slot can count.
  auto EmitPacked = [&](const std::vector<EventId> &Ids,
                        size_t Width) -> Expected<bool> {
    CollectionRun Open;
    for (EventId Id : Ids) {
      if (Open.Events.size() < Width) {
        CollectionRun Candidate = Open;
        Candidate.Events.push_back(Id);
        if (isFeasibleRun(Registry, Candidate, Pmu)) {
          Open = std::move(Candidate);
          continue;
        }
      }
      if (!Open.Events.empty())
        Plan.Runs.push_back(std::move(Open));
      Open.Events = {Id};
      if (!isFeasibleRun(Registry, Open, Pmu))
        return makeError("event '" + Registry.event(Id).Name +
                         "' cannot be counted on any available slot");
    }
    if (!Open.Events.empty())
      Plan.Runs.push_back(std::move(Open));
    return true;
  };
  if (auto Packed = EmitPacked(Solo, 1); !Packed)
    return Packed.error();
  if (auto Packed = EmitPacked(Pair, 2); !Packed)
    return Packed.error();
  if (auto Packed = EmitPacked(Triple, 3); !Packed)
    return Packed.error();
  if (auto Packed = EmitPacked(General, Pmu.NumProgrammable); !Packed)
    return Packed.error();

  // Fixed-counter events ride along: spread them over existing runs,
  // Pmu.NumFixed per run. If there are no runs yet, they need one.
  if (!Fixed.empty() && Plan.Runs.empty())
    Plan.Runs.push_back(CollectionRun{});
  size_t RunIndex = 0;
  unsigned UsedInRun = 0;
  for (EventId Id : Fixed) {
    if (UsedInRun == Pmu.NumFixed) {
      ++RunIndex;
      UsedInRun = 0;
      if (RunIndex == Plan.Runs.size())
        Plan.Runs.push_back(CollectionRun{});
    }
    Plan.Runs[RunIndex].Events.push_back(Id);
    ++UsedInRun;
  }

  for ([[maybe_unused]] const CollectionRun &Run : Plan.Runs)
    assert(isFeasibleRun(Registry, Run, Pmu) && "planned an infeasible run");
  assert(Plan.covers(Requested) && "plan does not cover the request");
  return Plan;
}
