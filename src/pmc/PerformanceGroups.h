//===- pmc/PerformanceGroups.h - Likwid-style event groups -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Curated event groups in the style of likwid-perfctr's `-g` presets
/// (FLOPS_DP, MEM, BRANCH, ...): each is a named, one-run-schedulable
/// set of events serving one analysis question. Groups are how
/// practitioners actually drive the tool the paper uses, and they bound
/// each preset to the PMU's 4 programmable counters.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_PMC_PERFORMANCEGROUPS_H
#define SLOPE_PMC_PERFORMANCEGROUPS_H

#include "pmc/EventRegistry.h"

#include <string>
#include <vector>

namespace slope {
namespace pmc {

/// One likwid-style preset.
struct PerformanceGroup {
  std::string Name;        ///< e.g. "FLOPS_DP".
  std::string Description; ///< One-line purpose.
  std::vector<std::string> EventNames;
};

/// Presets for the Haswell registry. Every group's events exist in
/// buildHaswellRegistry() and fit a single collection run.
std::vector<PerformanceGroup> haswellPerformanceGroups();

/// Presets for the Skylake registry, same guarantees against
/// buildSkylakeRegistry().
std::vector<PerformanceGroup> skylakePerformanceGroups();

/// \returns the group named \p Name from \p Groups, or an error listing
/// the available names.
Expected<PerformanceGroup>
findGroup(const std::vector<PerformanceGroup> &Groups,
          const std::string &Name);

/// Resolves a group's events against \p Registry.
/// \returns an error if any event is missing.
Expected<std::vector<EventId>> resolveGroup(const EventRegistry &Registry,
                                            const PerformanceGroup &Group);

} // namespace pmc
} // namespace slope

#endif // SLOPE_PMC_PERFORMANCEGROUPS_H
