//===- pmc/Event.cpp - Performance event definitions ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "pmc/Event.h"

#include <cassert>
#include <climits>

using namespace slope;
using namespace slope::pmc;

uint32_t pmc::maxPerRun(CounterConstraintKind Kind) {
  switch (Kind) {
  case CounterConstraintKind::Fixed:
    return UINT32_MAX;
  case CounterConstraintKind::AnyProgrammable:
    return 4;
  case CounterConstraintKind::TripleOnly:
    return 3;
  case CounterConstraintKind::PairOnly:
    return 2;
  case CounterConstraintKind::Solo:
    return 1;
  }
  assert(false && "unknown counter constraint");
  return 1;
}

const char *pmc::counterConstraintName(CounterConstraintKind Kind) {
  switch (Kind) {
  case CounterConstraintKind::Fixed:
    return "fixed";
  case CounterConstraintKind::AnyProgrammable:
    return "any";
  case CounterConstraintKind::TripleOnly:
    return "triple";
  case CounterConstraintKind::PairOnly:
    return "pair";
  case CounterConstraintKind::Solo:
    return "solo";
  }
  assert(false && "unknown counter constraint");
  return "?";
}
