//===- power/RepeatedMeasurement.cpp - HCL statistical methodology -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/RepeatedMeasurement.h"

#include "support/ThreadPool.h"

#include <cassert>

using namespace slope;
using namespace slope::power;

MeasurementResult
power::measureRepeatedly(const std::function<double()> &Observe,
                         const MeasurementPolicy &Policy) {
  assert(Policy.MinRuns >= 2 && "need at least two runs for a CI");
  assert(Policy.MaxRuns >= Policy.MinRuns && "inconsistent run bounds");

  MeasurementResult Result;
  while (Result.Samples.size() < Policy.MaxRuns) {
    Result.Samples.push_back(Observe());
    if (Result.Samples.size() < Policy.MinRuns)
      continue;
    stats::MeanConfidenceInterval CI =
        stats::meanConfidenceInterval(Result.Samples, Policy.Confidence);
    Result.Mean = CI.Mean;
    Result.CiHalfWidth = CI.HalfWidth;
    if (CI.withinPrecision(Policy.PrecisionFraction)) {
      Result.Converged = true;
      break;
    }
  }
  Result.Runs = static_cast<unsigned>(Result.Samples.size());
  if (!Result.Converged && Result.Samples.size() >= 2) {
    stats::MeanConfidenceInterval CI =
        stats::meanConfidenceInterval(Result.Samples, Policy.Confidence);
    Result.Mean = CI.Mean;
    Result.CiHalfWidth = CI.HalfWidth;
  }
  return Result;
}

std::vector<MeasurementResult> power::measureAllRepeatedly(
    const std::vector<std::function<double()>> &Observables,
    const MeasurementPolicy &Policy) {
  // Each adaptive loop is inherently sequential (the stopping rule looks
  // at its own samples), but distinct observables share nothing, so the
  // batch fans out over the pool into disjoint result slots.
  std::vector<MeasurementResult> Results(Observables.size());
  parallelFor(0, Observables.size(), 1, [&](size_t I) {
    Results[I] = measureRepeatedly(Observables[I], Policy);
  });
  return Results;
}
