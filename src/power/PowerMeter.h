//===- power/PowerMeter.h - System power meter models -----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// System-level power measurement, standing in for the paper's WattsUp
/// Pro meters (periodically calibrated against a Yokogawa WT210). A meter
/// observes the machine's wall power — idle power plus the running
/// application's dynamic power profile — through sampling, quantization,
/// and sensor noise. Models are trained/validated against these readings,
/// which the paper treats as the ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_POWER_POWERMETER_H
#define SLOPE_POWER_POWERMETER_H

#include "sim/Machine.h"

#include <string>

namespace slope {
namespace power {

/// Abstract wall-power meter.
class PowerMeter {
public:
  virtual ~PowerMeter();

  /// Measures the total (static + dynamic) energy in joules consumed
  /// while \p Exec ran on \p M. Each call models a fresh measurement
  /// (fresh sampling alignment and sensor noise).
  virtual double measureTotalEnergyJ(const sim::Machine &M,
                                     const sim::Execution &Exec) = 0;

  /// Measures the idle machine's power (watts) by observing it for
  /// \p Seconds with no load. Used for static-power calibration.
  virtual double measureIdlePowerW(const sim::Machine &M,
                                   double Seconds) = 0;

  /// \returns a short device name.
  virtual std::string name() const = 0;
};

/// Configuration of the WattsUp Pro model.
struct WattsUpOptions {
  double SampleHz = 1.0;          ///< Device reports ~1 sample/second.
  double QuantizationW = 0.1;     ///< Reading resolution.
  double SensorNoiseFraction = 0.005; ///< Gaussian sigma, fraction of P.
  /// Calibration drift: multiplicative gain error, re-zeroed when the
  /// meters are calibrated against the revenue-grade reference.
  double GainError = 0.0;
};

/// WattsUp Pro: samples the power profile at ~1 Hz, quantizes to 0.1 W,
/// adds proportional sensor noise, and integrates samples over the run.
class WattsUpProMeter : public PowerMeter {
public:
  explicit WattsUpProMeter(WattsUpOptions Options = WattsUpOptions(),
                           uint64_t Seed = 0x3A77);

  double measureTotalEnergyJ(const sim::Machine &M,
                             const sim::Execution &Exec) override;
  double measureIdlePowerW(const sim::Machine &M, double Seconds) override;
  std::string name() const override { return "WattsUp Pro"; }

private:
  /// One noisy, quantized sample of an instantaneous power \p TrueW.
  double sample(double TrueW);

  WattsUpOptions Options;
  Rng MeterRng;
};

} // namespace power
} // namespace slope

#endif // SLOPE_POWER_POWERMETER_H
