//===- power/PowerMeter.cpp - System power meter models ----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/PowerMeter.h"

#include <cassert>
#include <cmath>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

// Out-of-line virtual anchor.
PowerMeter::~PowerMeter() = default;

WattsUpProMeter::WattsUpProMeter(WattsUpOptions Options, uint64_t Seed)
    : Options(Options), MeterRng(Seed) {
  assert(Options.SampleHz > 0 && "sampling rate must be positive");
}

double WattsUpProMeter::sample(double TrueW) {
  double Noisy = TrueW * (1.0 + Options.GainError) +
                 MeterRng.gaussian(0.0, Options.SensorNoiseFraction * TrueW);
  if (Options.QuantizationW <= 0)
    return Noisy;
  return std::round(Noisy / Options.QuantizationW) * Options.QuantizationW;
}

double WattsUpProMeter::measureTotalEnergyJ(const Machine &M,
                                            const Execution &Exec) {
  double Idle = M.platform().IdlePowerWatts;
  double Total = Exec.totalTimeSec();
  assert(Total > 0 && "execution with no duration");

  // Build the piecewise-constant power profile: per phase, idle power
  // plus that phase's average dynamic power.
  std::vector<double> PhaseEnd;
  std::vector<double> PhasePower;
  double T = 0;
  for (const ExecutionPhase &Phase : Exec.Phases) {
    double DynamicJ =
        M.energyModel().dynamicEnergyJoules(Phase.Activities);
    T += Phase.TimeSec;
    PhaseEnd.push_back(T);
    PhasePower.push_back(Idle + DynamicJ / Phase.TimeSec);
  }

  auto PowerAt = [&](double Time) {
    for (size_t I = 0; I < PhaseEnd.size(); ++I)
      if (Time < PhaseEnd[I])
        return PhasePower[I];
    return PhasePower.back();
  };

  // Sample at the device rate with a random phase offset; the reading is
  // the mean sampled power times the (precisely known) duration.
  double Dt = 1.0 / Options.SampleHz;
  double Offset = MeterRng.uniform() * Dt;
  double Sum = 0;
  size_t Count = 0;
  for (double Time = Offset; Time < Total; Time += Dt) {
    Sum += sample(PowerAt(Time));
    ++Count;
  }
  if (Count == 0) {
    // Sub-sample-period run: one reading mid-run is all the device sees.
    Sum = sample(PowerAt(Total / 2));
    Count = 1;
  }
  return Sum / static_cast<double>(Count) * Total;
}

double WattsUpProMeter::measureIdlePowerW(const Machine &M, double Seconds) {
  assert(Seconds > 0 && "idle observation needs a duration");
  double Idle = M.platform().IdlePowerWatts;
  double Dt = 1.0 / Options.SampleHz;
  double Sum = 0;
  size_t Count = 0;
  for (double Time = 0; Time < Seconds; Time += Dt) {
    Sum += sample(Idle);
    ++Count;
  }
  assert(Count > 0 && "no idle samples taken");
  return Sum / static_cast<double>(Count);
}
