//===- power/HclWattsUp.h - HCLWattsUp API facade ----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The programmatic energy-measurement API the paper uses (HCLWattsUp,
/// git.ucd.ie/hcl/hclwattsup): wraps a power meter and the machine under
/// test, calibrates static power, and reports per-run total and dynamic
/// energy, E_D = E_T - P_S * T_E (Sect. 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_POWER_HCLWATTSUP_H
#define SLOPE_POWER_HCLWATTSUP_H

#include "power/PowerMeter.h"
#include "power/RepeatedMeasurement.h"

#include <memory>

namespace slope {
namespace power {

/// One measured application run.
struct EnergyReading {
  double TotalEnergyJ = 0;
  double DynamicEnergyJ = 0;
  double TimeSec = 0;
};

/// Energy-measurement facade combining a Machine and a PowerMeter.
class HclWattsUp {
public:
  /// Creates the facade and calibrates static power by observing the
  /// idle machine for \p CalibrationSeconds.
  HclWattsUp(sim::Machine &M, std::unique_ptr<PowerMeter> Meter,
             double CalibrationSeconds = 60.0);

  /// \returns the calibrated static (idle) power in watts.
  double staticPowerW() const { return StaticPowerW; }

  /// Measures one fresh run of \p App.
  EnergyReading measureRun(const sim::CompoundApplication &App);

  /// Computes the reading for an already-performed execution (used when
  /// PMCs and energy must come from the same run).
  EnergyReading readingFor(const sim::Execution &Exec);

  /// Readings for a batch of already-performed executions, in order. The
  /// meter is stateful (its sampling RNG advances per reading), so batch
  /// campaigns funnel all their readings through this one serial scan to
  /// stay bit-identical to reading each execution as it finishes.
  std::vector<EnergyReading> readingsFor(const std::vector<sim::Execution> &Execs);

  /// Measures the dynamic energy of \p App with the repeated-runs
  /// methodology; \returns the converged sample-mean summary.
  MeasurementResult measureDynamicEnergy(const sim::CompoundApplication &App,
                                         const MeasurementPolicy &Policy = {});

  sim::Machine &machine() { return M; }

private:
  sim::Machine &M;
  std::unique_ptr<PowerMeter> Meter;
  double StaticPowerW = 0;
};

} // namespace power
} // namespace slope

#endif // SLOPE_POWER_HCLWATTSUP_H
