//===- power/HclWattsUp.cpp - HCLWattsUp API facade ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/HclWattsUp.h"

#include <cassert>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

HclWattsUp::HclWattsUp(Machine &M, std::unique_ptr<PowerMeter> Meter,
                       double CalibrationSeconds)
    : M(M), Meter(std::move(Meter)) {
  assert(this->Meter && "HclWattsUp needs a power meter");
  StaticPowerW = this->Meter->measureIdlePowerW(M, CalibrationSeconds);
}

EnergyReading HclWattsUp::readingFor(const Execution &Exec) {
  EnergyReading Reading;
  Reading.TimeSec = Exec.totalTimeSec();
  Reading.TotalEnergyJ = Meter->measureTotalEnergyJ(M, Exec);
  Reading.DynamicEnergyJ =
      Reading.TotalEnergyJ - StaticPowerW * Reading.TimeSec;
  return Reading;
}

std::vector<EnergyReading>
HclWattsUp::readingsFor(const std::vector<Execution> &Execs) {
  std::vector<EnergyReading> Readings;
  Readings.reserve(Execs.size());
  for (const Execution &Exec : Execs)
    Readings.push_back(readingFor(Exec));
  return Readings;
}

EnergyReading HclWattsUp::measureRun(const CompoundApplication &App) {
  Execution Exec = M.run(App);
  return readingFor(Exec);
}

MeasurementResult
HclWattsUp::measureDynamicEnergy(const CompoundApplication &App,
                                 const MeasurementPolicy &Policy) {
  return measureRepeatedly(
      [this, &App]() { return measureRun(App).DynamicEnergyJ; }, Policy);
}
