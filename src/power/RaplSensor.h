//===- power/RaplSensor.h - On-chip energy sensor model ----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAPL-style on-chip energy counters — the paper's "second approach"
/// to energy measurement, of which it notes there are "no definitive
/// research works proving its accuracy". The sensor model makes that
/// concern concrete: per-domain (core vs DRAM) energy estimates carry
/// systematic gain biases and the package counter misses PSU/board
/// losses, so models trained against it inherit a bias relative to the
/// wall-meter ground truth. bench_sensor_comparison quantifies it.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_POWER_RAPLSENSOR_H
#define SLOPE_POWER_RAPLSENSOR_H

#include "power/PowerMeter.h"

namespace slope {
namespace power {

/// Bias/noise parameters of the on-chip sensor model.
struct RaplOptions {
  /// Multiplicative gain of the core-domain energy model.
  double CoreGain = 1.05;
  /// Multiplicative gain of the DRAM-domain energy model (RAPL DRAM
  /// plane famously under-reports on many parts).
  double DramGain = 0.82;
  /// Fraction of wall idle power visible to the package counter (the
  /// rest is PSU loss, fans, and board components outside the socket).
  double IdleVisibleFraction = 0.80;
  /// Counter-update noise (lognormal sigma); tiny — the weakness of the
  /// sensor is bias, not variance.
  double NoiseSigma = 0.002;
};

/// On-chip sensor: practically continuous sampling, near-zero variance,
/// but domain-model bias. Reports the energy the *package* believes it
/// spent, not what the wall sees.
class RaplSensor : public PowerMeter {
public:
  explicit RaplSensor(RaplOptions Options = RaplOptions(),
                      uint64_t Seed = 0x8A91);

  double measureTotalEnergyJ(const sim::Machine &M,
                             const sim::Execution &Exec) override;
  double measureIdlePowerW(const sim::Machine &M, double Seconds) override;
  std::string name() const override { return "RAPL (on-chip)"; }

private:
  RaplOptions Options;
  Rng SensorRng;
};

} // namespace power
} // namespace slope

#endif // SLOPE_POWER_RAPLSENSOR_H
