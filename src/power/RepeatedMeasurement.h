//===- power/RepeatedMeasurement.h - HCL statistical methodology -*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repeated-measurement methodology the paper follows ("a sample mean
/// for a response variable is obtained from several experimental runs"):
/// repeat an experiment until the Student-t confidence interval of the
/// sample mean is within a target precision, within bounded repetitions.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_POWER_REPEATEDMEASUREMENT_H
#define SLOPE_POWER_REPEATEDMEASUREMENT_H

#include "stats/StudentT.h"

#include <functional>
#include <vector>

namespace slope {
namespace power {

/// Stopping rule parameters for the measurement loop.
struct MeasurementPolicy {
  unsigned MinRuns = 3;
  unsigned MaxRuns = 30;
  double Confidence = 0.95;
  /// Stop once the CI half-width is within this fraction of |mean|.
  double PrecisionFraction = 0.025;
};

/// Result of a repeated measurement.
struct MeasurementResult {
  double Mean = 0;
  double CiHalfWidth = 0;
  unsigned Runs = 0;
  bool Converged = false; ///< Precision reached before MaxRuns.
  std::vector<double> Samples;
};

/// Runs \p Observe repeatedly under \p Policy and \returns the summary.
/// \p Observe is invoked once per experimental run.
MeasurementResult measureRepeatedly(const std::function<double()> &Observe,
                                    const MeasurementPolicy &Policy = {});

/// Runs many independent repeated measurements concurrently on the global
/// thread pool, one adaptive measureRepeatedly loop per observable, and
/// \returns the summaries in input order. Each observable must be
/// self-contained (own any randomness via Rng::fork so streams do not
/// interleave); results are then bit-identical to measuring serially.
std::vector<MeasurementResult>
measureAllRepeatedly(const std::vector<std::function<double()>> &Observables,
                     const MeasurementPolicy &Policy = {});

} // namespace power
} // namespace slope

#endif // SLOPE_POWER_REPEATEDMEASUREMENT_H
