//===- power/RaplSensor.cpp - On-chip energy sensor model -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "power/RaplSensor.h"

#include <cassert>

using namespace slope;
using namespace slope::power;
using namespace slope::sim;

RaplSensor::RaplSensor(RaplOptions Options, uint64_t Seed)
    : Options(Options), SensorRng(Seed) {
  assert(Options.CoreGain > 0 && Options.DramGain > 0 &&
         "sensor gains must be positive");
}

double RaplSensor::measureTotalEnergyJ(const Machine &M,
                                       const Execution &Exec) {
  // Per-domain energies from the machine's true activity, each through
  // its biased counter model. The overlap term belongs to the shared
  // rails; the package counter attributes it to the core domain.
  double CoreJ = 0, DramJ = 0;
  for (const ExecutionPhase &Phase : Exec.Phases) {
    EnergyModel::EnergySplit Split =
        M.energyModel().dynamicEnergySplit(Phase.Activities);
    CoreJ += (Split.ComputeJ - Split.OverlapJ) * Options.CoreGain;
    DramJ += Split.MemoryJ * Options.DramGain;
  }
  double IdleJ = M.platform().IdlePowerWatts * Options.IdleVisibleFraction *
                 Exec.totalTimeSec();
  double Total = (CoreJ + DramJ + IdleJ) *
                 SensorRng.lognormalFactor(Options.NoiseSigma);
  return Total;
}

double RaplSensor::measureIdlePowerW(const Machine &M, double Seconds) {
  assert(Seconds > 0 && "idle observation needs a duration");
  return M.platform().IdlePowerWatts * Options.IdleVisibleFraction *
         SensorRng.lognormalFactor(Options.NoiseSigma);
}
