//===- ml/NeuralNetwork.cpp - Multilayer perceptron --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/NeuralNetwork.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace slope;
using namespace slope::ml;

const char *ml::activationName(Activation A) {
  switch (A) {
  case Activation::Identity:
    return "identity";
  case Activation::ReLU:
    return "relu";
  case Activation::Tanh:
    return "tanh";
  }
  assert(false && "unknown activation");
  return "?";
}

double NeuralNetwork::applyTransfer(double X) const {
  switch (Options.Transfer) {
  case Activation::Identity:
    return X;
  case Activation::ReLU:
    return X > 0 ? X : 0;
  case Activation::Tanh:
    return std::tanh(X);
  }
  assert(false && "unknown activation");
  return X;
}

double NeuralNetwork::transferDerivative(double PreAct) const {
  switch (Options.Transfer) {
  case Activation::Identity:
    return 1;
  case Activation::ReLU:
    return PreAct > 0 ? 1 : 0;
  case Activation::Tanh: {
    double T = std::tanh(PreAct);
    return 1 - T * T;
  }
  }
  assert(false && "unknown activation");
  return 1;
}

void NeuralNetwork::forward(const std::vector<double> &Input,
                            std::vector<std::vector<double>> &PreActs,
                            std::vector<std::vector<double>> &Acts) const {
  PreActs.resize(Layers.size());
  Acts.resize(Layers.size() + 1);
  Acts[0] = Input;
  for (size_t L = 0; L < Layers.size(); ++L) {
    const Layer &Lay = Layers[L];
    PreActs[L].assign(Lay.OutDim, 0.0);
    for (size_t O = 0; O < Lay.OutDim; ++O) {
      double Sum = Lay.Bias[O];
      const double *WRow = &Lay.Weights[O * Lay.InDim];
      for (size_t I = 0; I < Lay.InDim; ++I)
        Sum += WRow[I] * Acts[L][I];
      PreActs[L][O] = Sum;
    }
    Acts[L + 1].assign(Lay.OutDim, 0.0);
    bool IsOutput = (L + 1 == Layers.size());
    for (size_t O = 0; O < Lay.OutDim; ++O)
      // The output unit is always linear for regression.
      Acts[L + 1][O] = IsOutput ? PreActs[L][O] : applyTransfer(PreActs[L][O]);
  }
}

Expected<bool> NeuralNetwork::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit a network on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a network without features");

  size_t N = Training.numRows();
  size_t D = Training.numFeatures();

  // Standardize features and target; constant columns get Std 1 so they
  // become exactly zero after centering. Columns are independent, so the
  // per-column statistics parallelize over disjoint slots; within a column
  // the accumulation order is row order regardless of thread count, so the
  // standardization is bit-identical to a serial pass.
  FeatureMean.assign(D, 0.0);
  FeatureStd.assign(D, 1.0);
  parallelFor(0, D, 1, [&](size_t C) {
    const double *Col = Training.column(C);
    double Sum = 0;
    for (size_t R = 0; R < N; ++R)
      Sum += Col[R];
    FeatureMean[C] = Sum / static_cast<double>(N);
    double Sq = 0;
    for (size_t R = 0; R < N; ++R) {
      double Dx = Col[R] - FeatureMean[C];
      Sq += Dx * Dx;
    }
    double Std = std::sqrt(Sq / static_cast<double>(N));
    FeatureStd[C] = Std > 1e-12 ? Std : 1.0;
  });
  {
    double Sum = std::accumulate(Training.targets().begin(),
                                 Training.targets().end(), 0.0);
    TargetMean = Sum / static_cast<double>(N);
    double Sq = 0;
    for (double Y : Training.targets()) {
      double Dy = Y - TargetMean;
      Sq += Dy * Dy;
    }
    double Std = std::sqrt(Sq / static_cast<double>(N));
    TargetStd = Std > 1e-12 ? Std : 1.0;
  }

  // Minibatch prep: the standardized design matrix the epoch loop shuffles
  // indices into. Rows are disjoint, so this parallelizes cleanly.
  std::vector<std::vector<double>> Xs(N, std::vector<double>(D));
  std::vector<double> Ys(N);
  parallelFor(0, N, 64, [&](size_t R) {
    for (size_t C = 0; C < D; ++C)
      Xs[R][C] = (Training.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
    Ys[R] = (Training.target(R) - TargetMean) / TargetStd;
  });

  // Build layers: D -> hidden... -> 1, Glorot-uniform initialization.
  Rng NetRng(Options.Seed);
  std::vector<size_t> Dims;
  Dims.push_back(D);
  for (size_t H : Options.HiddenLayers) {
    assert(H > 0 && "hidden layer of width zero");
    Dims.push_back(H);
  }
  Dims.push_back(1);
  Layers.clear();
  for (size_t L = 0; L + 1 < Dims.size(); ++L) {
    Layer Lay;
    Lay.InDim = Dims[L];
    Lay.OutDim = Dims[L + 1];
    Lay.Weights.resize(Lay.InDim * Lay.OutDim);
    Lay.Bias.assign(Lay.OutDim, 0.0);
    double Limit = std::sqrt(6.0 / static_cast<double>(Lay.InDim + Lay.OutDim));
    for (double &W : Lay.Weights)
      W = NetRng.uniform(-Limit, Limit);
    Lay.MW.assign(Lay.Weights.size(), 0.0);
    Lay.VW.assign(Lay.Weights.size(), 0.0);
    Lay.MB.assign(Lay.OutDim, 0.0);
    Lay.VB.assign(Lay.OutDim, 0.0);
    Layers.push_back(std::move(Lay));
  }

  const double Beta1 = 0.9, Beta2 = 0.999, Eps = 1e-8;
  size_t BatchSize = std::min(Options.BatchSize, N);
  assert(BatchSize > 0 && "batch size must be positive");
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});

  std::vector<std::vector<double>> PreActs, Acts;
  // Per-layer gradient accumulators.
  std::vector<std::vector<double>> GradW(Layers.size()), GradB(Layers.size());
  uint64_t AdamStep = 0;

  for (unsigned Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    for (size_t I = N; I > 1; --I)
      std::swap(Order[I - 1], Order[NetRng.below(I)]);

    double EpochLoss = 0;
    for (size_t Start = 0; Start < N; Start += BatchSize) {
      size_t End = std::min(Start + BatchSize, N);
      double InvBatch = 1.0 / static_cast<double>(End - Start);
      for (size_t L = 0; L < Layers.size(); ++L) {
        GradW[L].assign(Layers[L].Weights.size(), 0.0);
        GradB[L].assign(Layers[L].OutDim, 0.0);
      }

      for (size_t P = Start; P < End; ++P) {
        size_t R = Order[P];
        forward(Xs[R], PreActs, Acts);
        double Pred = Acts.back()[0];
        double Err = Pred - Ys[R];
        EpochLoss += Err * Err;

        // Backpropagate dLoss/dPreAct layer by layer.
        std::vector<double> Delta(1, 2 * Err * InvBatch);
        for (size_t Lp1 = Layers.size(); Lp1 > 0; --Lp1) {
          size_t L = Lp1 - 1;
          Layer &Lay = Layers[L];
          bool IsOutput = (L + 1 == Layers.size());
          // Delta currently holds dLoss/dAct of layer L's output; convert
          // to dLoss/dPreAct (output layer is linear).
          if (!IsOutput)
            for (size_t O = 0; O < Lay.OutDim; ++O)
              Delta[O] *= transferDerivative(PreActs[L][O]);
          for (size_t O = 0; O < Lay.OutDim; ++O) {
            GradB[L][O] += Delta[O];
            double *GRow = &GradW[L][O * Lay.InDim];
            for (size_t In = 0; In < Lay.InDim; ++In)
              GRow[In] += Delta[O] * Acts[L][In];
          }
          if (L == 0)
            break;
          std::vector<double> Prev(Lay.InDim, 0.0);
          for (size_t O = 0; O < Lay.OutDim; ++O) {
            const double *WRow = &Lay.Weights[O * Lay.InDim];
            for (size_t In = 0; In < Lay.InDim; ++In)
              Prev[In] += WRow[In] * Delta[O];
          }
          Delta = std::move(Prev);
        }
      }

      // Adam update.
      ++AdamStep;
      double Corr1 = 1 - std::pow(Beta1, static_cast<double>(AdamStep));
      double Corr2 = 1 - std::pow(Beta2, static_cast<double>(AdamStep));
      for (size_t L = 0; L < Layers.size(); ++L) {
        Layer &Lay = Layers[L];
        for (size_t I = 0; I < Lay.Weights.size(); ++I) {
          double G = GradW[L][I] + Options.L2 * Lay.Weights[I];
          Lay.MW[I] = Beta1 * Lay.MW[I] + (1 - Beta1) * G;
          Lay.VW[I] = Beta2 * Lay.VW[I] + (1 - Beta2) * G * G;
          Lay.Weights[I] -= Options.LearningRate * (Lay.MW[I] / Corr1) /
                            (std::sqrt(Lay.VW[I] / Corr2) + Eps);
        }
        for (size_t O = 0; O < Lay.OutDim; ++O) {
          double G = GradB[L][O];
          Lay.MB[O] = Beta1 * Lay.MB[O] + (1 - Beta1) * G;
          Lay.VB[O] = Beta2 * Lay.VB[O] + (1 - Beta2) * G * G;
          Lay.Bias[O] -= Options.LearningRate * (Lay.MB[O] / Corr1) /
                         (std::sqrt(Lay.VB[O] / Corr2) + Eps);
        }
      }
    }
    FinalLoss = EpochLoss / static_cast<double>(N);
  }

  Fitted = true;
  return true;
}

double NeuralNetwork::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted network");
  assert(Features.size() == FeatureMean.size() &&
         "feature width does not match the fitted network");
  std::vector<double> X(Features.size());
  for (size_t C = 0; C < Features.size(); ++C)
    X[C] = (Features[C] - FeatureMean[C]) / FeatureStd[C];
  std::vector<std::vector<double>> PreActs, Acts;
  forward(X, PreActs, Acts);
  return Acts.back()[0] * TargetStd + TargetMean;
}

std::vector<double> NeuralNetwork::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted network");
  assert(Data.numFeatures() == FeatureMean.size() &&
         "feature width does not match the fitted network");
  size_t D = FeatureMean.size();
  std::vector<double> Out;
  Out.reserve(Data.numRows());
  // One standardization buffer and one set of forward-pass scratch arrays
  // reused across rows; each row performs exactly the operations predict()
  // performs, in the same order.
  std::vector<double> X(D);
  std::vector<std::vector<double>> PreActs, Acts;
  for (size_t R = 0; R < Data.numRows(); ++R) {
    for (size_t C = 0; C < D; ++C)
      X[C] = (Data.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
    forward(X, PreActs, Acts);
    Out.push_back(Acts.back()[0] * TargetStd + TargetMean);
  }
  return Out;
}
