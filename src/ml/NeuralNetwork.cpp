//===- ml/NeuralNetwork.cpp - Multilayer perceptron --------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/NeuralNetwork.h"

#include "stats/Matrix.h"
#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string_view>

using namespace slope;
using namespace slope::ml;

void (*ml::detail::NnFitPhaseProbe)(bool) = nullptr;

namespace {
NnAlgorithm initialNnAlgorithm() {
  if (const char *Env = std::getenv("SLOPE_NN_ALGO")) {
    if (std::string_view(Env) == "naive")
      return NnAlgorithm::Naive;
    if (std::string_view(Env) == "batched")
      return NnAlgorithm::Batched;
  }
  return NnAlgorithm::Batched;
}

NnAlgorithm GlobalNnAlgorithm = initialNnAlgorithm();
} // namespace

void ml::setDefaultNnAlgorithm(NnAlgorithm A) {
  assert(A != NnAlgorithm::Default && "the default cannot defer to itself");
  GlobalNnAlgorithm = A;
}

NnAlgorithm ml::defaultNnAlgorithm() { return GlobalNnAlgorithm; }

const char *ml::activationName(Activation A) {
  switch (A) {
  case Activation::Identity:
    return "identity";
  case Activation::ReLU:
    return "relu";
  case Activation::Tanh:
    return "tanh";
  }
  assert(false && "unknown activation");
  return "?";
}

double NeuralNetwork::applyTransfer(double X) const {
  switch (Options.Transfer) {
  case Activation::Identity:
    return X;
  case Activation::ReLU:
    return X > 0 ? X : 0;
  case Activation::Tanh:
    return std::tanh(X);
  }
  assert(false && "unknown activation");
  return X;
}

double NeuralNetwork::transferDerivative(double Act) const {
  switch (Options.Transfer) {
  case Activation::Identity:
    return 1;
  case Activation::ReLU:
    // ReLU(x) > 0 exactly when x > 0, so the stored activation decides
    // the gate bit-identically to the pre-activation.
    return Act > 0 ? 1 : 0;
  case Activation::Tanh:
    // The forward pass already computed tanh(x); 1 - a^2 equals the
    // recomputed 1 - tanh(x)^2 bit for bit, one transcendental cheaper.
    return 1 - Act * Act;
  }
  assert(false && "unknown activation");
  return 1;
}

void NeuralNetwork::forward(const double *Input,
                            std::vector<std::vector<double>> &Acts) const {
  Acts.resize(Layers.size() + 1);
  Acts[0].assign(Input, Input + (Layers.empty() ? 0 : Layers[0].InDim));
  for (size_t L = 0; L < Layers.size(); ++L) {
    const Layer &Lay = Layers[L];
    Acts[L + 1].assign(Lay.OutDim, 0.0);
    bool IsOutput = (L + 1 == Layers.size());
    for (size_t O = 0; O < Lay.OutDim; ++O) {
      double Sum = Lay.Bias[O];
      const double *WRow = &Lay.Weights[O * Lay.InDim];
      for (size_t I = 0; I < Lay.InDim; ++I)
        Sum += WRow[I] * Acts[L][I];
      // The output unit is always linear for regression.
      Acts[L + 1][O] = IsOutput ? Sum : applyTransfer(Sum);
    }
  }
}

void NeuralNetwork::applyAdamUpdate(
    const std::vector<std::vector<double>> &GradW,
    const std::vector<std::vector<double>> &GradB, uint64_t AdamStep) {
  const double Beta1 = 0.9, Beta2 = 0.999, Eps = 1e-8;
  double Corr1 = 1 - std::pow(Beta1, static_cast<double>(AdamStep));
  double Corr2 = 1 - std::pow(Beta2, static_cast<double>(AdamStep));
  // One dispatched element-wise kernel per parameter block (see
  // stats/SimdKernels.h: column-parallel, bit-identical to the loop it
  // replaced under every SIMD mode). Biases take L2 = 0: the bias
  // gradient was never regularized.
  for (size_t L = 0; L < Layers.size(); ++L) {
    Layer &Lay = Layers[L];
    stats::adamStep(Lay.Weights.data(), Lay.MW.data(), Lay.VW.data(),
                    GradW[L].data(), Lay.Weights.size(), Options.L2, Beta1,
                    Beta2, Corr1, Corr2, Options.LearningRate, Eps);
    stats::adamStep(Lay.Bias.data(), Lay.MB.data(), Lay.VB.data(),
                    GradB[L].data(), Lay.OutDim, /*L2=*/0.0, Beta1, Beta2,
                    Corr1, Corr2, Options.LearningRate, Eps);
  }
}

void NeuralNetwork::fitNaive(const double *Xs, const std::vector<double> &Ys,
                             Rng &NetRng, size_t N, size_t D) {
  size_t BatchSize = std::min(Options.BatchSize, N);
  assert(BatchSize > 0 && "batch size must be positive");
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});

  std::vector<std::vector<double>> Acts;
  // Per-layer gradient accumulators.
  std::vector<std::vector<double>> GradW(Layers.size()), GradB(Layers.size());
  uint64_t AdamStep = 0;

  for (unsigned Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    for (size_t I = N; I > 1; --I)
      std::swap(Order[I - 1], Order[NetRng.below(I)]);

    double EpochLoss = 0;
    for (size_t Start = 0; Start < N; Start += BatchSize) {
      size_t End = std::min(Start + BatchSize, N);
      double InvBatch = 1.0 / static_cast<double>(End - Start);
      for (size_t L = 0; L < Layers.size(); ++L) {
        GradW[L].assign(Layers[L].Weights.size(), 0.0);
        GradB[L].assign(Layers[L].OutDim, 0.0);
      }

      for (size_t P = Start; P < End; ++P) {
        size_t R = Order[P];
        forward(Xs + R * D, Acts);
        double Pred = Acts.back()[0];
        double Err = Pred - Ys[R];
        EpochLoss += Err * Err;

        // Backpropagate dLoss/dPreAct layer by layer.
        std::vector<double> Delta(1, 2 * Err * InvBatch);
        for (size_t Lp1 = Layers.size(); Lp1 > 0; --Lp1) {
          size_t L = Lp1 - 1;
          Layer &Lay = Layers[L];
          bool IsOutput = (L + 1 == Layers.size());
          // Delta currently holds dLoss/dAct of layer L's output; convert
          // to dLoss/dPreAct (output layer is linear).
          if (!IsOutput)
            for (size_t O = 0; O < Lay.OutDim; ++O)
              Delta[O] *= transferDerivative(Acts[L + 1][O]);
          for (size_t O = 0; O < Lay.OutDim; ++O) {
            GradB[L][O] += Delta[O];
            double *GRow = &GradW[L][O * Lay.InDim];
            for (size_t In = 0; In < Lay.InDim; ++In)
              GRow[In] += Delta[O] * Acts[L][In];
          }
          if (L == 0)
            break;
          std::vector<double> Prev(Lay.InDim, 0.0);
          for (size_t O = 0; O < Lay.OutDim; ++O) {
            const double *WRow = &Lay.Weights[O * Lay.InDim];
            for (size_t In = 0; In < Lay.InDim; ++In)
              Prev[In] += WRow[In] * Delta[O];
          }
          Delta = std::move(Prev);
        }
      }

      ++AdamStep;
      applyAdamUpdate(GradW, GradB, AdamStep);
    }
    FinalLoss = EpochLoss / static_cast<double>(N);
  }
}

void NeuralNetwork::fitBatched(const double *Xs, const std::vector<double> &Ys,
                               Rng &NetRng, size_t N, size_t D) {
  size_t BatchSize = std::min(Options.BatchSize, N);
  assert(BatchSize > 0 && "batch size must be positive");
  size_t NumLayers = Layers.size();

  // Per-fit training arena: every buffer the epoch loop touches is
  // allocated here, once. Activations are stored *sample-major*
  // (width x batch, sample S in column S) so every kernel's inner loop
  // runs contiguously over the minibatch instead of over the short layer
  // widths. Acts[0] is the gathered minibatch input (D x batch) and
  // Deltas[L] holds dLoss/dPreAct of layer L's outputs. A partial final
  // minibatch of B samples reinterprets the same flat buffers with row
  // stride B — every batch overwrites them in full, so no padding (and
  // no risk of stale ±0.0 columns leaking in).
  std::vector<std::vector<double>> Acts(NumLayers + 1), Deltas(NumLayers);
  Acts[0].assign(D * BatchSize, 0.0);
  for (size_t L = 0; L < NumLayers; ++L) {
    Acts[L + 1].assign(Layers[L].OutDim * BatchSize, 0.0);
    Deltas[L].assign(Layers[L].OutDim * BatchSize, 0.0);
  }
  std::vector<std::vector<double>> GradW(NumLayers), GradB(NumLayers);
  for (size_t L = 0; L < NumLayers; ++L) {
    GradW[L].assign(Layers[L].Weights.size(), 0.0);
    GradB[L].assign(Layers[L].OutDim, 0.0);
  }
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});
  uint64_t AdamStep = 0;

  if (detail::NnFitPhaseProbe)
    detail::NnFitPhaseProbe(true);

  for (unsigned Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    for (size_t I = N; I > 1; --I)
      std::swap(Order[I - 1], Order[NetRng.below(I)]);

    double EpochLoss = 0;
    for (size_t Start = 0; Start < N; Start += BatchSize) {
      size_t End = std::min(Start + BatchSize, N);
      size_t B = End - Start;
      double InvBatch = 1.0 / static_cast<double>(B);
      for (size_t L = 0; L < NumLayers; ++L) {
        std::fill(GradW[L].begin(), GradW[L].end(), 0.0);
        std::fill(GradB[L].begin(), GradB[L].end(), 0.0);
      }

      // Gather the shuffled minibatch, transposed: sample S is column S.
      for (size_t S = 0; S < B; ++S) {
        const double *Row = Xs + Order[Start + S] * D;
        for (size_t C = 0; C < D; ++C)
          Acts[0][C * B + S] = Row[C];
      }

      // Forward: broadcast each bias across its output row, then one
      // plain GEMM per layer — Weights (OutDim x InDim) times the
      // sample-major activations (InDim x B) — accumulating the weighted
      // inputs onto the bias in ascending input order, exactly the
      // per-sample kernel's accumulation. The transfer is applied in a
      // fused pass (the output layer stays linear, and Identity is
      // skipped because it is, well, the identity).
      for (size_t L = 0; L < NumLayers; ++L) {
        const Layer &Lay = Layers[L];
        double *Out = Acts[L + 1].data();
        for (size_t O = 0; O < Lay.OutDim; ++O)
          std::fill(Out + O * B, Out + (O + 1) * B, Lay.Bias[O]);
        stats::gemmAccumulate(Lay.Weights.data(), Acts[L].data(), Out,
                              Lay.OutDim, Lay.InDim, B);
        if (L + 1 < NumLayers && Options.Transfer != Activation::Identity)
          for (size_t I = 0; I < Lay.OutDim * B; ++I)
            Out[I] = applyTransfer(Out[I]);
      }

      // Loss and the output-layer delta, in ascending sample order (the
      // same order the per-sample loop adds its loss terms).
      const double *Pred = Acts[NumLayers].data(); // 1 x B
      double *DOut = Deltas[NumLayers - 1].data();
      for (size_t S = 0; S < B; ++S) {
        double Err = Pred[S] - Ys[Order[Start + S]];
        EpochLoss += Err * Err;
        DOut[S] = 2 * Err * InvBatch;
      }

      // Backward: convert dLoss/dAct to dLoss/dPreAct through the stored
      // activations, reduce each bias gradient over samples in ascending
      // order, form the weight gradient as one sample-contiguous GEMM
      // per layer (instead of per-sample outer products), and push the
      // delta down one layer with an output-ascending GEMM.
      for (size_t Lp1 = NumLayers; Lp1 > 0; --Lp1) {
        size_t L = Lp1 - 1;
        const Layer &Lay = Layers[L];
        double *DeltaL = Deltas[L].data();
        // Identity's derivative is exactly 1, so the conversion pass is
        // skipped outright (multiplying by 1.0 is bit-neutral), like the
        // forward pass skips the identity transfer itself.
        if (L + 1 != NumLayers &&
            Options.Transfer != Activation::Identity) {
          const double *ActL1 = Acts[L + 1].data();
          for (size_t I = 0; I < Lay.OutDim * B; ++I)
            DeltaL[I] *= transferDerivative(ActL1[I]);
        }
        // Bias gradients reduce each delta row over samples; the
        // dispatched sum keeps ascending order by default and K-splits
        // only under the explicit avx2 opt-in (see stats/SimdKernels.h).
        for (size_t O = 0; O < Lay.OutDim; ++O)
          GradB[L][O] += stats::sum(DeltaL + O * B, B);
        // GradW (OutDim x InDim) += DeltaL (OutDim x B) x Acts^T: both
        // operands stream sample-contiguous rows and every element dots
        // its samples in ascending order.
        stats::gemmBTransposedAccumulate(DeltaL, Acts[L].data(),
                                         GradW[L].data(), Lay.OutDim, B,
                                         Lay.InDim);
        if (L == 0)
          break;
        // Prev (InDim x B) = Weights^T (InDim x OutDim) x DeltaL: each
        // element accumulates its outputs in ascending order, as the
        // per-sample loop does.
        std::fill(Deltas[L - 1].begin(),
                  Deltas[L - 1].begin() +
                      static_cast<std::ptrdiff_t>(Lay.InDim * B),
                  0.0);
        stats::gemmATransposedAccumulate(Lay.Weights.data(), DeltaL,
                                         Deltas[L - 1].data(), Lay.InDim,
                                         Lay.OutDim, B);
      }

      ++AdamStep;
      applyAdamUpdate(GradW, GradB, AdamStep);
    }
    FinalLoss = EpochLoss / static_cast<double>(N);
  }

  if (detail::NnFitPhaseProbe)
    detail::NnFitPhaseProbe(false);
}

Expected<bool> NeuralNetwork::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit a network on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a network without features");

  size_t N = Training.numRows();
  size_t D = Training.numFeatures();

  // Standardize features and target; constant columns get Std 1 so they
  // become exactly zero after centering. Columns are independent, so the
  // per-column statistics parallelize over disjoint slots; within a column
  // the accumulation order is row order regardless of thread count, so the
  // standardization is bit-identical to a serial pass.
  FeatureMean.assign(D, 0.0);
  FeatureStd.assign(D, 1.0);
  parallelFor(0, D, 1, [&](size_t C) {
    const double *Col = Training.column(C);
    double Sum = 0;
    for (size_t R = 0; R < N; ++R)
      Sum += Col[R];
    FeatureMean[C] = Sum / static_cast<double>(N);
    double Sq = 0;
    for (size_t R = 0; R < N; ++R) {
      double Dx = Col[R] - FeatureMean[C];
      Sq += Dx * Dx;
    }
    double Std = std::sqrt(Sq / static_cast<double>(N));
    FeatureStd[C] = Std > 1e-12 ? Std : 1.0;
  });
  {
    double Sum = std::accumulate(Training.targets().begin(),
                                 Training.targets().end(), 0.0);
    TargetMean = Sum / static_cast<double>(N);
    double Sq = 0;
    for (double Y : Training.targets()) {
      double Dy = Y - TargetMean;
      Sq += Dy * Dy;
    }
    double Std = std::sqrt(Sq / static_cast<double>(N));
    TargetStd = Std > 1e-12 ? Std : 1.0;
  }

  // Minibatch prep: the standardized design matrix the epoch loop shuffles
  // indices into, stored flat row-major. Rows are disjoint, so this
  // parallelizes cleanly.
  std::vector<double> Xs(N * D);
  std::vector<double> Ys(N);
  parallelFor(0, N, 64, [&](size_t R) {
    for (size_t C = 0; C < D; ++C)
      Xs[R * D + C] = (Training.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
    Ys[R] = (Training.target(R) - TargetMean) / TargetStd;
  });

  // Build layers: D -> hidden... -> 1, Glorot-uniform initialization.
  Rng NetRng(Options.Seed);
  std::vector<size_t> Dims;
  Dims.push_back(D);
  for (size_t H : Options.HiddenLayers) {
    assert(H > 0 && "hidden layer of width zero");
    Dims.push_back(H);
  }
  Dims.push_back(1);
  Layers.clear();
  for (size_t L = 0; L + 1 < Dims.size(); ++L) {
    Layer Lay;
    Lay.InDim = Dims[L];
    Lay.OutDim = Dims[L + 1];
    Lay.Weights.resize(Lay.InDim * Lay.OutDim);
    Lay.Bias.assign(Lay.OutDim, 0.0);
    double Limit = std::sqrt(6.0 / static_cast<double>(Lay.InDim + Lay.OutDim));
    for (double &W : Lay.Weights)
      W = NetRng.uniform(-Limit, Limit);
    Lay.MW.assign(Lay.Weights.size(), 0.0);
    Lay.VW.assign(Lay.Weights.size(), 0.0);
    Lay.MB.assign(Lay.OutDim, 0.0);
    Lay.VB.assign(Lay.OutDim, 0.0);
    Layers.push_back(std::move(Lay));
  }

  NnAlgorithm Algo = Options.Algorithm == NnAlgorithm::Default
                         ? defaultNnAlgorithm()
                         : Options.Algorithm;
  {
    ScopedPhase Timer(Phase::NnFit);
    if (Algo == NnAlgorithm::Naive)
      fitNaive(Xs.data(), Ys, NetRng, N, D);
    else
      fitBatched(Xs.data(), Ys, NetRng, N, D);
  }

  Fitted = true;
  return true;
}

double NeuralNetwork::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted network");
  assert(Features.size() == FeatureMean.size() &&
         "feature width does not match the fitted network");
  std::vector<double> X(Features.size());
  for (size_t C = 0; C < Features.size(); ++C)
    X[C] = (Features[C] - FeatureMean[C]) / FeatureStd[C];
  std::vector<std::vector<double>> Acts;
  forward(X.data(), Acts);
  return Acts.back()[0] * TargetStd + TargetMean;
}

std::vector<double> NeuralNetwork::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted network");
  assert(Data.numFeatures() == FeatureMean.size() &&
         "feature width does not match the fitted network");
  size_t N = Data.numRows();
  size_t D = FeatureMean.size();
  if (N == 0)
    return {};
  // Whole-set batched forward with the same bias-seeded GEMM kernels the
  // trainer uses; each row runs exactly the operations predict()
  // performs, in the same order.
  stats::Matrix Cur(N, D);
  for (size_t R = 0; R < N; ++R) {
    double *Row = Cur.rowSpan(R);
    for (size_t C = 0; C < D; ++C)
      Row[C] = (Data.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
  }
  for (size_t L = 0; L < Layers.size(); ++L) {
    const Layer &Lay = Layers[L];
    stats::Matrix Next(N, Lay.OutDim);
    for (size_t R = 0; R < N; ++R)
      std::memcpy(Next.rowSpan(R), Lay.Bias.data(),
                  Lay.OutDim * sizeof(double));
    stats::gemmBTransposedAccumulate(Cur.data(), Lay.Weights.data(),
                                     Next.data(), N, Lay.InDim, Lay.OutDim);
    if (L + 1 < Layers.size() && Options.Transfer != Activation::Identity)
      for (size_t R = 0; R < N; ++R) {
        double *Row = Next.rowSpan(R);
        for (size_t O = 0; O < Lay.OutDim; ++O)
          Row[O] = applyTransfer(Row[O]);
      }
    Cur = std::move(Next);
  }
  std::vector<double> Out(N);
  for (size_t R = 0; R < N; ++R)
    Out[R] = Cur.rowSpan(R)[0] * TargetStd + TargetMean;
  return Out;
}
