//===- ml/RandomForest.h - Bagged regression forest -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random forest regression (Breiman 2001): bootstrap-sampled CART trees
/// with per-split feature subsampling, averaged predictions. The paper's
/// RF family (Table 4). Note the forest predicts within the convex hull of
/// training targets — it cannot extrapolate, which is exactly why compound
/// test applications (whose counters exceed the training range) produce
/// the large maximum errors the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_RANDOMFOREST_H
#define SLOPE_ML_RANDOMFOREST_H

#include "ml/DecisionTree.h"

#include <memory>

namespace slope {
namespace ml {

/// Hyper-parameters of a random forest.
struct RandomForestOptions {
  size_t NumTrees = 100;
  DecisionTreeOptions Tree;
  /// mtry as a fraction of the feature count (ceil); 1/3 is the classic
  /// regression default. Ignored if Tree.MaxFeatures != 0.
  double FeatureFraction = 1.0 / 3.0;
  uint64_t Seed = 0xF0535;
};

/// Bagged CART ensemble.
class RandomForest : public Model {
public:
  explicit RandomForest(RandomForestOptions Options = RandomForestOptions())
      : Options(Options) {}

  Expected<bool> fit(const Dataset &Training) override;
  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "RF"; }

  size_t numTrees() const { return Trees.size(); }

  /// The \p I-th fitted tree, in ensemble order. Valid after fit; used by
  /// QuantizedModel::build to flatten the ensemble into one node arena.
  const DecisionTree &tree(size_t I) const {
    assert(Fitted && I < Trees.size() && "tree index out of range");
    return *Trees[I];
  }

  /// Out-of-bag mean-squared error estimated during fit; NaN if no row was
  /// ever out of bag (tiny datasets).
  double oobMse() const {
    assert(Fitted && "model not fitted");
    return OobMse;
  }

private:
  RandomForestOptions Options;
  std::vector<std::unique_ptr<DecisionTree>> Trees;
  double OobMse = 0;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_RANDOMFOREST_H
