//===- ml/NeuralNetwork.h - Multilayer perceptron ---------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small multilayer perceptron for regression, trained with Adam on MSE.
/// The paper trains its NN with a *linear transfer function*, so the
/// default activation is Identity (the network is then a linear map
/// learned by SGD rather than by a solver); ReLU and Tanh are available
/// for the ablation bench. Inputs and the target are standardized
/// internally, and predictions are mapped back to the original scale.
///
/// Two training kernels produce identical networks:
///
///  * Batched (default): each minibatch runs as per-layer matrix kernels
///    over flat activation buffers — forward is one bias-seeded GEMM per
///    layer with a fused activation pass, and backprop computes every
///    weight gradient as one GEMM per layer instead of per-sample outer
///    products. All epoch-loop scratch lives in a preallocated per-fit
///    arena, so the epoch loop performs zero heap allocations after
///    setup.
///  * Naive (the seed implementation, kept as the reference and the
///    baseline for perf gates): per-sample forward/backprop with
///    per-sample scratch vectors.
///
/// Every GEMM accumulates each output element's contraction terms in
/// ascending index order, and gradient accumulators see their minibatch
/// samples in ascending sample order — exactly the order the per-sample
/// reference uses — so both kernels produce bit-identical weights, loss
/// curves, and predictions for any input, at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_NEURALNETWORK_H
#define SLOPE_ML_NEURALNETWORK_H

#include "ml/Model.h"
#include "support/Rng.h"

namespace slope {
namespace ml {

/// Hidden/output unit transfer function.
enum class Activation {
  Identity, ///< Linear transfer (paper default).
  ReLU,
  Tanh,
};

/// \returns a short printable name for \p A.
const char *activationName(Activation A);

/// Training-kernel selection (see file comment).
enum class NnAlgorithm {
  Default, ///< Use the process-wide default (batched unless overridden).
  Batched, ///< Minibatch GEMM kernels over a preallocated arena.
  Naive,   ///< Per-sample forward/backprop (seed kernel; reference).
};

/// Overrides the process-wide kernel used when options say Default.
/// The initial value honours the SLOPE_NN_ALGO environment variable
/// ("naive" or "batched"); benches expose it as --nn-algo.
void setDefaultNnAlgorithm(NnAlgorithm A);

/// \returns the process-wide default training kernel (never Default).
NnAlgorithm defaultNnAlgorithm();

/// Hyper-parameters of the MLP.
struct NeuralNetworkOptions {
  std::vector<size_t> HiddenLayers = {16};
  Activation Transfer = Activation::Identity;
  unsigned Epochs = 400;
  size_t BatchSize = 32;
  double LearningRate = 1e-2;
  double L2 = 1e-5;
  uint64_t Seed = 0xAE77;
  /// Training kernel; Default defers to defaultNnAlgorithm().
  NnAlgorithm Algorithm = NnAlgorithm::Default;
};

/// Multilayer perceptron regressor.
class NeuralNetwork : public Model {
public:
  explicit NeuralNetwork(NeuralNetworkOptions Options = NeuralNetworkOptions())
      : Options(Options) {}

  Expected<bool> fit(const Dataset &Training) override;
  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "NN"; }

  /// The configured transfer function. QuantizedModel::build folds
  /// identity-transfer networks (affine maps) to effective linear weights
  /// and refuses anything else.
  Activation transfer() const { return Options.Transfer; }

  /// Training MSE (standardized target units) after the final epoch.
  double finalTrainingLoss() const {
    assert(Fitted && "model not fitted");
    return FinalLoss;
  }

private:
  /// One dense layer: Weights is OutDim x InDim, Bias is OutDim.
  struct Layer {
    size_t InDim = 0, OutDim = 0;
    std::vector<double> Weights;
    std::vector<double> Bias;
    // Adam moments, same shapes as Weights/Bias.
    std::vector<double> MW, VW, MB, VB;
  };

  /// Per-sample forward pass over the standardized input row \p Input;
  /// fills the per-layer activations (Acts[0] is the input copy).
  void forward(const double *Input,
               std::vector<std::vector<double>> &Acts) const;

  /// Per-sample reference kernel (the seed epoch loop).
  void fitNaive(const double *Xs, const std::vector<double> &Ys,
                Rng &NetRng, size_t N, size_t D);

  /// Minibatch GEMM kernel over a preallocated arena (see file comment).
  void fitBatched(const double *Xs, const std::vector<double> &Ys,
                  Rng &NetRng, size_t N, size_t D);

  /// One Adam update from the accumulated minibatch gradients; shared by
  /// both kernels so their parameter updates cannot drift apart.
  void applyAdamUpdate(const std::vector<std::vector<double>> &GradW,
                       const std::vector<std::vector<double>> &GradB,
                       uint64_t AdamStep);

  double applyTransfer(double X) const;

  /// Transfer derivative from the *stored activation value* (not the
  /// pre-activation): Identity -> 1, ReLU -> [A > 0], Tanh -> 1 - A^2.
  /// Equal to the pre-activation form bit for bit, one transcendental
  /// cheaper for Tanh.
  double transferDerivative(double Act) const;

  NeuralNetworkOptions Options;
  std::vector<Layer> Layers;
  // Standardization parameters captured at fit time.
  std::vector<double> FeatureMean, FeatureStd;
  double TargetMean = 0, TargetStd = 1;
  double FinalLoss = 0;
  bool Fitted = false;
};

namespace detail {
/// Test hook bracketing the batched epoch loop: called with true right
/// after the per-fit arena setup completes and with false when training
/// finishes. The allocation-count test uses it to assert the loop itself
/// performs zero heap allocations. Null (disabled) by default.
extern void (*NnFitPhaseProbe)(bool Entering);
} // namespace detail

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_NEURALNETWORK_H
