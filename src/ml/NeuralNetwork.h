//===- ml/NeuralNetwork.h - Multilayer perceptron ---------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small multilayer perceptron for regression, trained with Adam on MSE.
/// The paper trains its NN with a *linear transfer function*, so the
/// default activation is Identity (the network is then a linear map
/// learned by SGD rather than by a solver); ReLU and Tanh are available
/// for the ablation bench. Inputs and the target are standardized
/// internally, and predictions are mapped back to the original scale.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_NEURALNETWORK_H
#define SLOPE_ML_NEURALNETWORK_H

#include "ml/Model.h"
#include "support/Rng.h"

namespace slope {
namespace ml {

/// Hidden/output unit transfer function.
enum class Activation {
  Identity, ///< Linear transfer (paper default).
  ReLU,
  Tanh,
};

/// \returns a short printable name for \p A.
const char *activationName(Activation A);

/// Hyper-parameters of the MLP.
struct NeuralNetworkOptions {
  std::vector<size_t> HiddenLayers = {16};
  Activation Transfer = Activation::Identity;
  unsigned Epochs = 400;
  size_t BatchSize = 32;
  double LearningRate = 1e-2;
  double L2 = 1e-5;
  uint64_t Seed = 0xAE77;
};

/// Multilayer perceptron regressor.
class NeuralNetwork : public Model {
public:
  explicit NeuralNetwork(NeuralNetworkOptions Options = NeuralNetworkOptions())
      : Options(Options) {}

  Expected<bool> fit(const Dataset &Training) override;
  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "NN"; }

  /// Training MSE (standardized target units) after the final epoch.
  double finalTrainingLoss() const {
    assert(Fitted && "model not fitted");
    return FinalLoss;
  }

private:
  /// One dense layer: Weights is OutDim x InDim, Bias is OutDim.
  struct Layer {
    size_t InDim = 0, OutDim = 0;
    std::vector<double> Weights;
    std::vector<double> Bias;
    // Adam moments, same shapes as Weights/Bias.
    std::vector<double> MW, VW, MB, VB;
  };

  /// Forward pass; fills per-layer pre-activations and activations.
  void forward(const std::vector<double> &Input,
               std::vector<std::vector<double>> &PreActs,
               std::vector<std::vector<double>> &Acts) const;

  double applyTransfer(double X) const;
  double transferDerivative(double PreAct) const;

  NeuralNetworkOptions Options;
  std::vector<Layer> Layers;
  // Standardization parameters captured at fit time.
  std::vector<double> FeatureMean, FeatureStd;
  double TargetMean = 0, TargetStd = 1;
  double FinalLoss = 0;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_NEURALNETWORK_H
