//===- ml/KnnRegressor.h - Nearest-neighbour energy model -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// k-nearest-neighbour regression in standardized PMC space — the
/// Manila-style baseline from the paper's related work ("construct a
/// densely populated multi-dimensional space of PMCs and predict the
/// energy consumption of platform using a nearest neighborhood search
/// algorithm", Mair et al.). Included so the bench suite can compare the
/// paper's three families against this fourth literature approach.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_KNNREGRESSOR_H
#define SLOPE_ML_KNNREGRESSOR_H

#include "ml/Model.h"

#include <utility>

namespace slope {
namespace ml {

/// Hyper-parameters of the k-NN model.
struct KnnOptions {
  size_t K = 5;
  /// Weight neighbours by inverse distance instead of uniformly.
  bool DistanceWeighted = true;
};

/// k-nearest-neighbour regressor over standardized features.
class KnnRegressor : public Model {
public:
  explicit KnnRegressor(KnnOptions Options = KnnOptions())
      : Options(Options) {}

  Expected<bool> fit(const Dataset &Training) override;
  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "kNN"; }

  /// \returns the effective neighbourhood size (K clamped to the
  /// training size). Valid after fit.
  size_t effectiveK() const {
    assert(Fitted && "model not fitted");
    return std::min(Options.K, Targets.size());
  }

  const KnnOptions &options() const { return Options; }

  /// Fitted state read by QuantizedModel::build, which re-quantizes the
  /// standardized space. All valid after fit.
  const std::vector<double> &standardizedRows() const {
    assert(Fitted && "model not fitted");
    return Rows;
  }
  const std::vector<double> &trainingTargets() const {
    assert(Fitted && "model not fitted");
    return Targets;
  }
  const std::vector<double> &featureMeans() const {
    assert(Fitted && "model not fitted");
    return FeatureMean;
  }
  const std::vector<double> &featureStds() const {
    assert(Fitted && "model not fitted");
    return FeatureStd;
  }

private:
  /// Neighbourhood vote over one standardized query row; \p Distances is
  /// caller-owned scratch so batch prediction reuses one buffer.
  double predictStandardized(
      const double *Query,
      std::vector<std::pair<double, size_t>> &Distances) const;

  KnnOptions Options;
  /// Standardized training rows, flat row-major (numRows x numFeatures).
  std::vector<double> Rows;
  std::vector<double> Targets;
  std::vector<double> FeatureMean, FeatureStd;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_KNNREGRESSOR_H
