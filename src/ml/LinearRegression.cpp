//===- ml/LinearRegression.cpp - Linear energy models ----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/LinearRegression.h"

#include "stats/Nnls.h"
#include "stats/Solve.h"

using namespace slope;
using namespace slope::ml;

Expected<bool> LinearRegression::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit a linear model on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a linear model without features");

  // With an intercept, the design matrix carries a leading constant-1
  // column whose coefficient becomes the intercept afterwards; it is
  // assembled straight from the columnar store.
  stats::Matrix X = Training.designMatrix(!Options.ZeroIntercept);

  std::vector<double> Beta;
  if (Options.NonNegative) {
    auto Solution = stats::solveNnls(X, Training.targets(), Options.Lambda);
    if (!Solution)
      return Solution.error();
    Beta = std::move(Solution->X);
  } else {
    auto Solution = Options.Lambda > 0
                        ? stats::solveNormalEquations(X, Training.targets(),
                                                      Options.Lambda)
                        : stats::solveLeastSquaresQR(X, Training.targets());
    if (!Solution)
      return Solution.error();
    Beta = Solution.takeValue();
  }

  if (Options.ZeroIntercept) {
    Intercept = 0;
    Coefficients = std::move(Beta);
  } else {
    Intercept = Beta.front();
    Coefficients.assign(Beta.begin() + 1, Beta.end());
  }
  Fitted = true;
  return true;
}

double LinearRegression::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted model");
  assert(Features.size() == Coefficients.size() &&
         "feature width does not match the fitted model");
  double Sum = Intercept;
  for (size_t C = 0; C < Features.size(); ++C)
    Sum += Coefficients[C] * Features[C];
  return Sum;
}

std::vector<double> LinearRegression::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted model");
  assert(Data.numFeatures() == Coefficients.size() &&
         "feature width does not match the fitted model");
  // Accumulate per row in ascending feature order — the same order as
  // predict() — streaming each column once.
  std::vector<double> Out(Data.numRows(), Intercept);
  for (size_t C = 0; C < Coefficients.size(); ++C) {
    const double *Col = Data.column(C);
    double W = Coefficients[C];
    for (size_t R = 0; R < Out.size(); ++R)
      Out[R] += W * Col[R];
  }
  return Out;
}
