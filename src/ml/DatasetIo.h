//===- ml/DatasetIo.h - Dataset CSV import/export ----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of datasets so experiment data can be archived,
/// diffed, and post-processed outside the harness. The format is one
/// column per feature (named like the PMCs) plus a final
/// "dynamic_energy_j" target column.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_DATASETIO_H
#define SLOPE_ML_DATASETIO_H

#include "ml/Dataset.h"
#include "support/Expected.h"

#include <string>

namespace slope {
namespace ml {

/// The target column's name in serialized datasets.
inline constexpr const char *TargetColumnName = "dynamic_energy_j";

/// Serializes \p Data to CSV text (features..., dynamic_energy_j).
std::string datasetToCsv(const Dataset &Data);

/// Writes \p Data to \p Path. \returns an error on I/O failure.
Expected<bool> writeDatasetCsv(const Dataset &Data, const std::string &Path);

/// Parses a dataset from CSV text produced by datasetToCsv (the last
/// column is the target regardless of its name). \returns an error on
/// malformed CSV, fewer than two columns, or non-numeric cells.
Expected<Dataset> datasetFromCsv(const std::string &Text);

/// Reads a dataset from \p Path.
Expected<Dataset> readDatasetCsv(const std::string &Path);

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_DATASETIO_H
