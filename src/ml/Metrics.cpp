//===- ml/Metrics.cpp - Model evaluation metrics ----------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Metrics.h"

#include <cassert>
#include <cmath>
#include <numeric>

using namespace slope;
using namespace slope::ml;

double ml::mse(const std::vector<double> &Predicted,
               const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && !Predicted.empty() &&
         "metric over mismatched or empty vectors");
  double Sum = 0;
  for (size_t I = 0; I < Predicted.size(); ++I) {
    double E = Predicted[I] - Actual[I];
    Sum += E * E;
  }
  return Sum / static_cast<double>(Predicted.size());
}

double ml::mae(const std::vector<double> &Predicted,
               const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && !Predicted.empty() &&
         "metric over mismatched or empty vectors");
  double Sum = 0;
  for (size_t I = 0; I < Predicted.size(); ++I)
    Sum += std::fabs(Predicted[I] - Actual[I]);
  return Sum / static_cast<double>(Predicted.size());
}

double ml::r2(const std::vector<double> &Predicted,
              const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && Predicted.size() >= 2 &&
         "R^2 needs at least two paired points");
  double Mean = std::accumulate(Actual.begin(), Actual.end(), 0.0) /
                static_cast<double>(Actual.size());
  double SsRes = 0, SsTot = 0;
  for (size_t I = 0; I < Actual.size(); ++I) {
    SsRes += (Actual[I] - Predicted[I]) * (Actual[I] - Predicted[I]);
    SsTot += (Actual[I] - Mean) * (Actual[I] - Mean);
  }
  if (SsTot == 0)
    return SsRes == 0 ? 1.0 : 0.0;
  return 1 - SsRes / SsTot;
}

stats::ErrorSummary ml::evaluateModel(const Model &M, const Dataset &Test) {
  assert(Test.numRows() > 0 && "evaluating on an empty test set");
  return stats::predictionErrorSummary(M.predictBatch(Test), Test.targets());
}

double
ml::kFoldAvgError(const Dataset &Data, unsigned K, uint64_t Seed,
                  const std::function<std::unique_ptr<Model>()> &MakeModel) {
  assert(K >= 2 && "cross validation needs at least two folds");
  assert(Data.numRows() >= K && "fewer rows than folds");

  // Deterministic shuffled fold assignment.
  std::vector<size_t> Order(Data.numRows());
  std::iota(Order.begin(), Order.end(), size_t{0});
  Rng FoldRng(Seed);
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[FoldRng.below(I)]);

  double TotalError = 0;
  size_t TotalPoints = 0;
  for (unsigned Fold = 0; Fold < K; ++Fold) {
    std::vector<size_t> TrainIdx, TestIdx;
    for (size_t I = 0; I < Order.size(); ++I) {
      if (I % K == Fold)
        TestIdx.push_back(Order[I]);
      else
        TrainIdx.push_back(Order[I]);
    }
    Dataset Train = Data.selectRows(TrainIdx);
    Dataset Test = Data.selectRows(TestIdx);
    auto M = MakeModel();
    auto Fit = M->fit(Train);
    assert(Fit && "cross-validation fold failed to fit");
    (void)Fit;
    stats::ErrorSummary S = evaluateModel(*M, Test);
    TotalError += S.Avg * static_cast<double>(Test.numRows());
    TotalPoints += Test.numRows();
  }
  return TotalError / static_cast<double>(TotalPoints);
}
