//===- ml/Dataset.cpp - Feature/target dataset -----------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <algorithm>
#include <numeric>

using namespace slope;
using namespace slope::ml;

void Dataset::addRow(const std::vector<double> &Features, double Target) {
  assert(Features.size() == FeatureNames.size() &&
         "feature vector width does not match the schema");
  for (size_t C = 0; C < Columns.size(); ++C)
    Columns[C].push_back(Features[C]);
  Targets.push_back(Target);
}

void Dataset::addRow(const double *Features, double Target) {
  for (size_t C = 0; C < Columns.size(); ++C)
    Columns[C].push_back(Features[C]);
  Targets.push_back(Target);
}

void Dataset::reserveRows(size_t NumRows) {
  for (AlignedBuffer<double> &Col : Columns)
    Col.reserve(NumRows);
  Targets.reserve(NumRows);
}

void Dataset::clearRows() {
  for (AlignedBuffer<double> &Col : Columns)
    Col.clear();
  Targets.clear();
}

std::vector<double> Dataset::row(size_t R) const {
  std::vector<double> Out;
  gatherRow(R, Out);
  return Out;
}

void Dataset::gatherRow(size_t R, std::vector<double> &Out) const {
  assert(R < Targets.size() && "row index out of range");
  Out.resize(Columns.size());
  for (size_t C = 0; C < Columns.size(); ++C)
    Out[C] = Columns[C][R];
}

stats::Matrix Dataset::featureMatrix() const { return designMatrix(false); }

stats::Matrix Dataset::designMatrix(bool IncludeOnes) const {
  const size_t Ones = IncludeOnes ? 1 : 0;
  stats::Matrix M(numRows(), numFeatures() + Ones);
  if (IncludeOnes)
    for (size_t R = 0; R < Targets.size(); ++R)
      M.at(R, 0) = 1.0;
  for (size_t C = 0; C < Columns.size(); ++C) {
    const double *Col = Columns[C].data();
    for (size_t R = 0; R < Targets.size(); ++R)
      M.at(R, C + Ones) = Col[R];
  }
  return M;
}

size_t Dataset::indexOfFeature(const std::string &Name) const {
  for (size_t C = 0; C < FeatureNames.size(); ++C)
    if (FeatureNames[C] == Name)
      return C;
  return FeatureNames.size();
}

Dataset Dataset::selectFeatures(const std::vector<std::string> &Names) const {
  Dataset Out(Names);
  // Columnar storage: the subset is a straight copy of whole columns plus
  // the shared target array — no per-row rebuild.
  for (size_t I = 0; I < Names.size(); ++I) {
    size_t C = indexOfFeature(Names[I]);
    assert(C < FeatureNames.size() && "selecting an unknown feature");
    Out.Columns[I] = Columns[C];
  }
  Out.Targets = Targets;
  return Out;
}

Dataset Dataset::selectRows(const std::vector<size_t> &Indices) const {
  Dataset Out(FeatureNames);
  Out.reserveRows(Indices.size());
  for (size_t C = 0; C < Columns.size(); ++C) {
    const double *Col = Columns[C].data();
    AlignedBuffer<double> &OutCol = Out.Columns[C];
    for (size_t R : Indices) {
      assert(R < Targets.size() && "row index out of range");
      OutCol.push_back(Col[R]);
    }
  }
  for (size_t R : Indices)
    Out.Targets.push_back(Targets[R]);
  return Out;
}

std::pair<Dataset, Dataset> Dataset::split(double TestFraction,
                                           Rng SplitRng) const {
  assert(TestFraction >= 0 && TestFraction <= 1 && "bad test fraction");
  std::vector<size_t> Indices(numRows());
  std::iota(Indices.begin(), Indices.end(), size_t{0});
  // Fisher-Yates with the supplied deterministic generator.
  for (size_t I = Indices.size(); I > 1; --I)
    std::swap(Indices[I - 1], Indices[SplitRng.below(I)]);
  size_t NumTest = static_cast<size_t>(TestFraction *
                                       static_cast<double>(numRows()));
  std::vector<size_t> TestIdx(Indices.begin(), Indices.begin() + NumTest);
  std::vector<size_t> TrainIdx(Indices.begin() + NumTest, Indices.end());
  return {selectRows(TrainIdx), selectRows(TestIdx)};
}

std::pair<Dataset, Dataset> Dataset::splitAt(size_t TrainRows) const {
  assert(TrainRows <= numRows() && "train partition exceeds dataset");
  std::vector<size_t> TrainIdx(TrainRows), TestIdx(numRows() - TrainRows);
  std::iota(TrainIdx.begin(), TrainIdx.end(), size_t{0});
  std::iota(TestIdx.begin(), TestIdx.end(), TrainRows);
  return {selectRows(TrainIdx), selectRows(TestIdx)};
}
