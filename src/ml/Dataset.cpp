//===- ml/Dataset.cpp - Feature/target dataset -----------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <algorithm>
#include <numeric>

using namespace slope;
using namespace slope::ml;

void Dataset::addRow(const std::vector<double> &Features, double Target) {
  assert(Features.size() == FeatureNames.size() &&
         "feature vector width does not match the schema");
  Rows.push_back(Features);
  Targets.push_back(Target);
}

stats::Matrix Dataset::featureMatrix() const {
  return stats::Matrix::fromRows(Rows);
}

std::vector<double> Dataset::featureColumn(size_t C) const {
  assert(C < FeatureNames.size() && "feature index out of range");
  std::vector<double> Col(Rows.size());
  for (size_t R = 0; R < Rows.size(); ++R)
    Col[R] = Rows[R][C];
  return Col;
}

size_t Dataset::indexOfFeature(const std::string &Name) const {
  for (size_t C = 0; C < FeatureNames.size(); ++C)
    if (FeatureNames[C] == Name)
      return C;
  return FeatureNames.size();
}

Dataset Dataset::selectFeatures(const std::vector<std::string> &Names) const {
  std::vector<size_t> Cols;
  Cols.reserve(Names.size());
  for (const std::string &Name : Names) {
    size_t C = indexOfFeature(Name);
    assert(C < FeatureNames.size() && "selecting an unknown feature");
    Cols.push_back(C);
  }
  Dataset Out(Names);
  for (size_t R = 0; R < Rows.size(); ++R) {
    std::vector<double> NewRow(Cols.size());
    for (size_t I = 0; I < Cols.size(); ++I)
      NewRow[I] = Rows[R][Cols[I]];
    Out.addRow(NewRow, Targets[R]);
  }
  return Out;
}

Dataset Dataset::selectRows(const std::vector<size_t> &Indices) const {
  Dataset Out(FeatureNames);
  for (size_t R : Indices) {
    assert(R < Rows.size() && "row index out of range");
    Out.addRow(Rows[R], Targets[R]);
  }
  return Out;
}

std::pair<Dataset, Dataset> Dataset::split(double TestFraction,
                                           Rng SplitRng) const {
  assert(TestFraction >= 0 && TestFraction <= 1 && "bad test fraction");
  std::vector<size_t> Indices(Rows.size());
  std::iota(Indices.begin(), Indices.end(), size_t{0});
  // Fisher-Yates with the supplied deterministic generator.
  for (size_t I = Indices.size(); I > 1; --I)
    std::swap(Indices[I - 1], Indices[SplitRng.below(I)]);
  size_t NumTest = static_cast<size_t>(TestFraction *
                                       static_cast<double>(Rows.size()));
  std::vector<size_t> TestIdx(Indices.begin(), Indices.begin() + NumTest);
  std::vector<size_t> TrainIdx(Indices.begin() + NumTest, Indices.end());
  return {selectRows(TrainIdx), selectRows(TestIdx)};
}

std::pair<Dataset, Dataset> Dataset::splitAt(size_t TrainRows) const {
  assert(TrainRows <= Rows.size() && "train partition exceeds dataset");
  std::vector<size_t> TrainIdx(TrainRows), TestIdx(Rows.size() - TrainRows);
  std::iota(TrainIdx.begin(), TrainIdx.end(), size_t{0});
  std::iota(TestIdx.begin(), TestIdx.end(), TrainRows);
  return {selectRows(TrainIdx), selectRows(TestIdx)};
}
