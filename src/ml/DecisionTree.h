//===- ml/DecisionTree.h - CART regression tree -----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CART-style regression tree: greedy variance-reduction splits on one
/// feature at a time, mean prediction at the leaves. Used standalone and
/// as the base learner of ml::RandomForest.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_DECISIONTREE_H
#define SLOPE_ML_DECISIONTREE_H

#include "ml/Model.h"
#include "support/Rng.h"

#include <cstdint>

namespace slope {
namespace ml {

/// Hyper-parameters of a regression tree.
struct DecisionTreeOptions {
  unsigned MaxDepth = 16;        ///< Hard depth cap.
  size_t MinSamplesLeaf = 2;     ///< Minimum rows on each side of a split.
  size_t MinSamplesSplit = 4;    ///< Minimum rows to attempt a split.
  /// Number of candidate features per split; 0 means "all features"
  /// (plain CART). Random forests set this to mtry.
  size_t MaxFeatures = 0;
};

/// CART regression tree.
class DecisionTree : public Model {
public:
  explicit DecisionTree(DecisionTreeOptions Options = DecisionTreeOptions(),
                        Rng TreeRng = Rng(0x7EE5))
      : Options(Options), TreeRng(TreeRng) {}

  Expected<bool> fit(const Dataset &Training) override;

  /// Fits on the given subset of \p Training rows (bootstrap support).
  Expected<bool> fitRows(const Dataset &Training,
                         const std::vector<size_t> &RowIndices);

  double predict(const std::vector<double> &Features) const override;
  std::string name() const override { return "Tree"; }

  /// \returns the number of nodes in the fitted tree.
  size_t numNodes() const { return Nodes.size(); }

  /// \returns the maximum depth actually reached (root = 0).
  unsigned fittedDepth() const;

private:
  struct Node {
    /// Split feature; SIZE_MAX marks a leaf.
    size_t Feature = SIZE_MAX;
    double Threshold = 0;   ///< Go left if x[Feature] <= Threshold.
    double LeafValue = 0;   ///< Mean target (leaves only).
    int32_t Left = -1;
    int32_t Right = -1;
    unsigned Depth = 0;

    bool isLeaf() const { return Feature == SIZE_MAX; }
  };

  /// Recursively grows the subtree over \p Indices; \returns its node id.
  int32_t grow(const Dataset &Training, std::vector<size_t> &Indices,
               unsigned Depth);

  DecisionTreeOptions Options;
  Rng TreeRng;
  std::vector<Node> Nodes;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_DECISIONTREE_H
