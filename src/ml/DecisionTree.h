//===- ml/DecisionTree.h - CART regression tree -----------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CART-style regression tree: greedy variance-reduction splits on one
/// feature at a time, mean prediction at the leaves. Used standalone and
/// as the base learner of ml::RandomForest.
///
/// Two training algorithms produce identical trees:
///
///  * Presorted (default): each feature's sample indices are sorted once
///    per tree by (value, target) — or derived in linear time from a
///    forest-wide DatasetPresort — and nodes are grown from an explicit
///    work stack by stable in-place partitioning of the presorted index
///    arrays, so the per-node cost is linear and the growth loop performs
///    zero heap allocations after the per-tree scratch setup.
///  * Naive (the seed implementation, kept as the reference and the
///    "seed kernel" baseline for perf gates): re-sorts (value, target)
///    pairs at every node.
///
/// The presorted partition keeps every floating-point accumulation in the
/// same order the naive algorithm uses, so both algorithms produce
/// bit-identical node structures and predictions for any input.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_DECISIONTREE_H
#define SLOPE_ML_DECISIONTREE_H

#include "ml/Model.h"
#include "support/Rng.h"

#include <cstdint>

namespace slope {
namespace ml {

/// Tree-growth algorithm selection (see file comment).
enum class TreeAlgorithm {
  Default,   ///< Use the process-wide default (presorted unless overridden).
  Presorted, ///< One sort per tree + in-place index partitioning.
  Naive,     ///< Per-node re-sorting (seed kernel; reference baseline).
};

/// Overrides the process-wide algorithm used when options say Default.
/// The initial value honours the SLOPE_TREE_ALGO environment variable
/// ("naive" or "presorted"); benches expose it as --tree-algo.
void setDefaultTreeAlgorithm(TreeAlgorithm A);

/// \returns the process-wide default growth algorithm (never Default).
TreeAlgorithm defaultTreeAlgorithm();

/// Feature orderings of a whole dataset, computed once and shared by every
/// tree grown on (bootstrap) subsets of its rows. Each feature's rows are
/// sorted by (value, target, row); a tree derives the sorted order of its
/// own sample multiset from this with a linear bucket gather instead of
/// per-tree comparison sorts. Rows tied on (value, target) carry equal
/// targets, so any relative order of them yields bit-identical prefix
/// sums — which is why the shared ordering is exact, not approximate.
class DatasetPresort {
public:
  explicit DatasetPresort(const Dataset &Training);

  /// \returns row indices of the presorted dataset in ascending
  /// (value, target, row) order of feature \p Feat (numRows entries).
  const uint32_t *order(size_t Feat) const {
    assert(Feat < NumFeatures && "feature index out of range");
    return Orders.data() + Feat * NumRows;
  }

  size_t numRows() const { return NumRows; }
  size_t numFeatures() const { return NumFeatures; }

private:
  size_t NumRows;
  size_t NumFeatures;
  std::vector<uint32_t> Orders; // numFeatures() * numRows()
};

/// Hyper-parameters of a regression tree.
struct DecisionTreeOptions {
  unsigned MaxDepth = 16;        ///< Hard depth cap.
  size_t MinSamplesLeaf = 2;     ///< Minimum rows on each side of a split.
  size_t MinSamplesSplit = 4;    ///< Minimum rows to attempt a split.
  /// Number of candidate features per split; 0 means "all features"
  /// (plain CART). Random forests set this to mtry.
  size_t MaxFeatures = 0;
  /// Growth algorithm; Default defers to defaultTreeAlgorithm().
  TreeAlgorithm Algorithm = TreeAlgorithm::Default;
};

/// CART regression tree.
class DecisionTree : public Model {
public:
  explicit DecisionTree(DecisionTreeOptions Options = DecisionTreeOptions(),
                        Rng TreeRng = Rng(0x7EE5))
      : Options(Options), TreeRng(TreeRng) {}

  Expected<bool> fit(const Dataset &Training) override;

  /// Fits on the given subset of \p Training rows (bootstrap support).
  /// \p Master, when non-null, must be a DatasetPresort of \p Training;
  /// the presorted algorithm then derives each feature's sample ordering
  /// from it in linear time instead of sorting per tree. Ensembles build
  /// one DatasetPresort and share it across all their trees.
  Expected<bool> fitRows(const Dataset &Training,
                         const std::vector<size_t> &RowIndices,
                         const DatasetPresort *Master = nullptr);

  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "Tree"; }

  /// Predicts from a raw feature pointer (no bounds information; the
  /// caller guarantees the row matches the fitted width). Lets ensembles
  /// batch over a reused row buffer without per-call vector churn.
  double predictRow(const double *Features) const;

  /// \returns the number of nodes in the fitted tree.
  size_t numNodes() const { return Nodes.size(); }

  /// \returns the maximum depth actually reached (root = 0), tracked
  /// during growth.
  unsigned fittedDepth() const {
    assert(Fitted && "depth of an unfitted tree");
    return MaxFittedDepth;
  }

  /// Read-only view of one node, for structural tests and serialization.
  struct NodeView {
    size_t Feature;   ///< Split feature; SIZE_MAX marks a leaf.
    double Threshold; ///< Go left if x[Feature] <= Threshold.
    double LeafValue; ///< Mean target over the node's samples.
    int32_t Left;
    int32_t Right;
    unsigned Depth;
  };

  /// \returns node \p I of the fitted tree (0 is the root).
  NodeView node(size_t I) const {
    assert(I < Nodes.size() && "node index out of range");
    const Node &N = Nodes[I];
    return {N.Feature, N.Threshold, N.LeafValue, N.Left, N.Right, N.Depth};
  }

private:
  struct Node {
    /// Split feature; SIZE_MAX marks a leaf.
    size_t Feature = SIZE_MAX;
    double Threshold = 0;   ///< Go left if x[Feature] <= Threshold.
    double LeafValue = 0;   ///< Mean target (leaves only).
    int32_t Left = -1;
    int32_t Right = -1;
    unsigned Depth = 0;

    bool isLeaf() const { return Feature == SIZE_MAX; }
  };

  /// Presorted growth (see file comment).
  void fitPresorted(const Dataset &Training,
                    const std::vector<size_t> &RowIndices,
                    const DatasetPresort *Master);

  /// Recursively grows the subtree over \p Indices; \returns its node id.
  /// (Naive reference algorithm.)
  int32_t grow(const Dataset &Training, std::vector<size_t> &Indices,
               unsigned Depth);

  DecisionTreeOptions Options;
  Rng TreeRng;
  std::vector<Node> Nodes;
  unsigned MaxFittedDepth = 0;
  bool Fitted = false;
};

namespace detail {
/// Test hook bracketing the presorted growth loop: called with true right
/// after the per-tree scratch setup completes and with false when growth
/// finishes. The allocation-count test uses it to assert the loop itself
/// performs zero heap allocations. Null (disabled) by default.
extern void (*TreeGrowPhaseProbe)(bool Entering);
} // namespace detail

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_DECISIONTREE_H
