//===- ml/RandomForest.cpp - Bagged regression forest -----------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/RandomForest.h"

#include "support/PhaseTimers.h"
#include "support/ThreadPool.h"

#include <cmath>

using namespace slope;
using namespace slope::ml;

Expected<bool> RandomForest::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit a forest on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a forest without features");
  assert(Options.NumTrees > 0 && "a forest needs at least one tree");

  size_t Mtry = Options.Tree.MaxFeatures;
  if (Mtry == 0) {
    Mtry = static_cast<size_t>(
        std::ceil(Options.FeatureFraction *
                  static_cast<double>(Training.numFeatures())));
    if (Mtry == 0)
      Mtry = 1;
  }

  // Trees are independent given their forked Rng streams (a pure function
  // of the forest seed and the tree index), so fitting parallelizes over
  // trees. Each task records its out-of-bag predictions; the OOB reduction
  // below runs serially in tree order, keeping the floating-point addition
  // order — and hence every result bit — identical to a serial fit.
  // All trees share one forest-wide presort of the training rows; each
  // tree derives its bootstrap sample's per-feature orderings from it in
  // linear time (see DatasetPresort). Skipped when the resolved algorithm
  // is the naive reference, which never reads it.
  TreeAlgorithm Algo = Options.Tree.Algorithm == TreeAlgorithm::Default
                           ? defaultTreeAlgorithm()
                           : Options.Tree.Algorithm;
  std::unique_ptr<DatasetPresort> Master;
  if (Algo != TreeAlgorithm::Naive)
    Master = std::make_unique<DatasetPresort>(Training);

  Rng ForestRng(Options.Seed);
  size_t N = Training.numRows();
  Trees.clear();
  Trees.resize(Options.NumTrees);
  std::vector<std::vector<bool>> InBags(Options.NumTrees);
  std::vector<std::vector<double>> OobPreds(Options.NumTrees);
  std::vector<std::string> FitErrors(Options.NumTrees);

  parallelFor(0, Options.NumTrees, 1, [&](size_t T) {
    Rng TreeRng = ForestRng.fork(T);
    std::vector<size_t> Bootstrap(N);
    std::vector<bool> InBag(N, false);
    for (size_t I = 0; I < N; ++I) {
      Bootstrap[I] = TreeRng.below(N);
      InBag[Bootstrap[I]] = true;
    }

    DecisionTreeOptions TreeOptions = Options.Tree;
    TreeOptions.MaxFeatures = Mtry;
    auto Tree = std::make_unique<DecisionTree>(TreeOptions,
                                               TreeRng.fork("splits"));
    Expected<bool> Fit = [&] {
      // Charged to the tree-fit phase so perf gates can compare growth
      // kernels without the bootstrap/OOB work that both algorithms share.
      ScopedPhase Timer(Phase::ForestTreeFit);
      return Tree->fitRows(Training, Bootstrap, Master.get());
    }();
    if (!Fit) {
      FitErrors[T] = Fit.error().message();
      return;
    }

    std::vector<double> Preds(N, 0.0);
    std::vector<double> RowBuf;
    for (size_t R = 0; R < N; ++R)
      if (!InBag[R]) {
        Training.gatherRow(R, RowBuf);
        Preds[R] = Tree->predictRow(RowBuf.data());
      }
    Trees[T] = std::move(Tree);
    InBags[T] = std::move(InBag);
    OobPreds[T] = std::move(Preds);
  });

  for (size_t T = 0; T < Options.NumTrees; ++T)
    if (!Trees[T]) {
      Trees.clear();
      return makeError(FitErrors[T]);
    }

  // Out-of-bag bookkeeping: sum/count of OOB predictions per row.
  std::vector<double> OobSum(N, 0.0);
  std::vector<unsigned> OobCount(N, 0);
  for (size_t T = 0; T < Options.NumTrees; ++T)
    for (size_t R = 0; R < N; ++R) {
      if (InBags[T][R])
        continue;
      OobSum[R] += OobPreds[T][R];
      ++OobCount[R];
    }

  double SumSq = 0;
  size_t Counted = 0;
  for (size_t R = 0; R < N; ++R) {
    if (OobCount[R] == 0)
      continue;
    double Err = OobSum[R] / OobCount[R] - Training.target(R);
    SumSq += Err * Err;
    ++Counted;
  }
  OobMse = Counted ? SumSq / static_cast<double>(Counted)
                   : std::nan("");
  Fitted = true;
  return true;
}

double RandomForest::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted forest");
  double Sum = 0;
  for (const auto &Tree : Trees)
    Sum += Tree->predict(Features);
  return Sum / static_cast<double>(Trees.size());
}

std::vector<double> RandomForest::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted forest");
  std::vector<double> Out(Data.numRows());
  std::vector<double> RowBuf;
  for (size_t R = 0; R < Data.numRows(); ++R) {
    Data.gatherRow(R, RowBuf);
    // Trees accumulate in ensemble order, matching predict() bit for bit.
    double Sum = 0;
    for (const auto &Tree : Trees)
      Sum += Tree->predictRow(RowBuf.data());
    Out[R] = Sum / static_cast<double>(Trees.size());
  }
  return Out;
}
