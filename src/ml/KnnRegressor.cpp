//===- ml/KnnRegressor.cpp - Nearest-neighbour energy model --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/KnnRegressor.h"

#include <algorithm>
#include <cmath>

using namespace slope;
using namespace slope::ml;

Expected<bool> KnnRegressor::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit k-NN on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit k-NN without features");
  assert(Options.K > 0 && "neighbourhood size must be positive");

  size_t N = Training.numRows(), D = Training.numFeatures();
  FeatureMean.assign(D, 0.0);
  FeatureStd.assign(D, 1.0);
  for (size_t C = 0; C < D; ++C) {
    const double *Col = Training.column(C);
    double Sum = 0;
    for (size_t R = 0; R < N; ++R)
      Sum += Col[R];
    FeatureMean[C] = Sum / static_cast<double>(N);
    double Sq = 0;
    for (size_t R = 0; R < N; ++R) {
      double Dx = Col[R] - FeatureMean[C];
      Sq += Dx * Dx;
    }
    double Std = std::sqrt(Sq / static_cast<double>(N));
    FeatureStd[C] = Std > 1e-12 ? Std : 1.0;
  }

  Rows.assign(N * D, 0.0);
  Targets.assign(N, 0.0);
  for (size_t R = 0; R < N; ++R) {
    for (size_t C = 0; C < D; ++C)
      Rows[R * D + C] =
          (Training.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
    Targets[R] = Training.target(R);
  }
  Fitted = true;
  return true;
}

double KnnRegressor::predictStandardized(
    const double *Query,
    std::vector<std::pair<double, size_t>> &Distances) const {
  size_t N = Targets.size();
  size_t D = FeatureMean.size();

  // Partial sort of (distance^2, index) pairs; N is small enough that a
  // full nth_element is the simplest correct choice.
  Distances.clear();
  for (size_t R = 0; R < N; ++R) {
    const double *Row = &Rows[R * D];
    double Sq = 0;
    for (size_t C = 0; C < D; ++C) {
      double Dx = Row[C] - Query[C];
      Sq += Dx * Dx;
    }
    Distances.emplace_back(Sq, R);
  }
  size_t K = std::min(Options.K, N);
  std::nth_element(Distances.begin(), Distances.begin() + (K - 1),
                   Distances.end());

  double WeightSum = 0, ValueSum = 0;
  for (size_t I = 0; I < K; ++I) {
    const auto &[Sq, R] = Distances[I];
    if (Options.DistanceWeighted) {
      // An exact hit dominates; return its target directly.
      if (Sq < 1e-24)
        return Targets[R];
      double W = 1.0 / std::sqrt(Sq);
      WeightSum += W;
      ValueSum += W * Targets[R];
    } else {
      WeightSum += 1;
      ValueSum += Targets[R];
    }
  }
  return ValueSum / WeightSum;
}

double KnnRegressor::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted k-NN model");
  assert(Features.size() == FeatureMean.size() &&
         "feature width does not match the fitted model");

  std::vector<double> Query(Features.size());
  for (size_t C = 0; C < Features.size(); ++C)
    Query[C] = (Features[C] - FeatureMean[C]) / FeatureStd[C];

  std::vector<std::pair<double, size_t>> Distances;
  Distances.reserve(Targets.size());
  return predictStandardized(Query.data(), Distances);
}

std::vector<double> KnnRegressor::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted k-NN model");
  assert(Data.numFeatures() == FeatureMean.size() &&
         "feature width does not match the fitted model");
  size_t D = FeatureMean.size();
  std::vector<double> Out;
  Out.reserve(Data.numRows());
  // One standardized-query buffer and one distance scratch reused across
  // rows, filled from the columnar storage; each row runs exactly the
  // neighbourhood vote predict() runs, on identical inputs.
  std::vector<double> Query(D);
  std::vector<std::pair<double, size_t>> Distances;
  Distances.reserve(Targets.size());
  for (size_t R = 0; R < Data.numRows(); ++R) {
    for (size_t C = 0; C < D; ++C)
      Query[C] = (Data.column(C)[R] - FeatureMean[C]) / FeatureStd[C];
    Out.push_back(predictStandardized(Query.data(), Distances));
  }
  return Out;
}
