//===- ml/ModelIo.cpp - Linear-model persistence ---------------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelIo.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace slope;
using namespace slope::ml;

double SavedLinearModel::predict(const std::vector<double> &Counts) const {
  assert(Counts.size() == Coefficients.size() &&
         "count vector width does not match the model");
  double Sum = Intercept;
  for (size_t I = 0; I < Counts.size(); ++I)
    Sum += Coefficients[I] * Counts[I];
  return Sum;
}

SavedLinearModel
ml::snapshotLinearModel(const LinearRegression &Model,
                        const std::vector<std::string> &Names) {
  assert(Names.size() == Model.coefficients().size() &&
         "feature names do not match the fitted model");
  SavedLinearModel Saved;
  Saved.PmcNames = Names;
  Saved.Coefficients = Model.coefficients();
  Saved.Intercept = Model.intercept();
  return Saved;
}

std::string ml::linearModelToText(const SavedLinearModel &Model) {
  std::string Out = "slope-lr-model v1\n";
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer), "intercept %.17g\n",
                Model.Intercept);
  Out += Buffer;
  for (size_t I = 0; I < Model.PmcNames.size(); ++I) {
    std::snprintf(Buffer, sizeof(Buffer), " %.17g\n",
                  Model.Coefficients[I]);
    Out += "coef " + Model.PmcNames[I] + Buffer;
  }
  return Out;
}

Expected<SavedLinearModel>
ml::linearModelFromText(const std::string &Text) {
  std::istringstream Stream(Text);
  std::string Line;
  if (!std::getline(Stream, Line) || Line != "slope-lr-model v1")
    return makeError("missing or unsupported model header");

  SavedLinearModel Model;
  bool SawIntercept = false;
  size_t LineNo = 1;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream Fields(Line);
    std::string Keyword;
    Fields >> Keyword;
    if (Keyword == "intercept") {
      if (!(Fields >> Model.Intercept))
        return makeError("bad intercept on line " + std::to_string(LineNo));
      SawIntercept = true;
    } else if (Keyword == "coef") {
      std::string Name;
      double Value;
      if (!(Fields >> Name >> Value))
        return makeError("bad coef on line " + std::to_string(LineNo));
      Model.PmcNames.push_back(Name);
      Model.Coefficients.push_back(Value);
    } else {
      return makeError("unknown keyword '" + Keyword + "' on line " +
                       std::to_string(LineNo));
    }
  }
  if (!SawIntercept)
    return makeError("model has no intercept line");
  if (Model.PmcNames.empty())
    return makeError("model has no coefficients");
  return Model;
}

Expected<bool> ml::writeLinearModel(const SavedLinearModel &Model,
                                    const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return makeError("cannot open '" + Path + "' for writing");
  std::string Text = linearModelToText(Model);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  if (Written != Text.size())
    return makeError("short write to '" + Path + "'");
  return true;
}

Expected<SavedLinearModel> ml::readLinearModel(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return makeError("cannot open '" + Path + "' for reading");
  std::string Text;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  return linearModelFromText(Text);
}
