//===- ml/QuantizedModel.h - Fixed-point inference fast path ----*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantized fixed-point inference: an integer twin of a fitted FP model,
/// built once from the trained parameters plus a calibration dataset, so
/// the serving hot loop can run in pure integer arithmetic — the deployed
/// form of counter-based energy models (in-kernel schedulers ship their LR
/// weights as integer pico-joule units precisely because the hot path
/// cannot afford FP, and that constraint is also the speed play).
///
/// Quantization scheme (all scales are powers of two, so every rescale is
/// exact in FP):
///
///  * Features: per-feature scale chosen from the calibration range so the
///    calibration maximum lands near 2^24 quanta; quantizeRow() saturates
///    at +/-2^28, i.e. 16x headroom over anything seen at calibration.
///  * Linear models (LR, and identity-transfer NNs, which are affine maps
///    and are folded to effective linear weights by probing): weights are
///    scaled to integers by an output base chosen per model from the
///    trained coefficient range — the largest weight lands near 2^28 —
///    mirroring the kernel EM_TO_INT idiom with an adaptive base instead
///    of a fixed 1e-12. The dot product is pure int64 adds/multiplies
///    (term <= 2^56, so up to 64 features cannot overflow) with a single
///    final rescale.
///  * Trees / forests: nodes are flattened into one contiguous arena of
///    16-byte nodes (int32 threshold in feature quanta, uint16 feature,
///    two absolute child indices); leaves self-loop, so the walk is
///    branchless — node = child[q[feat] > thresh] for the tree's fitted
///    depth — with no pointer chasing. Leaf values are int64 quanta on an
///    output base chosen from the trained leaf range; forest predictions
///    accumulate in int64 (<= 2^44 per leaf, so thousands of trees fit).
///  * k-NN: squared distances in standardized space are exact int64 sums
///    over quantized rows; the k-element vote itself stays FP (it is not
///    on the O(N) hot path) and its result is published in output quanta.
///
/// Unlike the repo's other selectable kernels, quantized inference cannot
/// be bit-identical to the FP reference. It instead ships with a
/// documented, tested error bound: decisions only flip within one feature
/// quantum of a threshold and rounding contributes O(2^-24) per term, so
/// |quantized - fp| relative error stays below 1e-4 with orders of
/// magnitude to spare; tests/ml/QuantizedModelTest.cpp proves the bound
/// across all trained paper families and the CI serving gate re-checks the
/// attribution tables end to end.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_QUANTIZEDMODEL_H
#define SLOPE_ML_QUANTIZEDMODEL_H

#include "ml/Model.h"
#include "stats/SimdKernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace slope {
namespace ml {

/// Inference-kernel selection, following the --tree-algo/--nn-algo house
/// pattern. Unlike those bit-neutral switches this one changes numerics
/// (within the documented error bound), so the paper-table drivers keep
/// their FP default and the serving gate compares the two sides.
enum class InferenceAlgorithm {
  Fp,        ///< The fitted FP model as-is (reference; default).
  Quantized, ///< Fixed-point twin built by QuantizedModel::build.
};

/// Overrides the process-wide inference algorithm. The initial value
/// honours the SLOPE_INFER_ALGO environment variable ("fp" or
/// "quantized"); benches expose it as --infer-algo.
void setDefaultInferenceAlgorithm(InferenceAlgorithm A);

/// \returns the process-wide default inference algorithm.
InferenceAlgorithm defaultInferenceAlgorithm();

/// \returns max_i |Got[i] - Ref[i]| / max(|Ref[i]|, Floor) over both
/// vectors, where Floor is 1e-9 x max_i |Ref[i]| so near-zero reference
/// entries cannot blow the ratio up. The error-bound property tests and
/// the serving tolerance gate measure exactly this. Asserts equal sizes;
/// \returns 0 for empty input.
double maxRelativeError(const std::vector<double> &Ref,
                        const std::vector<double> &Got);

/// An integer fixed-point twin of a fitted model (see file comment). Owns
/// the FP reference it was built from; predict/predictBatch run the
/// integer kernels, and the serving engine uses the quantizeRow /
/// predictQuantized / dequantize split to keep its hot loop integer-only.
class QuantizedModel : public Model {
public:
  /// Builds the fixed-point twin of \p Reference (must be fitted; the
  /// twin takes ownership). \p Calibration supplies the per-feature value
  /// ranges the feature scales are chosen from — normally the training
  /// dataset. \returns an error for models whose family has no integer
  /// kernel (non-identity-transfer NNs), empty calibration data, a
  /// feature-width mismatch, or more than 64 features (the int64
  /// accumulator budget).
  static Expected<std::unique_ptr<QuantizedModel>>
  build(std::unique_ptr<Model> Reference, const Dataset &Calibration);

  /// The int64 accumulator budget caps quantized models at 64 features
  /// (term <= 2^56 each); callers may size stack row buffers with this.
  static constexpr size_t MaxWidth = 64;

  /// Feature quanta saturate at +/-2^28 — 16x headroom over the 2^24
  /// calibration target.
  static constexpr int64_t SaturationQuanta = INT64_C(1) << 28;

  /// Quantizes one value: round(X * Scale + Offset), saturated. The
  /// single place the rounding rule lives, so predict, predictBatch, and
  /// the serving engine's ingest-time quantization cannot drift apart.
  /// On x86-64 the rounding is a single cvtsd2si (round-to-nearest-even
  /// under the default MXCSR mode) — std::llround is a libm call the
  /// compiler cannot inline without -fno-math-errno, and this runs once
  /// per feature per served observation.
  static int32_t quantizeValue(double X, double Scale, double Offset) {
#if defined(__x86_64__) || defined(_M_X64)
    const int64_t Q = _mm_cvtsd_si64(_mm_set_sd(X * Scale + Offset));
#else
    const int64_t Q = std::llround(X * Scale + Offset);
#endif
    return static_cast<int32_t>(
        std::max(-SaturationQuanta, std::min(SaturationQuanta, Q)));
  }

  /// Quantized models are built from fitted FP models, never fitted
  /// directly; \returns an error unconditionally.
  Expected<bool> fit(const Dataset &Training) override;

  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;

  /// "Q" + the reference family name ("QLR", "QRF", ...), so a quantized
  /// model can never masquerade as its FP reference in a table or log.
  std::string name() const override { return "Q" + Ref->name(); }

  /// The FP model this twin was built from.
  const Model &reference() const { return *Ref; }

  size_t featureWidth() const { return QuantScale.size(); }

  /// Quantizes one raw feature row into \p Out (featureWidth() values):
  /// Out[f] = round(x[f] * scale[f] + offset[f]), saturated at +/-2^28.
  /// The offset is zero except for k-NN, whose quantized space is
  /// standardized. Routed through stats::quantizeScaleClamp — eight-wide
  /// AVX2 under the default SIMD dispatch, two-wide SSE2 otherwise, with
  /// bit-identical results either way (the rounding rule is
  /// quantizeValue's in every variant).
  void quantizeRow(const double *Features, int32_t *Out) const {
    stats::quantizeScaleClamp(Features, QuantScale.data(),
                              QuantOffset.data(), QuantScale.size(),
                              SaturationQuanta, Out);
  }

  /// Integer-only prediction over a quantized row, in output quanta.
  /// Pure given the row — no allocation, no FP on the linear and forest
  /// paths — so shards may call it concurrently.
  int64_t predictQuantized(const int32_t *QRow) const;

  /// Batched predictQuantized: runs the integer kernel over \p N rows of
  /// \p Rows and writes the result quanta to Out[i]. Row i is
  /// Rows + Indices[i] * featureWidth(), or the i-th consecutive row when
  /// \p Indices is null. One kernel dispatch per batch instead of per
  /// row — the serving hot loop's entry point.
  void predictQuantizedMany(const int32_t *Rows, const size_t *Indices,
                            size_t N, int64_t *Out) const;

  /// Output quanta -> target units (J). The factor is
  /// 1 / (output base * ensemble size), so integer cell accumulators can
  /// sum raw predictQuantized results and rescale once at fold time.
  double dequantize(int64_t PredQ) const {
    return static_cast<double>(PredQ) * DequantScale;
  }
  double dequantScale() const { return DequantScale; }

  /// Output quanta per target unit (the model's adaptive EM_TO_INT base;
  /// exposed for tests and the DESIGN.md scale-selection argument).
  double outputBase() const { return OutputBase; }

private:
  QuantizedModel() = default;

  /// One flattened tree node: go to Child[q[Feat] > Thresh]. Leaves point
  /// both children at themselves, which keeps the walk branchless.
  struct QNode {
    int32_t Thresh;
    uint16_t Feat;
    int32_t Child[2];
  };

  enum class Kind { Linear, Forest, Knn };

  int64_t predictLinear(const int32_t *QRow) const;
  int64_t predictForest(const int32_t *QRow) const;
  int64_t predictKnn(const int32_t *QRow) const;

  std::unique_ptr<Model> Ref;
  Kind ModelKind = Kind::Linear;

  // Feature quantization: q = round(x * QuantScale + QuantOffset).
  std::vector<double> QuantScale;
  std::vector<double> QuantOffset;

  double OutputBase = 1;    ///< Output quanta per target unit.
  double DequantScale = 1;  ///< 1 / (OutputBase * ensemble size).

  // Linear kernel.
  std::vector<int64_t> WeightQ;
  int64_t BiasQ = 0;

  // Forest kernel: one arena over all trees, per-tree roots and depths.
  std::vector<QNode> Nodes;
  std::vector<int64_t> LeafQ;     ///< Leaf value quanta per arena node.
  std::vector<uint32_t> Roots;
  std::vector<uint8_t> Depths;    ///< Fitted depth per tree (walk length).

  // k-NN kernel: quantized standardized training rows + raw targets.
  std::vector<int32_t> KnnRows;   ///< Flat row-major (N x width).
  std::vector<double> KnnTargets;
  size_t KnnK = 1;
  bool KnnDistanceWeighted = true;
  double KnnDistScale = 1;        ///< Feature quanta per standardized unit.
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_QUANTIZEDMODEL_H
