//===- ml/LinearRegression.h - Linear energy models -------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear regression in the three flavours the project needs: ordinary
/// least squares, ridge, and the paper's configuration — penalized
/// regression with zero intercept and non-negative coefficients (solved as
/// NNLS), which respects the physical constraint that each counted event
/// contributes non-negative dynamic energy.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_LINEARREGRESSION_H
#define SLOPE_ML_LINEARREGRESSION_H

#include "ml/Model.h"

namespace slope {
namespace ml {

/// Configuration of a linear model.
struct LinearRegressionOptions {
  bool ZeroIntercept = true;   ///< No intercept term (paper default).
  bool NonNegative = true;     ///< Coefficients forced >= 0 (paper default).
  double Lambda = 0.0;         ///< Ridge penalty.

  /// The paper's Table 3 configuration.
  static LinearRegressionOptions paperDefault() {
    LinearRegressionOptions Options;
    Options.ZeroIntercept = true;
    Options.NonNegative = true;
    Options.Lambda = 1e-6;
    return Options;
  }

  /// Plain ordinary least squares with intercept (ablation baseline).
  static LinearRegressionOptions ols() {
    LinearRegressionOptions Options;
    Options.ZeroIntercept = false;
    Options.NonNegative = false;
    Options.Lambda = 0.0;
    return Options;
  }
};

/// Linear regression model (see LinearRegressionOptions).
class LinearRegression : public Model {
public:
  explicit LinearRegression(
      LinearRegressionOptions Options = LinearRegressionOptions::paperDefault())
      : Options(Options) {}

  Expected<bool> fit(const Dataset &Training) override;
  double predict(const std::vector<double> &Features) const override;
  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "LR"; }

  /// \returns the fitted coefficients (one per feature). Valid after fit.
  const std::vector<double> &coefficients() const {
    assert(Fitted && "model not fitted");
    return Coefficients;
  }

  /// \returns the fitted intercept (0 when ZeroIntercept). Valid after fit.
  double intercept() const {
    assert(Fitted && "model not fitted");
    return Intercept;
  }

private:
  LinearRegressionOptions Options;
  std::vector<double> Coefficients;
  double Intercept = 0;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_LINEARREGRESSION_H
