//===- ml/DatasetIo.cpp - Dataset CSV import/export -----------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/DatasetIo.h"

#include "support/Csv.h"
#include "support/CsvReader.h"

#include <cstdlib>

using namespace slope;
using namespace slope::ml;

namespace {
CsvWriter makeWriter(const Dataset &Data) {
  std::vector<std::string> Header = Data.featureNames();
  Header.push_back(TargetColumnName);
  CsvWriter Writer(Header);
  for (size_t R = 0; R < Data.numRows(); ++R) {
    std::vector<double> Values = Data.row(R);
    Values.push_back(Data.target(R));
    Writer.addNumericRow(Values);
  }
  return Writer;
}
} // namespace

std::string ml::datasetToCsv(const Dataset &Data) {
  return makeWriter(Data).str();
}

Expected<bool> ml::writeDatasetCsv(const Dataset &Data,
                                   const std::string &Path) {
  return makeWriter(Data).writeFile(Path);
}

Expected<Dataset> ml::datasetFromCsv(const std::string &Text) {
  auto Doc = parseCsv(Text);
  if (!Doc)
    return Doc.error();
  if (Doc->numColumns() < 2)
    return makeError("a dataset needs at least one feature column plus "
                     "the target column");

  std::vector<std::string> FeatureNames(Doc->Header.begin(),
                                        Doc->Header.end() - 1);
  Dataset Data(FeatureNames);
  for (size_t R = 0; R < Doc->numRows(); ++R) {
    std::vector<double> Values;
    Values.reserve(Doc->numColumns());
    for (const std::string &Cell : Doc->Rows[R]) {
      char *End = nullptr;
      double V = std::strtod(Cell.c_str(), &End);
      if (End == Cell.c_str() || *End != '\0')
        return makeError("non-numeric cell '" + Cell + "' in row " +
                         std::to_string(R + 2));
      Values.push_back(V);
    }
    double Target = Values.back();
    Values.pop_back();
    Data.addRow(Values, Target);
  }
  return Data;
}

Expected<Dataset> ml::readDatasetCsv(const std::string &Path) {
  auto Doc = readCsvFile(Path);
  if (!Doc)
    return Doc.error();
  // Re-serialize through the text parser path for one validation flow.
  std::string Text;
  {
    CsvWriter Writer(Doc->Header);
    for (const auto &Row : Doc->Rows)
      Writer.addRow(Row);
    Text = Writer.str();
  }
  return datasetFromCsv(Text);
}
