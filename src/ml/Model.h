//===- ml/Model.h - Regression model interface ------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the three model families the paper evaluates
/// (linear regression, random forests, neural networks). Experiments treat
/// models uniformly: fit on a training Dataset, predict on test rows.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_MODEL_H
#define SLOPE_ML_MODEL_H

#include "ml/Dataset.h"
#include "support/Expected.h"

#include <string>
#include <vector>

namespace slope {
namespace ml {

/// Abstract regression model.
class Model {
public:
  virtual ~Model();

  /// Fits the model to \p Training. \returns an error for degenerate
  /// inputs (empty data, rank-deficient designs, ...).
  virtual Expected<bool> fit(const Dataset &Training) = 0;

  /// Predicts the target for one feature row. Must be called after a
  /// successful fit; asserts otherwise.
  virtual double predict(const std::vector<double> &Features) const = 0;

  /// \returns a short human-readable family name ("LR", "RF", "NN").
  virtual std::string name() const = 0;

  /// Predicts every row of \p Data in one pass. The base implementation
  /// gathers each row into a reused buffer and calls predict(); model
  /// families override it with columnar kernels that skip the per-row
  /// vector copy and virtual dispatch. Overrides must produce results
  /// bit-identical to the row-by-row path.
  virtual std::vector<double> predictBatch(const Dataset &Data) const;

  /// Predicts every row of \p Data (alias of predictBatch, kept for
  /// existing call sites).
  std::vector<double> predictAll(const Dataset &Data) const {
    return predictBatch(Data);
  }
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_MODEL_H
