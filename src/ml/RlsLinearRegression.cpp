//===- ml/RlsLinearRegression.cpp - Online least squares -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/RlsLinearRegression.h"

#include "stats/Solve.h"

#include <cstdlib>
#include <string_view>

using namespace slope;
using namespace slope::ml;

namespace {
FitAlgorithm initialFitAlgorithm() {
  if (const char *Env = std::getenv("SLOPE_FIT_ALGO")) {
    if (std::string_view(Env) == "refit")
      return FitAlgorithm::Refit;
    if (std::string_view(Env) == "rls")
      return FitAlgorithm::Rls;
  }
  return FitAlgorithm::Rls;
}

FitAlgorithm GlobalFitAlgorithm = initialFitAlgorithm();
} // namespace

void ml::setDefaultFitAlgorithm(FitAlgorithm A) { GlobalFitAlgorithm = A; }

FitAlgorithm ml::defaultFitAlgorithm() { return GlobalFitAlgorithm; }

Expected<bool> RlsLinearRegression::fit(const Dataset &Training) {
  if (Training.numRows() == 0)
    return makeError("cannot fit an RLS model on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit an RLS model without features");
  if (!(Options.Lambda > 0))
    return makeError("RLS needs Lambda > 0: the ridge prior is what keeps "
                     "the inverse Gram defined for rank-deficient seeds");

  Width = Training.numFeatures();
  const size_t SW = stateWidth();

  // The seed solve is the exact ridge system LinearRegression solves with
  // NonNegative off: (X^T X + Lambda I) w = X^T y.
  stats::Matrix X = Training.designMatrix(!Options.ZeroIntercept);
  auto Solution =
      stats::solveNormalEquations(X, Training.targets(), Options.Lambda);
  if (!Solution)
    return Solution.error();
  W = Solution.takeValue();

  // Seed the inverse Gram P = (X^T X + Lambda I)^-1 column by column
  // (Cholesky solve against each unit vector). Each solve refactorizes —
  // O(SW^4) total — but SW is tens at most and fits are rare next to the
  // O(SW^2) updates they amortize over.
  stats::Matrix G = X.gram();
  for (size_t D = 0; D < SW; ++D)
    G.at(D, D) += Options.Lambda;
  P.assign(SW * SW, 0.0);
  std::vector<double> Unit(SW, 0.0);
  for (size_t C = 0; C < SW; ++C) {
    Unit[C] = 1.0;
    auto Col = stats::solveCholesky(G, Unit);
    Unit[C] = 0.0;
    if (!Col)
      return Col.error();
    for (size_t R = 0; R < SW; ++R)
      P[R * SW + C] = (*Col)[R];
  }

  if (Options.ZeroIntercept) {
    Intercept = 0;
    Coefficients = W;
  } else {
    Intercept = W.front();
    Coefficients.assign(W.begin() + 1, W.end());
  }
  Gain.assign(SW, 0.0);
  XAug.assign(SW, 0.0);
  Seen = Training.numRows();
  Fitted = true;
  return true;
}

void RlsLinearRegression::update(const double *Features, double Target) {
  assert(Fitted && "updating an unfitted model; call fit() first");
  const size_t SW = stateWidth();

  const double *X = Features;
  if (!Options.ZeroIntercept) {
    XAug[0] = 1.0;
    for (size_t C = 0; C < Width; ++C)
      XAug[C + 1] = Features[C];
    X = XAug.data();
  }

  // Sherman-Morrison on P = G^-1 for G' = G + x x^T:
  //   Px    = P x
  //   denom = 1 + x^T P x            (> 0: P is positive definite)
  //   w    += Px * (y - x^T w) / denom
  //   P    -= Px Px^T / denom        (stays symmetric by construction)
  for (size_t R = 0; R < SW; ++R)
    Gain[R] = stats::dot(&P[R * SW], X, SW);
  const double Denom = 1.0 + stats::dot(X, Gain.data(), SW);
  const double Err = Target - stats::dot(X, W.data(), SW);

  stats::axpy(Err / Denom, Gain.data(), W.data(), SW);
  for (size_t R = 0; R < SW; ++R)
    stats::axpy(-Gain[R] / Denom, Gain.data(), &P[R * SW], SW);

  if (Options.ZeroIntercept) {
    Coefficients = W;
  } else {
    Intercept = W.front();
    Coefficients.assign(W.begin() + 1, W.end());
  }
  ++Seen;
}

double RlsLinearRegression::predictRow(const double *Features) const {
  assert(Fitted && "predicting with an unfitted model");
  double Sum = Intercept;
  for (size_t C = 0; C < Width; ++C)
    Sum += Coefficients[C] * Features[C];
  return Sum;
}

double RlsLinearRegression::predict(const std::vector<double> &Features) const {
  assert(Features.size() == Width &&
         "feature width does not match the fitted model");
  return predictRow(Features.data());
}

std::vector<double>
RlsLinearRegression::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted model");
  assert(Data.numFeatures() == Width &&
         "feature width does not match the fitted model");
  // Accumulate per row in ascending feature order — the same order as
  // predictRow() — streaming each column once.
  std::vector<double> Out(Data.numRows(), Intercept);
  for (size_t C = 0; C < Width; ++C) {
    const double *Col = Data.column(C);
    double Wc = Coefficients[C];
    for (size_t R = 0; R < Out.size(); ++R)
      Out[R] += Wc * Col[R];
  }
  return Out;
}
