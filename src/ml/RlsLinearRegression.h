//===- ml/RlsLinearRegression.h - Online least squares ----------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive least squares (RLS): an online-updating linear model for the
/// streaming telemetry path. A batch fit() seeds the coefficients and the
/// inverse Gram matrix P = (X^T X + Lambda I)^-1; each subsequent
/// update(x, y) folds one observation in with a Sherman-Morrison rank-1
/// update in O(F^2) — no history is retained and no dataset is rescanned,
/// so continuous retraining is epoch-size-independent, the property the
/// serving engine's online-retrain mode is built on.
///
/// The O(N*F^2) full refit over the accumulated stream stays the
/// selectable reference (FitAlgorithm, `--fit-algo rls|refit` /
/// SLOPE_FIT_ALGO). RLS reassociates the Gram accumulation, so the
/// contract against the reference is a property-tested tolerance (< 1e-8
/// relative coefficient and prediction error after every stream prefix),
/// mirroring the AVX2 K-split kernels' contract rather than the
/// bit-identity contract of the other selectable algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_RLSLINEARREGRESSION_H
#define SLOPE_ML_RLSLINEARREGRESSION_H

#include "ml/Model.h"

namespace slope {
namespace ml {

/// Selectable online-model maintenance algorithm. Rls folds each new
/// observation into the inverse-Gram state in O(F^2); Refit re-solves the
/// normal equations over the full accumulated history in O(N*F^2) — the
/// readable reference the property suite scores Rls against.
enum class FitAlgorithm {
  Refit, ///< Full batch refit over the accumulated stream (reference).
  Rls,   ///< Sherman-Morrison rank-1 updates (fast path).
};

/// Overrides the process-wide online-fit algorithm. The initial value
/// honours the SLOPE_FIT_ALGO environment variable ("rls" / "refit") and
/// defaults to Rls; the --fit-algo driver flag routes here. The offline
/// table drivers never consult this switch — LinearRegression::fit is
/// untouched, so the paper tables stay byte-identical under any setting.
void setDefaultFitAlgorithm(FitAlgorithm A);

/// \returns the process-wide online-fit algorithm.
FitAlgorithm defaultFitAlgorithm();

/// Configuration of the streaming linear model.
struct RlsOptions {
  /// No intercept term, matching the paper's linear energy models.
  bool ZeroIntercept = true;
  /// Ridge penalty; also the prior precision seeding P before the first
  /// batch fit. Must be > 0 so P exists even for rank-deficient seeds.
  double Lambda = 1e-6;
};

/// Linear regression with O(F^2) recursive-least-squares online updates.
///
/// Unlike the paper-default LinearRegression this model is unconstrained
/// (no NNLS): non-negativity is a projection, not an invariant a rank-1
/// update can maintain. On the fleet workloads the serving engine
/// retrains over, the non-negativity constraints are inactive anyway
/// (energy rises with every counted event), so the unconstrained solution
/// coincides with the NNLS one.
class RlsLinearRegression : public Model {
public:
  explicit RlsLinearRegression(RlsOptions Options = RlsOptions())
      : Options(Options) {}

  /// Batch (re)fit: solves the ridge normal equations over \p Training
  /// (the exact system LinearRegression solves with NonNegative off) and
  /// seeds the inverse Gram for subsequent update() calls. This is also
  /// the FitAlgorithm::Refit reference: calling fit on the accumulated
  /// stream after every epoch is the O(N*F^2) path the Rls updates are
  /// gated against.
  Expected<bool> fit(const Dataset &Training) override;

  /// Folds one observation (\p Features: featureWidth() values, target
  /// \p Target) into the model: Sherman-Morrison rank-1 update of the
  /// inverse Gram plus the gain-weighted coefficient correction. O(F^2)
  /// time, O(F^2) state, no history. Must follow a successful fit().
  void update(const double *Features, double Target);

  /// Convenience overload; asserts the width matches.
  void update(const std::vector<double> &Features, double Target) {
    assert(Features.size() == Width && "feature width mismatch");
    update(Features.data(), Target);
  }

  double predict(const std::vector<double> &Features) const override;

  /// Allocation-free single-row predict for serving hot loops.
  double predictRow(const double *Features) const;

  std::vector<double> predictBatch(const Dataset &Data) const override;
  std::string name() const override { return "RLS-LR"; }

  /// \returns the current coefficients (one per feature).
  const std::vector<double> &coefficients() const {
    assert(Fitted && "model not fitted");
    return Coefficients;
  }

  /// \returns the intercept (0 when ZeroIntercept).
  double intercept() const {
    assert(Fitted && "model not fitted");
    return Intercept;
  }

  size_t featureWidth() const { return Width; }

  /// \returns rows absorbed so far (seed rows plus update() calls).
  uint64_t observations() const { return Seen; }

private:
  /// Augmented width: featureWidth() plus one intercept slot when
  /// ZeroIntercept is off. W and P live in augmented coordinates.
  size_t stateWidth() const { return Options.ZeroIntercept ? Width : Width + 1; }

  RlsOptions Options;
  size_t Width = 0;
  std::vector<double> Coefficients; ///< Per-feature view of the state.
  double Intercept = 0;
  /// Augmented coefficient vector (intercept first when present).
  std::vector<double> W;
  /// Inverse Gram (X^T X + Lambda I)^-1, stateWidth() x stateWidth()
  /// row-major, kept symmetric by construction.
  std::vector<double> P;
  std::vector<double> Gain; ///< Reused P*x scratch (stateWidth()).
  std::vector<double> XAug; ///< Reused augmented-row scratch (intercept).
  uint64_t Seen = 0;
  bool Fitted = false;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_RLSLINEARREGRESSION_H
