//===- ml/ModelIo.h - Linear-model persistence -------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Save/load for linear energy models, so a model trained once against
/// the power meter can be deployed as an online estimator elsewhere. The
/// format is a small self-describing text file:
///
///   slope-lr-model v1
///   intercept <value>
///   coef <pmc-name> <value>
///   ...
///
/// Values round-trip at full double precision. Only linear models are
/// serializable — they are the deployable artifact of the paper's
/// pipeline (RF/NN models stay in-process).
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_MODELIO_H
#define SLOPE_ML_MODELIO_H

#include "ml/LinearRegression.h"
#include "support/Expected.h"

#include <string>

namespace slope {
namespace ml {

/// A serializable linear model: coefficients bound to PMC names.
struct SavedLinearModel {
  std::vector<std::string> PmcNames;
  std::vector<double> Coefficients;
  double Intercept = 0;

  /// Predicts from a count vector ordered like PmcNames.
  double predict(const std::vector<double> &Counts) const;
};

/// Captures a fitted LinearRegression with its feature names.
/// Asserts that the name count matches the model width.
SavedLinearModel snapshotLinearModel(const LinearRegression &Model,
                                     const std::vector<std::string> &Names);

/// Serializes to the text format above.
std::string linearModelToText(const SavedLinearModel &Model);

/// Parses the text format. \returns an error naming the offending line
/// on malformed input.
Expected<SavedLinearModel> linearModelFromText(const std::string &Text);

/// Writes \p Model to \p Path.
Expected<bool> writeLinearModel(const SavedLinearModel &Model,
                                const std::string &Path);

/// Reads a model from \p Path.
Expected<SavedLinearModel> readLinearModel(const std::string &Path);

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_MODELIO_H
