//===- ml/DecisionTree.cpp - CART regression tree ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace slope;
using namespace slope::ml;

Expected<bool> DecisionTree::fit(const Dataset &Training) {
  std::vector<size_t> AllRows(Training.numRows());
  std::iota(AllRows.begin(), AllRows.end(), size_t{0});
  return fitRows(Training, AllRows);
}

Expected<bool> DecisionTree::fitRows(const Dataset &Training,
                                     const std::vector<size_t> &RowIndices) {
  if (RowIndices.empty())
    return makeError("cannot fit a tree on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a tree without features");
  Nodes.clear();
  std::vector<size_t> Indices = RowIndices;
  grow(Training, Indices, 0);
  Fitted = true;
  return true;
}

/// Finds the best (feature, threshold) split of \p Indices by sum-of-
/// squared-error reduction. \returns false if no valid split exists.
static bool findBestSplit(const Dataset &Training,
                          const std::vector<size_t> &Indices,
                          const std::vector<size_t> &Features,
                          size_t MinSamplesLeaf, size_t &BestFeature,
                          double &BestThreshold) {
  double BestScore = -1;
  bool Found = false;

  std::vector<std::pair<double, double>> Sorted; // (feature value, target)
  for (size_t F : Features) {
    Sorted.clear();
    Sorted.reserve(Indices.size());
    for (size_t R : Indices)
      Sorted.emplace_back(Training.row(R)[F], Training.target(R));
    std::sort(Sorted.begin(), Sorted.end());

    // Prefix sums let us evaluate every threshold in one sweep.
    double TotalSum = 0, TotalSq = 0;
    for (const auto &[_, Y] : Sorted) {
      TotalSum += Y;
      TotalSq += Y * Y;
    }
    double LeftSum = 0, LeftSq = 0;
    size_t N = Sorted.size();
    for (size_t I = 0; I + 1 < N; ++I) {
      LeftSum += Sorted[I].second;
      LeftSq += Sorted[I].second * Sorted[I].second;
      // Can't split between equal feature values.
      if (Sorted[I].first == Sorted[I + 1].first)
        continue;
      size_t NL = I + 1, NR = N - NL;
      if (NL < MinSamplesLeaf || NR < MinSamplesLeaf)
        continue;
      double RightSum = TotalSum - LeftSum;
      // Variance-reduction score: total SSE minus the children's SSE
      // collapses to the weighted sum of squared child means.
      double Score = LeftSum * LeftSum / static_cast<double>(NL) +
                     RightSum * RightSum / static_cast<double>(NR);
      if (Score > BestScore) {
        BestScore = Score;
        BestFeature = F;
        BestThreshold = 0.5 * (Sorted[I].first + Sorted[I + 1].first);
        Found = true;
      }
    }
  }
  return Found;
}

int32_t DecisionTree::grow(const Dataset &Training,
                           std::vector<size_t> &Indices, unsigned Depth) {
  assert(!Indices.empty() && "growing a node over zero rows");
  int32_t NodeId = static_cast<int32_t>(Nodes.size());
  Nodes.emplace_back();
  Nodes[NodeId].Depth = Depth;

  double Sum = 0;
  for (size_t R : Indices)
    Sum += Training.target(R);
  double Mean = Sum / static_cast<double>(Indices.size());
  Nodes[NodeId].LeafValue = Mean;

  if (Depth >= Options.MaxDepth || Indices.size() < Options.MinSamplesSplit)
    return NodeId;

  // Candidate feature subset (mtry) for forests; all features otherwise.
  std::vector<size_t> Features(Training.numFeatures());
  std::iota(Features.begin(), Features.end(), size_t{0});
  if (Options.MaxFeatures != 0 && Options.MaxFeatures < Features.size()) {
    for (size_t I = Features.size(); I > 1; --I)
      std::swap(Features[I - 1], Features[TreeRng.below(I)]);
    Features.resize(Options.MaxFeatures);
  }

  size_t BestFeature = 0;
  double BestThreshold = 0;
  if (!findBestSplit(Training, Indices, Features, Options.MinSamplesLeaf,
                     BestFeature, BestThreshold))
    return NodeId;

  std::vector<size_t> LeftIdx, RightIdx;
  for (size_t R : Indices) {
    if (Training.row(R)[BestFeature] <= BestThreshold)
      LeftIdx.push_back(R);
    else
      RightIdx.push_back(R);
  }
  assert(!LeftIdx.empty() && !RightIdx.empty() && "degenerate split");

  // Free the parent's index memory before recursing.
  Indices.clear();
  Indices.shrink_to_fit();

  int32_t Left = grow(Training, LeftIdx, Depth + 1);
  int32_t Right = grow(Training, RightIdx, Depth + 1);
  Nodes[NodeId].Feature = BestFeature;
  Nodes[NodeId].Threshold = BestThreshold;
  Nodes[NodeId].Left = Left;
  Nodes[NodeId].Right = Right;
  return NodeId;
}

double DecisionTree::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted tree");
  assert(!Nodes.empty() && "fitted tree has no nodes");
  int32_t Id = 0;
  while (!Nodes[Id].isLeaf()) {
    assert(Nodes[Id].Feature < Features.size() &&
           "feature width does not match the fitted tree");
    Id = Features[Nodes[Id].Feature] <= Nodes[Id].Threshold ? Nodes[Id].Left
                                                            : Nodes[Id].Right;
  }
  return Nodes[Id].LeafValue;
}

unsigned DecisionTree::fittedDepth() const {
  unsigned Max = 0;
  for (const Node &N : Nodes)
    Max = std::max(Max, N.Depth);
  return Max;
}
