//===- ml/DecisionTree.cpp - CART regression tree ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

using namespace slope;
using namespace slope::ml;

void (*ml::detail::TreeGrowPhaseProbe)(bool) = nullptr;

namespace {
TreeAlgorithm initialTreeAlgorithm() {
  if (const char *Env = std::getenv("SLOPE_TREE_ALGO")) {
    if (std::string_view(Env) == "naive")
      return TreeAlgorithm::Naive;
    if (std::string_view(Env) == "presorted")
      return TreeAlgorithm::Presorted;
  }
  return TreeAlgorithm::Presorted;
}

TreeAlgorithm GlobalTreeAlgorithm = initialTreeAlgorithm();
} // namespace

void ml::setDefaultTreeAlgorithm(TreeAlgorithm A) {
  assert(A != TreeAlgorithm::Default && "the default cannot defer to itself");
  GlobalTreeAlgorithm = A;
}

TreeAlgorithm ml::defaultTreeAlgorithm() { return GlobalTreeAlgorithm; }

DatasetPresort::DatasetPresort(const Dataset &Training)
    : NumRows(Training.numRows()), NumFeatures(Training.numFeatures()),
      Orders(NumRows * NumFeatures) {
  assert(NumRows <= UINT32_MAX && "row count exceeds the 32-bit index width");
  const double *Targets = Training.targets().data();
  for (size_t Feat = 0; Feat < NumFeatures; ++Feat) {
    uint32_t *Ids = Orders.data() + Feat * NumRows;
    std::iota(Ids, Ids + NumRows, uint32_t{0});
    const double *Col = Training.column(Feat);
    std::sort(Ids, Ids + NumRows, [&](uint32_t A, uint32_t B) {
      if (Col[A] != Col[B])
        return Col[A] < Col[B];
      if (Targets[A] != Targets[B])
        return Targets[A] < Targets[B];
      return A < B;
    });
  }
}

Expected<bool> DecisionTree::fit(const Dataset &Training) {
  std::vector<size_t> AllRows(Training.numRows());
  std::iota(AllRows.begin(), AllRows.end(), size_t{0});
  return fitRows(Training, AllRows);
}

Expected<bool> DecisionTree::fitRows(const Dataset &Training,
                                     const std::vector<size_t> &RowIndices,
                                     const DatasetPresort *Master) {
  if (RowIndices.empty())
    return makeError("cannot fit a tree on an empty dataset");
  if (Training.numFeatures() == 0)
    return makeError("cannot fit a tree without features");
  Nodes.clear();
  // Every leaf holds >= 1 sample and internal nodes have two children, so
  // a tree over P samples has at most 2P - 1 nodes; reserving up front
  // keeps node creation allocation-free during growth.
  Nodes.reserve(2 * RowIndices.size() - 1);
  MaxFittedDepth = 0;

  TreeAlgorithm Algo = Options.Algorithm == TreeAlgorithm::Default
                           ? defaultTreeAlgorithm()
                           : Options.Algorithm;
  if (Algo == TreeAlgorithm::Naive) {
    std::vector<size_t> Indices = RowIndices;
    grow(Training, Indices, 0);
  } else {
    fitPresorted(Training, RowIndices, Master);
  }
  Fitted = true;
  return true;
}

//===----------------------------------------------------------------------===//
// Presorted growth
//===----------------------------------------------------------------------===//

namespace {
/// DFS work item of the presorted growth stack.
struct WorkItem {
  uint32_t Start, End;
  unsigned Depth;
  int32_t Parent;
  bool IsLeft;
};

/// Reusable scratch arena for fitPresorted. Thread-local so ensembles
/// fitting many trees per thread pay the allocations once; every vector
/// is resized (never shrunk) and fully overwritten before use.
struct GrowScratch {
  std::vector<double> FeatVal; // FeatVal[f*P + s]
  std::vector<double> SampleTarget;
  std::vector<uint32_t> SortedIdx; // SortedIdx[f*P + i]
  std::vector<uint32_t> InsertOrder;
  std::vector<uint32_t> Tmp; // right-side spill for the partitions
  std::vector<uint32_t> BucketStart, Fill, Bucket;
  std::vector<uint8_t> GoesLeft;
  std::vector<size_t> FeatCand; // mtry shuffle buffer
  std::vector<WorkItem> Stack;
};
} // namespace

void DecisionTree::fitPresorted(const Dataset &Training,
                                const std::vector<size_t> &RowIndices,
                                const DatasetPresort *Master) {
  const size_t P = RowIndices.size();
  const size_t F = Training.numFeatures();
  assert(P <= UINT32_MAX && "sample count exceeds the 32-bit index width");

  // --- Per-tree scratch setup: every allocation of the fit happens here.
  // Feature values and targets are gathered per sample id (0..P-1, in the
  // caller's row order, so bootstrap duplicates are distinct samples);
  // the growth loop below then touches only these contiguous arrays.
  static thread_local GrowScratch TLS;
  TLS.FeatVal.resize(F * P);
  TLS.SampleTarget.resize(P);
  std::vector<double> &FeatVal = TLS.FeatVal;
  std::vector<double> &SampleTarget = TLS.SampleTarget;
  const double *TargetData = Training.targets().data();
  for (size_t S = 0; S < P; ++S)
    SampleTarget[S] = TargetData[RowIndices[S]];
  for (size_t Feat = 0; Feat < F; ++Feat) {
    const double *Col = Training.column(Feat);
    double *Dst = &FeatVal[Feat * P];
    for (size_t S = 0; S < P; ++S)
      Dst[S] = Col[RowIndices[S]];
  }

  // Each feature's sample ids in ascending (value, target) order. Ties on
  // (value, target) carry equal targets, so each node's prefix sweep
  // accumulates targets in a bit-identical order no matter how the ties
  // are broken; stable partitioning preserves the order in every
  // descendant, which is what makes the algorithms bit-identical.
  TLS.SortedIdx.resize(F * P);
  std::vector<uint32_t> &SortedIdx = TLS.SortedIdx;
  if (Master) {
    // Derive from the forest-wide row ordering with a linear bucket
    // gather: emit each row's sample ids (ascending) in master row order.
    assert(Master->numRows() == Training.numRows() &&
           Master->numFeatures() == F &&
           "presort built from a different dataset");
    const size_t NR = Training.numRows();
    TLS.BucketStart.assign(NR + 1, 0);
    TLS.Fill.resize(NR);
    TLS.Bucket.resize(P);
    std::vector<uint32_t> &BucketStart = TLS.BucketStart;
    std::vector<uint32_t> &Bucket = TLS.Bucket;
    for (size_t S = 0; S < P; ++S)
      ++BucketStart[RowIndices[S] + 1];
    for (size_t R = 0; R < NR; ++R)
      BucketStart[R + 1] += BucketStart[R];
    std::copy(BucketStart.begin(), BucketStart.end() - 1, TLS.Fill.begin());
    for (size_t S = 0; S < P; ++S)
      Bucket[TLS.Fill[RowIndices[S]]++] = static_cast<uint32_t>(S);
    for (size_t Feat = 0; Feat < F; ++Feat) {
      const uint32_t *MasterOrder = Master->order(Feat);
      uint32_t *Ids = &SortedIdx[Feat * P];
      size_t K = 0;
      for (size_t M = 0; M < NR; ++M) {
        uint32_t Row = MasterOrder[M];
        for (uint32_t B = BucketStart[Row]; B < BucketStart[Row + 1]; ++B)
          Ids[K++] = Bucket[B];
      }
      assert(K == P && "bucket gather dropped samples");
    }
  } else {
    // Standalone tree: one comparison sort per feature per tree.
    for (size_t Feat = 0; Feat < F; ++Feat) {
      uint32_t *Ids = &SortedIdx[Feat * P];
      std::iota(Ids, Ids + P, uint32_t{0});
      const double *Vals = &FeatVal[Feat * P];
      std::sort(Ids, Ids + P, [&](uint32_t A, uint32_t B) {
        if (Vals[A] != Vals[B])
          return Vals[A] < Vals[B];
        if (SampleTarget[A] != SampleTarget[B])
          return SampleTarget[A] < SampleTarget[B];
        return A < B;
      });
    }
  }

  // Sample ids in insertion (caller row) order; node means accumulate over
  // this array so their floating-point order matches the naive recursion.
  TLS.InsertOrder.resize(P);
  std::vector<uint32_t> &InsertOrder = TLS.InsertOrder;
  std::iota(InsertOrder.begin(), InsertOrder.end(), uint32_t{0});

  TLS.Tmp.resize(P);
  TLS.GoesLeft.resize(P);
  TLS.FeatCand.resize(F);
  std::vector<uint32_t> &Tmp = TLS.Tmp;
  std::vector<uint8_t> &GoesLeft = TLS.GoesLeft;
  std::vector<size_t> &FeatCand = TLS.FeatCand;

  // Explicit DFS work stack; left pushed last so nodes are created in the
  // naive recursion's pre-order and TreeRng draws in the same sequence.
  std::vector<WorkItem> &Stack = TLS.Stack;
  Stack.clear();
  Stack.reserve(std::min<size_t>(Options.MaxDepth, P) + 4);
  Stack.push_back({0, static_cast<uint32_t>(P), 0, -1, false});

  if (detail::TreeGrowPhaseProbe)
    detail::TreeGrowPhaseProbe(true);

  // Partitions one index array's [Start, End) segment into stable
  // left-then-right order using the GoesLeft marks. Both stores are
  // unconditional and the cursors advance by the mark value, so the loop
  // carries no data-dependent branch (the sides are near-random, which
  // would otherwise mispredict on every other element).
  auto StablePartition = [&](uint32_t *Ids, uint32_t Start, uint32_t End) {
    uint32_t Write = Start, NumRight = 0;
    for (uint32_t I = Start; I < End; ++I) {
      uint32_t S = Ids[I];
      uint8_t Left = GoesLeft[S];
      Ids[Write] = S;
      Tmp[NumRight] = S;
      Write += Left;
      NumRight += 1 - Left;
    }
    std::copy(Tmp.data(), Tmp.data() + NumRight, Ids + Write);
  };

  while (!Stack.empty()) {
    WorkItem Item = Stack.back();
    Stack.pop_back();
    int32_t NodeId = static_cast<int32_t>(Nodes.size());
    Nodes.emplace_back(); // within the fitRows reservation: no allocation
    Nodes[NodeId].Depth = Item.Depth;
    MaxFittedDepth = std::max(MaxFittedDepth, Item.Depth);
    if (Item.Parent >= 0) {
      if (Item.IsLeft)
        Nodes[Item.Parent].Left = NodeId;
      else
        Nodes[Item.Parent].Right = NodeId;
    }

    const size_t Count = Item.End - Item.Start;
    double Sum = 0;
    for (uint32_t I = Item.Start; I < Item.End; ++I)
      Sum += SampleTarget[InsertOrder[I]];
    Nodes[NodeId].LeafValue = Sum / static_cast<double>(Count);

    if (Item.Depth >= Options.MaxDepth || Count < Options.MinSamplesSplit)
      continue;

    // Candidate feature subset (mtry) for forests; all features otherwise.
    // The shuffle consumes TreeRng draws exactly like the naive path.
    size_t NumCand = F;
    std::iota(FeatCand.begin(), FeatCand.end(), size_t{0});
    if (Options.MaxFeatures != 0 && Options.MaxFeatures < F) {
      for (size_t I = F; I > 1; --I)
        std::swap(FeatCand[I - 1], FeatCand[TreeRng.below(I)]);
      NumCand = Options.MaxFeatures;
    }

    // Best (feature, threshold) by sum-of-squared-error reduction, swept
    // over the presorted segments — no per-node sort.
    double BestScore = -1;
    bool Found = false;
    size_t BestFeature = 0;
    double BestThreshold = 0;
    for (size_t CI = 0; CI < NumCand; ++CI) {
      size_t Feat = FeatCand[CI];
      const uint32_t *Ids = &SortedIdx[Feat * P];
      const double *Vals = &FeatVal[Feat * P];
      // Totals accumulate in this feature's sorted order, matching the
      // naive sweep's floating-point addition order bit for bit.
      double TotalSum = 0;
      for (uint32_t I = Item.Start; I < Item.End; ++I)
        TotalSum += SampleTarget[Ids[I]];
      double LeftSum = 0;
      for (uint32_t I = Item.Start; I + 1 < Item.End; ++I) {
        uint32_t S = Ids[I];
        LeftSum += SampleTarget[S];
        double V = Vals[S], VNext = Vals[Ids[I + 1]];
        // Can't split between equal feature values.
        if (V == VNext)
          continue;
        size_t NL = I + 1 - Item.Start, NR = Count - NL;
        if (NL < Options.MinSamplesLeaf || NR < Options.MinSamplesLeaf)
          continue;
        double RightSum = TotalSum - LeftSum;
        // Variance-reduction score: total SSE minus the children's SSE
        // collapses to the weighted sum of squared child means.
        double Score = LeftSum * LeftSum / static_cast<double>(NL) +
                       RightSum * RightSum / static_cast<double>(NR);
        if (Score > BestScore) {
          BestScore = Score;
          BestFeature = Feat;
          BestThreshold = 0.5 * (V + VNext);
          Found = true;
        }
      }
    }
    if (!Found)
      continue;

    // Mark each sample's side once, then stable-partition every index
    // array in place so child segments stay sorted per feature.
    const double *SplitVals = &FeatVal[BestFeature * P];
    uint32_t NumLeft = 0;
    for (uint32_t I = Item.Start; I < Item.End; ++I) {
      uint32_t S = InsertOrder[I];
      bool Left = SplitVals[S] <= BestThreshold;
      GoesLeft[S] = Left;
      NumLeft += Left;
    }
    assert(NumLeft > 0 && NumLeft < Count && "degenerate split");

    StablePartition(InsertOrder.data(), Item.Start, Item.End);
    for (size_t Feat = 0; Feat < F; ++Feat)
      StablePartition(&SortedIdx[Feat * P], Item.Start, Item.End);

    Nodes[NodeId].Feature = BestFeature;
    Nodes[NodeId].Threshold = BestThreshold;
    uint32_t Mid = Item.Start + NumLeft;
    Stack.push_back({Mid, Item.End, Item.Depth + 1, NodeId, false});
    Stack.push_back({Item.Start, Mid, Item.Depth + 1, NodeId, true});
  }

  if (detail::TreeGrowPhaseProbe)
    detail::TreeGrowPhaseProbe(false);
}

//===----------------------------------------------------------------------===//
// Naive growth (seed kernel, kept as the reference implementation)
//===----------------------------------------------------------------------===//

/// Finds the best (feature, threshold) split of \p Indices by sum-of-
/// squared-error reduction. \returns false if no valid split exists.
static bool findBestSplit(const Dataset &Training,
                          const std::vector<size_t> &Indices,
                          const std::vector<size_t> &Features,
                          size_t MinSamplesLeaf, size_t &BestFeature,
                          double &BestThreshold) {
  double BestScore = -1;
  bool Found = false;

  std::vector<std::pair<double, double>> Sorted; // (feature value, target)
  for (size_t F : Features) {
    const double *Col = Training.column(F);
    Sorted.clear();
    Sorted.reserve(Indices.size());
    for (size_t R : Indices)
      Sorted.emplace_back(Col[R], Training.target(R));
    std::sort(Sorted.begin(), Sorted.end());

    // Prefix sums let us evaluate every threshold in one sweep.
    double TotalSum = 0;
    for (const auto &[_, Y] : Sorted)
      TotalSum += Y;
    double LeftSum = 0;
    size_t N = Sorted.size();
    for (size_t I = 0; I + 1 < N; ++I) {
      LeftSum += Sorted[I].second;
      // Can't split between equal feature values.
      if (Sorted[I].first == Sorted[I + 1].first)
        continue;
      size_t NL = I + 1, NR = N - NL;
      if (NL < MinSamplesLeaf || NR < MinSamplesLeaf)
        continue;
      double RightSum = TotalSum - LeftSum;
      // Variance-reduction score: total SSE minus the children's SSE
      // collapses to the weighted sum of squared child means.
      double Score = LeftSum * LeftSum / static_cast<double>(NL) +
                     RightSum * RightSum / static_cast<double>(NR);
      if (Score > BestScore) {
        BestScore = Score;
        BestFeature = F;
        BestThreshold = 0.5 * (Sorted[I].first + Sorted[I + 1].first);
        Found = true;
      }
    }
  }
  return Found;
}

int32_t DecisionTree::grow(const Dataset &Training,
                           std::vector<size_t> &Indices, unsigned Depth) {
  assert(!Indices.empty() && "growing a node over zero rows");
  int32_t NodeId = static_cast<int32_t>(Nodes.size());
  Nodes.emplace_back();
  Nodes[NodeId].Depth = Depth;
  MaxFittedDepth = std::max(MaxFittedDepth, Depth);

  double Sum = 0;
  for (size_t R : Indices)
    Sum += Training.target(R);
  double Mean = Sum / static_cast<double>(Indices.size());
  Nodes[NodeId].LeafValue = Mean;

  if (Depth >= Options.MaxDepth || Indices.size() < Options.MinSamplesSplit)
    return NodeId;

  // Candidate feature subset (mtry) for forests; all features otherwise.
  std::vector<size_t> Features(Training.numFeatures());
  std::iota(Features.begin(), Features.end(), size_t{0});
  if (Options.MaxFeatures != 0 && Options.MaxFeatures < Features.size()) {
    for (size_t I = Features.size(); I > 1; --I)
      std::swap(Features[I - 1], Features[TreeRng.below(I)]);
    Features.resize(Options.MaxFeatures);
  }

  size_t BestFeature = 0;
  double BestThreshold = 0;
  if (!findBestSplit(Training, Indices, Features, Options.MinSamplesLeaf,
                     BestFeature, BestThreshold))
    return NodeId;

  std::vector<size_t> LeftIdx, RightIdx;
  const double *SplitCol = Training.column(BestFeature);
  for (size_t R : Indices) {
    if (SplitCol[R] <= BestThreshold)
      LeftIdx.push_back(R);
    else
      RightIdx.push_back(R);
  }
  assert(!LeftIdx.empty() && !RightIdx.empty() && "degenerate split");

  // Free the parent's index memory before recursing.
  Indices.clear();
  Indices.shrink_to_fit();

  int32_t Left = grow(Training, LeftIdx, Depth + 1);
  int32_t Right = grow(Training, RightIdx, Depth + 1);
  Nodes[NodeId].Feature = BestFeature;
  Nodes[NodeId].Threshold = BestThreshold;
  Nodes[NodeId].Left = Left;
  Nodes[NodeId].Right = Right;
  return NodeId;
}

//===----------------------------------------------------------------------===//
// Inference
//===----------------------------------------------------------------------===//

double DecisionTree::predict(const std::vector<double> &Features) const {
  assert(Fitted && "predicting with an unfitted tree");
  assert(!Nodes.empty() && "fitted tree has no nodes");
  int32_t Id = 0;
  while (!Nodes[Id].isLeaf()) {
    assert(Nodes[Id].Feature < Features.size() &&
           "feature width does not match the fitted tree");
    Id = Features[Nodes[Id].Feature] <= Nodes[Id].Threshold ? Nodes[Id].Left
                                                            : Nodes[Id].Right;
  }
  return Nodes[Id].LeafValue;
}

double DecisionTree::predictRow(const double *Features) const {
  assert(Fitted && "predicting with an unfitted tree");
  const Node *N = &Nodes[0];
  while (!N->isLeaf())
    N = &Nodes[Features[N->Feature] <= N->Threshold ? N->Left : N->Right];
  return N->LeafValue;
}

std::vector<double> DecisionTree::predictBatch(const Dataset &Data) const {
  assert(Fitted && "predicting with an unfitted tree");
  std::vector<double> Out(Data.numRows());
  for (size_t R = 0; R < Data.numRows(); ++R) {
    const Node *N = &Nodes[0];
    while (!N->isLeaf())
      N = &Nodes[Data.column(N->Feature)[R] <= N->Threshold ? N->Left
                                                            : N->Right];
    Out[R] = N->LeafValue;
  }
  return Out;
}
