//===- ml/Metrics.h - Model evaluation metrics ------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression metrics and model evaluation helpers. The paper scores every
/// model by the (min, avg, max) percentage prediction error against
/// power-meter ground truth; evaluateModel computes exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_METRICS_H
#define SLOPE_ML_METRICS_H

#include "ml/Model.h"
#include "stats/Descriptive.h"

#include <functional>
#include <memory>

namespace slope {
namespace ml {

/// \returns mean squared error.
double mse(const std::vector<double> &Predicted,
           const std::vector<double> &Actual);

/// \returns mean absolute error.
double mae(const std::vector<double> &Predicted,
           const std::vector<double> &Actual);

/// \returns the coefficient of determination R^2 (1 is perfect; can be
/// negative for models worse than the mean predictor).
double r2(const std::vector<double> &Predicted,
          const std::vector<double> &Actual);

/// Evaluates \p M on \p Test and \returns the paper-style percentage error
/// summary.
stats::ErrorSummary evaluateModel(const Model &M, const Dataset &Test);

/// K-fold cross-validated average percentage error of \p MakeModel's
/// models over \p Data (deterministic fold assignment from \p Seed).
double kFoldAvgError(const Dataset &Data, unsigned K, uint64_t Seed,
                     const std::function<std::unique_ptr<Model>()> &MakeModel);

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_METRICS_H
