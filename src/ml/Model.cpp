//===- ml/Model.cpp - Regression model interface ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Model.h"

using namespace slope;
using namespace slope::ml;

// Out-of-line virtual anchor.
Model::~Model() = default;

std::vector<double> Model::predictAll(const Dataset &Data) const {
  std::vector<double> Out;
  Out.reserve(Data.numRows());
  for (size_t R = 0; R < Data.numRows(); ++R)
    Out.push_back(predict(Data.row(R)));
  return Out;
}
