//===- ml/Model.cpp - Regression model interface ---------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/Model.h"

using namespace slope;
using namespace slope::ml;

// Out-of-line virtual anchor.
Model::~Model() = default;

std::vector<double> Model::predictBatch(const Dataset &Data) const {
  std::vector<double> Out;
  Out.reserve(Data.numRows());
  std::vector<double> RowBuf;
  for (size_t R = 0; R < Data.numRows(); ++R) {
    Data.gatherRow(R, RowBuf);
    Out.push_back(predict(RowBuf));
  }
  return Out;
}
