//===- ml/QuantizedModel.cpp - Fixed-point inference fast path -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//

#include "ml/QuantizedModel.h"

#include "ml/KnnRegressor.h"
#include "ml/LinearRegression.h"
#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

using namespace slope;
using namespace slope::ml;

namespace {

/// Fixed-point budget (see the header's scheme): calibration maxima land
/// near 2^24 feature quanta, saturation at 2^28 leaves 16x headroom, the
/// largest linear weight lands near 2^28, and leaf quanta stay <= 2^44 so
/// even thousand-tree forests accumulate in int64.
constexpr double FeatureTargetQuanta = 16777216.0;        // 2^24
constexpr double WeightCapQuanta = 268435456.0;           // 2^28
constexpr double LeafCapQuanta = 17592186044416.0;        // 2^44
constexpr size_t MaxQuantizedWidth = QuantizedModel::MaxWidth;

InferenceAlgorithm initialInferenceAlgorithm() {
  if (const char *Env = std::getenv("SLOPE_INFER_ALGO")) {
    if (std::string_view(Env) == "quantized")
      return InferenceAlgorithm::Quantized;
    if (std::string_view(Env) == "fp")
      return InferenceAlgorithm::Fp;
  }
  return InferenceAlgorithm::Fp;
}

InferenceAlgorithm GlobalInferenceAlgorithm = initialInferenceAlgorithm();

/// The largest power of two <= \p X (X > 0), computed exactly.
double floorPow2(double X) {
  assert(X > 0 && std::isfinite(X) && "scale selection needs a finite range");
  return std::exp2(std::floor(std::log2(X)));
}

/// Per-feature scale from a calibration column: the column's absolute
/// maximum lands in (2^23, 2^24] quanta. All-zero (or degenerate) columns
/// scale by 1 — every value quantizes to 0 anyway.
double featureScaleFor(const double *Col, size_t N) {
  double MaxAbs = 0;
  for (size_t R = 0; R < N; ++R)
    MaxAbs = std::max(MaxAbs, std::fabs(Col[R]));
  if (!(MaxAbs > 0) || !std::isfinite(MaxAbs))
    return 1.0;
  return floorPow2(FeatureTargetQuanta / MaxAbs);
}

} // namespace

void ml::setDefaultInferenceAlgorithm(InferenceAlgorithm A) {
  GlobalInferenceAlgorithm = A;
}

InferenceAlgorithm ml::defaultInferenceAlgorithm() {
  return GlobalInferenceAlgorithm;
}

double ml::maxRelativeError(const std::vector<double> &Ref,
                            const std::vector<double> &Got) {
  assert(Ref.size() == Got.size() && "comparing mismatched prediction sets");
  double MaxAbsRef = 0;
  for (double V : Ref)
    MaxAbsRef = std::max(MaxAbsRef, std::fabs(V));
  const double Floor = 1e-9 * MaxAbsRef;
  double Worst = 0;
  for (size_t I = 0; I < Ref.size(); ++I) {
    const double Denom = std::max(std::fabs(Ref[I]), Floor);
    if (Denom > 0)
      Worst = std::max(Worst, std::fabs(Got[I] - Ref[I]) / Denom);
  }
  return Worst;
}

Expected<std::unique_ptr<QuantizedModel>>
QuantizedModel::build(std::unique_ptr<Model> Reference,
                      const Dataset &Calibration) {
  if (!Reference)
    return makeError("cannot quantize a null model");
  if (Calibration.numRows() == 0)
    return makeError("quantization needs a non-empty calibration dataset");
  const size_t Width = Calibration.numFeatures();
  if (Width == 0 || Width > MaxQuantizedWidth)
    return makeError("quantized inference supports 1.." +
                     std::to_string(MaxQuantizedWidth) + " features, got " +
                     std::to_string(Width));

  auto Q = std::unique_ptr<QuantizedModel>(new QuantizedModel());
  Q->QuantScale.resize(Width);
  Q->QuantOffset.assign(Width, 0.0);
  for (size_t F = 0; F < Width; ++F)
    Q->QuantScale[F] =
        featureScaleFor(Calibration.column(F), Calibration.numRows());

  // Linear models — directly (LR) or by probing the affine map (an
  // identity-transfer NN is affine end to end, standardization included,
  // so predict() at the origin and the unit vectors recovers exact
  // effective weights).
  std::vector<double> Coefficients;
  double Intercept = 0;
  bool IsLinear = false;
  if (const auto *Lr = dynamic_cast<const LinearRegression *>(Reference.get())) {
    if (Lr->coefficients().size() != Width)
      return makeError("calibration width does not match the fitted model");
    Coefficients = Lr->coefficients();
    Intercept = Lr->intercept();
    IsLinear = true;
  } else if (const auto *Nn =
                 dynamic_cast<const NeuralNetwork *>(Reference.get())) {
    if (Nn->transfer() != Activation::Identity)
      return makeError("quantized inference requires an identity-transfer "
                       "NN (the paper configuration); " +
                       std::string(activationName(Nn->transfer())) +
                       " networks have no integer kernel");
    std::vector<double> Probe(Width, 0.0);
    Intercept = Nn->predict(Probe);
    Coefficients.resize(Width);
    for (size_t F = 0; F < Width; ++F) {
      // Probe at calibration scale, not at 1.0: PMC counts run to 1e9+,
      // so a unit probe would recover the coefficient as the difference
      // of two nearly equal affine-map values (catastrophic
      // cancellation). The step is a power of two, so dividing it back
      // out is exact.
      const double Step = FeatureTargetQuanta / Q->QuantScale[F];
      Probe[F] = Step;
      Coefficients[F] = (Nn->predict(Probe) - Intercept) / Step;
      Probe[F] = 0.0;
    }
    IsLinear = true;
  }
  if (IsLinear) {
    Q->ModelKind = Kind::Linear;
    double MaxPerQuantum = 0;
    for (size_t F = 0; F < Width; ++F)
      MaxPerQuantum = std::max(MaxPerQuantum,
                               std::fabs(Coefficients[F]) / Q->QuantScale[F]);
    // Output quanta per joule: the adaptive EM_TO_INT base. Push the
    // largest weight to ~2^28 so weight rounding is a 2^-29 relative
    // perturbation; an all-zero model gets the default pico-joule-like
    // 2^40 base.
    Q->OutputBase = MaxPerQuantum > 0
                        ? floorPow2(WeightCapQuanta / MaxPerQuantum)
                        : std::exp2(40);
    Q->DequantScale = 1.0 / Q->OutputBase;
    Q->WeightQ.resize(Width);
    for (size_t F = 0; F < Width; ++F)
      Q->WeightQ[F] =
          std::llround(Coefficients[F] * Q->OutputBase / Q->QuantScale[F]);
    Q->BiasQ = std::llround(Intercept * Q->OutputBase);
    Q->Ref = std::move(Reference);
    return Q;
  }

  // Trees and forests share the flattened-arena kernel.
  std::vector<const DecisionTree *> Trees;
  if (const auto *Tree = dynamic_cast<const DecisionTree *>(Reference.get())) {
    Trees.push_back(Tree);
  } else if (const auto *Forest =
                 dynamic_cast<const RandomForest *>(Reference.get())) {
    for (size_t T = 0; T < Forest->numTrees(); ++T)
      Trees.push_back(&Forest->tree(T));
  }
  if (!Trees.empty()) {
    Q->ModelKind = Kind::Forest;
    double MaxAbsLeaf = 0;
    size_t TotalNodes = 0;
    for (const DecisionTree *Tree : Trees) {
      TotalNodes += Tree->numNodes();
      for (size_t I = 0; I < Tree->numNodes(); ++I) {
        const DecisionTree::NodeView N = Tree->node(I);
        if (N.Feature == SIZE_MAX)
          MaxAbsLeaf = std::max(MaxAbsLeaf, std::fabs(N.LeafValue));
        else if (N.Feature >= Width)
          return makeError("calibration width does not match the fitted "
                           "model");
      }
    }
    Q->OutputBase = MaxAbsLeaf > 0 ? floorPow2(LeafCapQuanta / MaxAbsLeaf)
                                   : std::exp2(40);
    Q->DequantScale =
        1.0 / (Q->OutputBase * static_cast<double>(Trees.size()));
    Q->Nodes.reserve(TotalNodes);
    Q->LeafQ.reserve(TotalNodes);
    Q->Roots.reserve(Trees.size());
    Q->Depths.reserve(Trees.size());
    for (const DecisionTree *Tree : Trees) {
      const uint32_t Base = static_cast<uint32_t>(Q->Nodes.size());
      Q->Roots.push_back(Base);
      Q->Depths.push_back(static_cast<uint8_t>(Tree->fittedDepth()));
      for (size_t I = 0; I < Tree->numNodes(); ++I) {
        const DecisionTree::NodeView N = Tree->node(I);
        QNode Out;
        if (N.Feature == SIZE_MAX) {
          // Leaf: self-loop on a comparison that reads feature 0; the
          // walk stays put for its remaining fixed-depth iterations.
          Out.Thresh = INT32_MAX;
          Out.Feat = 0;
          Out.Child[0] = Out.Child[1] = static_cast<int32_t>(Base + I);
          Q->LeafQ.push_back(std::llround(N.LeafValue * Q->OutputBase));
        } else {
          const double ScaledT = N.Threshold * Q->QuantScale[N.Feature];
          const double Clamped =
              std::max(-1073741824.0, std::min(1073741824.0, ScaledT));
          Out.Thresh = static_cast<int32_t>(std::llround(Clamped));
          Out.Feat = static_cast<uint16_t>(N.Feature);
          Out.Child[0] = static_cast<int32_t>(Base) + N.Left;
          Out.Child[1] = static_cast<int32_t>(Base) + N.Right;
          Q->LeafQ.push_back(0);
        }
        Q->Nodes.push_back(Out);
      }
    }
    Q->Ref = std::move(Reference);
    return Q;
  }

  if (const auto *Knn = dynamic_cast<const KnnRegressor *>(Reference.get())) {
    if (Knn->featureMeans().size() != Width)
      return makeError("calibration width does not match the fitted model");
    Q->ModelKind = Kind::Knn;
    const std::vector<double> &Rows = Knn->standardizedRows();
    const size_t N = Knn->trainingTargets().size();
    double MaxAbsStd = 0;
    for (double V : Rows)
      MaxAbsStd = std::max(MaxAbsStd, std::fabs(V));
    // One shared scale for the whole standardized space — distances mix
    // features, so per-feature scales would distort the metric.
    Q->KnnDistScale =
        MaxAbsStd > 0 ? floorPow2(FeatureTargetQuanta / MaxAbsStd) : 1.0;
    for (size_t F = 0; F < Width; ++F) {
      const double Std = Knn->featureStds()[F];
      Q->QuantScale[F] = Q->KnnDistScale / Std;
      Q->QuantOffset[F] = -Knn->featureMeans()[F] * Q->KnnDistScale / Std;
    }
    Q->KnnRows.resize(N * Width);
    for (size_t I = 0; I < N * Width; ++I)
      Q->KnnRows[I] = quantizeValue(Rows[I], Q->KnnDistScale, 0.0);
    Q->KnnTargets = Knn->trainingTargets();
    Q->KnnK = Knn->effectiveK();
    Q->KnnDistanceWeighted = Knn->options().DistanceWeighted;
    double MaxAbsTarget = 0;
    for (double T : Q->KnnTargets)
      MaxAbsTarget = std::max(MaxAbsTarget, std::fabs(T));
    Q->OutputBase = MaxAbsTarget > 0 ? floorPow2(LeafCapQuanta / MaxAbsTarget)
                                     : std::exp2(40);
    Q->DequantScale = 1.0 / Q->OutputBase;
    Q->Ref = std::move(Reference);
    return Q;
  }

  return makeError("model family '" + Reference->name() +
                   "' has no quantized inference kernel");
}

Expected<bool> QuantizedModel::fit(const Dataset &) {
  return makeError("quantized models are built from fitted FP models via "
                   "QuantizedModel::build, never fitted directly");
}

int64_t QuantizedModel::predictLinear(const int32_t *QRow) const {
  int64_t Acc = BiasQ;
  const size_t Width = WeightQ.size();
  for (size_t F = 0; F < Width; ++F)
    Acc += WeightQ[F] * static_cast<int64_t>(QRow[F]);
  return Acc;
}

int64_t QuantizedModel::predictForest(const int32_t *QRow) const {
  int64_t Acc = 0;
  const QNode *Arena = Nodes.data();
  for (size_t T = 0; T < Roots.size(); ++T) {
    uint32_t I = Roots[T];
    for (unsigned D = Depths[T]; D-- > 0;) {
      const QNode &N = Arena[I];
      I = static_cast<uint32_t>(N.Child[QRow[N.Feat] > N.Thresh]);
    }
    Acc += LeafQ[I];
  }
  return Acc;
}

int64_t QuantizedModel::predictKnn(const int32_t *QRow) const {
  const size_t Width = QuantScale.size();
  const size_t N = KnnTargets.size();
  // Exact integer squared distances (deltas <= 2^29, so 64 features stay
  // under 2^63); the O(N) scan is the hot part and is integer-only.
  std::vector<std::pair<int64_t, size_t>> Distances;
  Distances.reserve(N);
  for (size_t R = 0; R < N; ++R) {
    const int32_t *Row = &KnnRows[R * Width];
    int64_t Sq = 0;
    for (size_t C = 0; C < Width; ++C) {
      const int64_t Dx = static_cast<int64_t>(Row[C]) - QRow[C];
      Sq += Dx * Dx;
    }
    Distances.emplace_back(Sq, R);
  }
  const size_t K = std::min(KnnK, N);
  std::nth_element(Distances.begin(), Distances.begin() + (K - 1),
                   Distances.end());

  // The k-element vote mirrors the FP reference on dequantized distances.
  double WeightSum = 0, ValueSum = 0;
  for (size_t I = 0; I < K; ++I) {
    const auto &[Sq, R] = Distances[I];
    if (KnnDistanceWeighted) {
      if (Sq == 0)
        return std::llround(KnnTargets[R] * OutputBase);
      const double Dist = std::sqrt(static_cast<double>(Sq)) / KnnDistScale;
      const double W = 1.0 / Dist;
      WeightSum += W;
      ValueSum += W * KnnTargets[R];
    } else {
      WeightSum += 1;
      ValueSum += KnnTargets[R];
    }
  }
  return std::llround(ValueSum / WeightSum * OutputBase);
}

int64_t QuantizedModel::predictQuantized(const int32_t *QRow) const {
  switch (ModelKind) {
  case Kind::Linear:
    return predictLinear(QRow);
  case Kind::Forest:
    return predictForest(QRow);
  case Kind::Knn:
    return predictKnn(QRow);
  }
  assert(false && "unknown quantized kernel");
  return 0;
}

void QuantizedModel::predictQuantizedMany(const int32_t *Rows,
                                          const size_t *Indices, size_t N,
                                          int64_t *Out) const {
  const size_t Width = QuantScale.size();
  switch (ModelKind) {
  case Kind::Linear: {
    // Open-coded: the dot product is ~Width multiply-adds, so a per-row
    // function call and kind dispatch would be a measurable fraction of
    // the work. The contiguous (null-Indices) variant is a plain strided
    // walk the compiler can keep entirely in registers.
    const int64_t *W = WeightQ.data();
    const int64_t Bias = BiasQ;
    if (Indices) {
      for (size_t I = 0; I < N; ++I) {
        const int32_t *QRow = Rows + Indices[I] * Width;
        int64_t Acc = Bias;
        for (size_t F = 0; F < Width; ++F)
          Acc += W[F] * static_cast<int64_t>(QRow[F]);
        Out[I] = Acc;
      }
    } else {
      const int32_t *QRow = Rows;
      for (size_t I = 0; I < N; ++I, QRow += Width) {
        int64_t Acc = Bias;
        for (size_t F = 0; F < Width; ++F)
          Acc += W[F] * static_cast<int64_t>(QRow[F]);
        Out[I] = Acc;
      }
    }
    return;
  }
  case Kind::Forest: {
    if (!Indices) {
      // Tree-major with four rows in flight: a row-major walk is one
      // dependent load chain per row (every node load waits on the
      // previous one), while four independent walks saturate the load
      // ports, and visiting one tree across the whole batch keeps that
      // tree's arena slice cache-hot for 4+ reuses per node instead of
      // touching every tree per row. Same int64 tree sum per row, just
      // reordered — integer accumulation is exact, so the result is
      // bit-identical to predictForest.
      std::fill(Out, Out + N, INT64_C(0));
      const QNode *Arena = Nodes.data();
      const int64_t *Leaf = LeafQ.data();
      for (size_t T = 0; T < Roots.size(); ++T) {
        const uint32_t Root = Roots[T];
        const unsigned Depth = Depths[T];
        size_t I = 0;
        for (; I + 4 <= N; I += 4) {
          const int32_t *R0 = Rows + I * Width;
          const int32_t *R1 = R0 + Width;
          const int32_t *R2 = R1 + Width;
          const int32_t *R3 = R2 + Width;
          uint32_t N0 = Root, N1 = Root, N2 = Root, N3 = Root;
          for (unsigned D = Depth; D-- > 0;) {
            const QNode &A0 = Arena[N0];
            N0 = static_cast<uint32_t>(A0.Child[R0[A0.Feat] > A0.Thresh]);
            const QNode &A1 = Arena[N1];
            N1 = static_cast<uint32_t>(A1.Child[R1[A1.Feat] > A1.Thresh]);
            const QNode &A2 = Arena[N2];
            N2 = static_cast<uint32_t>(A2.Child[R2[A2.Feat] > A2.Thresh]);
            const QNode &A3 = Arena[N3];
            N3 = static_cast<uint32_t>(A3.Child[R3[A3.Feat] > A3.Thresh]);
          }
          Out[I] += Leaf[N0];
          Out[I + 1] += Leaf[N1];
          Out[I + 2] += Leaf[N2];
          Out[I + 3] += Leaf[N3];
        }
        for (; I < N; ++I) {
          const int32_t *R = Rows + I * Width;
          uint32_t Node = Root;
          for (unsigned D = Depth; D-- > 0;) {
            const QNode &A = Arena[Node];
            Node = static_cast<uint32_t>(A.Child[R[A.Feat] > A.Thresh]);
          }
          Out[I] += Leaf[Node];
        }
      }
      return;
    }
    for (size_t I = 0; I < N; ++I)
      Out[I] = predictForest(Rows + Indices[I] * Width);
    return;
  }
  case Kind::Knn:
    for (size_t I = 0; I < N; ++I)
      Out[I] = predictKnn(Rows + (Indices ? Indices[I] : I) * Width);
    return;
  }
  assert(false && "unknown quantized kernel");
}

double QuantizedModel::predict(const std::vector<double> &Features) const {
  assert(Features.size() == QuantScale.size() &&
         "feature width does not match the quantized model");
  int32_t QRow[MaxQuantizedWidth];
  quantizeRow(Features.data(), QRow);
  return dequantize(predictQuantized(QRow));
}

std::vector<double> QuantizedModel::predictBatch(const Dataset &Data) const {
  assert(Data.numFeatures() == QuantScale.size() &&
         "feature width does not match the quantized model");
  const size_t N = Data.numRows();
  const size_t Width = QuantScale.size();
  // Quantize column by column (one streaming pass per feature), then run
  // the batched integer kernel over the contiguous rows — identical
  // arithmetic to predict() (the forest kernel only reorders an exact
  // int64 sum), so the two paths agree bit for bit.
  std::vector<int32_t> QBuf(N * Width);
  for (size_t F = 0; F < Width; ++F) {
    const double *Col = Data.column(F);
    const double Scale = QuantScale[F], Offset = QuantOffset[F];
    for (size_t R = 0; R < N; ++R)
      QBuf[R * Width + F] = quantizeValue(Col[R], Scale, Offset);
  }
  std::vector<int64_t> OutQ(N);
  predictQuantizedMany(QBuf.data(), /*Indices=*/nullptr, N, OutQ.data());
  std::vector<double> Out(N);
  for (size_t R = 0; R < N; ++R)
    Out[R] = dequantize(OutQ[R]);
  return Out;
}
