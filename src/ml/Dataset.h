//===- ml/Dataset.h - Feature/target dataset --------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tabular dataset the experiments operate on: one row per application
/// run, one named feature column per PMC, and a dynamic-energy target.
/// Supports the column-subset and train/test-split operations the Class
/// A/B/C experiments are built from.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_DATASET_H
#define SLOPE_ML_DATASET_H

#include "stats/Matrix.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace slope {
namespace ml {

/// A supervised-regression dataset with named feature columns.
class Dataset {
public:
  Dataset() = default;

  /// Creates an empty dataset with the given feature names.
  explicit Dataset(std::vector<std::string> FeatureNames)
      : FeatureNames(std::move(FeatureNames)) {}

  /// Appends one observation; \p Features must match the column count.
  void addRow(const std::vector<double> &Features, double Target);

  size_t numRows() const { return Targets.size(); }
  size_t numFeatures() const { return FeatureNames.size(); }

  const std::vector<std::string> &featureNames() const { return FeatureNames; }
  const std::vector<double> &targets() const { return Targets; }
  const std::vector<double> &row(size_t R) const {
    assert(R < Rows.size() && "row index out of range");
    return Rows[R];
  }
  double target(size_t R) const {
    assert(R < Targets.size() && "row index out of range");
    return Targets[R];
  }

  /// \returns the feature rows as a dense matrix (numRows x numFeatures).
  stats::Matrix featureMatrix() const;

  /// \returns one feature column by index.
  std::vector<double> featureColumn(size_t C) const;

  /// \returns the index of the named column, or numFeatures() if absent.
  size_t indexOfFeature(const std::string &Name) const;

  /// \returns a dataset restricted to the named columns (order preserved
  /// as given). Asserts every name exists.
  Dataset selectFeatures(const std::vector<std::string> &Names) const;

  /// \returns a dataset containing the rows with the given indices.
  Dataset selectRows(const std::vector<size_t> &Indices) const;

  /// Splits into (train, test) with \p TestFraction of rows in the test
  /// set, shuffled by \p SplitRng. Deterministic for a fixed seed.
  std::pair<Dataset, Dataset> split(double TestFraction, Rng SplitRng) const;

  /// Splits by position: the first \p TrainRows rows train, the rest test.
  /// Matches the paper's "651 train / 150 test" fixed partitioning.
  std::pair<Dataset, Dataset> splitAt(size_t TrainRows) const;

private:
  std::vector<std::string> FeatureNames;
  std::vector<std::vector<double>> Rows;
  std::vector<double> Targets;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_DATASET_H
