//===- ml/Dataset.h - Feature/target dataset --------------------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tabular dataset the experiments operate on: one row per application
/// run, one named feature column per PMC, and a dynamic-energy target.
/// Supports the column-subset and train/test-split operations the Class
/// A/B/C experiments are built from.
///
/// Storage is columnar (structure of arrays): each feature lives in one
/// contiguous array, so tree split sweeps, standardization passes and
/// column subsetting stream cache-line-friendly memory instead of chasing
/// row vectors. Row access is a gather; hot paths should use column() or
/// gatherRow() with a reused buffer.
///
/// Columns live in support/AlignedBuffer storage: 64-byte aligned with
/// zero-filled padding up to a whole cache line, so the SIMD kernel pass
/// (stats/SimdKernels.h) can stream any column with full-width vector
/// loads and no masked epilogue hazards.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_ML_DATASET_H
#define SLOPE_ML_DATASET_H

#include "stats/Matrix.h"
#include "support/AlignedBuffer.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace slope {
namespace ml {

/// A supervised-regression dataset with named feature columns.
class Dataset {
public:
  Dataset() = default;

  /// Creates an empty dataset with the given feature names.
  explicit Dataset(std::vector<std::string> FeatureNames)
      : FeatureNames(std::move(FeatureNames)),
        Columns(this->FeatureNames.size()) {}

  /// Appends one observation; \p Features must match the column count.
  void addRow(const std::vector<double> &Features, double Target);

  /// Appends one observation from a raw row of numFeatures() values.
  /// Serving hot paths append straight from flat trace storage without
  /// materializing a std::vector per observation.
  void addRow(const double *Features, double Target);

  /// Pre-sizes every column for \p NumRows appends.
  void reserveRows(size_t NumRows);

  /// Drops every row but keeps the schema and the columns' capacity, so
  /// a bounded-size inference batch can be refilled with no allocations
  /// once the first batch sized the columns.
  void clearRows();

  size_t numRows() const { return Targets.size(); }
  size_t numFeatures() const { return FeatureNames.size(); }

  const std::vector<std::string> &featureNames() const { return FeatureNames; }
  const std::vector<double> &targets() const { return Targets; }

  /// \returns a contiguous view of feature column \p C (numRows values).
  const double *column(size_t C) const {
    assert(C < Columns.size() && "feature index out of range");
    return Columns[C].data();
  }

  /// \returns row \p R gathered into a fresh vector. Hot paths should use
  /// gatherRow() with a reused buffer or read columns directly.
  std::vector<double> row(size_t R) const;

  /// Gathers row \p R into \p Out (resized to numFeatures()).
  void gatherRow(size_t R, std::vector<double> &Out) const;

  double target(size_t R) const {
    assert(R < Targets.size() && "row index out of range");
    return Targets[R];
  }

  /// \returns the feature rows as a dense matrix (numRows x numFeatures).
  stats::Matrix featureMatrix() const;

  /// \returns the regression design matrix: the feature rows, preceded by
  /// a constant-1 intercept column when \p IncludeOnes is set. Written
  /// directly from the columnar store (one strided pass per column), so
  /// fitting with an intercept does not copy a featureMatrix() element by
  /// element first. Entries equal featureMatrix()'s, shifted one column.
  stats::Matrix designMatrix(bool IncludeOnes) const;

  /// \returns one feature column by index, as a contiguous aligned view
  /// (vector-safe: padded to a whole cache line past size()).
  const AlignedBuffer<double> &featureColumn(size_t C) const {
    assert(C < Columns.size() && "feature index out of range");
    return Columns[C];
  }

  /// \returns the index of the named column, or numFeatures() if absent.
  size_t indexOfFeature(const std::string &Name) const;

  /// \returns a dataset restricted to the named columns (order preserved
  /// as given). Asserts every name exists. Columnar storage makes this a
  /// straight copy of the selected columns, not a per-row rebuild.
  Dataset selectFeatures(const std::vector<std::string> &Names) const;

  /// \returns a dataset containing the rows with the given indices.
  Dataset selectRows(const std::vector<size_t> &Indices) const;

  /// Splits into (train, test) with \p TestFraction of rows in the test
  /// set, shuffled by \p SplitRng. Deterministic for a fixed seed.
  std::pair<Dataset, Dataset> split(double TestFraction, Rng SplitRng) const;

  /// Splits by position: the first \p TrainRows rows train, the rest test.
  /// Matches the paper's "651 train / 150 test" fixed partitioning.
  std::pair<Dataset, Dataset> splitAt(size_t TrainRows) const;

private:
  std::vector<std::string> FeatureNames;
  /// One contiguous 64-byte-aligned, line-padded array per feature
  /// (structure of arrays).
  std::vector<AlignedBuffer<double>> Columns;
  std::vector<double> Targets;
};

} // namespace ml
} // namespace slope

#endif // SLOPE_ML_DATASET_H
