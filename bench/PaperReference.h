//===- bench/PaperReference.h - Published numbers for comparison -*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The values the paper reports, so every bench binary can print
/// "paper vs reproduced" side by side. Absolute levels are not expected
/// to match (our substrate is a simulator, not the authors' testbed);
/// orderings and ratios are.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_BENCH_PAPERREFERENCE_H
#define SLOPE_BENCH_PAPERREFERENCE_H

#include <cstddef>

namespace paper {

/// Table 2: additivity test errors (%) of X1..X6 on Haswell.
inline constexpr double Table2Errors[6] = {13, 37, 36, 80, 14, 10};

/// Model error triples (min, avg, max) as published.
struct ErrorTriple {
  double Min, Avg, Max;
};

/// Table 3: LR1..LR6.
inline constexpr ErrorTriple Table3Lr[6] = {
    {6.6, 31.2, 61.9},  {6.6, 31.2, 61.9},  {2.5, 25.3, 62.1},
    {2.5, 23.86, 100.3}, {2.5, 18.01, 89.45}, {2.5, 68.5, 90.5}};

/// Table 4: RF1..RF6.
inline constexpr ErrorTriple Table4Rf[6] = {
    {2.78, 37.8, 185.4}, {2.5, 30.4, 199.6}, {2.5, 30.02, 104},
    {2.5, 23.68, 59.3},  {2.5, 43.4, 174.4}, {2.5, 57.7, 172.1}};

/// Table 5: NN1..NN6.
inline constexpr ErrorTriple Table5Nn[6] = {
    {2.5, 30.31, 192.3}, {2.5, 26.32, 201.2}, {2.5, 24.14, 160.1},
    {2.5, 24.06, 180.3}, {2.5, 40.21, 202.45}, {2.5, 45.05, 180.5}};

/// Table 6: energy correlations of PA (X1..X9) and PNA (Y1..Y9).
inline constexpr double Table6PaCorrelation[9] = {
    0.992, 0.993, 0.870, 0.993, 0.870, 0.981, 0.972, 0.993, -0.112};
inline constexpr double Table6PnaCorrelation[9] = {
    0.960, 0.600, 0.992, -0.020, 0.806, 0.111, 0.860, 0.99, 0.986};

/// Table 7a rows in LR-A, LR-NA, RF-A, RF-NA, NN-A, NN-NA order.
inline constexpr ErrorTriple Table7a[6] = {
    {0.005, 35.32, 225.5}, {0.449, 85.61, 4039}, {0.0001, 29.39, 157.4},
    {0.004, 36.90, 1682},  {0.001, 15.43, 104.2}, {0.003, 21.04, 170.3}};

/// Table 7b rows in LR-A4, LR-NA4, RF-A4, RF-NA4, NN-A4, NN-NA4 order.
inline constexpr ErrorTriple Table7b[6] = {
    {0.024, 25.12, 87.25}, {0.449, 85.61, 4039}, {0.005, 22.73, 207.7},
    {0.035, 38.06, 1628},  {0.003, 11.46, 152.2}, {0.016, 21.32, 227.5}};

/// Sect. 5 collection-cost narrative.
inline constexpr size_t HaswellTotalEvents = 164;
inline constexpr size_t HaswellSignificantEvents = 151;
inline constexpr size_t HaswellCollectionRuns = 53;
inline constexpr size_t SkylakeTotalEvents = 385;
inline constexpr size_t SkylakeSignificantEvents = 323;
inline constexpr size_t SkylakeCollectionRuns = 99;

} // namespace paper

#endif // SLOPE_BENCH_PAPERREFERENCE_H
