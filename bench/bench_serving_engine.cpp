//===- bench/bench_serving_engine.cpp - Fleet serving throughput ----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Replays a heavy-traffic fleet trace (default: one million observations
// from a Zipf-skewed 10k-tenant population over a diverse app catalogue)
// through core::ServingEngine on a trained online estimator, and prints
// the per-app and top-tenant attribution tables. Everything on stdout is
// a pure function of the trace and the model — bit-identical at any
// shard/thread count — so CI diffs the output of a 1-thread and a
// 4-thread replay while gating on the serve_ms / predictions-per-second
// numbers in the --bench-json summary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/FleetTrace.h"
#include "core/OnlineEstimator.h"
#include "core/ServingEngine.h"
#include "sim/TestSuite.h"

#include <algorithm>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {

/// The paper's PA4 subset: four additive PMCs collectable in one run.
std::vector<std::string> pa4Names() {
  std::vector<std::string> Pa = pmc::skylakePaNames();
  return {Pa[0], Pa[1], Pa[3], Pa[7]};
}

ModelFamily parseFamily(const std::string &Name) {
  if (Name == "lr")
    return ModelFamily::LR;
  if (Name == "nn")
    return ModelFamily::NN;
  if (Name == "knn")
    return ModelFamily::Knn;
  return ModelFamily::RF;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Rest = bench::parseArgs(Argc, Argv);

  // Driver-specific knobs (defaults are the CI gate's configuration).
  size_t Observations = 1000000;
  uint32_t Tenants = 10000;
  size_t NumApps = 12;
  size_t TrainApps = 200;
  std::string Family = "rf";
  // --retrain rls|refit|off: online-retrain mode. rls serves and updates
  // an RLS model (O(F^2) per observation); refit serves the same model
  // but re-solves the batch fit over the accumulated history at every
  // fold (the O(N*F^2) reference the CI gate compares against); off
  // (default) serves the frozen estimator. --drift X ramps each app's
  // energy-per-feature ratio by up to +/-X across the trace, the
  // workload shift that separates a frozen model's staleness_error from
  // a retrained one's.
  std::string Retrain = "off";
  bool RetrainSeen = false;
  double Drift = 0;
  ServingConfig Config;
  for (size_t I = 0; I < Rest.size(); ++I) {
    auto Next = [&](size_t &Out) {
      if (I + 1 < Rest.size())
        Out = std::strtoull(Rest[++I].c_str(), nullptr, 10);
    };
    size_t Value = 0;
    if (Rest[I] == "--observations") {
      Next(Observations);
    } else if (Rest[I] == "--tenants") {
      Next(Value), Tenants = static_cast<uint32_t>(Value);
    } else if (Rest[I] == "--apps") {
      Next(NumApps);
    } else if (Rest[I] == "--train-apps") {
      Next(TrainApps);
    } else if (Rest[I] == "--shards") {
      Next(Value), Config.NumShards = static_cast<unsigned>(Value);
    } else if (Rest[I] == "--epoch-size") {
      Next(Config.EpochSize);
    } else if (Rest[I] == "--batch-size") {
      Next(Config.BatchSize);
    } else if (Rest[I] == "--family" && I + 1 < Rest.size()) {
      Family = Rest[++I];
    } else if (Rest[I] == "--retrain" && I + 1 < Rest.size()) {
      Retrain = Rest[++I];
      RetrainSeen = true;
    } else if (Rest[I] == "--drift" && I + 1 < Rest.size()) {
      Drift = std::strtod(Rest[++I].c_str(), nullptr);
    }
  }
  // An explicit --retrain (including "off") opts into label scoring, so
  // `--retrain off` reports the frozen model's staleness_error as the
  // baseline the retrained runs are compared against. Without the flag
  // the replay skips the serial scoring pass entirely.
  Config.ScoreLabels = RetrainSeen;

  bench::banner("Serving engine: fleet energy attribution");

  Machine M(Platform::intelSkylakeServer(), 42);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());

  // Training population: a paper-scale diverse suite, so the fitted
  // model has realistic capacity (an RF grown on a 12-row set would be
  // near-trivial trees); the fleet's app catalogue is a separate,
  // smaller suite drawn from the same kernel space.
  std::vector<CompoundApplication> TrainingApps;
  for (const Application &App :
       diverseBaseSuite(M.platform(), TrainApps, Rng(11)))
    TrainingApps.emplace_back(App);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), NumApps, Rng(7));
  std::vector<CompoundApplication> Apps;
  for (const Application &App : Bases)
    Apps.emplace_back(App);

  Expected<OnlineEstimator> Estimator =
      OnlineEstimator::train(M, Meter, pa4Names(), TrainingApps,
                             parseFamily(Family), /*Seed=*/1);
  if (!Estimator) {
    std::fprintf(stderr, "error: %s\n",
                 Estimator.error().message().c_str());
    return 1;
  }

  FleetTraceConfig TraceConfig;
  TraceConfig.NumObservations = Observations;
  TraceConfig.NumTenants = Tenants;
  TraceConfig.DriftMax = Drift;
  Expected<FleetTrace> Trace = [&] {
    bench::ScopedTimer Timer("trace_synth");
    return FleetTrace::synthesize(M, Estimator->events(), Apps, TraceConfig);
  }();
  if (!Trace) {
    std::fprintf(stderr, "error: %s\n", Trace.error().message().c_str());
    return 1;
  }

  ServingEngine Engine(Estimator->model(), Trace->width(), Tenants,
                       Trace->numApps(), Config);

  // Online-retrain mode: seed an RLS model from the head of the stream
  // (both modes fit the identical seed, so rls-vs-refit differences are
  // purely the maintenance algorithm's) and let every epoch fold feed
  // the epoch back into it.
  ml::RlsLinearRegression OnlineModel;
  ml::Dataset SeedData;
  const bool RetrainOn = Retrain == "rls" || Retrain == "refit";
  if (RetrainOn) {
    const ml::FitAlgorithm Algo = Retrain == "refit"
                                      ? ml::FitAlgorithm::Refit
                                      : ml::FitAlgorithm::Rls;
    // Record the mode under test in the JSON fit_algo field.
    ml::setDefaultFitAlgorithm(Algo);
    std::vector<std::string> FeatureNames;
    for (size_t F = 0; F < Trace->width(); ++F)
      FeatureNames.push_back("pmc" + std::to_string(F));
    SeedData = ml::Dataset(FeatureNames);
    const size_t SeedRows = std::min<size_t>(4096, Trace->size());
    for (size_t I = 0; I < SeedRows; ++I)
      SeedData.addRow(Trace->features(I), Trace->label(I));
    if (auto Seeded = OnlineModel.fit(SeedData); !Seeded) {
      std::fprintf(stderr, "error: %s\n", Seeded.error().message().c_str());
      return 1;
    }
    Engine.enableOnlineRetrain(OnlineModel, Algo, &SeedData);
  }

  {
    bench::ScopedTimer Timer("serve_replay");
    Engine.replay(*Trace);
  }

  std::printf("Fleet: %zu observations, %u tenants, %zu apps, family %s\n\n",
              Trace->size(), Tenants, NumApps,
              Estimator->model().name().c_str());

  TablePrinter AppTable({"App", "Kernel", "Observations", "Energy (J)"});
  AppTable.setCaption("Per-app attributed dynamic energy.");
  for (uint32_t A = 0; A < Trace->numApps(); ++A)
    AppTable.addRow({std::to_string(A), kernelSpec(Bases[A].Kind).Name,
                     std::to_string(Engine.appObservations(A)),
                     str::scientific(Engine.appEnergy(A))});
  std::printf("%s\n", AppTable.render().c_str());

  // Top tenants by folded observation count (ties broken by tenant id,
  // so the listing is deterministic).
  std::vector<uint32_t> Order(Tenants);
  for (uint32_t T = 0; T < Tenants; ++T)
    Order[T] = T;
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    uint64_t Oa = Engine.tenantObservations(A);
    uint64_t Ob = Engine.tenantObservations(B);
    return Oa != Ob ? Oa > Ob : A < B;
  });
  TablePrinter TenantTable({"Tenant", "Observations", "Energy (J)"});
  TenantTable.setCaption("Top-10 tenants by observation count.");
  for (size_t I = 0; I < std::min<size_t>(10, Order.size()); ++I)
    TenantTable.addRow({std::to_string(Order[I]),
                        std::to_string(Engine.tenantObservations(Order[I])),
                        str::scientific(Engine.tenantEnergy(Order[I]))});
  std::printf("%s\n", TenantTable.render().c_str());

  std::printf("Fleet dynamic energy: %s J across %llu observations.\n",
              str::scientific(Engine.fleetEnergy()).c_str(),
              static_cast<unsigned long long>(Engine.stats().Observations));
  std::printf("Retrain: %s; staleness error %s over %llu retrains.\n",
              Retrain.c_str(),
              str::scientific(Engine.stats().stalenessError()).c_str(),
              static_cast<unsigned long long>(Engine.stats().Retrains));

  const double ServeMs =
      static_cast<double>(phaseTotalNs(Phase::Serve)) / 1e6;
  bench::extraJsonNumbers() = {
      {"observations", static_cast<double>(Engine.stats().Observations)},
      {"epochs", static_cast<double>(Engine.stats().Epochs)},
      {"batches", static_cast<double>(Engine.stats().Batches)},
      {"shards", static_cast<double>(Engine.numShards())},
      {"predictions_per_sec",
       ServeMs > 0 ? static_cast<double>(Engine.stats().Observations) /
                         (ServeMs / 1e3)
                   : 0},
      {"batch_ms_p50", Engine.stats().batchLatencyQuantileMs(0.50)},
      {"batch_ms_p99", Engine.stats().batchLatencyQuantileMs(0.99)},
      {"retrains", static_cast<double>(Engine.stats().Retrains)},
      {"staleness_error", Engine.stats().stalenessError()},
  };
  // The attribution tables as numbers, so the quantized CI gate can check
  // FP-vs-quantized accuracy (check_speedup.py --tolerance-json attr_)
  // in the same call that checks the serve_ms speedup.
  for (uint32_t A = 0; A < Trace->numApps(); ++A)
    bench::extraJsonNumbers().emplace_back(
        "attr_app_" + std::to_string(A) + "_energy_j", Engine.appEnergy(A));
  for (size_t I = 0; I < std::min<size_t>(10, Order.size()); ++I)
    bench::extraJsonNumbers().emplace_back(
        "attr_top_tenant_" + std::to_string(I) + "_energy_j",
        Engine.tenantEnergy(Order[I]));
  bench::extraJsonNumbers().emplace_back("attr_fleet_energy_j",
                                         Engine.fleetEnergy());
  bench::writeBenchJson("serving_engine");
  return 0;
}
