//===- bench/bench_ablation_noise.cpp - Methodology ablation --------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Ablation (DESIGN.md #2): the value of the statistical methodology. The
// additivity test averages each observable over several runs; this sweep
// varies RunsPerMean and the stage-1 reproducibility filter and reports
// how stable the six Class-A verdicts are — fewer repetitions admit
// noise-driven misclassifications near the tolerance boundary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AdditivityChecker.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: measurement repetitions vs verdict stability");

  Rng R(7);
  std::vector<Application> Bases;
  std::vector<CompoundApplication> Compounds;
  {
    Machine Proto(Platform::intelHaswellServer(), 1);
    Bases = diverseBaseSuite(Proto.platform(), 48, R.fork("b"));
    Compounds = makeCompoundSuite(Bases, 16, R.fork("p"));
  }

  TablePrinter T({"RunsPerMean", "X1 err", "X2 err", "X3 err", "X4 err",
                  "X5 err", "X6 err", "max |err - ref| (%)"});
  T.setCaption("Additivity errors of the six Class-A PMCs vs the number "
               "of runs averaged into each sample mean (reference: 9 "
               "runs).");

  // Reference with heavy averaging.
  std::vector<double> Reference;
  for (unsigned RunsPerMean : {9u, 5u, 3u, 2u, 1u}) {
    Machine M(Platform::intelHaswellServer(), 1234);
    AdditivityTestConfig Config;
    Config.RunsPerMean = RunsPerMean;
    AdditivityChecker Checker(M, Config);
    std::vector<pmc::EventId> Six;
    for (const std::string &Name : pmc::haswellClassAPmcNames())
      Six.push_back(*M.registry().lookup(Name));
    std::vector<AdditivityResult> Results =
        Checker.checkAll(Six, Compounds);
    std::vector<std::string> Cells = {std::to_string(RunsPerMean)};
    double WorstDrift = 0;
    for (size_t I = 0; I < Results.size(); ++I) {
      Cells.push_back(str::fixed(Results[I].MaxErrorPct, 1));
      if (Reference.empty())
        continue;
      WorstDrift = std::max(WorstDrift,
                            std::fabs(Results[I].MaxErrorPct -
                                      Reference[I]));
    }
    if (Reference.empty()) {
      for (const AdditivityResult &Res : Results)
        Reference.push_back(Res.MaxErrorPct);
      Cells.push_back("(reference)");
    } else {
      Cells.push_back(str::fixed(WorstDrift, 2));
    }
    T.addRow(Cells);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Verdicts remain stable here because the six PMCs sit far "
              "from the 5%% boundary; single-run means mostly cost "
              "precision, which matters for borderline events.\n");
  return 0;
}
