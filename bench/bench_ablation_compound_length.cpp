//===- bench/bench_ablation_compound_length.cpp - k-phase compounds -------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper's compound applications are serial pairs; the additivity
// definition extends to any number of phases. This ablation measures the
// Eq. 1 error of representative PMCs as the compound length k grows from
// 2 to 5: for boundary-driven non-additive events the context term
// scales with (k - 1), so errors grow roughly linearly with length —
// while additive events stay flat at the noise floor. Longer compounds
// therefore make the additivity test MORE discriminating per run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/TestSuite.h"
#include "stats/Descriptive.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
/// Mean Eq. 1 error of \p Id over several k-phase compounds.
double meanErrorAtLength(Machine &M, EventId Id,
                         const std::vector<Application> &Bases, size_t K,
                         Rng PickRng) {
  const int NumCompounds = 8;
  const int RunsPerMean = 3;
  std::vector<double> Errors;
  for (int C = 0; C < NumCompounds; ++C) {
    CompoundApplication Compound;
    for (size_t Phase = 0; Phase < K; ++Phase)
      Compound.Phases.push_back(Bases[PickRng.below(Bases.size())]);

    double SumOfBases = 0;
    for (const Application &Base : Compound.Phases) {
      double Mean = 0;
      for (int R = 0; R < RunsPerMean; ++R)
        Mean += M.readCounter(Id, M.run(Base));
      SumOfBases += Mean / RunsPerMean;
    }
    double CompoundMean = 0;
    for (int R = 0; R < RunsPerMean; ++R)
      CompoundMean += M.readCounter(Id, M.run(Compound));
    CompoundMean /= RunsPerMean;
    // Compounds whose bases barely exercise the event carry no Eq. 1
    // signal; skip them like the checker's significance filter does.
    if (SumOfBases < 10)
      continue;
    Errors.push_back(std::fabs(SumOfBases - CompoundMean) / SumOfBases *
                     100);
  }
  return Errors.empty() ? 0.0 : stats::mean(Errors);
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: additivity error vs compound length");

  Machine M(Platform::intelHaswellServer(), 81);
  Rng R(81);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), 16, R.fork("b"));

  struct Probe {
    const char *Name;
    const char *Class;
  };
  Probe Probes[] = {
      {"UOPS_EXECUTED_CORE", "near-additive"},
      {"L2_RQSTS_MISS", "mildly non-additive"},
      {"IDQ_MS_UOPS", "non-additive"},
      {"ARITH_DIVIDER_COUNT", "strongly non-additive"},
  };

  TablePrinter T({"PMC", "class", "k=2", "k=3", "k=4", "k=5"});
  T.setCaption("Mean Eq. 1 error (%) over 8 random k-phase compounds of "
               "a diverse suite.");
  for (const Probe &P : Probes) {
    EventId Id = *M.registry().lookup(P.Name);
    std::vector<std::string> Cells = {P.Name, P.Class};
    for (size_t K = 2; K <= 5; ++K)
      Cells.push_back(str::fixed(
          meanErrorAtLength(M, Id, Bases, K, R.fork(K * 100)), 1));
    T.addRow(Cells);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Reading: boundary-driven context scales with (k - 1), so "
              "every event's error grows with compound length — but the "
              "growth rate is proportional to the event's context share, "
              "so the additive/non-additive gap widens by an order of "
              "magnitude from k=2 to k=5. Longer compounds make the test "
              "more discriminating per run.\n");
  return 0;
}
