//===- bench/bench_collection_cost.cpp - Sect. 5 collection cost ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the Sect. 5 collection-cost narrative: how many events each
// platform offers, how many survive the counts-greater-than-10 filter,
// and how many application runs are needed to collect them all given the
// 4 programmable counters and the solo/pair/triple scheduling
// restrictions ("each application must be executed about 53 and 99 times
// on Intel Haswell and Intel Skylake platform, respectively").
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "pmc/CounterScheduler.h"
#include "sim/Machine.h"
#include "stats/Descriptive.h"

#include <cstdio>

using namespace slope;
using namespace slope::pmc;
using namespace slope::sim;

namespace {
/// Empirically applies the paper's significance filter: probe with a
/// diverse set of applications and keep events whose count exceeds 10
/// for at least one of them (the paper filters over its whole suite).
std::vector<EventId> empiricallySignificant(Machine &M) {
  std::vector<Execution> Probes;
  Probes.push_back(M.run(Application(KernelKind::MklDgemm, 12000)));
  Probes.push_back(M.run(Application(KernelKind::QuickSort, 1u << 26)));
  Probes.push_back(M.run(Application(KernelKind::Stream, 1u << 29)));
  Probes.push_back(M.run(Application(KernelKind::MonteCarlo, 1u << 24)));
  std::vector<EventId> Kept;
  for (EventId Id : M.registry().allEvents()) {
    double Best = 0;
    for (const Execution &Probe : Probes) {
      // Average a few readings per app to mirror the methodology.
      double Sum = 0;
      for (int Rep = 0; Rep < 3; ++Rep)
        Sum += M.readCounter(Id, Probe);
      Best = std::max(Best, Sum / 3);
    }
    if (Best > 10.0)
      Kept.push_back(Id);
  }
  return Kept;
}

void report(const char *Label, Machine &M, size_t PaperTotal,
            size_t PaperSignificant, size_t PaperRuns) {
  std::vector<EventId> Significant = empiricallySignificant(M);
  auto Plan = planCollection(M.registry(), Significant);
  TablePrinter T({"Quantity", "Reproduced", "Paper"});
  T.setCaption(Label);
  T.addRow({"Events offered", std::to_string(M.registry().size()),
            std::to_string(PaperTotal)});
  T.addRow({"Events with counts > 10", std::to_string(Significant.size()),
            std::to_string(PaperSignificant)});
  T.addRow({"Runs to collect all", std::to_string(Plan->numRuns()),
            std::to_string(PaperRuns)});
  T.addRow({"Avg events per run",
            str::compact(static_cast<double>(Significant.size()) /
                         static_cast<double>(Plan->numRuns()), 3),
            str::compact(static_cast<double>(PaperSignificant) /
                         static_cast<double>(PaperRuns), 3)});
  std::printf("%s\n", T.render().c_str());
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Sect. 5: PMC collection cost");
  Machine Haswell(Platform::intelHaswellServer(), 1);
  Machine Skylake(Platform::intelSkylakeServer(), 2);
  report("Intel Haswell server", Haswell, paper::HaswellTotalEvents,
         paper::HaswellSignificantEvents, paper::HaswellCollectionRuns);
  report("Intel Skylake server", Skylake, paper::SkylakeTotalEvents,
         paper::SkylakeSignificantEvents, paper::SkylakeCollectionRuns);
  std::printf("This cost — only 3-4 PMCs per run — is why online energy "
              "models must choose a reliable 4-PMC subset (Class C).\n");
  return 0;
}
