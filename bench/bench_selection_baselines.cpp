//===- bench/bench_selection_baselines.cpp - Selection-policy shootout ----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Compares the PMC-selection techniques of the paper's Sect. 1 taxonomy
// head to head on the Class C task (pick 4 PMCs, predict DGEMM/FFT
// energy):
//
//   1. correlation with energy (state of the art),
//   2. PCA loadings (the other statistical baseline),
//   3. additivity + correlation (the paper's criterion),
//   4. expert set: the literature PNA picks.
//
// Each selection feeds all four model families (LR, RF, NN, and the
// Manila-style k-NN baseline).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AdditivityChecker.h"
#include "core/DatasetBuilder.h"
#include "core/PmcSelector.h"
#include "ml/KnnRegressor.h"
#include "ml/Metrics.h"
#include "sim/TestSuite.h"

#include <cstdio>
#include <map>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Selection-policy shootout (Class C task, 4 PMCs)");

  Machine M(Platform::intelSkylakeServer(), 31);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuilder Builder(M, Meter);
  Rng R(31);

  // Candidate pool: PA + PNA (the 18 Table 6 events).
  std::vector<std::string> Candidates = pmc::skylakePaNames();
  for (const std::string &Name : pmc::skylakePnaNames())
    Candidates.push_back(Name);

  // Dataset over the DGEMM/FFT sweep (reduced stride for speed).
  std::vector<CompoundApplication> Points;
  for (uint64_t N = 6400; N <= 38400; N += 128)
    Points.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 128)
    Points.emplace_back(Application(KernelKind::MklFft, N));
  Dataset Full = *Builder.buildByName(Points, Candidates);
  auto [Train, Test] = Full.split(0.2, R.fork("split"));

  // Additivity verdicts for policy 3.
  std::vector<Application> AddBases = dgemmFftAdditivityBases(20);
  std::vector<CompoundApplication> AddCompounds =
      makeCompoundSuite(AddBases, 12, R.fork("p"));
  AdditivityChecker Checker(M);
  std::vector<std::string> AdditiveNames;
  for (const std::string &Name : Candidates)
    if (Checker.check(*M.registry().lookup(Name), AddCompounds).Additive)
      AdditiveNames.push_back(Name);

  std::map<std::string, std::vector<std::string>> Policies;
  Policies["correlation"] = selectMostCorrelated(Full, 4);
  Policies["pca-loadings"] = selectByPcaLoading(Full, 4);
  Policies["additivity+corr"] =
      selectMostCorrelated(Full.selectFeatures(AdditiveNames), 4);
  Policies["expert (PNA picks)"] = {
      "ICACHE_64B_IFTAG_MISS", "BR_MISP_RETIRED_ALL_BRANCHES",
      "IDQ_MS_UOPS", "ARITH_DIVIDER_COUNT"};

  for (const auto &[Policy, Names] : Policies)
    std::printf("%-20s -> { %s }\n", Policy.c_str(),
                str::join(Names, ", ").c_str());
  std::printf("\n");

  TablePrinter T({"Policy", "LR avg err", "RF avg err", "NN avg err",
                  "kNN avg err"});
  T.setCaption("Average percentage prediction error per selection policy "
               "and model family (4 PMCs, DGEMM/FFT, 651-point-scale "
               "training).");
  for (const auto &[Policy, Names] : Policies) {
    Dataset SubTrain = Train.selectFeatures(Names);
    Dataset SubTest = Test.selectFeatures(Names);
    std::vector<std::string> Cells = {Policy};
    LinearRegression Lr;
    RandomForest Rf;
    NeuralNetwork Nn;
    KnnRegressor Knn;
    for (Model *ModelPtr :
         std::initializer_list<Model *>{&Lr, &Rf, &Nn, &Knn}) {
      [[maybe_unused]] auto Fit = ModelPtr->fit(SubTrain);
      assert(Fit && "baseline model failed to fit");
      Cells.push_back(
          str::fixed(evaluateModel(*ModelPtr, SubTest).Avg, 3));
    }
    T.addRow(Cells);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Reading: additivity screening plus correlation ranking "
              "wins or ties for every model family. Correlation alone "
              "can get lucky (here its top-4 happen to be additive — on "
              "the paper's machine it was not so fortunate with Y3/Y8/"
              "Y9), but it offers no protection; PCA and the expert PNA "
              "habit pick context-coupled counters and pay for it, "
              "k-NN included.\n");
  return 0;
}
