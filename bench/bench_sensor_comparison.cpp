//===- bench/bench_sensor_comparison.cpp - Measurement-approach study -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper's Sect. 1 classifies three energy-measurement approaches:
// (a) system-level physical meters (accurate, used as ground truth),
// (b) on-chip sensors ("no definitive research works proving its
// accuracy"), and (c) PMC-based predictive models. This bench makes the
// (a)-vs-(b) concern quantitative on the simulator: the RAPL-style
// sensor has near-zero variance but carries domain-model bias, so models
// trained against it inherit a systematic error relative to wall-meter
// truth — the reason the paper trains and validates against (a).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DatasetBuilder.h"
#include "ml/LinearRegression.h"
#include "ml/Metrics.h"
#include "power/RaplSensor.h"
#include "sim/TestSuite.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Measurement approaches: wall meter vs on-chip sensor");

  Machine M(Platform::intelSkylakeServer(), 51);
  power::HclWattsUp Wall(M, std::make_unique<power::WattsUpProMeter>());
  power::HclWattsUp Rapl(M, std::make_unique<power::RaplSensor>());

  // --- Per-kernel dynamic-power readings from both instruments.
  TablePrinter T({"Application", "Wall meter P_dyn (W)",
                  "On-chip P_dyn (W)", "Sensor bias (%)"});
  T.setCaption("One run per application; dynamic power from each "
               "instrument's own static-power calibration.");
  std::vector<Application> Apps = {
      Application(KernelKind::MklDgemm, 16000),
      Application(KernelKind::MklFft, 30000),
      Application(KernelKind::Stream, 4000000000ull),
      Application(KernelKind::QuickSort, 1u << 28),
  };
  for (const Application &App : Apps) {
    Execution Exec = M.run(App);
    power::EnergyReading W = Wall.readingFor(Exec);
    power::EnergyReading S = Rapl.readingFor(Exec);
    double Pw = W.DynamicEnergyJ / W.TimeSec;
    double Ps = S.DynamicEnergyJ / S.TimeSec;
    T.addRow({App.str(), str::fixed(Pw, 1), str::fixed(Ps, 1),
              str::fixed((Ps - Pw) / Pw * 100, 1)});
  }
  std::printf("%s\n", T.render().c_str());

  // --- Train LR against each instrument; validate against wall truth.
  Rng R(51);
  std::vector<CompoundApplication> Points;
  for (uint64_t N = 6400; N <= 38400; N += 256)
    Points.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 256)
    Points.emplace_back(Application(KernelKind::MklFft, N));

  DatasetBuilder WallBuilder(M, Wall);
  DatasetBuilder RaplBuilder(M, Rapl);
  ml::Dataset WallData =
      *WallBuilder.buildByName(Points, pmc::skylakePaNames());
  ml::Dataset RaplData =
      *RaplBuilder.buildByName(Points, pmc::skylakePaNames());

  auto [WallTrain, WallTest] = WallData.split(0.25, R.fork("s"));
  auto [RaplTrain, RaplTest] = RaplData.split(0.25, R.fork("s"));

  ml::LinearRegression TrainedOnWall, TrainedOnRapl;
  [[maybe_unused]] auto FitA = TrainedOnWall.fit(WallTrain);
  [[maybe_unused]] auto FitB = TrainedOnRapl.fit(RaplTrain);
  assert(FitA && FitB && "sensor-comparison models failed to fit");

  // Both models predict the SAME test rows; both are judged against the
  // wall meter (the paper's ground truth).
  TablePrinter V({"Model trained against", "Errors vs wall truth "
                                           "(min, avg, max)"});
  V.addRow({"wall meter (paper's setup)",
            ml::evaluateModel(TrainedOnWall, WallTest).str()});
  V.addRow({"on-chip sensor",
            ml::evaluateModel(TrainedOnRapl, WallTest).str()});
  std::printf("%s\n", V.render().c_str());
  std::printf("The sensor-trained model is precise but systematically "
              "shifted — supporting the paper's choice of power-meter "
              "ground truth for training and validation.\n");
  return 0;
}
