//===- bench/bench_micro_substrates.cpp - google-benchmark microbenches ---------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Throughput microbenchmarks of the substrate components, so regressions
// in the numeric kernels (NNLS, QR, CART, MLP, scheduler, synthesis) are
// visible. Not a paper table; complements the table-reproduction
// binaries.
//
//===----------------------------------------------------------------------===//

#include "core/AdditivityChecker.h"
#include "core/DatasetBuilder.h"
#include "ml/LinearRegression.h"
#include "ml/NeuralNetwork.h"
#include "ml/QuantizedModel.h"
#include "ml/RandomForest.h"
#include "pmc/CounterScheduler.h"
#include "pmc/PlatformEvents.h"
#include "sim/Machine.h"
#include "sim/TestSuite.h"
#include "stats/Nnls.h"
#include "stats/Solve.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace slope;

namespace {

stats::Matrix randomMatrix(size_t Rows, size_t Cols, uint64_t Seed) {
  Rng R(Seed);
  stats::Matrix M(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      M.at(I, J) = R.uniform(0, 2);
  return M;
}

std::vector<double> randomVector(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> V(N);
  for (double &X : V)
    X = R.uniform(0, 5);
  return V;
}

ml::Dataset randomDataset(size_t Rows, size_t Cols, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::string> Names;
  for (size_t J = 0; J < Cols; ++J)
    Names.push_back("f" + std::to_string(J));
  ml::Dataset D(Names);
  for (size_t I = 0; I < Rows; ++I) {
    std::vector<double> X(Cols);
    double Y = 0;
    for (size_t J = 0; J < Cols; ++J) {
      X[J] = R.uniform(0, 10);
      Y += (J + 1) * X[J];
    }
    D.addRow(X, Y + R.gaussian(0, 1));
  }
  return D;
}

void BM_NnlsSolve(benchmark::State &State) {
  size_t Rows = State.range(0);
  stats::Matrix A = randomMatrix(Rows, 8, 1);
  std::vector<double> B = randomVector(Rows, 2);
  for (auto _ : State) {
    auto Solution = stats::solveNnls(A, B);
    benchmark::DoNotOptimize(Solution);
  }
}
BENCHMARK(BM_NnlsSolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_QrLeastSquares(benchmark::State &State) {
  size_t Rows = State.range(0);
  stats::Matrix A = randomMatrix(Rows, 8, 3);
  std::vector<double> B = randomVector(Rows, 4);
  for (auto _ : State) {
    auto Solution = stats::solveLeastSquaresQR(A, B);
    benchmark::DoNotOptimize(Solution);
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(64)->Arg(256)->Arg(1024);

void BM_RandomForestFit(benchmark::State &State) {
  ml::Dataset D = randomDataset(State.range(0), 6, 5);
  ml::RandomForestOptions Options;
  Options.NumTrees = 30;
  for (auto _ : State) {
    ml::RandomForest Forest(Options);
    auto Fit = Forest.fit(D);
    benchmark::DoNotOptimize(Fit);
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(128)->Arg(512);

// Single-tree fit at Class-A scale (277 rows, 6 PMCs), presorted vs the
// naive seed kernel; both grow bit-identical trees.
void BM_TreeFit(benchmark::State &State) {
  ml::Dataset D = randomDataset(277, 6, 11);
  ml::DecisionTreeOptions Options;
  Options.Algorithm = State.range(0) == 0 ? ml::TreeAlgorithm::Presorted
                                          : ml::TreeAlgorithm::Naive;
  for (auto _ : State) {
    ml::DecisionTree Tree(Options);
    auto Fit = Tree.fit(D);
    benchmark::DoNotOptimize(Fit);
  }
}
BENCHMARK(BM_TreeFit)->Arg(0)->Arg(1);

// Full paper-scale forest fit (100 trees on the Class-A dataset shape);
// the CI speedup gate reads these two timings from the benchmark JSON.
void BM_ForestFitClassA(benchmark::State &State) {
  ml::Dataset D = randomDataset(277, 6, 12);
  ml::RandomForestOptions Options;
  Options.NumTrees = 100;
  Options.Tree.Algorithm = State.range(0) == 0 ? ml::TreeAlgorithm::Presorted
                                               : ml::TreeAlgorithm::Naive;
  for (auto _ : State) {
    ml::RandomForest Forest(Options);
    auto Fit = Forest.fit(D);
    benchmark::DoNotOptimize(Fit);
  }
}
BENCHMARK(BM_ForestFitClassA)->Arg(0)->Arg(1);

// Columnar batch inference vs the row-by-row virtual-dispatch loop it
// replaced (both produce bit-identical predictions).
void BM_ForestPredictBatch(benchmark::State &State) {
  ml::Dataset Train = randomDataset(277, 6, 13);
  ml::Dataset Test = randomDataset(512, 6, 14);
  ml::RandomForestOptions Options;
  Options.NumTrees = 30;
  ml::RandomForest Forest(Options);
  auto Fit = Forest.fit(Train);
  assert(Fit);
  (void)Fit;
  if (State.range(0) == 0) {
    for (auto _ : State) {
      std::vector<double> Preds = Forest.predictBatch(Test);
      benchmark::DoNotOptimize(Preds);
    }
  } else {
    for (auto _ : State) {
      std::vector<double> Preds;
      Preds.reserve(Test.numRows());
      for (size_t R = 0; R < Test.numRows(); ++R)
        Preds.push_back(Forest.predict(Test.row(R)));
      benchmark::DoNotOptimize(Preds);
    }
  }
}
BENCHMARK(BM_ForestPredictBatch)->Arg(0)->Arg(1);

// Quantized fixed-point batch inference vs the FP reference it was built
// from (predictions agree within ml/QuantizedModel's documented 1e-4
// relative-error bound). Arg(0): int64 LR dot-product kernel vs FP LR;
// Arg(1): branchless flattened-arena forest walk vs FP pointer-chasing
// forest. Even rows fp, odd rows quantized, so the gate can compare two
// entries of one report via check_speedup.py --key-b.
void BM_QuantizedPredictBatch(benchmark::State &State) {
  ml::Dataset Train = randomDataset(277, 6, 21);
  ml::Dataset Test = randomDataset(4096, 6, 22);
  const bool Forest = State.range(0) == 1;
  const bool Quantized = State.range(1) == 1;
  std::unique_ptr<ml::Model> Fp;
  if (Forest) {
    ml::RandomForestOptions Options;
    Options.NumTrees = 30;
    Fp = std::make_unique<ml::RandomForest>(Options);
  } else {
    Fp = std::make_unique<ml::LinearRegression>(
        ml::LinearRegressionOptions::paperDefault());
  }
  auto Fit = Fp->fit(Train);
  assert(Fit);
  (void)Fit;
  std::unique_ptr<ml::Model> Under = std::move(Fp);
  if (Quantized) {
    auto Q = ml::QuantizedModel::build(std::move(Under), Train);
    assert(Q);
    Under = Q.takeValue();
  }
  for (auto _ : State) {
    std::vector<double> Preds = Under->predictBatch(Test);
    benchmark::DoNotOptimize(Preds);
  }
}
BENCHMARK(BM_QuantizedPredictBatch)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void BM_MatrixGram(benchmark::State &State) {
  stats::Matrix A = randomMatrix(State.range(0), 32, 15);
  for (auto _ : State) {
    stats::Matrix G = A.gram();
    benchmark::DoNotOptimize(G);
  }
}
BENCHMARK(BM_MatrixGram)->Arg(256)->Arg(1024);

void BM_MatrixMultiply(benchmark::State &State) {
  size_t N = State.range(0);
  stats::Matrix A = randomMatrix(N, N, 16);
  stats::Matrix B = randomMatrix(N, N, 17);
  for (auto _ : State) {
    stats::Matrix C = A.multiply(B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_MatrixMultiply)->Arg(128)->Arg(256);

void BM_NeuralNetworkFit(benchmark::State &State) {
  ml::Dataset D = randomDataset(256, 6, 6);
  ml::NeuralNetworkOptions Options;
  Options.Epochs = State.range(0);
  for (auto _ : State) {
    ml::NeuralNetwork Net(Options);
    auto Fit = Net.fit(D);
    benchmark::DoNotOptimize(Fit);
  }
}
BENCHMARK(BM_NeuralNetworkFit)->Arg(10)->Arg(50);

// Class-A-scale network training (277 rows, 6 PMCs, one 16-unit hidden
// layer as the table sweep trains it), batched GEMM kernel vs the naive
// per-sample seed kernel; both learn bit-identical networks. The CI
// speedup gate reads these two timings from the benchmark JSON.
void BM_NNFit(benchmark::State &State) {
  ml::Dataset D = randomDataset(277, 6, 18);
  ml::NeuralNetworkOptions Options;
  Options.HiddenLayers = {16};
  Options.Epochs = 50;
  Options.Algorithm = State.range(0) == 0 ? ml::NnAlgorithm::Batched
                                          : ml::NnAlgorithm::Naive;
  for (auto _ : State) {
    ml::NeuralNetwork Net(Options);
    auto Fit = Net.fit(D);
    benchmark::DoNotOptimize(Fit);
  }
}
BENCHMARK(BM_NNFit)->Arg(0)->Arg(1);

// Whole-set GEMM inference vs the row-by-row forward loop it replaced
// (both produce bit-identical predictions).
void BM_NNForwardBatch(benchmark::State &State) {
  ml::Dataset Train = randomDataset(277, 6, 19);
  ml::Dataset Test = randomDataset(512, 6, 20);
  ml::NeuralNetworkOptions Options;
  Options.HiddenLayers = {16};
  Options.Epochs = 20;
  ml::NeuralNetwork Net(Options);
  auto Fit = Net.fit(Train);
  assert(Fit);
  (void)Fit;
  if (State.range(0) == 0) {
    for (auto _ : State) {
      std::vector<double> Preds = Net.predictBatch(Test);
      benchmark::DoNotOptimize(Preds);
    }
  } else {
    for (auto _ : State) {
      std::vector<double> Preds;
      Preds.reserve(Test.numRows());
      for (size_t R = 0; R < Test.numRows(); ++R)
        Preds.push_back(Net.predict(Test.row(R)));
      benchmark::DoNotOptimize(Preds);
    }
  }
}
BENCHMARK(BM_NNForwardBatch)->Arg(0)->Arg(1);

void BM_SchedulerFullRegistry(benchmark::State &State) {
  pmc::EventRegistry R = State.range(0) == 0 ? pmc::buildHaswellRegistry()
                                             : pmc::buildSkylakeRegistry();
  std::vector<pmc::EventId> Significant;
  for (pmc::EventId Id : R.allEvents())
    if (!R.event(Id).Model.Coeffs.empty())
      Significant.push_back(Id);
  for (auto _ : State) {
    auto Plan = pmc::planCollection(R, Significant);
    benchmark::DoNotOptimize(Plan);
  }
}
BENCHMARK(BM_SchedulerFullRegistry)->Arg(0)->Arg(1);

void BM_MachineRun(benchmark::State &State) {
  sim::Machine M(sim::Platform::intelHaswellServer(), 7);
  sim::Application App(sim::KernelKind::MklDgemm, 12000);
  for (auto _ : State) {
    sim::Execution E = M.run(App);
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_MachineRun);

void BM_CounterSynthesisAllEvents(benchmark::State &State) {
  sim::Machine M(sim::Platform::intelSkylakeServer(), 8);
  sim::Execution E = M.run(sim::Application(sim::KernelKind::MklFft, 24000));
  std::vector<pmc::EventId> All = M.registry().allEvents();
  for (auto _ : State) {
    std::vector<double> Counts = M.readCounters(All, E);
    benchmark::DoNotOptimize(Counts);
  }
}
BENCHMARK(BM_CounterSynthesisAllEvents);

// Whole-registry synthesis through the batch entry point, batched plan
// kernel vs the per-event naive reference dispatch; both produce
// bit-identical counts. The CI speedup gate reads these two timings.
void BM_ReadCountersBatch(benchmark::State &State) {
  sim::SynthAlgorithm Saved = sim::defaultSynthAlgorithm();
  sim::setDefaultSynthAlgorithm(State.range(0) == 0
                                    ? sim::SynthAlgorithm::Batched
                                    : sim::SynthAlgorithm::Naive);
  sim::Machine M(sim::Platform::intelSkylakeServer(), 8);
  sim::Execution E = M.run(sim::Application(sim::KernelKind::MklFft, 24000));
  std::vector<pmc::EventId> All = M.registry().allEvents();
  std::vector<double> Counts(All.size());
  for (auto _ : State) {
    M.readCountersBatch(All.data(), All.size(), E, Counts.data());
    benchmark::DoNotOptimize(Counts);
  }
  sim::setDefaultSynthAlgorithm(Saved);
}
BENCHMARK(BM_ReadCountersBatch)->Arg(0)->Arg(1);

// A small profiling campaign end to end (plan, batch-run, meter, reduce,
// rows): the fused parallel path vs the same campaign with the naive
// synthesis kernel.
void BM_DatasetBuild(benchmark::State &State) {
  sim::SynthAlgorithm Saved = sim::defaultSynthAlgorithm();
  sim::setDefaultSynthAlgorithm(State.range(0) == 0
                                    ? sim::SynthAlgorithm::Batched
                                    : sim::SynthAlgorithm::Naive);
  std::vector<sim::CompoundApplication> Apps;
  for (int I = 0; I < 8; ++I)
    Apps.push_back(sim::CompoundApplication(
        sim::Application(sim::KernelKind::MklDgemm, 8000 + 500 * I)));
  for (auto _ : State) {
    sim::Machine M(sim::Platform::intelHaswellServer(), 10);
    power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
    core::DatasetBuilder Builder(M, Meter);
    auto Data = Builder.buildByName(Apps, pmc::haswellClassAPmcNames());
    benchmark::DoNotOptimize(Data);
  }
  sim::setDefaultSynthAlgorithm(Saved);
}
BENCHMARK(BM_DatasetBuild)->Arg(0)->Arg(1);

void BM_AdditivityCheckSixPmcs(benchmark::State &State) {
  for (auto _ : State) {
    sim::Machine M(sim::Platform::intelHaswellServer(), 9);
    core::AdditivityChecker Checker(M);
    Rng R(9);
    std::vector<sim::Application> Bases =
        sim::diverseBaseSuite(M.platform(), 12, R.fork("b"));
    std::vector<sim::CompoundApplication> Compounds =
        sim::makeCompoundSuite(Bases, 6, R.fork("p"));
    std::vector<pmc::EventId> Six;
    for (const std::string &Name : pmc::haswellClassAPmcNames())
      Six.push_back(*M.registry().lookup(Name));
    auto Results = Checker.checkAll(Six, Compounds);
    benchmark::DoNotOptimize(Results);
  }
}
BENCHMARK(BM_AdditivityCheckSixPmcs);

} // namespace

BENCHMARK_MAIN();
