//===- bench/BenchCommon.h - Shared bench-harness helpers -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table-reproduction binaries: full paper-scale
/// experiment configurations and measured-vs-paper table rendering.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_BENCH_BENCHCOMMON_H
#define SLOPE_BENCH_BENCHCOMMON_H

#include "PaperReference.h"

#include "core/Experiments.h"
#include "core/Report.h"
#include "pmc/PlatformEvents.h"
#include "support/Str.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bench {

/// Parses the shared driver flags and \returns the remaining positional
/// arguments. `--threads N` (or the SLOPE_THREADS environment variable)
/// sizes the global experiment thread pool; parallel results are
/// bit-identical at any setting, so the knob trades wall clock only.
/// google-benchmark style `--benchmark_*` flags are accepted and ignored
/// so CI can pass one command line to every bench binary.
inline std::vector<std::string> parseArgs(int Argc, char **Argv) {
  std::vector<std::string> Positional;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--threads" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      slope::ThreadPool::setGlobalThreadCount(N > 0 ? static_cast<unsigned>(N)
                                                    : 0);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      long N = std::strtol(Arg.c_str() + std::strlen("--threads="), nullptr,
                           10);
      slope::ThreadPool::setGlobalThreadCount(N > 0 ? static_cast<unsigned>(N)
                                                    : 0);
    } else if (Arg.rfind("--benchmark_", 0) == 0) {
      // Ignored: lets the CI smoke step pass google-benchmark flags to
      // table binaries that render directly.
    } else {
      Positional.push_back(std::move(Arg));
    }
  }
  return Positional;
}

/// The paper-scale Class A configuration (277 base apps, 50 compounds).
inline slope::core::ClassAConfig fullClassA() {
  return slope::core::ClassAConfig();
}

/// The paper-scale Class B/C configuration (801 points, 651/150 split).
inline slope::core::ClassBCConfig fullClassBC() {
  return slope::core::ClassBCConfig();
}

/// Renders one model family with the paper's numbers side by side.
inline std::string
renderFamilyComparison(const std::string &Caption,
                       const std::vector<slope::core::ModelEvalRow> &Rows,
                       const paper::ErrorTriple *Paper, bool WithCoeffs) {
  using slope::str::compact;
  using slope::str::join;
  using slope::str::scientific;
  std::vector<std::string> Headers = {"Model", "PMCs"};
  if (WithCoeffs)
    Headers.push_back("Coefficients");
  Headers.push_back("Reproduced (min, avg, max)");
  Headers.push_back("Paper (min, avg, max)");
  slope::TablePrinter T(Headers);
  T.setCaption(Caption);
  std::vector<std::string> Universe = slope::pmc::haswellClassAPmcNames();
  for (size_t I = 0; I < Rows.size(); ++I) {
    std::vector<std::string> Cells = {
        Rows[I].Label,
        slope::core::compactPmcList(Rows[I].Pmcs, Universe, 'X')};
    if (WithCoeffs) {
      std::vector<std::string> Coeffs;
      for (double C : Rows[I].Coefficients)
        Coeffs.push_back(scientific(C));
      Cells.push_back(join(Coeffs, ", "));
    }
    Cells.push_back(Rows[I].Errors.str());
    Cells.push_back("(" + compact(Paper[I].Min) + ", " +
                    compact(Paper[I].Avg) + ", " + compact(Paper[I].Max) +
                    ")");
    T.addRow(Cells);
  }
  return T.render();
}

/// Prints a short banner so concatenated bench output is navigable.
inline void banner(const char *Title) {
  std::printf("\n===== %s =====\n\n", Title);
}

} // namespace bench

#endif // SLOPE_BENCH_BENCHCOMMON_H
