//===- bench/BenchCommon.h - Shared bench-harness helpers -------*- C++ -*-===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table-reproduction binaries: full paper-scale
/// experiment configurations and measured-vs-paper table rendering.
///
//===----------------------------------------------------------------------===//

#ifndef SLOPE_BENCH_BENCHCOMMON_H
#define SLOPE_BENCH_BENCHCOMMON_H

#include "PaperReference.h"

#include "core/Experiments.h"
#include "core/Report.h"
#include "ml/DecisionTree.h"
#include "ml/NeuralNetwork.h"
#include "ml/QuantizedModel.h"
#include "ml/RlsLinearRegression.h"
#include "pmc/PlatformEvents.h"
#include "sim/Machine.h"
#include "stats/SimdKernels.h"
#include "support/PhaseTimers.h"
#include "support/Str.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace bench {

/// Output path for the machine-readable timing summary; empty (the
/// default) disables JSON emission entirely.
inline std::string &benchJsonPath() {
  static std::string Path;
  return Path;
}

/// Value of --sweep-repeat (default 1); benches that support repetition
/// forward it into their experiment config.
inline unsigned &sweepRepeatFlag() {
  static unsigned Repeat = 1;
  return Repeat;
}

/// Value of --profile-repeat (default 1); benches that support it forward
/// the count into their experiment config to amplify the profiling
/// campaign for perf gates (extra passes are discarded, output unchanged).
inline unsigned &profileRepeatFlag() {
  static unsigned Repeat = 1;
  return Repeat;
}

/// Thread count requested on the command line (0 = pool default);
/// recorded for the JSON summary.
inline unsigned &requestedThreads() {
  static unsigned Threads = 0;
  return Threads;
}

/// Parses the shared driver flags and \returns the remaining positional
/// arguments. `--threads N` (or the SLOPE_THREADS environment variable)
/// sizes the global experiment thread pool; parallel results are
/// bit-identical at any setting, so the knob trades wall clock only.
/// `--tree-algo naive|presorted` selects the decision-tree growth
/// algorithm, `--nn-algo naive|batched` the neural-network training
/// kernel, and `--synth-algo naive|batched` the counter-synthesis kernel
/// (all bit-neutral; perf gates compare the two sides). `--infer-algo
/// fp|quantized` (or SLOPE_INFER_ALGO) selects the inference kernel the
/// model factories serve — unlike the bit-neutral switches it changes
/// numerics within ml/QuantizedModel's documented error bound, so the CI
/// gate checks speedup and tolerance together. `--fit-algo rls|refit`
/// (or SLOPE_FIT_ALGO) selects the online-model maintenance path
/// (O(F^2) Sherman-Morrison updates vs the O(N*F^2) full-refit
/// reference); like --infer-algo it is tolerance-gated, not
/// bit-identical — see ml/RlsLinearRegression.h. `--simd
/// auto|avx2|scalar` (or SLOPE_SIMD) selects the SIMD kernel variant:
/// auto (the default) enables only the bit-identical column-parallel
/// AVX2 kernels, avx2 additionally opts into the reassociating K-split
/// kernels, scalar forces the reference — see stats/SimdKernels.h.
/// `--bench-json
/// PATH` (or SLOPE_BENCH_JSON) writes a machine-readable timing summary
/// to PATH without changing anything on stdout. `--sweep-repeat N`
/// repeats the model sweep in benches that support it; `--profile-repeat
/// N` likewise repeats the profiling campaign (extra passes discarded).
/// google-benchmark style `--benchmark_*` flags are accepted and ignored
/// so CI can pass one command line to every bench binary.
inline std::vector<std::string> parseArgs(int Argc, char **Argv) {
  if (const char *Env = std::getenv("SLOPE_BENCH_JSON"))
    benchJsonPath() = Env;
  auto SetThreads = [](const char *Value) {
    long N = std::strtol(Value, nullptr, 10);
    requestedThreads() = N > 0 ? static_cast<unsigned>(N) : 0;
    slope::ThreadPool::setGlobalThreadCount(requestedThreads());
  };
  auto SetTreeAlgo = [](const std::string &Value) {
    slope::ml::setDefaultTreeAlgorithm(Value == "naive"
                                           ? slope::ml::TreeAlgorithm::Naive
                                           : slope::ml::TreeAlgorithm::Presorted);
  };
  auto SetNnAlgo = [](const std::string &Value) {
    slope::ml::setDefaultNnAlgorithm(Value == "naive"
                                         ? slope::ml::NnAlgorithm::Naive
                                         : slope::ml::NnAlgorithm::Batched);
  };
  auto SetSynthAlgo = [](const std::string &Value) {
    slope::sim::setDefaultSynthAlgorithm(
        Value == "naive" ? slope::sim::SynthAlgorithm::Naive
                         : slope::sim::SynthAlgorithm::Batched);
  };
  auto SetInferAlgo = [](const std::string &Value) {
    slope::ml::setDefaultInferenceAlgorithm(
        Value == "quantized" ? slope::ml::InferenceAlgorithm::Quantized
                             : slope::ml::InferenceAlgorithm::Fp);
  };
  auto SetFitAlgo = [](const std::string &Value) {
    slope::ml::setDefaultFitAlgorithm(Value == "refit"
                                          ? slope::ml::FitAlgorithm::Refit
                                          : slope::ml::FitAlgorithm::Rls);
  };
  auto SetSimd = [](const std::string &Value) {
    slope::stats::setDefaultSimdMode(
        Value == "scalar" ? slope::stats::SimdMode::Scalar
        : Value == "avx2" ? slope::stats::SimdMode::Avx2
                          : slope::stats::SimdMode::Auto);
  };
  std::vector<std::string> Positional;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--threads" && I + 1 < Argc) {
      SetThreads(Argv[++I]);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      SetThreads(Arg.c_str() + std::strlen("--threads="));
    } else if (Arg == "--tree-algo" && I + 1 < Argc) {
      SetTreeAlgo(Argv[++I]);
    } else if (Arg.rfind("--tree-algo=", 0) == 0) {
      SetTreeAlgo(Arg.substr(std::strlen("--tree-algo=")));
    } else if (Arg == "--nn-algo" && I + 1 < Argc) {
      SetNnAlgo(Argv[++I]);
    } else if (Arg.rfind("--nn-algo=", 0) == 0) {
      SetNnAlgo(Arg.substr(std::strlen("--nn-algo=")));
    } else if (Arg == "--synth-algo" && I + 1 < Argc) {
      SetSynthAlgo(Argv[++I]);
    } else if (Arg.rfind("--synth-algo=", 0) == 0) {
      SetSynthAlgo(Arg.substr(std::strlen("--synth-algo=")));
    } else if (Arg == "--infer-algo" && I + 1 < Argc) {
      SetInferAlgo(Argv[++I]);
    } else if (Arg.rfind("--infer-algo=", 0) == 0) {
      SetInferAlgo(Arg.substr(std::strlen("--infer-algo=")));
    } else if (Arg == "--fit-algo" && I + 1 < Argc) {
      SetFitAlgo(Argv[++I]);
    } else if (Arg.rfind("--fit-algo=", 0) == 0) {
      SetFitAlgo(Arg.substr(std::strlen("--fit-algo=")));
    } else if (Arg == "--simd" && I + 1 < Argc) {
      SetSimd(Argv[++I]);
    } else if (Arg.rfind("--simd=", 0) == 0) {
      SetSimd(Arg.substr(std::strlen("--simd=")));
    } else if (Arg == "--bench-json" && I + 1 < Argc) {
      benchJsonPath() = Argv[++I];
    } else if (Arg.rfind("--bench-json=", 0) == 0) {
      benchJsonPath() = Arg.substr(std::strlen("--bench-json="));
    } else if (Arg == "--profile-repeat" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      profileRepeatFlag() = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (Arg.rfind("--profile-repeat=", 0) == 0) {
      long N = std::strtol(Arg.c_str() + std::strlen("--profile-repeat="),
                           nullptr, 10);
      profileRepeatFlag() = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (Arg == "--sweep-repeat" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      sweepRepeatFlag() = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (Arg.rfind("--sweep-repeat=", 0) == 0) {
      long N = std::strtol(Arg.c_str() + std::strlen("--sweep-repeat="),
                           nullptr, 10);
      sweepRepeatFlag() = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (Arg.rfind("--benchmark_", 0) == 0) {
      // Ignored: lets the CI smoke step pass google-benchmark flags to
      // table binaries that render directly.
    } else {
      Positional.push_back(std::move(Arg));
    }
  }
  return Positional;
}

/// Named wall-clock sections recorded for the JSON summary.
inline std::vector<std::pair<std::string, double>> &timedSections() {
  static std::vector<std::pair<std::string, double>> Sections;
  return Sections;
}

/// Extra bench-specific numeric fields appended to the JSON summary
/// (e.g. the serving driver's predictions_per_sec and latency
/// percentiles). Keys must be unique and JSON-safe.
inline std::vector<std::pair<std::string, double>> &extraJsonNumbers() {
  static std::vector<std::pair<std::string, double>> Extras;
  return Extras;
}

/// Records the wall time of one named scope into timedSections().
class ScopedTimer {
public:
  explicit ScopedTimer(std::string Name)
      : Name(std::move(Name)), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    timedSections().emplace_back(std::move(Name), Ms);
  }

private:
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

/// Writes the BENCH_*.json timing summary for \p BenchName if JSON output
/// was requested (--bench-json / SLOPE_BENCH_JSON); stdout is untouched
/// either way, so table output stays byte-identical.
inline void writeBenchJson(const char *BenchName) {
  const std::string &Path = benchJsonPath();
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write bench JSON to %s\n",
                 Path.c_str());
    return;
  }
  double TotalMs = 0;
  for (const auto &[Name, Ms] : timedSections())
    TotalMs += Ms;
  std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"threads\": %u,\n", BenchName,
               requestedThreads());
  std::fprintf(F, "  \"tree_algo\": \"%s\",\n",
               slope::ml::defaultTreeAlgorithm() ==
                       slope::ml::TreeAlgorithm::Naive
                   ? "naive"
                   : "presorted");
  std::fprintf(F, "  \"nn_algo\": \"%s\",\n",
               slope::ml::defaultNnAlgorithm() == slope::ml::NnAlgorithm::Naive
                   ? "naive"
                   : "batched");
  std::fprintf(F, "  \"synth_algo\": \"%s\",\n",
               slope::sim::defaultSynthAlgorithm() ==
                       slope::sim::SynthAlgorithm::Naive
                   ? "naive"
                   : "batched");
  std::fprintf(F, "  \"infer_algo\": \"%s\",\n",
               slope::ml::defaultInferenceAlgorithm() ==
                       slope::ml::InferenceAlgorithm::Quantized
                   ? "quantized"
                   : "fp");
  std::fprintf(F, "  \"fit_algo\": \"%s\",\n",
               slope::ml::defaultFitAlgorithm() ==
                       slope::ml::FitAlgorithm::Refit
                   ? "refit"
                   : "rls");
  // The *resolved* variant the column-parallel kernels actually ran with
  // on this host (auto resolves to "avx2" or "scalar" here), so archived
  // JSON records what executed rather than what was requested.
  std::fprintf(F, "  \"simd\": \"%s\",\n",
               slope::stats::resolvedSimdVariant());
  std::fprintf(F, "  \"sweep_repeat\": %u,\n", sweepRepeatFlag());
  std::fprintf(F, "  \"profile_repeat\": %u,\n", profileRepeatFlag());
  std::fprintf(F, "  \"sections\": [\n");
  for (size_t I = 0; I < timedSections().size(); ++I) {
    const auto &[Name, Ms] = timedSections()[I];
    std::fprintf(F, "    {\"name\": \"%s\", \"ms\": %.3f}%s\n", Name.c_str(),
                 Ms, I + 1 < timedSections().size() ? "," : "");
  }
  std::fprintf(F, "  ],\n");
  // Phase counters isolate instrumented kernels (e.g. forest tree
  // training) from the fixed simulator/OOB/evaluation cost that both
  // growth algorithms share, so CI can gate on the kernel alone.
  std::fprintf(F, "  \"tree_fit_ms\": %.3f,\n",
               static_cast<double>(
                   slope::phaseTotalNs(slope::Phase::ForestTreeFit)) /
                   1e6);
  std::fprintf(F, "  \"nn_fit_ms\": %.3f,\n",
               static_cast<double>(slope::phaseTotalNs(slope::Phase::NnFit)) /
                   1e6);
  // profile_ms is charged at campaign level on the calling thread (wall
  // clock), so a parallel campaign reports a smaller number — the CI
  // speedup gate compares exactly this. synth_ms is summed across all
  // threads' readCountersBatch scopes (kernel CPU time).
  std::fprintf(F, "  \"profile_ms\": %.3f,\n",
               static_cast<double>(slope::phaseTotalNs(slope::Phase::Profile)) /
                   1e6);
  std::fprintf(F, "  \"synth_ms\": %.3f,\n",
               static_cast<double>(slope::phaseTotalNs(slope::Phase::Synth)) /
                   1e6);
  // serve_ms is the ServingEngine replay wall clock on the calling
  // thread (ingest + shard epochs + folds); the CI serving gate compares
  // exactly this across thread counts.
  std::fprintf(F, "  \"serve_ms\": %.3f,\n",
               static_cast<double>(slope::phaseTotalNs(slope::Phase::Serve)) /
                   1e6);
  // Disjoint sub-slices of serve_ms: row staging/ingest vs epoch folds
  // (partition, shard inference, publish, online retrain).
  std::fprintf(
      F, "  \"ingest_ms\": %.3f,\n",
      static_cast<double>(slope::phaseTotalNs(slope::Phase::ServeIngest)) /
          1e6);
  std::fprintf(
      F, "  \"fold_ms\": %.3f,\n",
      static_cast<double>(slope::phaseTotalNs(slope::Phase::ServeFold)) / 1e6);
  // The online-retrain pair the streaming CI gate compares: O(F^2)
  // incremental updates vs the O(N*F^2) full-refit reference.
  std::fprintf(
      F, "  \"rls_update_ms\": %.3f,\n",
      static_cast<double>(slope::phaseTotalNs(slope::Phase::RlsUpdate)) / 1e6);
  std::fprintf(
      F, "  \"refit_ms\": %.3f,\n",
      static_cast<double>(slope::phaseTotalNs(slope::Phase::Refit)) / 1e6);
  for (const auto &[Key, Value] : extraJsonNumbers())
    std::fprintf(F, "  \"%s\": %.3f,\n", Key.c_str(), Value);
  std::fprintf(F, "  \"total_ms\": %.3f\n}\n", TotalMs);
  std::fclose(F);
}

/// The paper-scale Class A configuration (277 base apps, 50 compounds).
inline slope::core::ClassAConfig fullClassA() {
  return slope::core::ClassAConfig();
}

/// The paper-scale Class B/C configuration (801 points, 651/150 split).
inline slope::core::ClassBCConfig fullClassBC() {
  return slope::core::ClassBCConfig();
}

/// Renders one model family with the paper's numbers side by side.
inline std::string
renderFamilyComparison(const std::string &Caption,
                       const std::vector<slope::core::ModelEvalRow> &Rows,
                       const paper::ErrorTriple *Paper, bool WithCoeffs) {
  using slope::str::compact;
  using slope::str::join;
  using slope::str::scientific;
  std::vector<std::string> Headers = {"Model", "PMCs"};
  if (WithCoeffs)
    Headers.push_back("Coefficients");
  Headers.push_back("Reproduced (min, avg, max)");
  Headers.push_back("Paper (min, avg, max)");
  slope::TablePrinter T(Headers);
  T.setCaption(Caption);
  std::vector<std::string> Universe = slope::pmc::haswellClassAPmcNames();
  for (size_t I = 0; I < Rows.size(); ++I) {
    std::vector<std::string> Cells = {
        Rows[I].Label,
        slope::core::compactPmcList(Rows[I].Pmcs, Universe, 'X')};
    if (WithCoeffs) {
      std::vector<std::string> Coeffs;
      for (double C : Rows[I].Coefficients)
        Coeffs.push_back(scientific(C));
      Cells.push_back(join(Coeffs, ", "));
    }
    Cells.push_back(Rows[I].Errors.str());
    Cells.push_back("(" + compact(Paper[I].Min) + ", " +
                    compact(Paper[I].Avg) + ", " + compact(Paper[I].Max) +
                    ")");
    T.addRow(Cells);
  }
  return T.render();
}

/// Prints a short banner so concatenated bench output is navigable.
inline void banner(const char *Title) {
  std::printf("\n===== %s =====\n\n", Title);
}

} // namespace bench

#endif // SLOPE_BENCH_BENCHCOMMON_H
