//===- bench/bench_table3_lr.cpp - Table 3 reproduction ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 3: linear predictive models LR1..LR6 (zero intercept,
// non-negative coefficients) trained on 277 base applications and tested
// on 50 serial compounds, dropping the most non-additive PMC at each
// step.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 3: LR1..LR6 prediction errors");
  ClassAResult Result;
  {
    bench::ScopedTimer Timer("run_class_a_full");
    Result = runClassA(bench::fullClassA());
  }
  std::printf("%s\n",
              bench::renderFamilyComparison(
                  "Table 3. Linear predictive models (LR1-LR6) using zero "
                  "intercepts and positive coefficients.",
                  Result.Lr, paper::Table3Lr, /*WithCoeffs=*/true)
                  .c_str());

  // The paper's trend: accuracy improves as non-additive PMCs are
  // removed, with the single-PMC model worst due to poor linear fit.
  double First = Result.Lr.front().Errors.Avg;
  double Best = 1e300;
  size_t BestIndex = 0;
  for (size_t I = 0; I < Result.Lr.size(); ++I)
    if (Result.Lr[I].Errors.Avg < Best) {
      Best = Result.Lr[I].Errors.Avg;
      BestIndex = I;
    }
  std::printf("Best model: LR%zu (avg %.2f%%; all-PMC LR1 avg %.2f%%; "
              "single-PMC LR6 avg %.2f%%)\n",
              BestIndex + 1, Best, First, Result.Lr.back().Errors.Avg);
  bench::writeBenchJson("table3_lr");
  return 0;
}
