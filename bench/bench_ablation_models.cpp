//===- bench/bench_ablation_models.cpp - Model-design ablations -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Ablations #3-#5 from DESIGN.md:
//   - zero-intercept non-negative LR (paper) vs plain OLS;
//   - RF extrapolation failure: in-distribution vs compound test points;
//   - NN transfer function: linear (paper) vs ReLU vs Tanh.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DatasetBuilder.h"
#include "ml/Metrics.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;
using namespace slope::sim;

namespace {
struct ClassAData {
  Dataset Train; ///< Base applications.
  Dataset Test;  ///< Serial compounds.
};

ClassAData buildClassAData() {
  Machine M(Platform::intelHaswellServer(), 2019);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuilder Builder(M, Meter);
  Rng R(2019);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), 120, R.fork("b"));
  std::vector<CompoundApplication> BaseApps, Compounds;
  for (const Application &App : Bases)
    BaseApps.emplace_back(App);
  Compounds = makeCompoundSuite(Bases, 40, R.fork("p"));
  std::vector<std::string> Names = pmc::haswellClassAPmcNames();
  return {*Builder.buildByName(BaseApps, Names),
          *Builder.buildByName(Compounds, Names)};
}

void evalRow(TablePrinter &T, const std::string &Label, Model &M,
             const Dataset &Train, const Dataset &Test) {
  [[maybe_unused]] auto Fit = M.fit(Train);
  assert(Fit && "ablation model failed to fit");
  stats::ErrorSummary Tr = evaluateModel(M, Train);
  stats::ErrorSummary Te = evaluateModel(M, Test);
  T.addRow({Label, Tr.str(), Te.str()});
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: model design choices");
  ClassAData Data = buildClassAData();

  // --- LR constraint ablation.
  {
    TablePrinter T({"Linear model", "Train errors (min, avg, max)",
                    "Compound-test errors (min, avg, max)"});
    T.setCaption("Zero-intercept + non-negative (paper) vs plain OLS. "
                 "OLS fits the training base apps more tightly but can "
                 "predict negative energy and overfits the non-additive "
                 "counters.");
    LinearRegression Paper;
    evalRow(T, "LR paper (NNLS, b0=0)", Paper, Data.Train, Data.Test);
    LinearRegression Ols(LinearRegressionOptions::ols());
    evalRow(T, "LR OLS (+intercept)", Ols, Data.Train, Data.Test);
    LinearRegressionOptions RidgeOptions =
        LinearRegressionOptions::paperDefault();
    RidgeOptions.Lambda = 1.0;
    LinearRegression Ridge(RidgeOptions);
    evalRow(T, "LR NNLS ridge(1.0)", Ridge, Data.Train, Data.Test);
    std::printf("%s\n", T.render().c_str());

    // Negative-prediction count for OLS on the compound set.
    size_t Negative = 0;
    for (size_t I = 0; I < Data.Test.numRows(); ++I)
      if (Ols.predict(Data.Test.row(I)) < 0)
        ++Negative;
    std::printf("OLS negative-energy predictions on compounds: %zu of "
                "%zu (NNLS: impossible by construction)\n\n",
                Negative, Data.Test.numRows());
  }

  // --- RF extrapolation ablation.
  {
    TablePrinter T({"RF evaluation", "Errors (min, avg, max)"});
    T.setCaption("RF on in-distribution base apps vs compound apps whose "
                 "counters exceed the training hull (DESIGN.md #4).");
    RandomForest Forest;
    [[maybe_unused]] auto Fit = Forest.fit(Data.Train);
    assert(Fit && "forest failed to fit");
    T.addRow({"in-distribution (train)",
              evaluateModel(Forest, Data.Train).str()});
    T.addRow({"compound test", evaluateModel(Forest, Data.Test).str()});
    std::printf("%s\n", T.render().c_str());
  }

  // --- NN transfer ablation.
  {
    TablePrinter T({"NN transfer", "Train errors", "Compound-test errors"});
    T.setCaption("NN transfer function (paper uses linear).");
    for (Activation A :
         {Activation::Identity, Activation::ReLU, Activation::Tanh}) {
      NeuralNetworkOptions Options;
      Options.Transfer = A;
      Options.Epochs = 300;
      NeuralNetwork Net(Options);
      [[maybe_unused]] auto Fit = Net.fit(Data.Train);
      assert(Fit && "network failed to fit");
      T.addRow({activationName(A), evaluateModel(Net, Data.Train).str(),
                evaluateModel(Net, Data.Test).str()});
    }
    std::printf("%s\n", T.render().c_str());
  }

  // --- RF capacity sweep.
  {
    TablePrinter T({"RF trees", "Compound-test avg err (%)"});
    T.setCaption("Forest size: error saturates quickly; capacity cannot "
                 "fix extrapolation.");
    for (size_t Trees : {5u, 20u, 50u, 100u, 200u}) {
      RandomForestOptions Options;
      Options.NumTrees = Trees;
      RandomForest Forest(Options);
      [[maybe_unused]] auto Fit = Forest.fit(Data.Train);
      assert(Fit && "forest failed to fit");
      T.addRow({std::to_string(Trees),
                str::fixed(evaluateModel(Forest, Data.Test).Avg, 2)});
    }
    std::printf("%s\n", T.render().c_str());
  }
  return 0;
}
