//===- bench/bench_table7a_class_b.cpp - Table 7a reproduction -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 7a: application-specific models for DGEMM/FFT on the
// simulated Skylake server — {LR,RF,NN}-A trained on the nine additive
// PMCs (PA) vs {LR,RF,NN}-NA on the nine non-additive PMCs (PNA), over
// the 801-point dataset with a 651/150 train/test split.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 7a: Class B nine-PMC models");
  ClassBCConfig Config = bench::fullClassBC();
  Config.ProfileRepeat = bench::profileRepeatFlag();
  ClassBCResult Result;
  {
    bench::ScopedTimer Timer("run_class_bc");
    Result = runClassBC(Config);
  }

  TablePrinter T({"Model", "PMCs", "Reproduced [Min, Avg, Max]",
                  "Paper [Min, Avg, Max]"});
  T.setCaption("Table 7a. Class B experiments using nine PMCs.");
  for (size_t I = 0; I < Result.ClassB.size(); ++I) {
    const ModelEvalRow &Row = Result.ClassB[I];
    const paper::ErrorTriple &P = paper::Table7a[I];
    T.addRow({Row.Label, I % 2 == 0 ? "PA" : "PNA", Row.Errors.str(),
              "(" + str::compact(P.Min) + ", " + str::compact(P.Avg) +
                  ", " + str::compact(P.Max) + ")"});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Train rows: %zu, test rows: %zu (paper: 651/150).\n",
              Result.TrainRows, Result.TestRows);
  std::printf("Finding: every *-A model beats its *-NA counterpart on "
              "average error.\n");
  for (size_t I = 0; I + 1 < Result.ClassB.size(); I += 2)
    std::printf("  %s avg %.3f%%  vs  %s avg %.3f%%  -> %s\n",
                Result.ClassB[I].Label.c_str(),
                Result.ClassB[I].Errors.Avg,
                Result.ClassB[I + 1].Label.c_str(),
                Result.ClassB[I + 1].Errors.Avg,
                Result.ClassB[I].Errors.Avg < Result.ClassB[I + 1].Errors.Avg
                    ? "confirmed"
                    : "VIOLATED");
  bench::writeBenchJson("table7a_class_b");
  return 0;
}
