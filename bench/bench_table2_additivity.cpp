//===- bench/bench_table2_additivity.cpp - Table 2 reproduction ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 2: additivity-test errors of the six Class-A PMCs on
// the simulated dual-socket Haswell server, using 277 base applications
// and 50 serial compounds at the paper's 5% tolerance.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ResultsIo.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  std::vector<std::string> Args = bench::parseArgs(Argc, Argv);
  bench::banner("Table 2: additivity test errors of the selected PMCs");
  // The printed table depends only on the additivity results, so the
  // model sweep is skipped unless the full Class A CSV archive (which
  // includes the model rows) was requested.
  ClassAConfig Config = bench::fullClassA();
  if (Args.empty())
    Config.Families = 0;
  ClassAResult Result;
  {
    bench::ScopedTimer Timer("run_class_a_additivity");
    Result = runClassA(Config);
  }

  TablePrinter T({"Selected PMCs", "Reproduced err (%)", "Paper err (%)",
                  "Additive at 5%?"});
  T.setCaption("Table 2. Selected PMCs for modelling with their additivity "
               "test errors (%).");
  for (size_t I = 0; I < Result.AdditivityTable.size(); ++I) {
    const AdditivityResult &R = Result.AdditivityTable[I];
    T.addRow({"X" + std::to_string(I + 1) + ": " + R.Name,
              str::fixed(R.MaxErrorPct, 0),
              str::fixed(paper::Table2Errors[I], 0),
              R.Additive ? "yes" : "no"});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Finding (paper Sect. 5.1): no PMC is additive within the "
              "5%% tolerance on the diverse suite.\n");
  bool AnyAdditive = false;
  for (const AdditivityResult &R : Result.AdditivityTable)
    AnyAdditive |= R.Additive;
  std::printf("Reproduced: %s\n",
              AnyAdditive ? "VIOLATED (some PMC additive)" : "confirmed");

  // Optional archival: bench_table2_additivity <results.csv> writes the
  // full Class A result (Tables 2-5) for cross-version diffing.
  if (!Args.empty()) {
    if (auto Ok = writeResultCsv(classAResultToCsv(Result), Args[0]); !Ok)
      std::fprintf(stderr, "archive failed: %s\n",
                   Ok.error().message().c_str());
    else
      std::printf("archived Class A results -> %s\n", Args[0].c_str());
  }
  bench::writeBenchJson("table2_additivity");
  return 0;
}
