//===- bench/bench_table7b_class_c.cpp - Table 7b reproduction -----------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 7b: the online four-PMC setting. PA4 holds the four
// most energy-correlated PMCs of PA; PNA4 the four most correlated of
// PNA. The paper's conclusion — correlation alone cannot rescue
// non-additive PMCs — is checked explicitly.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 7b: Class C four-PMC online models");
  ClassBCResult Result;
  {
    bench::ScopedTimer Timer("run_class_bc");
    Result = runClassBC(bench::fullClassBC());
  }

  std::printf("PA4  = { %s }\n", str::join(Result.Pa4, ", ").c_str());
  std::printf("PNA4 = { %s }\n  (paper: PA4 = {X1,X2,X4,X8}, "
              "PNA4 = {Y1,Y3,Y8,Y9})\n\n",
              str::join(Result.Pna4, ", ").c_str());

  TablePrinter T({"Model", "PMCs", "Reproduced [Min, Avg, Max]",
                  "Paper [Min, Avg, Max]"});
  T.setCaption("Table 7b. Class C experiments using four PMCs.");
  for (size_t I = 0; I < Result.ClassC.size(); ++I) {
    const ModelEvalRow &Row = Result.ClassC[I];
    const paper::ErrorTriple &P = paper::Table7b[I];
    T.addRow({Row.Label, I % 2 == 0 ? "PA4" : "PNA4", Row.Errors.str(),
              "(" + str::compact(P.Min) + ", " + str::compact(P.Avg) +
                  ", " + str::compact(P.Max) + ")"});
  }
  std::printf("%s\n", T.render().c_str());

  for (size_t I = 0; I + 1 < Result.ClassC.size(); I += 2)
    std::printf("  %s avg %.3f%%  vs  %s avg %.3f%%  -> %s\n",
                Result.ClassC[I].Label.c_str(),
                Result.ClassC[I].Errors.Avg,
                Result.ClassC[I + 1].Label.c_str(),
                Result.ClassC[I + 1].Errors.Avg,
                Result.ClassC[I].Errors.Avg < Result.ClassC[I + 1].Errors.Avg
                    ? "confirmed"
                    : "VIOLATED");
  std::printf("\nPaper conclusion check — PNA4 (correlation-selected "
              "non-additive PMCs) does not improve on PNA:\n");
  for (size_t I = 0; I + 1 < Result.ClassC.size(); I += 2)
    std::printf("  %s avg %.3f%%  (nine-PMC %s avg: see Table 7a)\n",
                Result.ClassC[I + 1].Label.c_str(),
                Result.ClassC[I + 1].Errors.Avg,
                Result.ClassC[I + 1].Label.substr(0, 2).c_str());
  bench::writeBenchJson("table7b_class_c");
  return 0;
}
