//===- bench/bench_class_d_transfer.cpp - Class D transfer study ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Runs the Class D cross-architecture transfer study over the platform
// zoo (Haswell, Skylake, AMD Zen2, ARM big.LITTLE): per-platform
// profiling campaigns with the canonical counter dictionary, model
// transfer across every ordered platform pair with and without
// additivity filtering, and the big.LITTLE pooled-vs-per-cluster
// comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  std::vector<std::string> Rest = bench::parseArgs(Argc, Argv);

  // Driver-specific knobs: --bases/--compounds size the per-platform app
  // suites, --epochs/--trees the NN/RF training budgets, --tolerance the
  // additivity threshold the filtered counter sets are built from.
  // Defaults are the full study; CI smoke passes a scaled-down
  // configuration.
  ClassDConfig Config;
  for (size_t I = 0; I < Rest.size(); ++I) {
    auto Next = [&](size_t &Out) {
      if (I + 1 < Rest.size())
        Out = std::strtoull(Rest[++I].c_str(), nullptr, 10);
    };
    size_t Value = 0;
    if (Rest[I] == "--bases") {
      Next(Config.NumBaseApps);
    } else if (Rest[I] == "--compounds") {
      Next(Config.NumCompounds);
    } else if (Rest[I] == "--epochs") {
      Next(Value), Config.NnEpochs = static_cast<unsigned>(Value);
    } else if (Rest[I] == "--trees") {
      Next(Config.RfTrees);
    } else if (Rest[I] == "--tolerance" && I + 1 < Rest.size()) {
      Config.Additivity.TolerancePct = std::strtod(Rest[++I].c_str(), nullptr);
    }
  }

  bench::banner("Class D: cross-architecture transfer over the platform zoo");

  ClassDResult Result;
  {
    bench::ScopedTimer Timer("transfer");
    Result = runClassD(Config);
  }
  // Top-level transfer_ms mirror of the timed section, so speedup gates
  // can key on it directly.
  bench::extraJsonNumbers().emplace_back("transfer_ms",
                                         bench::timedSections().back().second);

  std::printf("%s\n", renderClassDPlatforms(Result).c_str());
  std::printf("%s\n", renderClassDTransfer(Result).c_str());
  std::printf("%s\n", renderClassDBigLittle(Result).c_str());
  std::printf("train/test rows per platform: %zu/%zu\n",
              Result.TrainRowsPerPlatform, Result.TestRowsPerPlatform);

  // Headline finding: does restricting transfer to the additive
  // intersection reduce the cross-platform error? Reported per pair as
  // the average over model families.
  size_t FilteredWins = 0, FilteredPairs = 0;
  for (const TransferPairResult &Pair : Result.Pairs) {
    double SumU = 0, SumF = 0;
    size_t NumU = 0, NumF = 0;
    for (const TransferCell &Cell : Pair.Cells) {
      if (Cell.Filtered)
        SumF += Cell.Errors.Avg, ++NumF;
      else
        SumU += Cell.Errors.Avg, ++NumU;
    }
    std::string Key = Pair.TrainPlatform + "_to_" + Pair.TestPlatform;
    bench::extraJsonNumbers().emplace_back("err_" + Key + "_common",
                                           SumU / NumU);
    if (NumF == 0)
      continue;
    ++FilteredPairs;
    FilteredWins += SumF / NumF <= SumU / NumU;
    bench::extraJsonNumbers().emplace_back("err_" + Key + "_filtered",
                                           SumF / NumF);
  }
  std::printf("\nFinding: additivity filtering lowers the family-average "
              "transfer error on %zu of %zu platform pairs with a "
              "non-empty additive intersection.\n",
              FilteredWins, FilteredPairs);

  bench::writeBenchJson("class_d_transfer");
  return 0;
}
