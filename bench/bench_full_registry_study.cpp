//===- bench/bench_full_registry_study.cpp - Platform-wide additivity -----------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The predecessor study (Shahid et al. 2017) that this paper builds on:
// run the additivity test over the *entire* significant event catalogue
// of each platform and chart the landscape. The paper summarizes the
// finding as "while many PMCs are potentially additive, a considerable
// number of PMCs are not. Some of the non-additive PMCs are widely used
// in energy predictive models as key predictor variables."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AdditivityStudy.h"
#include "core/PmcSelector.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
void study(const char *Label, Machine &M,
           const std::vector<CompoundApplication> &Compounds) {
  AdditivityStudyResult Study = runAdditivityStudy(M, Compounds);

  TablePrinter Summary({"Classification", "Events"});
  Summary.setCaption(Label);
  Summary.addRow({"tested", std::to_string(Study.numTested())});
  Summary.addRow({"potentially additive (<= 5%)",
                  std::to_string(Study.NumAdditive)});
  Summary.addRow({"non-additive", std::to_string(Study.NumNonAdditive)});
  Summary.addRow({"non-reproducible",
                  std::to_string(Study.NumNonReproducible)});
  Summary.addRow({"insignificant on this suite",
                  std::to_string(Study.NumInsignificant)});
  std::printf("%s\n", Summary.render().c_str());

  std::vector<double> Edges = {0, 1, 2, 5, 10, 20, 40, 80};
  std::vector<size_t> Histogram = Study.errorHistogram(Edges);
  TablePrinter Hist({"Max additivity error (%)", "Events", ""});
  Hist.setCaption("Error distribution over deterministic events:");
  for (size_t I = 0; I < Edges.size(); ++I) {
    std::string Range =
        I + 1 < Edges.size()
            ? "[" + str::compact(Edges[I]) + ", " +
                  str::compact(Edges[I + 1]) + ")"
            : ">= " + str::compact(Edges.back());
    Hist.addRow({Range, std::to_string(Histogram[I]),
                 std::string(Histogram[I], '#')});
  }
  std::printf("%s\n", Hist.render().c_str());

  // The headline of the 2017 study: popular model PMCs among the worst.
  std::vector<AdditivityResult> Ranked = rankByAdditivity(Study.Results);
  std::printf("Five most additive: ");
  for (size_t I = 0; I < 5 && I < Ranked.size(); ++I)
    std::printf("%s (%.1f%%) ", Ranked[I].Name.c_str(),
                Ranked[I].MaxErrorPct);
  std::printf("\nFive least additive (deterministic): ");
  size_t Shown = 0;
  for (size_t I = Ranked.size(); I-- > 0 && Shown < 5;) {
    if (!Ranked[I].Deterministic || !Ranked[I].Significant)
      continue;
    std::printf("%s (%.0f%%) ", Ranked[I].Name.c_str(),
                Ranked[I].MaxErrorPct);
    ++Shown;
  }
  std::printf("\n\n");
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Prior-work reproduction: platform-wide additivity study");

  {
    Machine M(Platform::intelHaswellServer(), 11);
    Rng R(11);
    std::vector<Application> Bases =
        diverseBaseSuite(M.platform(), 32, R.fork("b"));
    study("Intel Haswell, diverse suite (32 bases, 16 compounds):", M,
          makeCompoundSuite(Bases, 16, R.fork("p")));
  }
  {
    Machine M(Platform::intelSkylakeServer(), 12);
    Rng R(12);
    std::vector<Application> Bases = dgemmFftAdditivityBases(16);
    study("Intel Skylake, MKL DGEMM/FFT (16 bases, 10 compounds):", M,
          makeCompoundSuite(Bases, 10, R.fork("p")));
  }
  std::printf("Reading: on the optimized DGEMM/FFT pair a large share of "
              "the catalogue is potentially additive; on the diverse "
              "suite almost nothing is — additivity is a property of the "
              "(platform, workload) pair, which is why the checker must "
              "run against the intended application class.\n");
  return 0;
}
