//===- bench/bench_table5_nn.cpp - Table 5 reproduction ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 5: neural network models NN1..NN6 (MLP with linear
// transfer, per the paper) on the Class A datasets.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 5: NN1..NN6 prediction errors");
  // Only the NN family feeds this table; each sweep variant is seeded by
  // (family, subset), so restricting the sweep leaves every printed row
  // bit-identical to a full run. --sweep-repeat lets perf gates amplify
  // the network-training kernel over the fixed simulator/dataset setup.
  ClassAConfig Config = bench::fullClassA();
  Config.Families = ClassAConfig::FamilyNN;
  Config.SweepRepeat = bench::sweepRepeatFlag();
  ClassAResult Result;
  {
    bench::ScopedTimer Timer("run_class_a_nn");
    Result = runClassA(Config);
  }
  std::printf("%s\n",
              bench::renderFamilyComparison(
                  "Table 5. Neural Networks based energy predictive models "
                  "(NN1-NN6).",
                  Result.Nn, paper::Table5Nn, /*WithCoeffs=*/false)
                  .c_str());
  double Best = 1e300;
  size_t BestIndex = 0;
  for (size_t I = 0; I < Result.Nn.size(); ++I)
    if (Result.Nn[I].Errors.Avg < Best) {
      Best = Result.Nn[I].Errors.Avg;
      BestIndex = I;
    }
  std::printf("Best model: NN%zu (avg %.2f%%); paper's best is NN4 "
              "(avg 24.06%%).\n", BestIndex + 1, Best);
  bench::writeBenchJson("table5_nn");
  return 0;
}
