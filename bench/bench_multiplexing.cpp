//===- bench/bench_multiplexing.cpp - Multiplexing vs dedicated runs ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Why does the paper accept a 53/99-run collection cost instead of
// multiplexing the PMU the way `perf` does? This bench quantifies the
// trade on the simulator: time-sliced collection reads everything in one
// run but pays an extrapolation error that (a) grows with the group
// count, and (b) contaminates the additivity test itself, flipping
// verdicts for borderline events. The dedicated-runs methodology keeps
// counter observations clean at the cost of executions.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/MultiplexedProfiler.h"
#include "sim/TestSuite.h"
#include "stats/Descriptive.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {

/// Mean relative deviation of multiplexed counts from clean counts over
/// several runs of a DGEMM workload, for a growing event request.
void accuracySweep() {
  TablePrinter T({"Events requested", "Slice groups", "Runs (dedicated)",
                  "Mean |rel err| multiplexed (%)"});
  T.setCaption("Extrapolation error vs request size (Haswell, DGEMM "
               "N=12000, 10 runs averaged per cell; errors are measured "
               "against an independent reference run, so the 1-group row "
               "shows pure run-to-run variation).");
  Machine M(Platform::intelHaswellServer(), 61);
  std::vector<EventId> Significant;
  for (EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Significant.push_back(Id);

  for (size_t Request : {4u, 8u, 16u, 32u, 64u}) {
    std::vector<EventId> Events(Significant.begin(),
                                Significant.begin() + Request);
    MultiplexedProfiler Mux(M);
    PmcProfiler Dedicated(M);
    size_t Groups = *Mux.numGroups(Events);
    size_t Runs = *Dedicated.collectionCost(Events);

    std::vector<double> RelErrors;
    CompoundApplication App(Application(KernelKind::MklDgemm, 12000));
    for (int Rep = 0; Rep < 10; ++Rep) {
      auto MuxCounts = Mux.collect(App, Events);
      // Clean counts for the same machine's next run: use a dedicated
      // read of a fresh execution as the reference distribution.
      Execution Ref = M.run(App);
      for (size_t I = 0; I < Events.size(); ++I) {
        double True = M.readCounter(Events[I], Ref);
        if (True > 0)
          RelErrors.push_back(
              std::fabs(MuxCounts->Counts[I] - True) / True * 100);
      }
    }
    T.addRow({std::to_string(Request), std::to_string(Groups),
              std::to_string(Runs),
              str::fixed(stats::mean(RelErrors), 2)});
  }
  std::printf("%s\n", T.render().c_str());
}

/// Additivity verdicts for the six Class-A PMCs when the test's counts
/// come from multiplexed collection instead of dedicated runs.
void verdictContamination() {
  std::printf("Additivity-test contamination: max errors of the six "
              "Class-A PMCs when the whole 151-event catalogue is "
              "collected by multiplexing (one 38-group run) vs dedicated "
              "runs.\n\n");

  Machine M(Platform::intelHaswellServer(), 62);
  Rng R(62);
  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), 24, R.fork("b"));
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, 10, R.fork("p"));

  // Dedicated-run errors via the standard checker.
  AdditivityChecker Checker(M);
  std::vector<EventId> Six;
  for (const std::string &Name : haswellClassAPmcNames())
    Six.push_back(*M.registry().lookup(Name));
  std::vector<AdditivityResult> Clean = Checker.checkAll(Six, Compounds);

  // Multiplexed errors: Eq. 1 computed from multiplexed counts of the
  // full catalogue (the realistic "collect everything at once" setup).
  std::vector<EventId> Catalogue;
  for (EventId Id : M.registry().allEvents())
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Catalogue.push_back(Id);
  MultiplexedProfiler Mux(M);

  auto MuxMean = [&](const CompoundApplication &App) {
    auto A = Mux.collect(App, Catalogue);
    auto B = Mux.collect(App, Catalogue);
    std::vector<double> Mean(Catalogue.size());
    for (size_t I = 0; I < Catalogue.size(); ++I)
      Mean[I] = 0.5 * (A->Counts[I] + B->Counts[I]);
    return Mean;
  };

  TablePrinter T({"PMC", "Dedicated max err (%)",
                  "Multiplexed max err (%)"});
  for (size_t S = 0; S < Six.size(); ++S) {
    size_t Index = 0;
    for (size_t I = 0; I < Catalogue.size(); ++I)
      if (Catalogue[I] == Six[S])
        Index = I;
    double MaxErr = 0;
    for (const CompoundApplication &Compound : Compounds) {
      double SumBases = 0;
      for (const Application &Base : Compound.Phases)
        SumBases += MuxMean(CompoundApplication(Base))[Index];
      double CompoundMean = MuxMean(Compound)[Index];
      MaxErr = std::max(MaxErr, std::fabs(SumBases - CompoundMean) /
                                    SumBases * 100);
    }
    T.addRow({Clean[S].Name, str::fixed(Clean[S].MaxErrorPct, 1),
              str::fixed(MaxErr, 1)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Multiplexing inflates the measured additivity errors "
              "(scaling noise enters Eq. 1's means), blurring the line "
              "the 5%% tolerance draws — one more reason the paper's "
              "methodology uses dedicated collection runs.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Multiplexed vs dedicated PMC collection");
  accuracySweep();
  verdictContamination();
  return 0;
}
