//===- bench/bench_ablation_dynamic_vs_total.cpp - Sect. 2 rationale ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper models DYNAMIC energy (E_D = E_T - P_S * T_E) and defers the
// rationale to its supplemental. This ablation makes the argument
// concrete: a zero-intercept linear model in activity counters can
// represent activity-proportional energy, but total energy carries the
// static term P_S * T_E — proportional to TIME, not counts. Training on
// E_T forces the model to smuggle idle energy into per-event
// coefficients, which breaks as soon as the test mix has different
// time-per-count ratios (memory-bound vs compute-bound kernels).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DatasetBuilder.h"
#include "ml/Metrics.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: dynamic vs total energy as the target");

  Machine M(Platform::intelSkylakeServer(), 91);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());

  std::vector<CompoundApplication> Points;
  for (uint64_t N = 6400; N <= 38400; N += 320)
    Points.emplace_back(Application(KernelKind::MklDgemm, N));
  for (uint64_t N = 22400; N < 41600; N += 320)
    Points.emplace_back(Application(KernelKind::MklFft, N));

  std::vector<std::string> Pa = pmc::skylakePaNames();

  TablePrinter T({"Target", "LR errors vs its own target",
                  "LR errors vs DYNAMIC truth"});
  T.setCaption("Zero-intercept non-negative LR on the nine PA counters, "
               "DGEMM/FFT sweep, 80/20 split.");

  for (bool UseTotal : {false, true}) {
    DatasetBuildOptions Options;
    Options.UseTotalEnergy = UseTotal;
    DatasetBuilder Builder(M, Meter, Options);
    ml::Dataset Data = *Builder.buildByName(Points, Pa);

    // A parallel dynamic-energy dataset over the same points for the
    // cross-target evaluation.
    DatasetBuilder DynBuilder(M, Meter);
    ml::Dataset DynData = *DynBuilder.buildByName(Points, Pa);

    Rng R(91);
    auto [Train, Test] = Data.split(0.2, R.fork("s"));
    auto [DynTrain, DynTest] = DynData.split(0.2, R.fork("s"));

    ml::LinearRegression Model;
    [[maybe_unused]] auto Fit = Model.fit(Train);
    assert(Fit && "ablation model failed to fit");

    stats::ErrorSummary Own = ml::evaluateModel(Model, Test);
    // Against dynamic truth: subtract nothing — the model's prediction
    // target IS its training target; we evaluate the same predictions
    // against the dynamic-energy labels of matching rows.
    std::vector<double> Errors;
    for (size_t I = 0; I < DynTest.numRows(); ++I)
      Errors.push_back(stats::percentageError(
          Model.predict(DynTest.row(I)), DynTest.target(I)));
    stats::ErrorSummary VsDynamic = stats::summarizeErrors(Errors);

    T.addRow({UseTotal ? "total energy (E_T)" : "dynamic energy (E_D)",
              Own.str(), VsDynamic.str()});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Reading: the total-energy model looks acceptable against "
              "its own labels but is systematically wrong about the "
              "dynamic energy an optimizer actually needs — the static "
              "term P_S*T_E is time-proportional and cannot be carried "
              "by count-proportional coefficients across workloads with "
              "different time-per-count ratios. This is the Sect. 2 "
              "rationale, quantified.\n");
  return 0;
}
