//===- bench/bench_ablation_dvfs.cpp - DVFS fidelity ablation -------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The one Table 6 number the fixed-frequency baseline cannot reach is
// Y2: the paper reports corr(CPU_CLOCK_THREAD_UNHALTED, energy) = 0.6,
// while a fixed clock makes cycle counts track runtime (and hence
// energy) almost perfectly. This ablation turns on the optional DVFS
// model — turbo on memory-bound phases, AVX-license throttling under
// dense compute — and shows the cycle counter's correlation dropping
// toward the paper's value while genuinely additive counters are
// unaffected. It also confirms REF (TSC-rate) cycles stay put, matching
// real fixed-counter behaviour.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DatasetBuilder.h"
#include "core/PmcSelector.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
/// Correlations of a few Table 6 PMCs on \p Plat. Wide mode sweeps the
/// full paper ranges (energy spans ~200x); narrow mode restricts DGEMM
/// to a 1.2x size band, where correlation is not saturated by dynamic
/// range and the clock model's variance becomes visible.
std::vector<double> correlationsOn(Platform Plat,
                                   const std::vector<std::string> &Names,
                                   bool Narrow) {
  Machine M(std::move(Plat), 71);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuilder Builder(M, Meter);
  std::vector<CompoundApplication> Points;
  if (Narrow) {
    for (uint64_t N = 6400; N <= 7680; N += 16)
      Points.emplace_back(Application(KernelKind::MklDgemm, N));
  } else {
    for (uint64_t N = 6400; N <= 38400; N += 256)
      Points.emplace_back(Application(KernelKind::MklDgemm, N));
    for (uint64_t N = 22400; N < 41600; N += 256)
      Points.emplace_back(Application(KernelKind::MklFft, N));
  }
  ml::Dataset Data = *Builder.buildByName(Points, Names);
  return energyCorrelations(Data);
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: fixed frequency vs DVFS/turbo clock model");

  std::vector<std::string> Names = {
      "CPU_CLOCK_THREAD_UNHALTED",      // Y2: paper corr 0.6.
      "CPU_CLK_UNHALTED_REF",           // TSC-rate fixed counter.
      "UOPS_EXECUTED_CORE",             // X4: paper corr 0.993.
      "FP_ARITH_INST_RETIRED_DOUBLE",   // X2: paper corr 0.993.
      "MEM_INST_RETIRED_ALL_STORES",    // X3: paper corr 0.870.
  };
  double Paper[] = {0.600, -1, 0.993, 0.993, 0.870};

  Platform Fixed = Platform::intelSkylakeServer();
  Platform Dvfs = Platform::intelSkylakeServer();
  Dvfs.DvfsEnabled = true;

  std::vector<double> WideFixed = correlationsOn(Fixed, Names, false);
  std::vector<double> WideDvfs = correlationsOn(Dvfs, Names, false);
  std::vector<double> NarrowFixed = correlationsOn(Fixed, Names, true);
  std::vector<double> NarrowDvfs = correlationsOn(Dvfs, Names, true);

  TablePrinter T({"PMC", "Wide fixed", "Wide DVFS", "Narrow fixed",
                  "Narrow DVFS", "Paper"});
  T.setCaption("Energy correlation with the clock model off vs on, over "
               "the full paper sweep (energy range ~200x) and a narrow "
               "1.2x DGEMM band.");
  for (size_t I = 0; I < Names.size(); ++I)
    T.addRow({Names[I], str::fixed(WideFixed[I], 3),
              str::fixed(WideDvfs[I], 3), str::fixed(NarrowFixed[I], 3),
              str::fixed(NarrowDvfs[I], 3),
              Paper[I] < 0 ? "-" : str::fixed(Paper[I], 3)});
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "Reading: over the full 200x sweep, Pearson correlation is "
      "saturated by dynamic range — even a 10%% wandering clock cannot "
      "pull it below ~0.99 (and neither could the real machine's, which "
      "suggests the paper's 0.600 for Y2 reflects a narrower effective "
      "spread or per-thread idling effects). On the narrow band the "
      "mechanism shows cleanly: the cycle counter's correlation drops "
      "under DVFS while retirement/dispatch counters are untouched — "
      "the quantitative reason cycle counts are unreliable linear-model "
      "predictors, complementing their non-additivity.\n");
  return 0;
}
