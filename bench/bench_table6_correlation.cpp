//===- bench/bench_table6_correlation.cpp - Table 6 reproduction ---------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 6: the PA (nine most additive) and PNA (nine
// non-additive, literature-popular) PMC sets on the simulated Skylake
// server, with their Pearson correlation against dynamic energy over the
// 801-point DGEMM/FFT dataset and their additivity errors over the
// 50-base/30-compound additivity datasets.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ResultsIo.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  std::vector<std::string> Args = bench::parseArgs(Argc, Argv);
  bench::banner("Table 6: PA/PNA energy correlations");
  ClassBCResult Result;
  {
    bench::ScopedTimer Timer("run_class_bc");
    Result = runClassBC(bench::fullClassBC());
  }

  TablePrinter T({"", "PMC", "Reproduced corr", "Paper corr",
                  "Additivity err (%)"});
  T.setCaption("Table 6. Additive and non-additive PMCs highly correlated "
               "with dynamic energy.");
  for (size_t I = 0; I < Result.Pa.size(); ++I)
    T.addRow({"X" + std::to_string(I + 1), Result.Pa[I].Name,
              str::fixed(Result.Pa[I].Correlation, 3),
              str::fixed(paper::Table6PaCorrelation[I], 3),
              str::fixed(Result.Pa[I].AdditivityErrorPct, 2)});
  for (size_t I = 0; I < Result.Pna.size(); ++I)
    T.addRow({"Y" + std::to_string(I + 1), Result.Pna[I].Name,
              str::fixed(Result.Pna[I].Correlation, 3),
              str::fixed(paper::Table6PnaCorrelation[I], 3),
              str::fixed(Result.Pna[I].AdditivityErrorPct, 2)});
  std::printf("%s\n", T.render().c_str());

  size_t PaAdditive = 0, PnaAdditive = 0;
  for (const PmcCorrelationRow &Row : Result.Pa)
    PaAdditive += Row.Additive;
  for (const PmcCorrelationRow &Row : Result.Pna)
    PnaAdditive += Row.Additive;
  std::printf("PA additive for DGEMM/FFT: %zu/9 (paper: 9/9, err < 1%%); "
              "PNA additive: %zu/9 (paper: 0/9).\n",
              PaAdditive, PnaAdditive);

  // Optional archival: bench_table6_correlation <results.csv> writes the
  // full Class B/C result (Tables 6-7) for cross-version diffing.
  if (!Args.empty()) {
    if (auto Ok = writeResultCsv(classBCResultToCsv(Result), Args[0]); !Ok)
      std::fprintf(stderr, "archive failed: %s\n",
                   Ok.error().message().c_str());
    else
      std::printf("archived Class B/C results -> %s\n", Args[0].c_str());
  }
  bench::writeBenchJson("table6_correlation");
  return 0;
}
