//===- bench/bench_table4_rf.cpp - Table 4 reproduction ------------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 4: random forest models RF1..RF6 on the Class A
// datasets. Compound test applications exceed the training range of the
// counters, so the forest's inability to extrapolate produces the large
// maximum errors the paper highlights.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Table 4: RF1..RF6 prediction errors");
  // Only the RF family feeds this table; each sweep variant is seeded by
  // (family, subset), so restricting the sweep leaves every printed row
  // bit-identical to a full run. --sweep-repeat lets perf gates amplify
  // the forest-training kernel over the fixed simulator/dataset setup.
  ClassAConfig Config = bench::fullClassA();
  Config.Families = ClassAConfig::FamilyRF;
  Config.SweepRepeat = bench::sweepRepeatFlag();
  ClassAResult Result;
  {
    bench::ScopedTimer Timer("run_class_a_rf");
    Result = runClassA(Config);
  }
  std::printf("%s\n",
              bench::renderFamilyComparison(
                  "Table 4. Random forest (RF) regression based energy "
                  "predictive models (RF1-RF6).",
                  Result.Rf, paper::Table4Rf, /*WithCoeffs=*/false)
                  .c_str());
  double Best = 1e300;
  size_t BestIndex = 0;
  for (size_t I = 0; I < Result.Rf.size(); ++I)
    if (Result.Rf[I].Errors.Avg < Best) {
      Best = Result.Rf[I].Errors.Avg;
      BestIndex = I;
    }
  std::printf("Best model: RF%zu (avg %.2f%%); paper's best is RF4 "
              "(avg 23.68%%).\n", BestIndex + 1, Best);
  bench::writeBenchJson("table4_rf");
  return 0;
}
