//===- bench/bench_augmentation.cpp - Future-work: taming max errors ------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The paper's stated future work: "we will investigate how additivity
// can be used to reduce the maximum error percentage for the three types
// of models." This bench evaluates compound augmentation
// (core/Augmentation.h): synthesize training points as sums of base
// points — physically valid exactly when the PMCs are additive — and
// measure the effect on the Class A compound-test errors, RF and NN
// especially (their max errors come from extrapolating past the
// training hull).
//
// The control arm applies the same augmentation to the *non-additive*
// full six-PMC set: the synthetic sums then disagree with how real
// compounds behave, so the technique only pays off after additivity-
// based selection — reinforcing the paper's thesis.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Augmentation.h"
#include "core/DatasetBuilder.h"
#include "ml/Metrics.h"
#include "ml/NeuralNetwork.h"
#include "ml/RandomForest.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::ml;
using namespace slope::sim;

namespace {
struct Arm {
  const char *Label;
  std::vector<std::string> Pmcs;
};
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Future-work extension: compound augmentation");

  Machine M(Platform::intelHaswellServer(), 41);
  power::HclWattsUp Meter(M, std::make_unique<power::WattsUpProMeter>());
  DatasetBuilder Builder(M, Meter);
  Rng R(41);

  std::vector<Application> Bases =
      diverseBaseSuite(M.platform(), 160, R.fork("b"));
  std::vector<CompoundApplication> BaseApps;
  for (const Application &App : Bases)
    BaseApps.emplace_back(App);
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, 50, R.fork("p"));

  // Arms: the most additive trio (RF4/NN4's set) vs all six PMCs
  // including the strongly non-additive X2/X3/X4.
  std::vector<std::string> Six = pmc::haswellClassAPmcNames();
  Arm Arms[] = {
      {"additive trio {X1,X5,X6}", {Six[0], Six[4], Six[5]}},
      {"all six (incl. non-additive)", Six},
  };

  for (const Arm &TheArm : Arms) {
    Dataset Train = *Builder.buildByName(BaseApps, TheArm.Pmcs);
    Dataset Test = *Builder.buildByName(Compounds, TheArm.Pmcs);
    Dataset Augmented =
        augmentWithSyntheticCompounds(Train, Train.numRows(), R.fork("a"));

    TablePrinter T({"Model", "Plain train (min, avg, max)",
                    "Augmented train (min, avg, max)"});
    T.setCaption(std::string("Compound-test errors, ") + TheArm.Label +
                 ":");
    for (ModelFamily Family :
         {ModelFamily::LR, ModelFamily::RF, ModelFamily::NN}) {
      auto Plain = fitPaperModel(Family, 7, Train);
      auto WithAug = fitPaperModel(Family, 7, Augmented);
      T.addRow({modelFamilyName(Family),
                evaluateModel(*Plain, Test).str(),
                evaluateModel(*WithAug, Test).str()});
    }
    std::printf("%s\n", T.render().c_str());
  }

  std::printf("Reading: augmentation extends the training hull to where "
              "compound executions live, collapsing RF/NN maximum "
              "errors — but only when the PMCs are additive enough that "
              "feature sums describe real compounds.\n");
  return 0;
}
