//===- bench/bench_streaming_rls.cpp - Streaming telemetry + online RLS ---------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// The streaming (Class E) telemetry pipeline in isolation, upstream of
// the serving engine:
//
//   1. Windowed PMU multiplexing: sim::Machine::runTrace slices a run
//      into time windows, MultiplexedProfiler::collectWindowed rotates
//      the scheduler's groups across them round-robin (perf-style) and
//      reconstructs whole-run totals by occupancy-weighted
//      extrapolation. The table scores the reconstruction against clean
//      dedicated-run counts.
//
//   2. Online model maintenance: a recursive-least-squares model absorbs
//      a labeled fleet stream one observation at a time (O(F^2)
//      Sherman-Morrison updates, no history) while the reference path
//      re-solves the full batch fit over the accumulated stream at every
//      epoch (O(N*F^2)). Both paths solve the same ridge system, so
//      their coefficients agree to solver precision; the --bench-json
//      rls_update_ms / refit_ms counters quantify the asymptotic gap the
//      serving engine's online-retrain CI gate is built on.
//
// Tables on stdout are deterministic (timing lives only in the JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/FleetTrace.h"
#include "core/MultiplexedProfiler.h"
#include "ml/RlsLinearRegression.h"
#include "sim/TestSuite.h"
#include "stats/Descriptive.h"

#include <cmath>
#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::pmc;
using namespace slope::sim;

namespace {

/// Windowed-multiplexing reconstruction accuracy against dedicated runs.
void windowedTelemetry(size_t Windows) {
  Machine M(Platform::intelHaswellServer(), 77);
  std::vector<EventId> Events;
  for (EventId Id : M.registry().allEvents()) {
    if (!M.registry().event(Id).Model.Coeffs.empty())
      Events.push_back(Id);
    if (Events.size() == 12)
      break;
  }

  MultiplexedProfiler Mux(M);
  const size_t Groups = *Mux.numGroups(Events);
  CompoundApplication App(Application(KernelKind::MklDgemm, 12000));

  Expected<WindowedProfileResult> Windowed = [&] {
    bench::ScopedTimer Timer("windowed_collect");
    return Mux.collectWindowed(App, Events, Windows, /*Repetitions=*/4);
  }();
  if (!Windowed) {
    std::fprintf(stderr, "error: %s\n", Windowed.error().message().c_str());
    return;
  }

  // Clean reference: dedicated whole-run counts averaged over fresh runs
  // (run-to-run variation is part of the baseline, as in
  // bench_multiplexing).
  std::vector<double> Reference(Events.size(), 0.0);
  const unsigned RefRuns = 4;
  for (unsigned Rep = 0; Rep < RefRuns; ++Rep) {
    Execution Ref = M.run(App);
    for (size_t I = 0; I < Events.size(); ++I)
      Reference[I] += M.readCounter(Events[I], Ref) / RefRuns;
  }

  TablePrinter T({"Event", "Occupancy (%)", "Windowed total",
                  "Dedicated mean", "Rel err (%)"});
  T.setCaption("Windowed multiplexing (" + std::to_string(Windows) +
               " windows, " + std::to_string(Groups) +
               " groups rotated round-robin, 4 repetitions) vs dedicated "
               "whole-run collection (DGEMM N=12000).");
  std::vector<double> RelErrPct;
  for (size_t I = 0; I < Events.size(); ++I) {
    const double Rec = Windowed->Profile.Counts[I];
    const double Ref = Reference[I];
    const double Err = Ref > 0 ? std::fabs(Rec - Ref) / Ref * 100 : 0;
    RelErrPct.push_back(Err);
    T.addRow({M.registry().event(Events[I]).Name,
              str::fixed(Windowed->Occupancy[I] * 100, 1),
              str::scientific(Rec), str::scientific(Ref),
              str::fixed(Err, 2)});
  }
  std::printf("%s\n", T.render().c_str());

  bench::extraJsonNumbers().emplace_back("mux_windows",
                                         static_cast<double>(Windows));
  bench::extraJsonNumbers().emplace_back("mux_groups",
                                         static_cast<double>(Groups));
  bench::extraJsonNumbers().emplace_back("mux_windowed_mean_rel_err_pct",
                                         stats::mean(RelErrPct));
}

/// O(F^2) RLS updates vs the O(N*F^2) full-refit reference on a labeled
/// fleet stream.
void streamingFit(size_t Observations, size_t EpochSize) {
  Machine M(Platform::intelSkylakeServer(), 43);
  std::vector<EventId> Events;
  for (const std::string &Name :
       {skylakePaNames()[0], skylakePaNames()[1], skylakePaNames()[3],
        skylakePaNames()[7]})
    Events.push_back(*M.registry().lookup(Name));
  std::vector<CompoundApplication> Apps;
  for (const Application &App : diverseBaseSuite(M.platform(), 8, Rng(5)))
    Apps.emplace_back(App);

  FleetTraceConfig TraceConfig;
  TraceConfig.NumObservations = Observations;
  TraceConfig.NumTenants = 64;
  TraceConfig.DriftMax = 0.2;
  Expected<FleetTrace> Trace = [&] {
    bench::ScopedTimer Timer("stream_synth");
    return FleetTrace::synthesize(M, Events, Apps, TraceConfig);
  }();
  if (!Trace) {
    std::fprintf(stderr, "error: %s\n", Trace.error().message().c_str());
    return;
  }

  // Seed both paths from the identical head of the stream.
  std::vector<std::string> FeatureNames;
  for (size_t F = 0; F < Trace->width(); ++F)
    FeatureNames.push_back("pmc" + std::to_string(F));
  ml::Dataset History(FeatureNames);
  const size_t SeedRows = std::min<size_t>(4096, Trace->size());
  for (size_t I = 0; I < SeedRows; ++I)
    History.addRow(Trace->features(I), Trace->label(I));

  ml::RlsLinearRegression Streaming, Reference;
  if (!Streaming.fit(History) || !Reference.fit(History)) {
    std::fprintf(stderr, "error: streaming seed fit failed\n");
    return;
  }

  // Stream the remainder in epochs: the RLS side folds each observation
  // in as it arrives; the reference side re-solves over everything seen
  // so far at each epoch boundary.
  size_t Epochs = 0;
  for (size_t Begin = SeedRows; Begin < Trace->size(); Begin += EpochSize) {
    const size_t End = std::min(Trace->size(), Begin + EpochSize);
    {
      ScopedPhase Timer(Phase::RlsUpdate);
      for (size_t I = Begin; I < End; ++I)
        Streaming.update(Trace->features(I), Trace->label(I));
    }
    {
      ScopedPhase Timer(Phase::Refit);
      for (size_t I = Begin; I < End; ++I)
        History.addRow(Trace->features(I), Trace->label(I));
      if (auto Refitted = Reference.fit(History); !Refitted) {
        std::fprintf(stderr, "error: %s\n",
                     Refitted.error().message().c_str());
        return;
      }
    }
    ++Epochs;
  }

  // Agreement: both maintain the same ridge system, so coefficients and
  // predictions must match far inside the 1e-8 property-test tolerance.
  double CoefRel = 0;
  for (size_t C = 0; C < Streaming.coefficients().size(); ++C) {
    const double A = Reference.coefficients()[C];
    const double B = Streaming.coefficients()[C];
    if (A != 0)
      CoefRel = std::max(CoefRel, std::fabs(B - A) / std::fabs(A));
  }

  TablePrinter T({"Path", "Cost model", "Observations", "Coefficients"});
  T.setCaption("Online maintenance after " + std::to_string(Epochs) +
               " epochs of " + std::to_string(EpochSize) +
               " observations (seed " + std::to_string(SeedRows) + ").");
  auto CoeffCell = [](const ml::RlsLinearRegression &Model) {
    std::vector<std::string> Cells;
    for (double C : Model.coefficients())
      Cells.push_back(str::scientific(C));
    return str::join(Cells, ", ");
  };
  T.addRow({"RLS (Sherman-Morrison)", "O(F^2) per observation",
            std::to_string(Streaming.observations()), CoeffCell(Streaming)});
  T.addRow({"Full refit (reference)", "O(N*F^2) per epoch",
            std::to_string(Reference.observations()), CoeffCell(Reference)});
  std::printf("%s\n", T.render().c_str());
  std::printf("Max relative coefficient difference: %s (property-test "
              "bound 1e-8).\n",
              str::scientific(CoefRel).c_str());

  bench::extraJsonNumbers().emplace_back(
      "stream_observations", static_cast<double>(Trace->size()));
  bench::extraJsonNumbers().emplace_back("stream_epochs",
                                         static_cast<double>(Epochs));
  bench::extraJsonNumbers().emplace_back("rls_vs_refit_coef_rel", CoefRel);
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Rest = bench::parseArgs(Argc, Argv);
  size_t Windows = 240;
  size_t Observations = 131072;
  size_t EpochSize = 4096;
  for (size_t I = 0; I < Rest.size(); ++I) {
    auto Next = [&](size_t &Out) {
      if (I + 1 < Rest.size())
        Out = std::strtoull(Rest[++I].c_str(), nullptr, 10);
    };
    if (Rest[I] == "--windows")
      Next(Windows);
    else if (Rest[I] == "--observations")
      Next(Observations);
    else if (Rest[I] == "--epoch-size")
      Next(EpochSize);
  }

  bench::banner("Streaming telemetry and online RLS maintenance");
  windowedTelemetry(Windows);
  streamingFit(Observations, EpochSize);
  bench::writeBenchJson("streaming_rls");
  return 0;
}
