//===- bench/bench_ablation_tolerance.cpp - Tolerance ablation ------------------===//
//
// Part of SLOPE-PMC++. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
//
// Ablation (DESIGN.md #1): how the additivity tolerance threshold changes
// the verdicts. The paper fixes 5%; this sweep shows how many of the
// Class-A PMCs (Haswell, diverse suite) and PA/PNA PMCs (Skylake,
// DGEMM/FFT) pass at 1..25%, exposing where the verdict boundary sits.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/AdditivityChecker.h"
#include "pmc/PlatformEvents.h"
#include "sim/TestSuite.h"

#include <cstdio>

using namespace slope;
using namespace slope::core;
using namespace slope::sim;

namespace {
size_t countAdditive(const std::vector<AdditivityResult> &Results,
                     double TolerancePct) {
  size_t Count = 0;
  for (const AdditivityResult &R : Results)
    if (R.Deterministic && R.Significant && R.MaxErrorPct <= TolerancePct)
      ++Count;
  return Count;
}
} // namespace

int main(int Argc, char **Argv) {
  bench::parseArgs(Argc, Argv);
  bench::banner("Ablation: additivity tolerance sweep");

  // Haswell, diverse suite, six Class-A PMCs.
  Machine Haswell(Platform::intelHaswellServer(), 2019);
  Rng R(2019);
  std::vector<Application> Bases =
      diverseBaseSuite(Haswell.platform(), 64, R.fork("b"));
  std::vector<CompoundApplication> Compounds =
      makeCompoundSuite(Bases, 24, R.fork("p"));
  AdditivityChecker HChecker(Haswell);
  std::vector<pmc::EventId> Six;
  for (const std::string &Name : pmc::haswellClassAPmcNames())
    Six.push_back(*Haswell.registry().lookup(Name));
  std::vector<AdditivityResult> SixResults =
      HChecker.checkAll(Six, Compounds);

  // Skylake, DGEMM/FFT, PA + PNA.
  Machine Skylake(Platform::intelSkylakeServer(), 2019);
  std::vector<Application> SkxBases = dgemmFftAdditivityBases(20);
  std::vector<CompoundApplication> SkxCompounds =
      makeCompoundSuite(SkxBases, 12, R.fork("skx"));
  AdditivityChecker SChecker(Skylake);
  std::vector<pmc::EventId> Pa, Pna;
  for (const std::string &Name : pmc::skylakePaNames())
    Pa.push_back(*Skylake.registry().lookup(Name));
  for (const std::string &Name : pmc::skylakePnaNames())
    Pna.push_back(*Skylake.registry().lookup(Name));
  std::vector<AdditivityResult> PaResults =
      SChecker.checkAll(Pa, SkxCompounds);
  std::vector<AdditivityResult> PnaResults =
      SChecker.checkAll(Pna, SkxCompounds);

  TablePrinter T({"Tolerance (%)", "Class-A six additive (of 6)",
                  "PA additive (of 9)", "PNA additive (of 9)"});
  T.setCaption("Additive-verdict counts as the tolerance moves. The "
               "paper's 5% keeps PA/PNA perfectly separated while "
               "rejecting all six diverse-suite PMCs.");
  for (double Tolerance : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0})
    T.addRow({str::compact(Tolerance, 3),
              std::to_string(countAdditive(SixResults, Tolerance)),
              std::to_string(countAdditive(PaResults, Tolerance)),
              std::to_string(countAdditive(PnaResults, Tolerance))});
  std::printf("%s\n", T.render().c_str());
  return 0;
}
